"""Inverse problem: recover an unknown viscosity from sparse measurements.

The paper's introduction motivates PINNs through "inverse or data
assimilation problems".  A Burgers travelling wave is observed at a few
hundred sensor locations; a network and a trainable viscosity coefficient
are fitted jointly so the PDE residual and the data misfit both vanish —
recovering the viscosity the data was generated with.

The workload is registered as ``inverse_burgers``, so the whole setup is
one Session chain (and equally one CLI line:
``repro run inverse_burgers --sampler sgm``).  The trainable coefficient
rides through the optimizer, the validators (err(nu) is recorded alongside
err(u)), and — with ``store=`` — through checkpoint/resume.
"""

import repro
from repro.experiments import inverse_burgers_config


def main():
    config = inverse_burgers_config("repro")
    print(f"true nu = {config.true_nu}, "
          f"initial guess = {config.nu_initial}")

    result = (repro.problem("inverse_burgers", scale="repro")
              .sampler("sgm")
              .train(steps=1000))

    recovered = result.coefficients["nu"]
    err = abs(recovered - config.true_nu) / config.true_nu
    print(f"recovered nu = {recovered:.4f}  (relative error {err:.1%})")
    print(f"min err(u)  = {result.history.min_error('u'):.4f}")
    print(f"min err(nu) = {result.history.min_error('nu'):.4f}")


if __name__ == "__main__":
    main()
