"""Inverse problem: recover an unknown viscosity from sparse measurements.

The paper's introduction motivates PINNs through "inverse or data
assimilation problems".  Here a Burgers travelling wave is observed at a few
hundred sensor locations; a network and a trainable viscosity coefficient
are fitted jointly so the PDE residual and the data misfit both vanish —
recovering the viscosity the data was generated with.
"""

import numpy as np

from repro.geometry import PointCloud
from repro.nn import Adam, FullyConnected
from repro.pde import Burgers1D, TrainableCoefficient, burgers_travelling_wave
from repro.training import DataConstraint, InteriorConstraint, Trainer

TRUE_NU = 0.2
AMPLITUDE, SPEED = 0.5, 0.5


def main():
    rng = np.random.default_rng(0)
    coords = rng.uniform((-1.0, 0.0), (1.0, 1.0), (3000, 2))   # (x, t)
    cloud = PointCloud(coords=coords)
    measurements = burgers_travelling_wave(coords[:, 0], coords[:, 1],
                                           TRUE_NU, amplitude=AMPLITUDE,
                                           speed=SPEED)

    nu = TrainableCoefficient(0.02, name="nu")   # start 10x too small
    constraints = [
        InteriorConstraint("pde", cloud, Burgers1D(nu=nu), batch_size=128,
                           sdf_weighting=False, spatial_names=("x", "t")),
        DataConstraint("sensors", cloud, ("u",), {"u": measurements},
                       batch_size=128, weight=20.0,
                       spatial_names=("x", "t")),
    ]
    net = FullyConnected(2, 1, width=24, depth=2, activation="tanh",
                         rng=np.random.default_rng(1))
    params = net.parameters() + [nu.raw]
    trainer = Trainer(net, constraints, Adam(params, lr=5e-3),
                      extra_parameters=[nu.raw], seed=0)

    print(f"true nu = {TRUE_NU}, initial guess = {nu.value():.4f}")
    for stage in range(4):
        trainer.train(250, validate_every=10_000, record_every=250)
        print(f"  after {250 * (stage + 1):4d} steps: "
              f"nu = {nu.value():.4f}")
    err = abs(nu.value() - TRUE_NU) / TRUE_NU
    print(f"recovered nu = {nu.value():.4f}  (relative error {err:.1%})")


if __name__ == "__main__":
    main()
