"""Reproduce Table 1 and Figure 2 (LDC with zero-equation turbulence).

Trains the four methods of the paper's Table 1 — uniform small-batch,
uniform large-batch, Modulus-style importance sampling (MIS), and SGM-PINN —
then prints the Min-error / time-to-threshold table and writes the Figure-2
error-vs-wall-time series.

Usage::

    python examples/reproduce_table1.py [--scale smoke|repro] [--out results]
                                        [--parallel]
"""

import argparse
from pathlib import Path

from repro.experiments import (
    error_curves, curves_to_csv, format_table, ldc_config, render_curves,
    run_ldc_suite, table1_rows,
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="repro",
                        choices=("smoke", "repro"),
                        help="experiment scale preset (default: repro)")
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument("--parallel", action="store_true",
                        help="shard the four-method sweep over a process "
                             "pool (identical trajectories, lower wall "
                             "clock on multi-core machines)")
    args = parser.parse_args()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    config = ldc_config(args.scale)

    backend = "process" if args.parallel else "serial"
    results = run_ldc_suite(config, backend=backend)
    histories = {label: r.history for label, r in results.items()}

    for label, history in histories.items():
        history.to_csv(out / f"ldc_{label}.csv")

    columns, rows = table1_rows(histories)
    table = format_table(
        f"Table 1 (scale={args.scale}): LDC_zeroEq min validation errors "
        f"and time-to-threshold [s]", columns, rows)
    print()
    print(table)
    (out / "table1.txt").write_text(table + "\n")

    curves = error_curves(histories, var="v")
    curves_to_csv(curves, out / "figure2_v_error_vs_time.csv")
    chart = render_curves(curves, "Figure 2: LDC v-error vs wall time (s)")
    print()
    print(chart)
    (out / "figure2.txt").write_text(chart + "\n")

    overhead = {label: r.sampler.probe_points for label, r in results.items()}
    print("\nProbe overhead (forward passes for importance refreshes):")
    for label, count in overhead.items():
        print(f"  {label:>12}: {count}")


if __name__ == "__main__":
    main()
