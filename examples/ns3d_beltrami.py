"""3-D Navier-Stokes with a third velocity output ``w``.

The trainer's probes and network sizing are dimension-agnostic — input and
output widths derive from ``Problem.spatial_names`` / ``output_names`` —
so a 3-D, four-output Navier-Stokes workload trains through exactly the
same engine as the 2-D problems.  Validation compares (u, v, w, p) against
the manufactured Beltrami (ABC) flow; see docs/workloads.md#ns3d for the
construction.
"""

import repro


def main():
    result = (repro.problem("ns3d", scale="repro")
              .sampler("sgm")
              .train(steps=700))

    for var in ("u", "v", "w", "p"):
        print(f"min err({var}) = {result.history.min_error(var):.4f}")


if __name__ == "__main__":
    main()
