"""Tour of the graph machinery behind SGM-PINN (steps S1-S3 in isolation).

Builds the PGM of a synthetic point cloud, decomposes it into low-
resistance-diameter clusters, and scores a toy model's stability with
SPADE/ISR — printing the statistics each stage produces.  Useful for
understanding what the sampler sees without running a PINN.
"""

import numpy as np

from repro.graph import (
    approx_edge_resistance, cluster_sizes, exact_effective_resistance,
    knn_adjacency, lrd_decompose,
)
from repro.stability import spade_scores


def main():
    rng = np.random.default_rng(0)

    # --- S1: kNN PGM over a point cloud with two density regimes
    dense = rng.normal([0.3, 0.3], 0.05, (600, 2))
    sparse = rng.uniform(0.0, 1.0, (400, 2))
    points = np.vstack([dense, sparse])
    adjacency = knn_adjacency(points, k=8)
    print(f"S1: kNN PGM — {adjacency.shape[0]} nodes, "
          f"{adjacency.nnz // 2} edges")

    # --- effective resistance: sketch vs exact on a few edges
    import scipy.sparse as sp
    coo = sp.triu(adjacency, k=1).tocoo()
    edges = np.stack([coo.row, coo.col], axis=1)
    sample = rng.choice(len(edges), size=10, replace=False)
    approx = approx_edge_resistance(adjacency, edges[sample],
                                    num_vectors=64, seed=1)
    exact = exact_effective_resistance(adjacency, edges[sample])
    rel = np.abs(approx - exact) / exact
    print(f"    ER sketch vs exact on 10 edges: "
          f"median rel. error {np.median(rel):.1%}")

    # --- S2: LRD decomposition
    for level in (4, 6, 8):
        result = lrd_decompose(adjacency, level=level, seed=2)
        sizes = cluster_sizes(result.labels)
        print(f"S2: LRD level {level}: {result.n_clusters:4d} clusters "
              f"(sizes {sizes.min()}..{sizes.max()}, "
              f"diameter budget {result.budget:.3g})")

    # --- S3: SPADE/ISR on a map with a sharp transition at x = 0.5
    outputs = np.tanh(25.0 * (points[:, 0:1] - 0.5))
    spade = spade_scores(points, outputs, k=10, rank=6)
    near = np.abs(points[:, 0] - 0.5) < 0.05
    far = ~near
    print(f"S3: ISR = {spade.isr:.2f}; mean node score near the transition "
          f"{spade.node_scores[near].mean():.3g} vs far "
          f"{spade.node_scores[far].mean():.3g}")

    # --- what the sampler does with it: clusters crossing the transition
    result = lrd_decompose(adjacency, level=6, seed=2)
    scores = np.array([spade.node_scores[result.labels == c].mean()
                       for c in range(result.n_clusters)])
    top = np.argsort(scores)[::-1][:5]
    centroids = np.array([points[result.labels == c].mean(axis=0)
                          for c in top])
    print("    top-5 ISR clusters sit at x ≈ "
          + ", ".join(f"{c[0]:.2f}" for c in centroids)
          + "  (transition is at x = 0.50)")


if __name__ == "__main__":
    main()
