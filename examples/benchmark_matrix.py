"""Cross-problem benchmark matrix on one shared process pool.

Trains a problems × samplers grid — by default every registered problem
under every registered sampler — with all cells sharded over a single
``ProcessPoolExecutor``, records each cell into one run store, and then
regenerates the paper-style artefacts *from the store alone*: per-problem
speedup tables and convergence-vs-time figures.

Usage::

    python examples/benchmark_matrix.py [--problems all|a,b] [--samplers a,b]
                                        [--scale smoke|repro] [--steps N]
                                        [--serial] [--store DIR]
"""

import argparse

from repro.experiments import matrix_table, run_matrix
from repro.store import (RunStore, compare_table, group_by_problem,
                         render_convergence)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--problems", default="all",
                        help="comma-separated registered problems or 'all'")
    parser.add_argument("--samplers", default=None,
                        help="comma-separated registered samplers "
                             "(default: all registered)")
    parser.add_argument("--scale", default="smoke",
                        choices=("smoke", "repro"))
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--serial", action="store_true",
                        help="disable the shared process pool")
    parser.add_argument("--store", default="matrix-runs")
    args = parser.parse_args()

    samplers = (None if args.samplers is None
                else [s.strip() for s in args.samplers.split(",")
                      if s.strip()])
    store = RunStore(args.store)
    matrix = run_matrix(args.problems, samplers,
                        backend="serial" if args.serial else "process",
                        scale=args.scale, steps=args.steps, verbose=True,
                        store=store)

    print()
    print(matrix_table(matrix))
    print(f"\nmatrix total: {matrix.total_seconds:.1f}s "
          f"({matrix.backend} backend, {matrix.n_cells} cells); "
          f"recorded {len(matrix.run_ids())} runs in {store.root}")

    # everything below reads only the persisted records — rerunnable any
    # time later via `repro runs --store <dir> plot` / `... compare`
    records = [store.open(run_id) for run_id in matrix.run_ids()]
    print()
    print(compare_table(records))
    for group in group_by_problem(records).values():
        print()
        print(render_convergence(group))


if __name__ == "__main__":
    main()
