"""Interrupt a recorded training run, then resume it bit-identically.

Walkthrough of the persistent run store:

1. train a baseline run end-to-end (no store) for reference;
2. train the same run *into a store* with periodic checkpoints, but kill it
   mid-flight (a step hook raises, standing in for SIGKILL);
3. resume the stored run from its newest checkpoint;
4. verify the stitched loss trajectory is bit-identical to the baseline.

Usage::

    python examples/resume_run.py [--steps 60] [--interrupt-at 25]
"""

import argparse
import tempfile

import numpy as np

import repro
from repro.store import RunStore, resume_run


class SimulatedKill(Exception):
    """Stands in for the OOM-killer / SIGKILL hitting a long run."""


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=60)
    parser.add_argument("--interrupt-at", type=int, default=25)
    parser.add_argument("--store", default=None,
                        help="store root (default: a fresh temp directory)")
    args = parser.parse_args()

    root = args.store or tempfile.mkdtemp(prefix="repro-runs-")
    store = RunStore(root)
    print(f"run store: {store.root}")

    def session():
        return (repro.problem("burgers", scale="smoke")
                .config(record_every=5)
                .sampler("sgm")
                .n_interior(800))

    # 1. the uninterrupted reference
    print(f"\n[1/3] baseline: {args.steps} uninterrupted steps")
    baseline = session().train(steps=args.steps)

    # 2. the recorded run, killed mid-training
    print(f"[2/3] recorded run, killed after step {args.interrupt_at}")

    def kill_switch(step, **_):
        if step == args.interrupt_at:
            raise SimulatedKill(f"killed after step {step}")

    from repro.api.session import run_problem
    victim = session()
    try:
        run_problem(victim.build(), victim._config, sampler="sgm",
                    steps=args.steps, store=store, run_id="walkthrough",
                    checkpoint_every=10, step_hooks=[kill_switch])
    except SimulatedKill as exc:
        print(f"      {exc}")
    record = store.open("walkthrough")
    print(f"      status={record.status}, "
          f"checkpoints at steps {[s for s, _ in record.checkpoints()]}")

    # 3. resume from the newest checkpoint
    print(f"[3/3] resuming to step {args.steps}")
    resumed = resume_run(store, "walkthrough")
    print(f"      status={store.open('walkthrough').status}")

    # 4. the stitched trajectory must match the baseline exactly
    identical = np.array_equal(resumed.history.losses,
                               baseline.history.losses)
    print(f"\nrecorded steps: {resumed.history.steps}")
    print(f"loss trajectory bit-identical to the uninterrupted run: "
          f"{identical}")
    if not identical:
        raise SystemExit("resume parity violated!")
    print(f"\ninspect the record with:\n"
          f"  repro runs --store {store.root} show walkthrough")


if __name__ == "__main__":
    main()
