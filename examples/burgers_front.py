"""Viscous Burgers with a sharp moving front: uniform vs SGM sampling.

The travelling-wave solution concentrates all residual mass in a thin
front, which is exactly the regime cluster-level importance sampling is
built for.  The ``burgers`` registry entry assembles the space-time
problem (interior residuals + exact-solution Dirichlet data on the t=0
and x=±1 faces); this example trains it once per sampler at the full
repro scale and compares errors against the exact solution.
"""

import repro


def main():
    config = repro.experiments.burgers_config("repro")
    print(f"Burgers front (nu={config.nu:.4f}), {config.steps} steps "
          f"per method")
    for kind in ("uniform", "sgm"):
        history = (repro.problem("burgers", scale="repro")
                   .sampler(kind)
                   .train(label=kind)
                   .history)
        print(f"  {kind:>8}: min rel-L2 err(u) = "
              f"{history.min_error('u'):.4f}   "
              f"wall {history.wall_times[-1]:.0f}s")


if __name__ == "__main__":
    main()
