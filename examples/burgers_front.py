"""Viscous Burgers with a sharp moving front: uniform vs SGM sampling.

The travelling-wave solution concentrates all residual mass in a thin
front, which is exactly the regime cluster-level importance sampling is
built for.  This example trains the same network twice — uniform sampling
vs the SGM sampler — for the same number of iterations and compares errors
against the exact solution.
"""

import numpy as np

from repro.geometry import PointCloud, Rectangle
from repro.nn import Adam, FullyConnected
from repro.pde import Burgers1D, burgers_travelling_wave
from repro.sampling import SGMSampler
from repro.training import (
    BoundaryConstraint, InteriorConstraint, PointwiseValidator, Trainer,
)

NU = 0.01 / np.pi          # sharp front
AMPLITUDE, SPEED = 0.6, 0.4
STEPS = 900


def exact(x, t):
    return burgers_travelling_wave(x, t, NU, amplitude=AMPLITUDE,
                                   speed=SPEED)


def build_problem(rng):
    domain = Rectangle((-1.0, 0.0), (1.0, 1.0))   # (x, t)
    interior = domain.sample_interior(6000, rng)
    boundary = domain.sample_boundary(1200, rng)
    # space-time "boundary": initial slice t=0 plus x = +-1 walls, with the
    # exact solution as Dirichlet data (t=1 face is left unconstrained)
    keep = (boundary.coords[:, 1] < 1.0 - 1e-9)
    boundary = boundary.subset(keep)

    constraints = [
        InteriorConstraint("interior", interior, Burgers1D(nu=NU),
                           batch_size=128, sdf_weighting=False,
                           spatial_names=("x", "t")),
        BoundaryConstraint("data", boundary, ("u",),
                           {"u": lambda c, p: exact(c[:, 0], c[:, 1])},
                           batch_size=64, weight=20.0,
                           spatial_names=("x", "t")),
    ]
    return interior, constraints


def run(method, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    interior, constraints = build_problem(rng)
    net = FullyConnected(2, 1, width=32, depth=3, activation="tanh",
                         rng=np.random.default_rng(7))
    pts = np.random.default_rng(5).uniform((-1, 0), (1, 1), (800, 2))
    validator = PointwiseValidator("burgers", pts,
                                   {"u": exact(pts[:, 0], pts[:, 1])},
                                   ("u",), spatial_names=("x", "t"))
    samplers = {}
    if method == "sgm":
        samplers["interior"] = SGMSampler(interior.features(), k=8, level=5,
                                          tau_e=150, tau_G=600,
                                          probe_ratio=0.15, seed=0)
    trainer = Trainer(net, constraints, Adam(net.parameters(), lr=4e-3),
                      samplers=samplers, validators=[validator], seed=0)
    history = trainer.train(STEPS, validate_every=100, record_every=100,
                            label=method)
    return history


def main():
    print(f"Burgers front (nu={NU:.4f}), {STEPS} steps per method")
    for method in ("uniform", "sgm"):
        history = run(method)
        print(f"  {method:>8}: min rel-L2 err(u) = "
              f"{history.min_error('u'):.4f}   wall {history.wall_times[-1]:.0f}s")


if __name__ == "__main__":
    main()
