"""Registry-driven method sweep on any problem, serial or sharded.

Demonstrates the two suite entry points:

* the fluent Session form —
  ``repro.problem("burgers").suite(["uniform", "sgm"])``;
* the functional form — ``run_suite(problem, methods, backend=...)`` —
  which also accepts explicit :class:`~repro.api.MethodSpec` columns.

Usage::

    python examples/suite_sweep.py [--problem burgers] [--samplers uniform,sgm]
                                   [--scale smoke|repro] [--parallel]
"""

import argparse

import repro
from repro.experiments import suite_table


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--problem", default="burgers",
                        help="a registered problem (see `repro problems`)")
    parser.add_argument("--samplers", default="uniform,mis,sgm",
                        help="comma-separated registered samplers")
    parser.add_argument("--scale", default="smoke",
                        choices=("smoke", "repro"))
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--parallel", action="store_true",
                        help="shard methods over a process pool")
    args = parser.parse_args()

    samplers = [s.strip() for s in args.samplers.split(",") if s.strip()]
    suite = (repro.problem(args.problem, scale=args.scale)
             .suite(samplers,
                    backend="process" if args.parallel else "serial",
                    steps=args.steps, verbose=True))

    print()
    print(suite_table(suite))
    print(f"\nsweep total: {suite.total_seconds:.1f}s "
          f"({suite.backend} backend, {len(suite)} methods)")


if __name__ == "__main__":
    main()
