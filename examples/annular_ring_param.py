"""Parameterized annular ring trained with SGM-S (stability-augmented SGM).

Single-method version of the paper's §4.2 experiment: the network learns the
laminar flow for *every* inner radius r_i in [0.75, 1.1] simultaneously
(r_i is a network input), and the SGM-S sampler fuses the SPADE/ISR
stability score into cluster importance so parameter-sensitive regions stay
well sampled.

Usage::

    python examples/annular_ring_param.py [--steps 1500] [--no-isr]
"""

import argparse

import repro
from repro.experiments import annular_ring_config, ar_methods


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=1500)
    parser.add_argument("--no-isr", action="store_true",
                        help="plain SGM without the S3 stability term")
    args = parser.parse_args()

    config = annular_ring_config("repro")
    methods = ar_methods(config, include_plain_sgm=True)
    wanted = "SGM128" if args.no_isr else "SGM-S128"
    method = next(m for m in methods if m.label.startswith(wanted[:5])
                  and (("-S" in m.label) != args.no_isr))
    print(f"training {method.label} on the parameterized annular ring "
          f"(r_i in {config.r_inner_range}) for {args.steps} steps...")

    result = (repro.problem("annular_ring", config=config)
              .sampler(method.kind)
              .n_interior(method.n_interior)
              .batch_size(method.batch_size)
              .train(steps=args.steps, label=method.label))
    history = result.history
    print(f"\nwall time: {history.wall_times[-1]:.0f}s "
          f"(validation averaged over r_i = "
          f"{', '.join(str(r) for r in config.validation_radii)})")
    for var in ("u", "v", "p"):
        print(f"  min rel-L2 error in {var}: {history.min_error(var):.4f}")
    print(f"  p at Min(v): {history.value_at_min('v', 'p'):.4f}")
    print(f"  probe overhead: {result.sampler.probe_points} forward passes")


if __name__ == "__main__":
    main()
