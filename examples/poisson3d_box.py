"""3-D Poisson in a box: the (x, y, z) path the paper's S1 mentions.

The ``poisson3d`` registry entry trains a PINN for ``laplace(u) = f`` in
the unit cube with the SGM sampler clustering a 3-D point cloud, and
validates against the manufactured solution
``u = sin(pi x) sin(pi y) sin(pi z)``.  The registry-backed Session wires
the 3-input network and 3-D gradient probes automatically.
"""

import repro


def main():
    result = (repro.problem("poisson3d", scale="repro")
              .sampler("sgm")
              .train())
    history = result.history
    print(f"3-D clusters: {len(result.sampler.clusters)}")
    print(f"final loss: {history.losses[-1]:.3e}")
    print(f"min relative L2 error: {history.min_error('u'):.4f}")


if __name__ == "__main__":
    main()
