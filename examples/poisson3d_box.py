"""3-D Poisson in a box: the (x, y, z) path the paper's S1 mentions.

Trains a PINN for ``laplace(u) = f`` in the unit cube with the SGM sampler
clustering a 3-D point cloud, and validates against the manufactured
solution ``u = sin(pi x) sin(pi y) sin(pi z)``.
"""

import numpy as np

from repro.geometry import Box
from repro.nn import Adam, FullyConnected
from repro.pde import Poisson3D
from repro.sampling import SGMSampler
from repro.training import (
    BoundaryConstraint, InteriorConstraint, PointwiseValidator, Trainer,
)


def main():
    rng = np.random.default_rng(0)
    cube = Box((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    interior = cube.sample_interior(5000, rng)
    boundary = cube.sample_boundary(1500, rng)

    def source(x, y, z):
        return (-3.0 * np.pi ** 2 * np.sin(np.pi * x) * np.sin(np.pi * y)
                * np.sin(np.pi * z))

    constraints = [
        InteriorConstraint("interior", interior, Poisson3D(source=source),
                           batch_size=128, sdf_weighting=False,
                           spatial_names=("x", "y", "z")),
        BoundaryConstraint("walls", boundary, ("u",), {"u": 0.0},
                           batch_size=64, weight=10.0,
                           spatial_names=("x", "y", "z")),
    ]
    sampler = SGMSampler(interior.features(), k=10, level=5, tau_e=200,
                         tau_G=1500, probe_ratio=0.15, seed=0)

    net = FullyConnected(3, 1, width=32, depth=3, activation="tanh",
                         rng=rng)
    pts = rng.uniform(0, 1, (600, 3))
    exact = (np.sin(np.pi * pts[:, 0]) * np.sin(np.pi * pts[:, 1])
             * np.sin(np.pi * pts[:, 2]))
    validator = PointwiseValidator("poisson3d", pts, {"u": exact}, ("u",),
                                   spatial_names=("x", "y", "z"))
    trainer = Trainer(net, constraints, Adam(net.parameters(), lr=3e-3),
                      samplers={"interior": sampler},
                      validators=[validator], seed=0)
    history = trainer.train(700, validate_every=100, record_every=100)

    print(f"3-D clusters: {len(sampler.clusters)}")
    print(f"final loss: {history.losses[-1]:.3e}")
    print(f"min relative L2 error: {history.min_error('u'):.4f}")


if __name__ == "__main__":
    main()
