"""Lid-driven cavity with zero-equation turbulence, trained with SGM-PINN.

A single-method version of the paper's §4.1 experiment: builds the cavity
problem (Navier-Stokes + mixing-length turbulence, SDF-weighted residuals),
trains with the SGM sampler, and reports errors against the reference
finite-difference solution.

Usage::

    python examples/ldc_zeroeq.py [--steps 1500] [--method sgm|uniform|mis]
"""

import argparse

import repro
from repro.experiments import ldc_config, ldc_methods


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=1500)
    parser.add_argument("--method", default="sgm",
                        choices=("sgm", "uniform", "mis"))
    args = parser.parse_args()

    config = ldc_config("repro")
    methods = {"uniform": 0, "mis": 2, "sgm": 3}
    method = ldc_methods(config)[methods[args.method]]
    print(f"training {method.label} on LDC (Re={config.reynolds:g}, "
          f"zero-eq turbulence) for {args.steps} steps...")

    result = (repro.problem("ldc", config=config)
              .sampler(method.kind)
              .n_interior(method.n_interior)
              .batch_size(method.batch_size)
              .train(steps=args.steps, label=method.label))
    history = result.history
    print(f"\nwall time: {history.wall_times[-1]:.0f}s")
    for var in ("u", "v", "nu"):
        print(f"  min rel-L2 error in {var:>2}: "
              f"{history.min_error(var):.4f}")
    if hasattr(result.sampler, "clusters"):
        print(f"  LRD clusters: {len(result.sampler.clusters)}  "
              f"rebuilds: {result.sampler.rebuild_count}")
    print(f"  probe overhead: {result.sampler.probe_points} forward passes")


if __name__ == "__main__":
    main()
