"""Quickstart: train a PINN on the 2-D Poisson equation with SGM sampling.

This is the smallest end-to-end tour of the library:

1. sample a geometry into a collocation point cloud;
2. define the PDE residual and boundary conditions as constraints;
3. attach the SGM-PINN sampler (kNN graph -> LRD clusters -> loss-probed
   cluster importance) to the interior constraint;
4. train and compare against the analytic solution.

Runs in well under a minute on a laptop CPU.
"""

import numpy as np

from repro.geometry import Rectangle
from repro.nn import Adam, FullyConnected
from repro.pde import Poisson2D
from repro.sampling import SGMSampler
from repro.training import (
    BoundaryConstraint, InteriorConstraint, PointwiseValidator, Trainer,
)


def main():
    rng = np.random.default_rng(0)

    # 1. geometry and point clouds
    square = Rectangle((0.0, 0.0), (1.0, 1.0))
    interior = square.sample_interior(4000, rng)
    boundary = square.sample_boundary(800, rng)

    # 2. PDE: laplace(u) = f with u = sin(pi x) sin(pi y) as exact solution
    def source(x, y):
        return -2.0 * np.pi ** 2 * np.sin(np.pi * x) * np.sin(np.pi * y)

    constraints = [
        InteriorConstraint("interior", interior, Poisson2D(source=source),
                           batch_size=128, sdf_weighting=False),
        BoundaryConstraint("walls", boundary, ("u",), {"u": 0.0},
                           batch_size=64, weight=10.0),
    ]

    # 3. the SGM-PINN sampler on the interior cloud
    sampler = SGMSampler(interior.features(), k=8, level=5,
                         tau_e=200, tau_G=1000, probe_ratio=0.15, seed=0)

    # 4. network, validator, training
    net = FullyConnected(2, 1, width=32, depth=3, activation="tanh",
                         rng=rng)
    points = rng.uniform(0.0, 1.0, (500, 2))
    exact = np.sin(np.pi * points[:, 0]) * np.sin(np.pi * points[:, 1])
    validator = PointwiseValidator("poisson", points, {"u": exact}, ("u",))

    trainer = Trainer(net, constraints, Adam(net.parameters(), lr=3e-3),
                      samplers={"interior": sampler},
                      validators=[validator], seed=0)
    history = trainer.train(800, validate_every=100, record_every=100)

    print(f"\nclusters: {len(sampler.clusters)}  "
          f"probe overhead: {sampler.probe_points} points")
    print(f"final loss: {history.losses[-1]:.2e}")
    print(f"relative L2 error vs exact solution: "
          f"{history.min_error('u'):.4f}")


if __name__ == "__main__":
    main()
