"""Quickstart: the registry-backed Session API in a dozen lines.

Every workload in the library is a registered *problem* and every batching
rule a registered *sampler*; ``repro.problem(...)`` opens a fluent session
that wires geometry, constraints, network, optimizer, and validators for
you:

1. pick a problem from the registry (``repro.list_problems()``);
2. pick a sampler (``uniform`` baseline vs the paper's ``sgm``);
3. ``train(...)`` and read errors off the returned history.

Runs in well under a minute on a laptop CPU.
"""

import repro


def main():
    print("registered problems:", ", ".join(repro.list_problems()))
    print("registered samplers:", ", ".join(repro.list_samplers()))

    # the same Burgers front trained twice: uniform vs SGM-PINN sampling
    for kind in ("uniform", "sgm"):
        result = (repro.problem("burgers", scale="smoke")
                  .sampler(kind)
                  .n_interior(4000)
                  .train(steps=800, label=kind))
        history = result.history
        print(f"\n{kind:>8}: final loss {history.losses[-1]:.2e}   "
              f"min rel-L2 err(u) {history.min_error('u'):.4f}")
        if kind != "uniform":
            print(f"          probe overhead: "
                  f"{result.sampler.probe_points} points")


if __name__ == "__main__":
    main()
