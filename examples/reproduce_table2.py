"""Reproduce Table 2, Figure 3, and Figure 4 (parameterized annular ring).

Trains the methods of the paper's Table 2 — uniform small/large batch, MIS,
SGM-PINN with the ISR stability term (SGM-S) — plus the plain SGM variant
shown only in Figure 3, on the parameterized annular-ring problem
(inner radius r_i ∈ [0.75, 1.1], validated at r_i ∈ {1.0, 0.875, 0.75}).

Usage::

    python examples/reproduce_table2.py [--scale smoke|repro] [--out results]
                                        [--parallel]
"""

import argparse
from pathlib import Path

import numpy as np

from repro.experiments import (
    annular_ring_config, curves_to_csv, error_curves, format_table,
    pressure_error_fields, render_curves, run_ar_suite, table2_rows,
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="repro",
                        choices=("smoke", "repro"))
    parser.add_argument("--out", default="results")
    parser.add_argument("--skip-plain-sgm", action="store_true",
                        help="skip the Figure-3-only SGM (no ISR) run")
    parser.add_argument("--parallel", action="store_true",
                        help="shard the method sweep over a process pool")
    args = parser.parse_args()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    config = annular_ring_config(args.scale)

    results = run_ar_suite(config,
                           include_plain_sgm=not args.skip_plain_sgm,
                           backend="process" if args.parallel
                           else "serial")
    histories = {label: r.history for label, r in results.items()}
    for label, history in histories.items():
        history.to_csv(out / f"ar_{label}.csv")

    # Table 2 uses the SGM-S column (plain SGM is a Figure-3 curve only)
    table_histories = {label: h for label, h in histories.items()
                       if not (label.startswith("SGM") and
                               "-S" not in label)}
    columns, rows = table2_rows(table_histories)
    table = format_table(
        f"Table 2 (scale={args.scale}): parameterized annular ring, "
        f"errors averaged over r_i", columns, rows)
    print()
    print(table)
    (out / "table2.txt").write_text(table + "\n")

    curves = error_curves(histories, var="v")
    curves_to_csv(curves, out / "figure3_v_error_vs_time.csv")
    chart = render_curves(curves, "Figure 3: AR v-error vs wall time (s)")
    print()
    print(chart)
    (out / "figure3.txt").write_text(chart + "\n")

    fig4 = pressure_error_fields(results, config, r_inner=1.0)
    np.savez_compressed(out / "figure4_pressure_error_fields.npz",
                        xs=fig4["xs"], ys=fig4["ys"], mask=fig4["mask"],
                        **{f"err_{k}": v for k, v in fig4["fields"].items()})
    lines = ["Figure 4: mean |p_pred - p_ref| at r_i=1.0 (lower is better)"]
    for label, value in sorted(fig4["mean_abs_error"].items(),
                               key=lambda kv: kv[1]):
        lines.append(f"  {label:>12}: {value:.4f}")
    summary = "\n".join(lines)
    print()
    print(summary)
    (out / "figure4.txt").write_text(summary + "\n")


if __name__ == "__main__":
    main()
