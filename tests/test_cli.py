"""CLI surface: parser wiring and the cheap commands."""

import pytest

from repro.cli import build_parser, main


def test_info_runs(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "repro.sampling" in out
    assert "SGM" in out


def test_parser_commands():
    parser = build_parser()
    args = parser.parse_args(["table1", "--scale", "smoke"])
    assert args.command == "table1" and args.scale == "smoke"
    args = parser.parse_args(["ldc", "--method", "mis"])
    assert args.method == "mis"
    args = parser.parse_args(["solve-ar", "--radius", "0.8"])
    assert args.radius == 0.8


def test_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["table1", "--scale", "huge"])


def test_train_smoke_ldc(capsys):
    assert main(["ldc", "--method", "uniform", "--scale", "smoke",
                 "--steps", "8"]) == 0
    out = capsys.readouterr().out
    assert "min err(u)" in out


def test_solve_ldc_tiny(capsys):
    assert main(["solve-ldc", "--reynolds", "50", "--resolution", "17"]) == 0
    assert "residual" in capsys.readouterr().out
