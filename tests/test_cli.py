"""CLI surface: parser wiring and the cheap commands."""

import pytest

from repro.cli import build_parser, main


def test_info_runs(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "repro.sampling" in out
    assert "SGM" in out


def test_problems_lists_registries(capsys):
    assert main(["problems"]) == 0
    out = capsys.readouterr().out
    for name in ("ldc", "annular_ring", "burgers", "poisson3d",
                 "uniform", "mis", "sgm", "sgm_s"):
        assert name in out


def test_run_parser_accepts_problem_and_sampler():
    parser = build_parser()
    args = parser.parse_args(["run", "poisson3d", "--sampler", "sgm",
                              "--steps", "5"])
    assert args.problem == "poisson3d"
    assert args.sampler == "sgm" and args.steps == 5


def test_run_rejects_unknown_names_via_registry(capsys):
    assert main(["run", "not_a_problem"]) == 2
    out = capsys.readouterr().out
    assert "unknown problem" in out and "ldc" in out
    assert main(["run", "ldc", "--sampler", "not_a_sampler"]) == 2
    out = capsys.readouterr().out
    assert "unknown sampler" in out and "sgm" in out


def test_run_burgers_smoke(capsys):
    assert main(["run", "burgers", "--sampler", "sgm", "--steps", "6",
                 "--n-interior", "400"]) == 0
    out = capsys.readouterr().out
    assert "burgers:sgm" in out
    assert "min err(u)" in out


def test_suite_parser_accepts_samplers_and_parallel():
    parser = build_parser()
    args = parser.parse_args(["suite", "ldc", "--samplers", "uniform,sgm",
                              "--parallel", "--max-workers", "2"])
    assert args.problem == "ldc"
    assert args.samplers == "uniform,sgm"
    assert args.parallel and args.max_workers == 2
    args = parser.parse_args(["suite", "burgers"])
    assert args.samplers is None and not args.parallel


def test_suite_smoke_serial(capsys):
    assert main(["suite", "burgers", "--samplers", "uniform,sgm",
                 "--steps", "4"]) == 0
    out = capsys.readouterr().out
    assert "training U32" in out and "training SGM32" in out
    assert "Suite (burgers, executor=serial)" in out
    assert "sweep total" in out and "2 methods" in out


def test_suite_smoke_parallel(capsys):
    assert main(["suite", "burgers", "--samplers", "uniform,mis",
                 "--steps", "4", "--parallel"]) == 0
    out = capsys.readouterr().out
    assert "Suite (burgers, executor=process)" in out


def test_suite_rejects_unknown_names_via_registry(capsys):
    assert main(["suite", "not_a_problem"]) == 2
    out = capsys.readouterr().out
    assert "unknown problem" in out and "ldc" in out
    assert main(["suite", "burgers", "--samplers", "uniform,bogus"]) == 2
    out = capsys.readouterr().out
    assert "unknown sampler" in out and "sgm" in out


def test_suite_rejects_duplicate_and_empty_samplers(capsys):
    assert main(["suite", "burgers", "--samplers", "uniform,uniform"]) == 2
    out = capsys.readouterr().out
    assert "duplicate" in out
    assert main(["suite", "burgers", "--samplers", ","]) == 2
    out = capsys.readouterr().out
    assert "at least one" in out


def test_parser_commands():
    parser = build_parser()
    args = parser.parse_args(["table1", "--scale", "smoke"])
    assert args.command == "table1" and args.scale == "smoke"
    args = parser.parse_args(["ldc", "--method", "mis"])
    assert args.method == "mis"
    args = parser.parse_args(["solve-ar", "--radius", "0.8"])
    assert args.radius == 0.8


def test_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["table1", "--scale", "huge"])


def test_train_smoke_ldc(capsys):
    assert main(["ldc", "--method", "uniform", "--scale", "smoke",
                 "--steps", "8"]) == 0
    out = capsys.readouterr().out
    assert "min err(u)" in out


def test_solve_ldc_tiny(capsys):
    assert main(["solve-ldc", "--reynolds", "50", "--resolution", "17"]) == 0
    assert "residual" in capsys.readouterr().out
