"""CLI surface: parser wiring and the cheap commands."""

import pytest

from repro.cli import build_parser, main


def test_info_runs(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "repro.sampling" in out
    assert "SGM" in out


def test_problems_lists_registries(capsys):
    assert main(["problems"]) == 0
    out = capsys.readouterr().out
    for name in ("ldc", "annular_ring", "burgers", "poisson3d",
                 "uniform", "mis", "sgm", "sgm_s"):
        assert name in out


def test_run_parser_accepts_problem_and_sampler():
    parser = build_parser()
    args = parser.parse_args(["run", "poisson3d", "--sampler", "sgm",
                              "--steps", "5"])
    assert args.problem == "poisson3d"
    assert args.sampler == "sgm" and args.steps == 5


def test_run_rejects_unknown_names_via_registry(capsys):
    assert main(["run", "not_a_problem"]) == 2
    out = capsys.readouterr().out
    assert "unknown problem" in out and "ldc" in out
    assert main(["run", "ldc", "--sampler", "not_a_sampler"]) == 2
    out = capsys.readouterr().out
    assert "unknown sampler" in out and "sgm" in out


def test_run_burgers_smoke(capsys):
    assert main(["run", "burgers", "--sampler", "sgm", "--steps", "6",
                 "--n-interior", "400"]) == 0
    out = capsys.readouterr().out
    assert "burgers:sgm" in out
    assert "min err(u)" in out


def test_suite_parser_accepts_samplers_and_parallel():
    parser = build_parser()
    args = parser.parse_args(["suite", "ldc", "--samplers", "uniform,sgm",
                              "--parallel", "--max-workers", "2"])
    assert args.problem == "ldc"
    assert args.samplers == "uniform,sgm"
    assert args.parallel and args.max_workers == 2
    args = parser.parse_args(["suite", "burgers"])
    assert args.samplers is None and not args.parallel


def test_suite_smoke_serial(capsys):
    assert main(["suite", "burgers", "--samplers", "uniform,sgm",
                 "--steps", "4"]) == 0
    out = capsys.readouterr().out
    assert "training U32" in out and "training SGM32" in out
    assert "Suite (burgers, backend=serial)" in out
    assert "sweep total" in out and "2 methods" in out


def test_suite_smoke_parallel(capsys):
    assert main(["suite", "burgers", "--samplers", "uniform,mis",
                 "--steps", "4", "--parallel"]) == 0
    out = capsys.readouterr().out
    assert "Suite (burgers, backend=process)" in out


def test_suite_parser_accepts_backend_flags():
    parser = build_parser()
    args = parser.parse_args(["suite", "burgers", "--backend", "queue",
                              "--store", "runs", "--workers-external"])
    assert args.backend == "queue" and args.workers_external
    args = parser.parse_args(["suite", "burgers"])
    assert args.backend is None and not args.workers_external


def test_suite_queue_backend_smoke(tmp_path, capsys):
    store = str(tmp_path / "qruns")
    assert main(["suite", "burgers", "--samplers", "uniform",
                 "--steps", "4", "--backend", "queue",
                 "--store", store]) == 0
    out = capsys.readouterr().out
    assert "Suite (burgers, backend=queue)" in out
    assert "queue backend" in out


def test_suite_queue_backend_requires_store(capsys):
    assert main(["suite", "burgers", "--samplers", "uniform",
                 "--steps", "1", "--backend", "queue"]) == 2
    assert "needs a run store" in capsys.readouterr().out


def test_worker_parser_defaults():
    parser = build_parser()
    args = parser.parse_args(["worker", "runs", "--exit-when-idle",
                              "--lease-seconds", "5", "--max-tasks", "3"])
    assert args.command == "worker" and args.store == "runs"
    assert args.exit_when_idle and args.lease_seconds == 5.0
    assert args.max_tasks == 3 and args.poll == 0.5


def _queue_probe_task(task):
    return task * 10


def test_worker_drains_an_existing_queue(tmp_path, capsys):
    from repro.exec import TaskQueue, function_ref
    store = tmp_path / "runs"
    queue = TaskQueue.for_store(store)
    job_ids = queue.enqueue(function_ref(_queue_probe_task), [1, 2],
                            ["a", "b"])
    assert main(["worker", str(store), "--exit-when-idle"]) == 0
    out = capsys.readouterr().out
    assert "executed 2 task(s)" in out
    assert [queue.load_result(job_id) for job_id in job_ids] == [10, 20]


def test_suite_rejects_unknown_names_via_registry(capsys):
    assert main(["suite", "not_a_problem"]) == 2
    out = capsys.readouterr().out
    assert "unknown problem" in out and "ldc" in out
    assert main(["suite", "burgers", "--samplers", "uniform,bogus"]) == 2
    out = capsys.readouterr().out
    assert "unknown sampler" in out and "sgm" in out


def test_suite_rejects_duplicate_and_empty_samplers(capsys):
    assert main(["suite", "burgers", "--samplers", "uniform,uniform"]) == 2
    out = capsys.readouterr().out
    assert "duplicate" in out
    assert main(["suite", "burgers", "--samplers", ","]) == 2
    out = capsys.readouterr().out
    assert "at least one" in out


def test_parser_commands():
    parser = build_parser()
    args = parser.parse_args(["table1", "--scale", "smoke"])
    assert args.command == "table1" and args.scale == "smoke"
    args = parser.parse_args(["ldc", "--method", "mis"])
    assert args.method == "mis"
    args = parser.parse_args(["solve-ar", "--radius", "0.8"])
    assert args.radius == 0.8


def test_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["table1", "--scale", "huge"])


EXPERIMENT_TOML = """
[run]
problem = "burgers"
sampler = "sgm"
scale = "smoke"
steps = 8
n_interior = 300

[config]
record_every = 2

[store]
checkpoint_every = 4
"""


class TestRunConfigAndStore:
    def _write_config(self, tmp_path, store_root):
        path = tmp_path / "exp.toml"
        path.write_text(EXPERIMENT_TOML +
                        f'root = "{store_root.as_posix()}"\n')
        return path

    def test_run_with_config_records_into_store(self, tmp_path, capsys):
        config = self._write_config(tmp_path, tmp_path / "runs")
        assert main(["run", "--config", str(config)]) == 0
        out = capsys.readouterr().out
        assert "burgers:sgm" in out and "recorded as" in out

    def test_run_rejects_problem_plus_config(self, tmp_path, capsys):
        config = self._write_config(tmp_path, tmp_path / "runs")
        assert main(["run", "ldc", "--config", str(config)]) == 2
        assert "not both" in capsys.readouterr().out

    def test_run_requires_problem_config_or_resume(self, capsys):
        assert main(["run"]) == 2
        assert "--config" in capsys.readouterr().out

    def test_run_reports_bad_config_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text("[run]\nsampler = \"sgm\"\n")   # no problem key
        assert main(["run", "--config", str(bad)]) == 2
        assert "problem" in capsys.readouterr().out

    def test_runs_list_show_compare_resume_gc(self, tmp_path, capsys):
        config = self._write_config(tmp_path, tmp_path / "runs")
        store = ["--store", str(tmp_path / "runs")]
        assert main(["run", "--config", str(config)]) == 0
        assert main(["run", "--config", str(config),
                     "--sampler", "uniform"]) == 0
        capsys.readouterr()

        assert main(["runs", *store, "list"]) == 0
        out = capsys.readouterr().out
        assert "burgers-sgm-" in out and "burgers-uniform-" in out
        assert "completed" in out

        from repro.store import RunStore
        run_id = RunStore(str(tmp_path / "runs")).runs()[0].run_id
        assert main(["runs", *store, "show", run_id]) == 0
        out = capsys.readouterr().out
        assert "checkpoints" in out and "min err(u)" in out

        assert main(["runs", *store, "compare", "--problem", "burgers"]) == 0
        out = capsys.readouterr().out
        assert "Min(u)" in out and "speedup(u)" in out

        assert main(["runs", *store, "gc"]) == 0     # nothing to remove
        assert "removed 0" in capsys.readouterr().out
        assert main(["runs", *store, "gc", "--all"]) == 0
        assert "removed 2" in capsys.readouterr().out

    def test_runs_resume_after_interrupt(self, tmp_path, capsys):
        import numpy as np
        import repro
        from repro.api.session import run_problem
        from repro.store import RunStore

        store_root = tmp_path / "runs"
        session = (repro.problem("burgers", scale="smoke")
                   .config(record_every=2).n_interior(300).validators([]))

        class Boom(Exception):
            pass

        def bomb(step, **_):
            if step == 5:
                raise Boom()

        with pytest.raises(Boom):
            run_problem(session.build(), session._config, sampler="uniform",
                        steps=10, validators=[], store=RunStore(store_root),
                        run_id="r1", checkpoint_every=3, step_hooks=[bomb])
        assert main(["runs", "--store", str(store_root),
                     "resume", "r1"]) == 0
        out = capsys.readouterr().out
        assert "resumed r1" in out
        baseline = session.train(steps=10)
        stored = RunStore(store_root).open("r1").history()
        assert np.array_equal(stored.losses, baseline.history.losses)

    def test_runs_unknown_id_is_an_error(self, tmp_path, capsys):
        assert main(["runs", "--store", str(tmp_path / "none"),
                     "show", "ghost"]) == 2
        assert "unknown run" in capsys.readouterr().out

    def test_resume_rejects_wiring_flags(self, tmp_path, capsys):
        assert main(["run", "--resume", "r1",
                     "--store", str(tmp_path / "runs"),
                     "--sampler", "uniform"]) == 2
        out = capsys.readouterr().out
        assert "--sampler" in out and "cannot change" in out

    def test_gc_default_spares_running_and_checkpointed_runs(
            self, tmp_path, capsys):
        import numpy as np
        import repro
        from repro.api.session import run_problem
        from repro.store import RunStore

        store = RunStore(tmp_path / "runs")
        session = (repro.problem("burgers", scale="smoke")
                   .config(record_every=2).n_interior(300).validators([]))

        class Boom(Exception):
            pass

        def bomb_at(at):
            def bomb(step, **_):
                if step == at:
                    raise Boom()
            return bomb

        # failed before any checkpoint -> gc'd; failed after one -> kept
        for run_id, interrupt_at in (("no-ckpt", 2), ("has-ckpt", 7)):
            with pytest.raises(Boom):
                run_problem(session.build(), session._config,
                            sampler="uniform", steps=12, validators=[],
                            store=store, run_id=run_id, checkpoint_every=4,
                            step_hooks=[bomb_at(interrupt_at)])
        # a live-looking run: status running, no checkpoint yet
        store.begin_run(problem="burgers", config=session._config,
                        sampler="uniform", seed=0, steps=12, label="live",
                        n_interior=300, batch_size=32, run_id="live")

        assert main(["runs", "--store", str(store.root), "gc"]) == 0
        out = capsys.readouterr().out
        assert "removed 1" in out
        assert "no-ckpt" not in store and "has-ckpt" in store
        assert "live" in store

    def test_gc_keep_best_retains_the_best_run_per_cell(self, tmp_path,
                                                        capsys):
        import repro
        from repro.store import RunStore, run_score

        store = RunStore(tmp_path / "runs")
        for seed in (0, 1, 2):
            (repro.problem("burgers", scale="smoke")
             .n_interior(300).validators([]).sampler("uniform").seed(seed)
             .train(steps=6, store=store))
        records = store.runs(status="completed")
        assert len(records) == 3
        best = min(records, key=lambda r: (run_score(r), r.run_id)).run_id

        assert main(["runs", "--store", str(store.root), "gc",
                     "--keep-best", "1"]) == 0
        out = capsys.readouterr().out
        assert "removed 2 run(s)" in out and "kept the 1 best" in out
        assert [r.run_id for r in store.runs()] == [best]

    def test_gc_keep_best_rejects_status_policies(self, tmp_path, capsys):
        assert main(["runs", "--store", str(tmp_path / "runs"), "gc",
                     "--keep-best", "1", "--all"]) == 2
        assert "drop --all" in capsys.readouterr().out

    def test_suite_config_uses_suite_table(self, tmp_path, capsys):
        config = tmp_path / "exp.toml"
        config.write_text("""
[run]
problem = "burgers"
scale = "smoke"
steps = 4
n_interior = 300

[suite]
samplers = ["uniform", "mis"]
""")
        assert main(["suite", "--config", str(config)]) == 0
        out = capsys.readouterr().out
        assert "training U32" in out and "training MIS32" in out
        assert main(["suite", "ldc", "--config", str(config)]) == 2
        assert "not both" in capsys.readouterr().out
        assert main(["suite"]) == 2
        assert "--config" in capsys.readouterr().out

    def test_suite_store_records_methods(self, tmp_path, capsys):
        store_root = tmp_path / "suite-runs"
        assert main(["suite", "burgers", "--samplers", "uniform,sgm",
                     "--steps", "4", "--store", str(store_root)]) == 0
        out = capsys.readouterr().out
        assert "recorded 2 runs" in out
        from repro.store import RunStore
        assert len(RunStore(store_root).runs(problem="burgers")) == 2


class TestMatrixCommand:
    def test_matrix_parser_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["matrix"])
        assert args.problems == "all" and args.samplers is None
        assert not args.parallel and args.store is None
        args = parser.parse_args(["matrix", "--problems", "burgers,ldc",
                                  "--samplers", "uniform,sgm", "--parallel",
                                  "--store", "runs"])
        assert args.problems == "burgers,ldc" and args.parallel

    def test_matrix_smoke_serial(self, capsys):
        assert main(["matrix", "--problems", "burgers,poisson3d",
                     "--samplers", "uniform,sgm", "--steps", "4"]) == 0
        out = capsys.readouterr().out
        assert "Benchmark matrix (2 problems" in out
        assert "[burgers]" in out and "[poisson3d]" in out
        assert "4 cells" in out

    def test_matrix_parallel_store_then_plot_and_compare(self, tmp_path,
                                                         capsys):
        store = str(tmp_path / "matrix-runs")
        assert main(["matrix", "--problems", "burgers,poisson3d",
                     "--samplers", "uniform,sgm", "--steps", "4",
                     "--parallel", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "recorded 4 runs" in out

        # the figure renders from the stored records alone
        csv_path = str(tmp_path / "fig.csv")
        assert main(["runs", "--store", store, "plot",
                     "--csv", csv_path]) == 0
        out = capsys.readouterr().out
        assert "Convergence vs wall time (burgers)" in out
        assert "Convergence vs wall time (poisson3d)" in out
        assert f"series written to {csv_path}" in out
        # matrix-store exports attribute every series to its workload
        import csv as csv_mod
        with open(csv_path, newline="") as handle:
            rows = list(csv_mod.reader(handle))
        assert rows[0] == ["problem", "label", "wall_time", "loss"]
        assert {r[0] for r in rows[1:]} == {"burgers", "poisson3d"}

        # cross-problem compare groups per problem (no mixed thresholds)
        assert main(["runs", "--store", store, "compare"]) == 0
        out = capsys.readouterr().out
        assert "Stored runs (burgers)" in out
        assert "Stored runs (poisson3d)" in out

    def test_matrix_rejects_unknown_names(self, capsys):
        assert main(["matrix", "--problems", "bogus"]) == 2
        assert "unknown problem" in capsys.readouterr().out
        assert main(["matrix", "--problems", "burgers",
                     "--samplers", "bogus"]) == 2
        assert "unknown sampler" in capsys.readouterr().out


class TestRunsPlot:
    def test_plot_requires_runs(self, tmp_path, capsys):
        assert main(["runs", "--store", str(tmp_path / "empty"),
                     "plot"]) == 2
        assert "no runs to plot" in capsys.readouterr().out

    def test_plot_specific_run_and_variable(self, tmp_path, capsys):
        store = str(tmp_path / "runs")
        assert main(["run", "burgers", "--sampler", "uniform", "--steps",
                     "6", "--n-interior", "300", "--store", store]) == 0
        capsys.readouterr()
        from repro.store import RunStore
        run_id = RunStore(store).runs()[0].run_id
        assert main(["runs", "--store", store, "plot", run_id,
                     "--var", "u"]) == 0
        out = capsys.readouterr().out
        assert "err(u)" in out


def test_train_smoke_ldc(capsys):
    assert main(["ldc", "--method", "uniform", "--scale", "smoke",
                 "--steps", "8"]) == 0
    out = capsys.readouterr().out
    assert "min err(u)" in out


def test_solve_ldc_tiny(capsys):
    assert main(["solve-ldc", "--reynolds", "50", "--resolution", "17"]) == 0
    assert "residual" in capsys.readouterr().out


# ----------------------------------------------------------------------
# `repro lint` / `repro analyze`
# ----------------------------------------------------------------------
def test_lint_repo_is_clean(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_lint_json_on_violating_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\n"
                   "def f(xs=[]):\n"
                   "    return np.random.rand(3)\n")
    assert main(["lint", str(bad), "--format", "json"]) == 1
    import json
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 2
    assert {v["rule"] for v in payload["violations"]} == {"RPR001", "RPR006"}
    assert payload["errors"] == 1 and payload["warnings"] == 1

    assert main(["lint", str(bad), "--select", "RPR001"]) == 1
    out = capsys.readouterr().out
    assert "RPR006" not in out and "RPR001" in out


def test_lint_rules_catalog(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                    "RPR006", "RPR007", "RPR008", "RPR009", "RPR010"):
        assert rule_id in out


def test_analyze_tape_burgers_json(capsys):
    assert main(["analyze", "tape", "--problem", "burgers",
                 "--format", "json"]) == 0
    import json
    payload = json.loads(capsys.readouterr().out)
    (report,) = payload["reports"]
    assert report["problem"] == "burgers"
    assert report["shape_consistent"] is True
    assert report["op_counts"]["matmul"] == 22


def test_analyze_tape_unknown_problem(capsys):
    assert main(["analyze", "tape", "--problem", "nope"]) == 2
    assert "unknown problem" in capsys.readouterr().out
