"""End-to-end tracing: trainer phases, replay counters, pools, and the CLI.

The two guarantees under test: tracing is observation-only (trajectories
byte-identical with it on), and the recorded spans actually account for
the step (phase coverage, sampler overhead, pool round trips).
"""

import json

import numpy as np
import pytest

import repro
from repro import obs
from repro.cli import main
from repro.store import RunStore


def _session(sampler="sgm", **overrides):
    return (repro.problem("burgers", scale="smoke")
            .config(record_every=2, **overrides)
            .sampler(sampler)
            .n_interior(400)
            .validators([]))


@pytest.fixture(scope="module")
def traced_run():
    return _session().trace().train(steps=12)


class TestTracedTraining:
    def test_tracing_does_not_change_the_trajectory(self, traced_run):
        plain = _session().train(steps=12)
        np.testing.assert_array_equal(plain.history.losses,
                                      traced_run.history.losses)
        assert plain.obs is None

    def test_ambient_tracer_uninstalled_after_run(self, traced_run):
        assert obs.tracer() is None

    def test_phase_coverage(self, traced_run):
        spans = traced_run.obs["spans"]
        table = obs.phase_table(spans)
        assert table["steps"] == 12
        # the instrumented phases must account for >= 90% of step time
        assert table["coverage"] >= 0.9
        for phase in ("train.sample", "train.forward", "train.backward",
                      "train.optimizer"):
            assert table["phases"][phase]["count"] == 12

    def test_span_hierarchy(self, traced_run):
        spans = traced_run.obs["spans"]
        by_id = {s["id"]: s for s in spans}
        steps = [s for s in spans if s["name"] == "train.step"]
        runs = [s for s in spans if s["name"] == "train.run"]
        assert len(runs) == 1
        assert all(s["parent"] == runs[0]["id"] for s in steps)
        assert all(s["attrs"]["mode"] == "eager" for s in steps)
        forwards = [s for s in spans if s["name"] == "train.forward"]
        assert all(by_id[s["parent"]]["name"] == "train.step"
                   for s in forwards)
        rebuilds = [s for s in spans if s["name"] == "sampler.rebuild"]
        assert rebuilds, "SGM build_clusters must record a rebuild span"
        names = {s["name"] for s in spans}
        assert "sampler.knn_build" in names
        assert "sampler.cluster_update" in names

    def test_counters_and_snapshots(self, traced_run):
        counters = dict(traced_run.obs["counters"])
        assert counters["train.steps"] == 12
        assert counters["sampler.rebuild_count"] >= 1
        assert counters["sampler.rebuild_seconds"] > 0.0


class TestReplayTracing:
    def test_replay_spans_and_compile_counters(self):
        result = _session().compile().trace().train(steps=12)
        eager = _session().compile().train(steps=12)
        np.testing.assert_array_equal(eager.history.losses,
                                      result.history.losses)
        counters = dict(result.obs["counters"])
        names = {s["name"] for s in result.obs["spans"]}
        assert "replay.compile" in names
        if counters.get("replay.compile_count"):
            assert "train.replay" in names
            assert counters["replay.compile_seconds"] > 0.0
            gauges = dict(result.obs["gauges"])
            assert gauges["replay.instructions"] > 0
        else:
            assert counters.get("replay.fallback_refused", 0) >= 1


class TestPoolRoundTrip:
    def test_process_suite_reparents_worker_spans(self):
        suite = _session().trace().suite(["uniform", "sgm"],
                                         backend="process", steps=6,
                                         max_workers=2)
        spans = suite.obs["spans"]
        by_id = {s["id"]: s for s in spans}
        root = [s for s in spans if s["name"] == "suite.run"]
        cells = [s for s in spans if s["name"] == "suite.cell"]
        assert len(root) == 1 and len(cells) == 2
        labels = {c["attrs"]["label"] for c in cells}
        assert labels == {"burgers:smoke:U32", "burgers:smoke:SGM32"}
        assert all(c["parent"] == root[0]["id"] for c in cells)
        # every adopted train.run hangs off a cell, and ids are unique
        train_runs = [s for s in spans if s["name"] == "train.run"]
        assert len(train_runs) == 2
        cell_ids = {c["id"] for c in cells}
        assert all(s["parent"] in cell_ids for s in train_runs)
        ids = [s["id"] for s in spans]
        assert len(ids) == len(set(ids))
        # worker counters merged across both cells
        assert dict(suite.obs["counters"])["train.steps"] == 12

    def test_serial_suite_matches_shape(self):
        suite = _session().trace().suite(["uniform", "sgm"],
                                         backend="serial", steps=6)
        cells = [s for s in suite.obs["spans"] if s["name"] == "suite.cell"]
        assert {c["attrs"]["label"] for c in cells} == {"burgers:smoke:U32",
                                                        "burgers:smoke:SGM32"}


class TestStoreAndCli:
    @pytest.fixture(scope="class")
    def store_root(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("obs-store")
        result = _session().trace().train(steps=12, store=root,
                                          checkpoint_every=6)
        return root, result.run_id

    def test_record_persists_spans_and_metrics(self, store_root):
        root, run_id = store_root
        record = RunStore(root).open(run_id)
        spans = record.spans()
        assert spans and all("name" in s for s in spans)
        snapshots = record.metrics_snapshots()
        assert snapshots
        assert record.last_metrics()["counters"]["train.steps"] == 12

    def test_profile_text_report(self, store_root, capsys):
        root, run_id = store_root
        assert main(["runs", "--store", str(root), "profile", run_id]) == 0
        out = capsys.readouterr().out
        assert "train.step" in out
        assert "phase" in out
        assert "sampler overhead" in out

    def test_profile_accounts_for_step_time(self, store_root):
        """Acceptance: phase table sums within 10% of step wall time."""
        root, run_id = store_root
        record = RunStore(root).open(run_id)
        table = obs.phase_table(record.spans())
        assert table["steps"] == 12
        assert 0.9 <= table["coverage"] <= 1.1

    def test_profile_latest_resolves_newest(self, store_root, capsys):
        root, _ = store_root
        assert main(["runs", "--store", str(root), "profile", "latest"]) == 0

    def test_profile_chrome_export(self, store_root, tmp_path, capsys):
        root, run_id = store_root
        out_path = tmp_path / "trace.json"
        assert main(["runs", "--store", str(root), "profile", run_id,
                     "--format", "chrome", "--out", str(out_path)]) == 0
        trace = json.loads(out_path.read_text())
        assert {e["ph"] for e in trace["traceEvents"]} == {"X", "M"}

    def test_profile_untraced_run_errors_with_hint(self, tmp_path, capsys):
        _session().train(steps=4, store=tmp_path)
        record_id = RunStore(tmp_path).runs()[0].run_id
        assert main(["runs", "--store", str(tmp_path), "profile",
                     record_id]) == 2
        assert "--trace" in capsys.readouterr().out

    def test_runs_show_metrics_line(self, store_root, capsys):
        root, run_id = store_root
        assert main(["runs", "--store", str(root), "show", run_id]) == 0
        out = capsys.readouterr().out
        assert "steps/s" in out
        assert "sampler overhead" in out

    def test_resume_appends_to_the_same_streams(self, store_root):
        root, run_id = store_root
        before = len(RunStore(root).open(run_id).spans())
        assert main(["runs", "--store", str(root), "resume", run_id,
                     "--steps", "16", "--trace"]) == 0
        record = RunStore(root).open(run_id)
        assert len(record.spans()) > before
        # the resumed stretch ran steps 13..16 under a fresh tracer
        assert record.last_metrics()["counters"]["train.steps"] == 4


class TestCliTraceFlags:
    def test_run_trace_prints_profile_pointer(self, tmp_path, capsys):
        assert main(["run", "burgers", "--sampler", "sgm", "--steps", "6",
                     "--scale", "smoke", "--store", str(tmp_path),
                     "--trace"]) == 0
        assert "profile" in capsys.readouterr().out

    def test_suite_trace_prints_cell_utilization(self, capsys):
        assert main(["suite", "burgers", "--samplers", "uniform,sgm",
                     "--steps", "6", "--scale", "smoke", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "cell utilization" in out
        assert "SGM32" in out
