"""Unit tests for the span tracer, metrics registry, and JSONL readers."""

import json
import pickle
import threading

import pytest

from repro import obs
from repro.obs import METRICS, MetricsRegistry, Tracer, read_jsonl
from repro.obs.names import register_metric


class TestSpanNesting:
    def test_same_thread_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert tracer.current_id() == outer.span_id
        assert tracer.current_id() is None
        spans = tracer.spans()
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert all(s["end"] is not None for s in spans)

    def test_explicit_root_and_attrs(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("floating", parent=None) as span:
                span.set(mode="replay")
        floating = [s for s in tracer.spans() if s["name"] == "floating"][0]
        assert floating["parent"] is None
        assert floating["attrs"] == {"mode": "replay"}

    def test_cross_thread_nesting_with_explicit_parent(self):
        """A worker thread parents its spans under the submitting span."""
        tracer = Tracer()
        recorded = {}

        def worker(parent_id):
            with tracer.span("background", parent=parent_id) as span:
                recorded["parent"] = span.parent_id
                # the worker's own stack nests normally below that
                with tracer.span("background.child") as child:
                    recorded["child_parent"] = child.parent_id

        with tracer.span("train.step") as step:
            thread = threading.Thread(target=worker,
                                      args=(tracer.current_id(),))
            thread.start()
            thread.join()
            # the worker's stack never leaked into this thread
            assert tracer.current_id() == step.span_id
        assert recorded["parent"] == step.span_id
        background = [s for s in tracer.spans()
                      if s["name"] == "background"][0]
        assert recorded["child_parent"] == background["id"]

    def test_concurrent_threads_keep_separate_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)
        parents = {}

        def worker(label):
            with tracer.span(f"root.{label}") as root:
                barrier.wait()
                with tracer.span(f"leaf.{label}") as leaf:
                    parents[label] = (leaf.parent_id, root.span_id)

        threads = [threading.Thread(target=worker, args=(k,))
                   for k in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for label in ("a", "b"):
            leaf_parent, root_id = parents[label]
            assert leaf_parent == root_id

    def test_thread_name_recorded(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert tracer.spans()[0]["thread"] == threading.current_thread().name


class TestDisabledMode:
    def test_module_helpers_are_noops(self):
        assert not obs.enabled()
        assert obs.tracer() is None
        assert obs.span("anything") is obs.NOOP_SPAN
        assert obs.current() is None
        obs.inc("train.steps")          # no registry -> silently dropped
        obs.gauge("train.loss", 1.0)
        obs.snapshot_metrics(step=0)
        with obs.span("nested") as span:
            assert span is obs.NOOP_SPAN
            span.set(ignored=True)
        assert span.seconds() == 0.0

    def test_timed_span_measures_without_tracer(self):
        with obs.timed_span("sampler.rebuild") as timer:
            total = sum(range(1000))
        assert total == 499500
        assert timer.seconds >= 0.0
        timer.set(ignored=True)  # no span -> no-op, no error

    def test_stopwatch_measures(self):
        with obs.stopwatch() as watch:
            pass
        assert watch.seconds >= 0.0

    def test_tracing_installs_and_restores(self):
        assert obs.tracer() is None
        with obs.tracing() as outer_tracer:
            assert obs.tracer() is outer_tracer
            with obs.tracing() as inner_tracer:
                assert obs.tracer() is inner_tracer
            assert obs.tracer() is outer_tracer
        assert obs.tracer() is None


class TestMetrics:
    def test_catalog_is_closed(self):
        registry = MetricsRegistry()
        registry.inc("train.steps")
        registry.set_gauge("train.loss", 0.5)
        with pytest.raises(KeyError):
            registry.inc("train.stpes")        # typo
        with pytest.raises(KeyError):
            registry.set_gauge("no.such.gauge", 1.0)
        # right name, wrong kind
        with pytest.raises(KeyError):
            registry.inc("train.loss")
        with pytest.raises(KeyError):
            registry.set_gauge("train.steps", 3)

    def test_catalog_entries_are_described(self):
        for name, (kind, description) in METRICS.items():
            assert kind in ("counter", "gauge"), name
            assert description, name

    def test_register_metric_rejects_kind_change(self):
        with pytest.raises(ValueError):
            register_metric("train.steps", "gauge", "conflicting kind")

    def test_snapshot_sorted_and_merge_counters(self):
        registry = MetricsRegistry()
        registry.inc("train.steps", 3)
        registry.inc("sampler.rebuild_count")
        registry.merge_counters({"train.steps": 2,
                                 "sampler.refresh_count": 1})
        snapshot = registry.snapshot()
        assert snapshot["counters"]["train.steps"] == 5
        assert snapshot["counters"]["sampler.refresh_count"] == 1
        assert list(snapshot["counters"]) == sorted(snapshot["counters"])


class TestAdoption:
    def _worker_export(self):
        worker = Tracer()
        with worker.span("train.run") as run:
            with worker.span("train.step"):
                pass
        worker.inc("train.steps")
        return worker.export(), run.span_id

    def test_adopt_reparents_and_remaps(self):
        export, _ = self._worker_export()
        # simulate the process-pool result round trip
        export = pickle.loads(pickle.dumps(export))
        parent = Tracer()
        with parent.span("suite.run") as root:
            cell_id = parent.adopt(export, name="suite.cell",
                                   label="burgers:smoke:SGM32",
                                   parent=root.span_id)
        spans = {s["name"]: s for s in parent.spans()}
        cell = spans["suite.cell"]
        assert cell["id"] == cell_id
        assert cell["parent"] == root.span_id
        assert cell["attrs"] == {"label": "burgers:smoke:SGM32"}
        # former worker root now hangs off the cell; child follows its parent
        assert spans["train.run"]["parent"] == cell_id
        assert spans["train.step"]["parent"] == spans["train.run"]["id"]
        # worker ids were remapped into the parent's id space (no collisions)
        ids = [s["id"] for s in parent.spans()]
        assert len(ids) == len(set(ids))
        # worker counters folded into the parent's registry
        assert parent.metrics.snapshot()["counters"]["train.steps"] == 1

    def test_adopt_empty_export_is_noop(self):
        parent = Tracer()
        assert parent.adopt({"spans": [], "counters": {}}) is None
        assert parent.spans() == []


class TestPersistence:
    def test_spans_stream_and_flush(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(stream=path, flush_every=2)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass                       # second close triggers the flush
        assert len(read_jsonl(path)) == 2
        with tracer.span("c"):
            pass
        tracer.flush()
        assert [r["name"] for r in read_jsonl(path)] == ["a", "b", "c"]

    def test_metrics_stream(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        tracer = Tracer(metrics_stream=path)
        tracer.inc("train.steps")
        tracer.snapshot_metrics(step=0, wall_time=0.5)
        tracer.flush()
        records = read_jsonl(path)
        assert records[0]["counters"]["train.steps"] == 1
        assert records[0]["step"] == 0

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        line = json.dumps({"name": "train.step", "id": 1, "parent": None,
                           "thread": "main", "start": 0.0, "end": 0.1})
        path.write_text(line + "\n" + line[: len(line) // 2])
        records = read_jsonl(path)
        assert len(records) == 1
        assert records[0]["name"] == "train.step"

    def test_missing_file_gives_empty_list(self, tmp_path):
        assert read_jsonl(tmp_path / "absent.jsonl") == []
