"""Unit tests for the profile reports (pure functions over span dicts)."""

from repro.obs import (aggregate_tree, chrome_trace, format_metrics_summary,
                       metrics_summary, phase_table, render_phase_table,
                       render_tree, sampler_overhead)


def _span(name, sid, parent, start, end, thread="MainThread", attrs=None):
    record = {"name": name, "id": sid, "parent": parent, "thread": thread,
              "start": start, "end": end}
    if attrs:
        record["attrs"] = attrs
    return record


def _step_spans():
    """Two steps of a toy run: sample/forward/backward/optimizer inside."""
    spans = []
    sid = 1
    spans.append(_span("train.run", sid, None, 0.0, 2.0))
    for step, start in enumerate((0.0, 1.0)):
        step_id = sid + 1
        spans.append(_span("train.step", step_id, 1, start, start + 0.9))
        offsets = (("train.sample", 0.0, 0.2), ("train.forward", 0.2, 0.5),
                   ("train.backward", 0.5, 0.7), ("train.optimizer", 0.7, 0.85))
        for i, (name, lo, hi) in enumerate(offsets):
            spans.append(_span(name, step_id + 1 + i, step_id,
                               start + lo, start + hi))
        sid = step_id + len(offsets)
    return spans


class TestAggregateTree:
    def test_paths_counts_and_totals(self):
        rows = dict((path, (count, total)) for path, count, total
                    in aggregate_tree(_step_spans()))
        assert rows["train.run"] == (1, 2.0)
        count, total = rows["train.run/train.step"]
        assert count == 2 and abs(total - 1.8) < 1e-9
        count, total = rows["train.run/train.step/train.forward"]
        assert count == 2 and abs(total - 0.6) < 1e-9

    def test_orphan_parent_roots_at_own_name(self):
        rows = aggregate_tree([_span("lost", 5, 999, 0.0, 1.0)])
        assert rows == [("lost", 1, 1.0)]

    def test_open_spans_excluded(self):
        spans = [_span("open", 1, None, 0.0, None)]
        assert aggregate_tree(spans) == []

    def test_render_tree_indents_children(self):
        text = render_tree(_step_spans())
        assert "train.run" in text
        assert "  train.step" in text
        assert "    train.forward" in text
        assert render_tree([]) == "no spans recorded"


class TestPhaseTable:
    def test_coverage_and_shares(self):
        table = phase_table(_step_spans())
        assert table["steps"] == 2
        assert abs(table["step_seconds"] - 1.8) < 1e-9
        # 0.85s of phases per 0.9s step
        assert abs(table["coverage"] - 0.85 / 0.9) < 1e-9
        forward = table["phases"]["train.forward"]
        assert forward["count"] == 2
        assert abs(forward["per_step"] - 0.3) < 1e-9
        assert table["phases"]["train.validate"]["count"] == 0

    def test_no_steps_is_all_zero(self):
        table = phase_table([])
        assert table["steps"] == 0 and table["coverage"] == 0.0

    def test_render_skips_empty_phases(self):
        text = render_phase_table(phase_table(_step_spans()))
        assert "train.forward" in text
        assert "train.validate" not in text
        assert "train.step" in text


class TestSamplerOverhead:
    def test_ratio(self):
        spans = _step_spans() + [
            _span("sampler.rebuild", 50, None, 0.0, 0.3),
            _span("sampler.refresh", 51, None, 1.0, 1.15),
        ]
        snapshots = [{"gauges": {"sampler.probe_points": 640}}]
        stats = sampler_overhead(spans, snapshots)
        assert abs(stats["overhead_seconds"] - 0.45) < 1e-9
        assert abs(stats["ratio"] - 0.45 / 1.8) < 1e-9
        assert stats["probe_points"] == 640

    def test_no_training_time(self):
        stats = sampler_overhead([])
        assert stats["ratio"] == 0.0 and stats["probe_points"] is None


class TestChromeTrace:
    def test_events_and_thread_metadata(self):
        spans = [_span("train.step", 1, None, 0.5, 1.5),
                 _span("background", 2, 1, 0.6, 0.7, thread="worker-0",
                       attrs={"k": 1})]
        trace = chrome_trace(spans, epoch_unix=123.0)
        kinds = {e["ph"] for e in trace["traceEvents"]}
        assert kinds == {"X", "M"}
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert complete[0]["ts"] == 0.5e6
        assert complete[0]["dur"] == 1.0e6
        assert complete[1]["args"] == {"k": 1}
        metas = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == {"MainThread",
                                                      "worker-0"}
        # the two spans landed on distinct integer tids
        assert complete[0]["tid"] != complete[1]["tid"]
        assert trace["otherData"] == {"epoch_unix": 123.0}


class TestMetricsSummary:
    def test_summary_from_last_snapshot(self):
        snapshots = [
            {"counters": {"train.steps": 5}, "gauges": {}},
            {"counters": {"train.steps": 10, "sampler.rebuild_seconds": 0.5,
                          "sampler.refresh_seconds": 0.5,
                          "replay.fallback_stale": 1},
             "gauges": {"clock.raw_seconds": 4.0}},
        ]
        summary = metrics_summary(snapshots)
        assert summary["steps"] == 10
        assert summary["steps_per_second"] == 2.5
        assert summary["sampler_overhead_fraction"] == 0.25
        assert summary["replay_fallbacks"] == 1
        line = format_metrics_summary(summary)
        assert line == "2.5 steps/s; sampler overhead 25.0%; replay fallbacks 1"

    def test_empty_is_none(self):
        assert metrics_summary([]) is None
        assert format_metrics_summary(None) is None
