"""CSG combinations and parameterized geometry."""

import numpy as np
import pytest

from repro.geometry import (
    Channel2D, Circle, Difference, Intersection, ParamSpace,
    ParameterizedGeometry, Rectangle, Union,
)

RNG = np.random.default_rng(1)


class TestCSG:
    def setup_method(self):
        self.left = Rectangle((0.0, 0.0), (2.0, 2.0))
        self.disk = Circle((2.0, 1.0), 0.8)

    def test_union_contains_both(self):
        union = self.left + self.disk
        assert union.contains(np.array([[0.5, 0.5]]))[0]
        assert union.contains(np.array([[2.6, 1.0]]))[0]
        assert not union.contains(np.array([[3.5, 1.0]]))[0]

    def test_difference_removes_hole(self):
        diff = self.left - self.disk
        assert diff.contains(np.array([[0.5, 0.5]]))[0]
        assert not diff.contains(np.array([[1.9, 1.0]]))[0]

    def test_intersection_lens(self):
        inter = self.left & self.disk
        assert inter.contains(np.array([[1.8, 1.0]]))[0]
        assert not inter.contains(np.array([[0.5, 0.5]]))[0]
        assert not inter.contains(np.array([[2.6, 1.0]]))[0]

    def test_union_area(self):
        union = self.left + self.disk
        # area = rect + half-ish disk outside; Monte-Carlo vs inclusion-exclusion
        area = union.approx_area(RNG, samples=60000)
        overlap_est = (self.left & self.disk).approx_area(RNG, samples=60000)
        expected = self.left.area + self.disk.area - overlap_est
        assert np.isclose(area, expected, rtol=0.05)

    def test_interior_sampling_respects_difference(self):
        diff = self.left - self.disk
        cloud = diff.sample_interior(1000, RNG)
        assert np.all(self.left.contains(cloud.coords))
        assert not np.any(self.disk.contains(cloud.coords))

    def test_boundary_of_difference_includes_arc(self):
        diff = self.left - self.disk
        cloud = diff.sample_boundary(800, RNG)
        on_circle = np.isclose(
            np.linalg.norm(cloud.coords - np.array([2.0, 1.0]), axis=1), 0.8)
        assert on_circle.sum() > 0
        # all boundary points lie on the combined boundary
        assert np.all(np.abs(diff.sdf(cloud.coords)) < 1e-7)

    def test_union_boundary_excludes_interior_arcs(self):
        union = self.left + self.disk
        cloud = union.sample_boundary(800, RNG)
        # no boundary point may be strictly inside the union
        assert np.all(union.sdf(cloud.coords) < 1e-7)

    def test_nested_csg(self):
        channel = Channel2D((-4.0, -1.0), (4.0, 1.0))
        ring_domain = (channel + Circle((0.0, 0.0), 2.0)) - Circle((0.0, 0.0), 1.0)
        cloud = ring_domain.sample_interior(500, RNG)
        radii = np.linalg.norm(cloud.coords, axis=1)
        assert np.all(radii > 1.0 - 1e-12)

    def test_bounds_cover_children(self):
        union = self.left + self.disk
        lo, hi = union.bounds
        assert lo[0] <= 0.0 and hi[0] >= 2.8


class TestParamSpace:
    def test_sample_ranges(self):
        space = ParamSpace({"r": (0.75, 1.1), "s": (2.0, 3.0)})
        values = space.sample(500, RNG)
        assert values.shape == (500, 2)
        assert np.all((values[:, 0] >= 0.75) & (values[:, 0] <= 1.1))
        assert np.all((values[:, 1] >= 2.0) & (values[:, 1] <= 3.0))

    def test_grid(self):
        space = ParamSpace({"r": (0.0, 1.0)})
        grid = space.grid(5)
        assert np.allclose(grid.ravel(), np.linspace(0, 1, 5))

    def test_as_dict_orders_names(self):
        space = ParamSpace({"a": (0, 1), "b": (2, 3)})
        d = space.as_dict(np.array([0.5, 2.5]))
        assert d == {"a": 0.5, "b": 2.5}

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            ParamSpace({"r": (1.0, 0.0)})


class TestParameterizedGeometry:
    def setup_method(self):
        self.space = ParamSpace({"radius": (0.5, 1.0)})
        self.family = ParameterizedGeometry(
            lambda p: Circle((0.0, 0.0), p["radius"]), self.space, draws=8)

    def test_interior_points_respect_their_radius(self):
        cloud = self.family.sample_interior(400, RNG)
        assert cloud.params.shape == (400, 1)
        radii = np.linalg.norm(cloud.coords, axis=1)
        assert np.all(radii <= cloud.params[:, 0] + 1e-12)

    def test_param_names_propagate(self):
        cloud = self.family.sample_interior(50, RNG)
        assert cloud.param_names == ("radius",)
        assert cloud.features().shape == (50, 3)

    def test_boundary_points_on_their_circle(self):
        cloud = self.family.sample_boundary(300, RNG)
        radii = np.linalg.norm(cloud.coords, axis=1)
        assert np.allclose(radii, cloud.params[:, 0])

    def test_multiple_draws_used(self):
        cloud = self.family.sample_interior(400, RNG)
        assert len(np.unique(cloud.params[:, 0])) == 8

    def test_geometry_at_fixed_value(self):
        geom = self.family.geometry_at(radius=0.75)
        assert np.isclose(geom.radius, 0.75)

    def test_rejects_bad_draws(self):
        with pytest.raises(ValueError):
            ParameterizedGeometry(lambda p: None, self.space, draws=0)
