"""Deeper CSG boundary behaviour: intersection surfaces and weights."""

import numpy as np
import pytest

from repro.geometry import Circle, Difference, Intersection, Rectangle, Union

RNG = np.random.default_rng(0)


def test_intersection_boundary_on_both_surfaces():
    lens = Circle((0.0, 0.0), 1.0) & Circle((1.0, 0.0), 1.0)
    cloud = lens.sample_boundary(400, RNG)
    r0 = np.linalg.norm(cloud.coords, axis=1)
    r1 = np.linalg.norm(cloud.coords - np.array([1.0, 0.0]), axis=1)
    on_first = np.isclose(r0, 1.0)
    on_second = np.isclose(r1, 1.0)
    assert np.all(on_first | on_second)
    assert on_first.any() and on_second.any()
    # all kept points must lie inside the *other* circle
    assert np.all(r1[on_first] <= 1.0 + 1e-9)
    assert np.all(r0[on_second] <= 1.0 + 1e-9)


def test_union_weights_approximate_effective_perimeter():
    # two disjoint circles: union perimeter = sum of circumferences
    a = Circle((0.0, 0.0), 1.0)
    b = Circle((5.0, 0.0), 1.0)
    union = a + b
    cloud = union.sample_boundary(600, RNG)
    measured = cloud.weights.sum()
    expected = a.boundary_length + b.boundary_length
    assert np.isclose(measured, expected, rtol=0.1)


def test_difference_weights_drop_removed_arc():
    # rectangle minus a disk centered on its right edge: the perimeter loses
    # the covered edge segment but gains the interior arc
    rect = Rectangle((0.0, 0.0), (2.0, 2.0))
    hole = Circle((2.0, 1.0), 0.5)
    diff = rect - hole
    cloud = diff.sample_boundary(800, RNG)
    assert np.all(np.abs(diff.sdf(cloud.coords)) < 1e-7)
    on_arc = np.isclose(
        np.linalg.norm(cloud.coords - np.array([2.0, 1.0]), axis=1), 0.5)
    assert on_arc.any()
    # arc points must be inside the rectangle
    assert np.all(rect.sdf(cloud.coords[on_arc]) > -1e-9)


def test_empty_intersection_raises():
    a = Circle((0.0, 0.0), 0.5)
    b = Circle((5.0, 0.0), 0.5)
    lens = a & b
    with pytest.raises(RuntimeError):
        lens.sample_interior(50, RNG)


def test_chained_csg_boundary():
    shape = (Rectangle((0, 0), (3, 1)) + Circle((3.0, 0.5), 0.5)) - \
        Circle((1.0, 0.5), 0.25)
    cloud = shape.sample_boundary(500, RNG)
    assert np.all(np.abs(shape.sdf(cloud.coords)) < 1e-7)
    inner = np.isclose(
        np.linalg.norm(cloud.coords - np.array([1.0, 0.5]), axis=1), 0.25)
    assert inner.any()


def test_union_interior_covers_both_parts():
    union = Circle((0.0, 0.0), 0.6) + Circle((2.0, 0.0), 0.6)
    cloud = union.sample_interior(600, RNG)
    near_a = np.linalg.norm(cloud.coords, axis=1) < 0.6
    near_b = np.linalg.norm(cloud.coords - np.array([2.0, 0.0]), axis=1) < 0.6
    assert near_a.sum() > 100 and near_b.sum() > 100
