"""Primitive geometry: SDFs, sampling, measures."""

import numpy as np
import pytest

from repro.geometry import (
    Annulus, Channel2D, Circle, Line2D, PointCloud, Rectangle,
)

RNG = np.random.default_rng(0)


class TestRectangle:
    def setup_method(self):
        self.rect = Rectangle((0.0, 0.0), (2.0, 1.0))

    def test_sdf_signs(self):
        inside = np.array([[1.0, 0.5]])
        outside = np.array([[3.0, 0.5], [1.0, -0.2]])
        assert self.rect.sdf(inside)[0] > 0
        assert np.all(self.rect.sdf(outside) < 0)

    def test_sdf_exact_distances(self):
        assert np.isclose(self.rect.sdf(np.array([[1.0, 0.5]]))[0], 0.5)
        assert np.isclose(self.rect.sdf(np.array([[1.0, 0.9]]))[0], 0.1)
        assert np.isclose(self.rect.sdf(np.array([[-1.0, 0.5]]))[0], -1.0)
        # outside a corner: euclidean distance
        assert np.isclose(self.rect.sdf(np.array([[3.0, 2.0]]))[0],
                          -np.sqrt(1.0 + 1.0))

    def test_interior_points_inside(self):
        cloud = self.rect.sample_interior(500, RNG)
        assert len(cloud) == 500
        assert np.all(self.rect.contains(cloud.coords))
        assert np.all(cloud.sdf > 0)

    def test_interior_weights_sum_to_area(self):
        cloud = self.rect.sample_interior(2000, RNG)
        assert np.isclose(cloud.weights.sum(), self.rect.area, rtol=0.1)

    def test_boundary_points_on_walls(self):
        cloud = self.rect.sample_boundary(400, RNG)
        assert np.allclose(np.abs(self.rect.sdf(cloud.coords)), 0.0, atol=1e-12)

    def test_boundary_normals_unit_outward(self):
        cloud = self.rect.sample_boundary(400, RNG)
        norms = np.linalg.norm(cloud.normals, axis=1)
        assert np.allclose(norms, 1.0)
        # step outward along normal: sdf decreases
        stepped = cloud.coords + 1e-3 * cloud.normals
        assert np.all(self.rect.sdf(stepped) < 0)

    def test_boundary_weights_sum_to_perimeter(self):
        cloud = self.rect.sample_boundary(100, RNG)
        assert np.isclose(cloud.weights.sum(), 6.0)

    def test_all_four_sides_sampled(self):
        cloud = self.rect.sample_boundary(2000, RNG)
        coords = cloud.coords
        assert (coords[:, 1] < 1e-9).any()          # bottom
        assert (coords[:, 1] > 1.0 - 1e-9).any()    # top
        assert (coords[:, 0] < 1e-9).any()          # left
        assert (coords[:, 0] > 2.0 - 1e-9).any()    # right

    def test_rejects_inverted_corners(self):
        with pytest.raises(ValueError):
            Rectangle((1.0, 1.0), (0.0, 2.0))


class TestChannel2D:
    def setup_method(self):
        self.channel = Channel2D((-2.0, -0.5), (2.0, 0.5))

    def test_sdf_is_wall_distance_only(self):
        # x-position must not affect the channel SDF (open ends)
        pts = np.array([[0.0, 0.0], [-1.9, 0.0], [5.0, 0.0]])
        assert np.allclose(self.channel.sdf(pts), 0.5)

    def test_boundary_only_top_bottom(self):
        cloud = self.channel.sample_boundary(500, RNG)
        assert np.all(np.isin(cloud.coords[:, 1], [-0.5, 0.5]))

    def test_boundary_length_excludes_ends(self):
        assert np.isclose(self.channel.boundary_length, 8.0)

    def test_normals_point_away_from_centerline(self):
        cloud = self.channel.sample_boundary(200, RNG)
        assert np.all(cloud.normals[:, 1] * cloud.coords[:, 1] > 0)


class TestCircle:
    def setup_method(self):
        self.circle = Circle((1.0, -1.0), 2.0)

    def test_sdf_center_is_radius(self):
        assert np.isclose(self.circle.sdf(np.array([[1.0, -1.0]]))[0], 2.0)

    def test_sdf_signs(self):
        assert self.circle.sdf(np.array([[2.0, -1.0]]))[0] > 0
        assert self.circle.sdf(np.array([[4.0, -1.0]]))[0] < 0

    def test_boundary_on_circle(self):
        cloud = self.circle.sample_boundary(300, RNG)
        radii = np.linalg.norm(cloud.coords - np.array([1.0, -1.0]), axis=1)
        assert np.allclose(radii, 2.0)

    def test_boundary_normals_radial(self):
        cloud = self.circle.sample_boundary(300, RNG)
        radial = (cloud.coords - np.array([1.0, -1.0])) / 2.0
        assert np.allclose(cloud.normals, radial)

    def test_interior_inside(self):
        cloud = self.circle.sample_interior(500, RNG)
        assert np.all(np.linalg.norm(cloud.coords - np.array([1.0, -1.0]),
                                     axis=1) < 2.0)

    def test_area_estimate(self):
        assert np.isclose(self.circle.approx_area(RNG), self.circle.area,
                          rtol=0.05)

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            Circle((0, 0), 0.0)


class TestAnnulus:
    def setup_method(self):
        self.ring = Annulus((0.0, 0.0), 1.0, 2.0)

    def test_sdf_signs(self):
        assert self.ring.sdf(np.array([[1.5, 0.0]]))[0] > 0   # in the ring
        assert self.ring.sdf(np.array([[0.5, 0.0]]))[0] < 0   # in the hole
        assert self.ring.sdf(np.array([[2.5, 0.0]]))[0] < 0   # outside

    def test_sdf_wall_distance(self):
        assert np.isclose(self.ring.sdf(np.array([[1.5, 0.0]]))[0], 0.5)
        assert np.isclose(self.ring.sdf(np.array([[1.2, 0.0]]))[0], 0.2)

    def test_interior_sampling_avoids_hole(self):
        cloud = self.ring.sample_interior(800, RNG)
        radii = np.linalg.norm(cloud.coords, axis=1)
        assert np.all((radii > 1.0) & (radii < 2.0))

    def test_boundary_both_circles(self):
        cloud = self.ring.sample_boundary(600, RNG)
        radii = np.linalg.norm(cloud.coords, axis=1)
        on_inner = np.isclose(radii, 1.0)
        on_outer = np.isclose(radii, 2.0)
        assert np.all(on_inner | on_outer)
        assert on_inner.sum() > 0 and on_outer.sum() > 0
        # proportional to circumference: outer gets ~2/3
        assert abs(on_outer.mean() - 2.0 / 3.0) < 0.1

    def test_inner_normals_point_into_hole(self):
        cloud = self.ring.sample_boundary(600, RNG)
        radii = np.linalg.norm(cloud.coords, axis=1)
        inner = np.isclose(radii, 1.0)
        # outward from the ring means toward the hole center
        dots = np.sum(cloud.normals[inner] * cloud.coords[inner], axis=1)
        assert np.all(dots < 0)

    def test_invalid_radii(self):
        with pytest.raises(ValueError):
            Annulus((0, 0), 2.0, 1.0)


class TestLine2D:
    def test_boundary_on_segment(self):
        line = Line2D((0.0, 0.0), (0.0, 2.0))
        cloud = line.sample_boundary(100, RNG)
        assert np.allclose(cloud.coords[:, 0], 0.0)
        assert np.all((cloud.coords[:, 1] >= 0) & (cloud.coords[:, 1] <= 2))

    def test_normal_direction(self):
        line = Line2D((0.0, 0.0), (0.0, 2.0), normal_side="left")
        assert np.allclose(line.normal, [-1.0, 0.0])
        right = Line2D((0.0, 0.0), (0.0, 2.0), normal_side="right")
        assert np.allclose(right.normal, [1.0, 0.0])

    def test_no_interior(self):
        line = Line2D((0.0, 0.0), (1.0, 0.0))
        with pytest.raises(TypeError):
            line.sample_interior(10)

    def test_weights_sum_to_length(self):
        line = Line2D((0.0, 0.0), (3.0, 4.0))
        cloud = line.sample_boundary(50, RNG)
        assert np.isclose(cloud.weights.sum(), 5.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Line2D((1.0, 1.0), (1.0, 1.0))


class TestPointCloud:
    def test_features_concatenate_params(self):
        cloud = PointCloud(coords=np.zeros((4, 2)), params=np.ones((4, 1)),
                           param_names=("r",))
        assert cloud.features().shape == (4, 3)
        assert np.allclose(cloud.features()[:, 2], 1.0)

    def test_features_without_params(self):
        cloud = PointCloud(coords=np.zeros((4, 2)))
        assert cloud.features().shape == (4, 2)

    def test_subset_preserves_fields(self):
        cloud = PointCloud(coords=RNG.normal(size=(10, 2)),
                           sdf=RNG.random(10), weights=np.ones(10))
        sub = cloud.subset(np.arange(3))
        assert len(sub) == 3 and sub.sdf.shape == (3, 1)

    def test_filter_by_predicate(self):
        cloud = PointCloud(coords=np.array([[0.0, 0.0], [1.0, 1.0]]))
        kept = cloud.filter(lambda c: c[:, 0] > 0.5)
        assert len(kept) == 1

    def test_concatenate_checks_param_names(self):
        a = PointCloud(coords=np.zeros((2, 2)), param_names=())
        b = PointCloud(coords=np.zeros((2, 2)), params=np.ones((2, 1)),
                       param_names=("r",))
        with pytest.raises(ValueError):
            PointCloud.concatenate([a, b])

    def test_concatenate_rejects_partial_fields(self):
        a = PointCloud(coords=np.zeros((2, 2)), sdf=np.ones(2))
        b = PointCloud(coords=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            PointCloud.concatenate([a, b])
