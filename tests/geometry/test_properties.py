"""Hypothesis properties of SDFs and sampling."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Circle, Rectangle

coords = st.floats(min_value=-5.0, max_value=5.0,
                   allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=0.2, max_value=3.0,
                     allow_nan=False, allow_infinity=False)


@settings(max_examples=50, deadline=None)
@given(coords, coords, positive, coords, coords)
def test_circle_sdf_is_radius_minus_distance(cx, cy, r, px, py):
    circle = Circle((cx, cy), r)
    point = np.array([[px, py]])
    expected = r - np.hypot(px - cx, py - cy)
    assert np.isclose(circle.sdf(point)[0], expected)


@settings(max_examples=50, deadline=None)
@given(coords, coords, positive, positive, st.integers(0, 2 ** 31))
def test_rectangle_interior_sample_inside_and_sdf_positive(x0, y0, w, h, seed):
    rect = Rectangle((x0, y0), (x0 + w, y0 + h))
    rng = np.random.default_rng(seed)
    cloud = rect.sample_interior(64, rng)
    assert np.all(rect.sdf(cloud.coords) > 0)
    assert np.all(cloud.coords[:, 0] > x0) and np.all(cloud.coords[:, 0] < x0 + w)


@settings(max_examples=50, deadline=None)
@given(coords, coords, positive, st.integers(0, 2 ** 31))
def test_circle_boundary_sdf_zero(cx, cy, r, seed):
    circle = Circle((cx, cy), r)
    rng = np.random.default_rng(seed)
    cloud = circle.sample_boundary(64, rng)
    assert np.allclose(circle.sdf(cloud.coords), 0.0, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(coords, coords, positive, positive)
def test_rectangle_sdf_1lipschitz(x0, y0, w, h):
    # SDFs are 1-Lipschitz: |sdf(p) - sdf(q)| <= |p - q|
    rect = Rectangle((x0, y0), (x0 + w, y0 + h))
    rng = np.random.default_rng(0)
    p = rng.uniform(-6, 6, (32, 2))
    q = p + rng.normal(0, 0.5, (32, 2))
    lhs = np.abs(rect.sdf(p) - rect.sdf(q))
    rhs = np.linalg.norm(p - q, axis=1)
    assert np.all(lhs <= rhs + 1e-9)


@settings(max_examples=30, deadline=None)
@given(coords, coords, positive, positive)
def test_union_sdf_upper_bounds_children(cx, cy, r1, r2):
    a = Circle((cx, cy), r1)
    b = Circle((cx + 1.0, cy), r2)
    union = a + b
    rng = np.random.default_rng(0)
    pts = rng.uniform(-6, 6, (64, 2))
    assert np.all(union.sdf(pts) >= a.sdf(pts) - 1e-12)
    assert np.all(union.sdf(pts) >= b.sdf(pts) - 1e-12)
