"""3-D primitives: box and sphere."""

import numpy as np
import pytest

from repro.geometry import Box, Sphere

RNG = np.random.default_rng(0)


class TestBox:
    def setup_method(self):
        self.box = Box((0.0, 0.0, 0.0), (2.0, 1.0, 3.0))

    def test_sdf_signs_and_values(self):
        assert np.isclose(self.box.sdf(np.array([[1.0, 0.5, 1.5]]))[0], 0.5)
        assert self.box.sdf(np.array([[3.0, 0.5, 1.0]]))[0] < 0

    def test_interior_sampling(self):
        cloud = self.box.sample_interior(400, RNG)
        assert cloud.coords.shape == (400, 3)
        assert np.all(self.box.contains(cloud.coords))

    def test_volume_estimate(self):
        assert np.isclose(self.box.approx_area(RNG), self.box.volume,
                          rtol=0.05)

    def test_boundary_on_faces(self):
        cloud = self.box.sample_boundary(600, RNG)
        assert np.allclose(np.abs(self.box.sdf(cloud.coords)), 0.0,
                           atol=1e-12)
        stepped = cloud.coords + 1e-6 * cloud.normals
        assert np.all(self.box.sdf(stepped) < 0)

    def test_boundary_weights_sum_to_area(self):
        cloud = self.box.sample_boundary(100, RNG)
        assert np.isclose(cloud.weights.sum(), self.box.surface_area)

    def test_all_faces_hit(self):
        cloud = self.box.sample_boundary(3000, RNG)
        for axis, value in ((0, 0.0), (0, 2.0), (1, 0.0), (1, 1.0),
                            (2, 0.0), (2, 3.0)):
            assert np.any(np.isclose(cloud.coords[:, axis], value)), \
                f"face {axis}={value} never sampled"

    def test_invalid_corners(self):
        with pytest.raises(ValueError):
            Box((0, 0, 0), (1, -1, 1))
        with pytest.raises(ValueError):
            Box((0, 0), (1, 1))


class TestSphere:
    def setup_method(self):
        self.ball = Sphere((1.0, -1.0, 0.5), 1.5)

    def test_sdf(self):
        assert np.isclose(self.ball.sdf(np.array([[1.0, -1.0, 0.5]]))[0], 1.5)
        assert self.ball.sdf(np.array([[5.0, 0.0, 0.0]]))[0] < 0

    def test_boundary_on_sphere(self):
        cloud = self.ball.sample_boundary(500, RNG)
        radii = np.linalg.norm(cloud.coords - np.array([1.0, -1.0, 0.5]),
                               axis=1)
        assert np.allclose(radii, 1.5)

    def test_normals_radial_unit(self):
        cloud = self.ball.sample_boundary(500, RNG)
        assert np.allclose(np.linalg.norm(cloud.normals, axis=1), 1.0)
        radial = (cloud.coords - np.array([1.0, -1.0, 0.5])) / 1.5
        assert np.allclose(cloud.normals, radial, atol=1e-12)

    def test_interior_sampling(self):
        cloud = self.ball.sample_interior(300, RNG)
        radii = np.linalg.norm(cloud.coords - np.array([1.0, -1.0, 0.5]),
                               axis=1)
        assert np.all(radii < 1.5)

    def test_boundary_roughly_uniform(self):
        # mean of uniformly distributed surface points is the center
        cloud = self.ball.sample_boundary(4000, RNG)
        assert np.allclose(cloud.coords.mean(axis=0),
                           [1.0, -1.0, 0.5], atol=0.1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Sphere((0, 0, 0), -1.0)
        with pytest.raises(ValueError):
            Sphere((0, 0), 1.0)


def test_csg_works_in_3d():
    shell = Box((0, 0, 0), (2, 2, 2)) - Sphere((1, 1, 1), 0.8)
    cloud = shell.sample_interior(300, RNG)
    radii = np.linalg.norm(cloud.coords - 1.0, axis=1)
    assert np.all(radii > 0.8 - 1e-12)
