"""SPADE/ISR behaviour on maps with known stability structure."""

import numpy as np
import pytest

from repro.graph import knn_adjacency
from repro.stability import spade_scores

RNG = np.random.default_rng(0)


def test_linear_scaling_gives_isr_close_to_scale():
    # Y = c X scales all distances by c; with inverse-distance weights
    # L_Y = L_X / c, so lambda_max(L_Y^+ L_X) = c exactly.
    x = RNG.uniform(size=(200, 2))
    c = 7.0
    result = spade_scores(x, c * x, k=8, rank=4)
    assert np.isclose(result.isr, c, rtol=0.05)


def test_identity_map_isr_near_one():
    x = RNG.uniform(size=(150, 2))
    result = spade_scores(x, x.copy(), k=8, rank=4)
    assert np.isclose(result.isr, 1.0, rtol=0.05)


def test_node_scores_peak_at_sharp_transition():
    # f(x) = tanh(20 (x0 - 0.5)) changes fastest near x0 = 0.5
    x = RNG.uniform(size=(600, 2))
    y = np.tanh(20.0 * (x[:, 0:1] - 0.5))
    result = spade_scores(x, y, k=10, rank=6)
    near = np.abs(x[:, 0] - 0.5) < 0.05
    far = np.abs(x[:, 0] - 0.5) > 0.3
    assert result.node_scores[near].mean() > 3.0 * result.node_scores[far].mean()


def test_edge_scores_match_eigen_formula():
    x = RNG.uniform(size=(120, 2))
    y = np.sin(3.0 * x)
    result = spade_scores(x, y, k=6, rank=5)
    # recompute one edge score from the returned eigenpairs is not possible
    # without the eigenvectors; instead verify shapes and non-negativity
    assert result.edge_scores.shape[0] == result.edges.shape[0]
    assert np.all(result.edge_scores >= 0.0)
    assert np.all(result.node_scores >= 0.0)


def test_eigenvalues_sorted_descending():
    x = RNG.uniform(size=(100, 2))
    y = np.tanh(x @ RNG.normal(size=(2, 3)))
    result = spade_scores(x, y, k=6, rank=5)
    assert np.all(np.diff(result.eigenvalues) <= 1e-9)
    assert np.isclose(result.isr, result.eigenvalues[0])


def test_precomputed_input_adjacency_matches():
    x = RNG.uniform(size=(150, 2))
    y = np.sin(2.0 * x)
    adj = knn_adjacency(x, 8)
    a = spade_scores(x, y, k=8, rank=4)
    b = spade_scores(x, y, k=8, rank=4, input_adjacency=adj)
    assert np.allclose(a.node_scores, b.node_scores)
    assert np.isclose(a.isr, b.isr)


def test_unstable_direction_scores_higher_than_stable():
    # map stretches x1 strongly, x0 weakly: edges along x1 score higher
    x = RNG.uniform(size=(300, 2))
    y = np.stack([0.1 * x[:, 0], 10.0 * x[:, 1]], axis=1)
    result = spade_scores(x, y, k=8, rank=4)
    dx = np.abs(x[result.edges[:, 0]] - x[result.edges[:, 1]])
    along_x1 = dx[:, 1] > 2.0 * dx[:, 0]
    along_x0 = dx[:, 0] > 2.0 * dx[:, 1]
    assert (result.edge_scores[along_x1].mean() >
            5.0 * result.edge_scores[along_x0].mean())


def test_1d_outputs_accepted():
    x = RNG.uniform(size=(80, 2))
    y = x[:, 0] ** 2
    result = spade_scores(x, y, k=5, rank=3)
    assert result.node_scores.shape == (80,)


def test_mismatched_rows_rejected():
    with pytest.raises(ValueError):
        spade_scores(np.zeros((10, 2)), np.zeros((9, 1)), k=3)


def test_too_few_samples_rejected():
    with pytest.raises(ValueError):
        spade_scores(np.zeros((5, 2)), np.zeros((5, 1)), k=5)


def test_isr_upper_bounds_observed_dmd_for_linear_map():
    # Lemma 2: ISR >= max gamma; for Y = A X the max DMD over edges is the
    # largest singular-value stretch realised on the sampled pairs
    x = RNG.uniform(size=(250, 2))
    a = np.array([[3.0, 0.0], [0.0, 0.5]])
    y = x @ a.T
    result = spade_scores(x, y, k=8, rank=6)
    p, q = result.edges[:, 0], result.edges[:, 1]
    dx = np.linalg.norm(x[p] - x[q], axis=1)
    dy = np.linalg.norm(y[p] - y[q], axis=1)
    gamma_max = (dy / dx).max()
    assert result.isr >= 0.9 * gamma_max
