"""Session end-to-end smoke runs: every problem × uniform and sgm."""

import numpy as np
import pytest

import repro
from repro.api import Problem, RunResult, build_problem
from repro.sampling import SGMSampler, UniformSampler

#: keep the graph builds and training loops tiny — this is a wiring test
N_INTERIOR = 400
STEPS = 4

PROBLEMS = ("ldc", "annular_ring", "burgers", "poisson3d")


@pytest.mark.parametrize("name", PROBLEMS)
@pytest.mark.parametrize("kind", ("uniform", "sgm"))
def test_session_trains_every_problem(name, kind):
    result = (repro.problem(name, scale="smoke")
              .sampler(kind)
              .n_interior(N_INTERIOR)
              .validators([])          # skip reference solves; wiring only
              .train(steps=STEPS))
    assert isinstance(result, RunResult)
    assert np.isfinite(result.history.losses[-1])
    assert len(result.history.steps) >= 1
    expected = SGMSampler if kind == "sgm" else UniformSampler
    assert isinstance(result.sampler, expected)
    assert result.net.num_parameters() > 0


@pytest.mark.parametrize("name,dims,n_params,outputs", [
    ("ldc", 2, 0, ("u", "v", "p")),
    ("annular_ring", 2, 1, ("u", "v", "p")),
    ("burgers", 2, 0, ("u",)),
    ("poisson3d", 3, 0, ("u",)),
])
def test_problem_shapes_drive_network_dims(name, dims, n_params, outputs):
    prob = build_problem(name, n_interior=N_INTERIOR,
                         rng=np.random.default_rng(0))
    assert isinstance(prob, Problem)
    assert prob.dims == dims
    assert prob.n_params == n_params
    assert prob.output_names == outputs
    assert prob.in_features == dims + n_params
    assert prob.out_features == len(outputs)
    assert prob.interior.name == "interior"
    assert len(prob.interior_cloud) == N_INTERIOR
    assert prob.interior_cloud.features().shape[1] == prob.in_features


def test_build_problem_uses_repro_defaults():
    prob = build_problem("burgers")
    from repro.experiments import burgers_config
    assert len(prob.interior_cloud) == burgers_config().n_interior_small


def test_session_setters_chain_and_apply():
    session = (repro.problem("burgers", scale="smoke")
               .sampler("sgm_s")
               .seed(3)
               .n_interior(256)
               .batch_size(16)
               .steps(STEPS)
               .validators([]))
    result = session.train()
    assert isinstance(result.sampler, SGMSampler)
    assert result.sampler.use_isr
    interior = result.net  # smoke: just confirm the run finished
    assert interior.num_parameters() > 0
    assert repr(session).startswith("Session(problem='burgers'")


def test_session_config_overrides():
    session = repro.problem("poisson3d", scale="smoke").config(knn_k=4)
    assert session._config.knn_k == 4
    assert session._config.scale == "smoke"


def test_unknown_problem_and_sampler_raise():
    with pytest.raises(KeyError, match="unknown problem"):
        repro.problem("nope")
    with pytest.raises(KeyError, match="unknown sampler"):
        repro.problem("ldc").sampler("nope")


def test_same_seed_same_losses():
    def run():
        return (repro.problem("burgers", scale="smoke")
                .sampler("sgm").n_interior(N_INTERIOR)
                .validators([]).train(steps=6))
    a, b = run(), run()
    assert np.allclose(a.history.losses, b.history.losses)


def test_problem_requires_interior_constraint():
    with pytest.raises(ValueError, match="interior"):
        Problem(name="broken", constraints=[], interior_cloud=None,
                output_names=("u",), spatial_names=("x", "y"))


def test_default_validators_report_errors():
    # one full-wiring run with real validators (burgers has no reference
    # solver dependency, so this stays fast)
    result = (repro.problem("burgers", scale="smoke")
              .sampler("uniform").n_interior(N_INTERIOR)
              .train(steps=STEPS))
    assert "u" in result.history.errors
    assert np.isfinite(result.history.min_error("u"))
