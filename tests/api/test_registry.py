"""Problem/sampler registries: registration, lookup, and error paths."""

import pytest

from repro.api import (
    Registry, list_problems, list_samplers, make_sampler, problem_registry,
    register_problem, register_sampler, sampler_registry,
)
from repro.experiments import ldc_config
from repro.geometry import PointCloud

import numpy as np


class TestBuiltinRegistrations:
    def test_builtin_problems_registered(self):
        assert list_problems() == ["advection_diffusion", "annular_ring",
                                   "burgers", "inverse_burgers", "ldc",
                                   "ns3d", "poisson3d"]

    def test_all_four_samplers_registered(self):
        assert list_samplers() == ["mis", "sgm", "sgm_s", "uniform"]

    def test_problem_entries_carry_config_factories(self):
        for name in list_problems():
            entry = problem_registry.get(name)
            config = entry.config_factory("smoke")
            assert config.scale == "smoke"
            assert config.n_interior_small > 0

    def test_entries_have_descriptions(self):
        for _, entry in problem_registry.items():
            assert entry.description
        for _, entry in sampler_registry.items():
            assert entry.description


class TestLookupErrors:
    def test_unknown_problem_names_alternatives(self):
        with pytest.raises(KeyError, match="ldc"):
            problem_registry.get("heat_equation")

    def test_unknown_sampler_names_alternatives(self):
        with pytest.raises(KeyError, match="uniform"):
            sampler_registry.get("bogus")

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("a", object())
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", object())
        registry.register("a", "replacement", overwrite=True)
        assert registry.get("a") == "replacement"

    def test_contains_and_len(self):
        assert "sgm" in sampler_registry
        assert "nope" not in sampler_registry
        assert len(sampler_registry) == 4
        assert list(iter(sampler_registry)) == list_samplers()


class TestDecorators:
    def test_register_and_resolve_custom_entries(self):
        @register_sampler("test_only_sampler", description="test")
        def build(config, cloud, seed):
            from repro.sampling import UniformSampler
            return UniformSampler(len(cloud), seed=seed)

        try:
            cloud = PointCloud(coords=np.zeros((10, 2)))
            sampler = make_sampler("test_only_sampler", ldc_config("smoke"),
                                   cloud, seed=0)
            assert sampler.n_points == 10
        finally:
            # registries are module-global; don't leak into other tests
            del sampler_registry._entries["test_only_sampler"]

    def test_decorator_returns_the_function(self):
        @register_problem("test_only_problem", config_factory=ldc_config,
                          description="test")
        def build(config, n_interior, rng):
            return None

        try:
            assert callable(build)
            assert problem_registry.get("test_only_problem").builder is build
        finally:
            del problem_registry._entries["test_only_problem"]


class TestMakeSampler:
    def test_kinds_map_to_expected_classes(self):
        from repro.sampling import MISSampler, SGMSampler, UniformSampler
        config = ldc_config("smoke")
        cloud = PointCloud(
            coords=np.random.default_rng(0).uniform(size=(200, 2)))
        assert isinstance(make_sampler("uniform", config, cloud),
                          UniformSampler)
        assert isinstance(make_sampler("mis", config, cloud), MISSampler)
        sgm = make_sampler("sgm", config, cloud)
        sgm_s = make_sampler("sgm_s", config, cloud)
        assert isinstance(sgm, SGMSampler) and not sgm.use_isr
        assert isinstance(sgm_s, SGMSampler) and sgm_s.use_isr
