"""The legacy run_*_method shims: still working, still RunResults.

The acceptance bar for the API redesign: ``repro.problem("ldc")`` /
``repro.problem("annular_ring")`` reproduce the same method wiring as the
old ``run_ldc_method`` / ``run_ar_method`` entry points.
"""

import numpy as np
import pytest

import repro
from repro.api import RunResult
from repro.experiments import (
    annular_ring_config, ar_methods, ldc_config, ldc_methods, run_ar_method,
    run_ldc_method,
)


def test_run_ldc_method_returns_runresult_and_warns():
    config = ldc_config("smoke")
    method = ldc_methods(config)[0]
    with pytest.warns(DeprecationWarning, match="run_ldc_method"):
        result = run_ldc_method(config, method, validators=[], steps=3)
    assert isinstance(result, RunResult)
    assert result.label == method.label
    assert np.isfinite(result.history.losses[-1])


def test_run_ar_method_returns_runresult_and_warns():
    config = annular_ring_config("smoke")
    method = ar_methods(config)[0]
    with pytest.warns(DeprecationWarning, match="run_ar_method"):
        result = run_ar_method(config, method, validators=[], steps=3)
    assert isinstance(result, RunResult)
    assert result.label == method.label
    assert np.isfinite(result.history.losses[-1])


def test_make_sampler_shim_still_raises_valueerror():
    from repro.experiments.runner import MethodSpec, _make_sampler
    from repro.geometry import PointCloud
    cloud = PointCloud(coords=np.zeros((10, 2)))
    with pytest.raises(ValueError, match="bogus"):
        _make_sampler(MethodSpec("x", "bogus", 10, 4),
                      ldc_config("smoke"), cloud, 0)


def test_session_matches_legacy_ldc_wiring():
    """Same config/seed/sizes => bit-identical loss trajectories."""
    config = ldc_config("smoke")
    method = ldc_methods(config)[0]          # uniform, small sizes
    with pytest.warns(DeprecationWarning):
        legacy = run_ldc_method(config, method, validators=[], steps=8)
    session = (repro.problem("ldc", config=config)
               .sampler(method.kind)
               .n_interior(method.n_interior)
               .batch_size(method.batch_size)
               .validators([])
               .train(steps=8))
    assert np.allclose(legacy.history.losses, session.history.losses)


def test_run_suite_matches_legacy_method_shims():
    """Suite columns reproduce the deprecated per-method entry points
    bit-for-bit, so ``run_ldc_method``/``run_ar_method`` can be deleted
    next PR with no caller left behind."""
    from repro.experiments import run_suite
    config = ldc_config("smoke")
    methods = ldc_methods(config)[:2]
    with pytest.warns(DeprecationWarning):
        legacy = [run_ldc_method(config, m, steps=6) for m in methods]
    suite = run_suite("ldc", methods, executor="serial", config=config,
                      steps=6)
    assert suite.labels == [m.label for m in methods]
    for old, new in zip(legacy, suite):
        assert np.array_equal(old.history.losses, new.history.losses)
        for var in old.history.errors:
            np.testing.assert_array_equal(old.history.errors[var],
                                          new.history.errors[var])
        state = old.net.state_dict()
        for key, value in new.net_state.items():
            assert np.array_equal(state[key], value)


def test_session_matches_legacy_ar_wiring():
    config = annular_ring_config("smoke")
    method = [m for m in ar_methods(config, include_plain_sgm=True)
              if m.kind == "sgm"][0]
    with pytest.warns(DeprecationWarning):
        legacy = run_ar_method(config, method, validators=[], steps=6)
    session = (repro.problem("annular_ring", config=config)
               .sampler(method.kind)
               .n_interior(method.n_interior)
               .batch_size(method.batch_size)
               .validators([])
               .train(steps=6))
    assert np.allclose(legacy.history.losses, session.history.losses)
    assert np.array_equal(legacy.sampler.labels, session.sampler.labels)
