"""Derivatives with respect to geometry-parameter inputs (parameterized
PINNs feed r_i as a network input; ISR reasons about d(out)/d(param))."""

import numpy as np

from repro import autodiff as ad
from repro.pde import Fields


def test_parameter_column_is_differentiable():
    rng = np.random.default_rng(0)
    features = rng.uniform(0.75, 1.1, (16, 3))
    fields = Fields.from_features(features, spatial_names=("x", "y"),
                                  param_names=("r_inner",))
    x = fields.get("x")
    r = fields.get("r_inner")
    fields.register("u", ad.sin(x) * r * r)
    du_dr = fields.d("u", "r_inner")
    expected = np.sin(x.numpy()) * 2.0 * r.numpy()
    assert np.allclose(du_dr.numpy(), expected, atol=1e-12)


def test_mixed_space_parameter_second_derivative():
    rng = np.random.default_rng(1)
    features = rng.uniform(0.5, 1.5, (12, 3))
    fields = Fields.from_features(features, spatial_names=("x", "y"),
                                  param_names=("r",))
    x, r = fields.get("x"), fields.get("r")
    fields.register("u", x * x * r)
    d2u_dxdr = fields.d2("u", "x", "r")
    assert np.allclose(d2u_dxdr.numpy(), 2.0 * x.numpy(), atol=1e-12)


def test_laplacian_ignores_parameter_columns():
    rng = np.random.default_rng(2)
    features = rng.uniform(0.5, 1.5, (12, 3))
    fields = Fields.from_features(features, spatial_names=("x", "y"),
                                  param_names=("r",))
    x, y, r = fields.get("x"), fields.get("y"), fields.get("r")
    fields.register("u", x * x + y * y + r * r)
    lap = fields.laplacian("u")
    # only the spatial second derivatives: 2 + 2 (r^2 contributes nothing)
    assert np.allclose(lap.numpy(), 4.0, atol=1e-12)


def test_network_gradient_wrt_parameter_input():
    from repro.nn import FullyConnected
    rng = np.random.default_rng(3)
    net = FullyConnected(3, 2, width=12, depth=2,
                         rng=np.random.default_rng(4))
    features = rng.uniform(size=(10, 3))
    fields = Fields.from_features(features, spatial_names=("x", "y"),
                                  param_names=("r",))
    out = net(fields.input_tensor())
    fields.register("u", out[:, 0:1])
    du_dr = fields.d("u", "r")
    # finite-difference check on the parameter column
    eps = 1e-6
    up = features.copy()
    up[:, 2] += eps
    down = features.copy()
    down[:, 2] -= eps
    from repro.autodiff import Tensor
    fd = (net(Tensor(up)).numpy()[:, 0:1] -
          net(Tensor(down)).numpy()[:, 0:1]) / (2 * eps)
    assert np.allclose(du_dr.numpy(), fd, rtol=1e-5, atol=1e-7)
