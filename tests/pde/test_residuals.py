"""Residual correctness on manufactured/exact solutions."""

import numpy as np

from repro import autodiff as ad
from repro.autodiff import Tensor
from repro.pde import (
    AdvectionDiffusion2D, Fields, NavierStokes2D, Poisson2D,
    ZeroEquationTurbulence,
)


def make_fields(n=64, seed=0, lo=-1.0, hi=1.0):
    rng = np.random.default_rng(seed)
    features = rng.uniform(lo, hi, (n, 2))
    return Fields.from_features(features)


class TestPoisson:
    def test_manufactured_solution_residual_vanishes(self):
        # u = sin(pi x) sin(pi y)  =>  laplace u = -2 pi^2 u
        fields = make_fields()
        x, y = fields.get("x"), fields.get("y")
        u = ad.sin(np.pi * x) * ad.sin(np.pi * y)
        fields.register("u", u)
        pde = Poisson2D(source=lambda xv, yv:
                        -2.0 * np.pi ** 2 * np.sin(np.pi * xv) * np.sin(np.pi * yv))
        res = pde.residuals(fields)["poisson"]
        assert np.allclose(res.numpy(), 0.0, atol=1e-9)

    def test_laplace_default_source(self):
        fields = make_fields()
        x, y = fields.get("x"), fields.get("y")
        fields.register("u", x * y)  # harmonic
        res = Poisson2D().residuals(fields)["poisson"]
        assert np.allclose(res.numpy(), 0.0, atol=1e-12)

    def test_residual_names(self):
        assert Poisson2D().residual_names() == ("poisson",)


class TestNavierStokes:
    def register_kovasznay(self, fields, re=20.0):
        """Exact steady NS solution (Kovasznay 1948)."""
        lam = re / 2.0 - np.sqrt(re ** 2 / 4.0 + 4.0 * np.pi ** 2)
        x, y = fields.get("x"), fields.get("y")
        ex = ad.exp(lam * x)
        u = 1.0 - ex * ad.cos(2.0 * np.pi * y)
        v = (lam / (2.0 * np.pi)) * ex * ad.sin(2.0 * np.pi * y)
        p = 0.5 * (1.0 - ad.exp(2.0 * lam * x))
        fields.register("u", u)
        fields.register("v", v)
        fields.register("p", p)
        return 1.0 / re

    def test_kovasznay_satisfies_ns(self):
        fields = make_fields(n=48, lo=0.0, hi=1.0)
        nu = self.register_kovasznay(fields)
        pde = NavierStokes2D(nu=nu)
        res = pde.residuals(fields)
        for name in ("continuity", "momentum_x", "momentum_y"):
            assert np.allclose(res[name].numpy(), 0.0, atol=1e-7), name

    def test_taylor_green_euler_limit(self):
        # with nu = 0, steady Taylor-Green satisfies the Euler equations
        fields = make_fields(n=48)
        x, y = fields.get("x"), fields.get("y")
        u = -ad.cos(x) * ad.sin(y)
        v = ad.sin(x) * ad.cos(y)
        p = -0.25 * (ad.cos(2.0 * x) + ad.cos(2.0 * y))
        fields.register("u", u)
        fields.register("v", v)
        fields.register("p", p)
        res = NavierStokes2D(nu=0.0).residuals(fields)
        for name in ("continuity", "momentum_x", "momentum_y"):
            assert np.allclose(res[name].numpy(), 0.0, atol=1e-9), name

    def test_continuity_detects_compressible_field(self):
        fields = make_fields()
        x, y = fields.get("x"), fields.get("y")
        fields.register("u", x)
        fields.register("v", y)
        fields.register("p", ad.zeros_like(x))
        res = NavierStokes2D(nu=0.1).residuals(fields)
        assert np.allclose(res["continuity"].numpy(), 2.0)

    def test_residual_names(self):
        assert NavierStokes2D(nu=1.0).residual_names() == (
            "continuity", "momentum_x", "momentum_y")


class TestZeroEquation:
    def register_shear(self, fields):
        x, y = fields.get("x"), fields.get("y")
        fields.register("u", y * 1.0)
        fields.register("v", ad.zeros_like(y) * y)
        fields.register("p", ad.zeros_like(y) * y)

    def test_nu_t_for_pure_shear(self):
        # u = y, v = 0: G = 1, so nu_t = rho * l_m^2
        fields = make_fields(n=32)
        self.register_shear(fields)
        sdf = np.full((32, 1), 0.01)
        fields.register("sdf", Tensor(sdf))
        model = ZeroEquationTurbulence(max_distance=0.05, rho=2.0)
        nu_t = model.nu_t(fields)
        l_m = min(0.419 * 0.01, 0.09 * 0.05)
        assert np.allclose(nu_t.numpy(), 2.0 * l_m ** 2, rtol=1e-5)

    def test_mixing_length_caps_at_outer_layer(self):
        model = ZeroEquationTurbulence(max_distance=0.05)
        far = Tensor(np.array([[10.0]]))
        assert np.isclose(model.mixing_length(far).item(), 0.09 * 0.05)
        near = Tensor(np.array([[1e-4]]))
        assert np.isclose(model.mixing_length(near).item(), 0.419 * 1e-4)

    def test_missing_sdf_raises(self):
        fields = make_fields(n=8)
        self.register_shear(fields)
        model = ZeroEquationTurbulence(max_distance=0.05)
        try:
            model.nu_t(fields)
            raised = False
        except KeyError:
            raised = True
        assert raised

    def test_turbulent_ns_full_diffusion_runs_and_is_finite(self):
        fields = make_fields(n=16)
        x, y = fields.get("x"), fields.get("y")
        fields.register("u", ad.sin(x) * y)
        fields.register("v", ad.cos(y) * x)
        fields.register("p", x * y)
        fields.register("sdf", Tensor(np.full((16, 1), 0.02)))
        model = ZeroEquationTurbulence(max_distance=0.05)
        pde = NavierStokes2D(nu=0.01, turbulence=model, full_diffusion=True)
        res = pde.residuals(fields)
        for r in res.values():
            assert np.all(np.isfinite(r.numpy()))

    def test_frozen_diffusion_matches_constant_nu(self):
        class ConstantClosure:
            def nu_t(self, fields):
                return ad.zeros_like(fields.get("u")) + 0.02

        def build():
            fields = make_fields(n=24, seed=5)
            x, y = fields.get("x"), fields.get("y")
            fields.register("u", ad.sin(x) * ad.cos(y))
            fields.register("v", ad.cos(x) * ad.sin(y) * (-1.0))
            fields.register("p", x * x + y * y)
            return fields

        frozen = NavierStokes2D(nu=0.01, turbulence=ConstantClosure(),
                                full_diffusion=False).residuals(build())
        constant = NavierStokes2D(nu=0.03).residuals(build())
        for name in ("momentum_x", "momentum_y"):
            assert np.allclose(frozen[name].numpy(), constant[name].numpy(),
                               atol=1e-10)


class TestAdvectionDiffusion:
    def test_manufactured_transport(self):
        fields = make_fields(n=32)
        x, y = fields.get("x"), fields.get("y")
        fields.register("T", x * x + y * y)
        fields.register("u", ad.ones_like(x))
        fields.register("v", ad.zeros_like(x))
        res = AdvectionDiffusion2D(alpha=0.5).residuals(fields)
        expected = 2.0 * x.numpy() - 0.5 * 4.0
        assert np.allclose(res["advection_diffusion"].numpy(), expected,
                           atol=1e-10)
