"""Differential-operator helpers."""

import numpy as np
import pytest

from repro import autodiff as ad
from repro.pde import (
    Fields, divergence, gradient_magnitude, strain_rate_invariant,
    vorticity_2d,
)


def make_fields(n=32, seed=0):
    rng = np.random.default_rng(seed)
    return Fields.from_features(rng.uniform(-1, 1, (n, 2)))


def register_flow(fields):
    x, y = fields.get("x"), fields.get("y")
    fields.register("u", ad.sin(x) * ad.cos(y))
    fields.register("v", -ad.cos(x) * ad.sin(y))
    return x.numpy(), y.numpy()


def test_divergence_of_solenoidal_field_is_zero():
    fields = make_fields()
    register_flow(fields)
    div = divergence(fields)
    assert np.allclose(div.numpy(), 0.0, atol=1e-12)


def test_divergence_value():
    fields = make_fields()
    x, y = fields.get("x"), fields.get("y")
    fields.register("u", x * 2.0)
    fields.register("v", y * 3.0)
    assert np.allclose(divergence(fields).numpy(), 5.0)


def test_divergence_shape_mismatch_rejected():
    fields = make_fields()
    register_flow(fields)
    with pytest.raises(ValueError):
        divergence(fields, components=("u",), coords=("x", "y"))


def test_vorticity_of_rigid_rotation():
    fields = make_fields()
    x, y = fields.get("x"), fields.get("y")
    fields.register("u", -y * 1.0)
    fields.register("v", x * 1.0)
    assert np.allclose(vorticity_2d(fields).numpy(), 2.0)


def test_strain_rate_invariant_pure_shear():
    fields = make_fields()
    x, y = fields.get("x"), fields.get("y")
    fields.register("u", y * 1.0)
    fields.register("v", ad.zeros_like(x) * x)
    assert np.allclose(strain_rate_invariant(fields).numpy(), 1.0)


def test_strain_matches_zero_eq_closure_term():
    fields = make_fields()
    xv, yv = register_flow(fields)
    g = strain_rate_invariant(fields).numpy()
    u_x = np.cos(xv) * np.cos(yv)
    v_y = -np.cos(xv) * np.cos(yv)
    u_y = -np.sin(xv) * np.sin(yv)
    v_x = np.sin(xv) * np.sin(yv)
    expected = 2 * u_x ** 2 + 2 * v_y ** 2 + (u_y + v_x) ** 2
    assert np.allclose(g, expected, atol=1e-10)


def test_gradient_magnitude():
    fields = make_fields()
    x, y = fields.get("x"), fields.get("y")
    fields.register("u", 3.0 * x + 4.0 * y)
    mag = gradient_magnitude(fields, "u")
    assert np.allclose(mag.numpy(), 5.0, atol=1e-6)


def test_gradient_magnitude_is_differentiable():
    fields = make_fields()
    x, y = fields.get("x"), fields.get("y")
    fields.register("u", ad.sin(x) * y)
    mag = gradient_magnitude(fields, "u")
    from repro.autodiff import gradients
    g, = gradients(mag.sum(), [x])
    assert np.all(np.isfinite(g.numpy()))
