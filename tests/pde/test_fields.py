"""Fields bundle: coordinate splitting, derivative caching, laplacian."""

import numpy as np
import pytest

from repro import autodiff as ad
from repro.pde import Fields


def make_fields(n=16, seed=0, params=0):
    rng = np.random.default_rng(seed)
    features = rng.uniform(-1.0, 1.0, (n, 2 + params))
    names = tuple(f"p{i}" for i in range(params))
    return Fields.from_features(features, spatial_names=("x", "y"),
                                param_names=names)


def test_from_features_column_split():
    fields = make_fields(8)
    x, y = fields.get("x"), fields.get("y")
    assert x.shape == (8, 1) and y.shape == (8, 1)
    stacked = fields.input_tensor()
    assert stacked.shape == (8, 2)
    assert np.allclose(stacked.numpy()[:, 0:1], x.numpy())


def test_from_features_validates_names():
    with pytest.raises(ValueError):
        Fields.from_features(np.zeros((4, 3)), spatial_names=("x", "y"))


def test_param_columns_registered():
    fields = make_fields(8, params=2)
    assert fields.coord_names == ("x", "y", "p0", "p1")
    assert fields.input_tensor().shape == (8, 4)


def test_first_derivative_of_analytic_field():
    fields = make_fields(32)
    x, y = fields.get("x"), fields.get("y")
    fields.register("u", ad.sin(x) * y)
    du_dx = fields.d("u", "x")
    du_dy = fields.d("u", "y")
    assert np.allclose(du_dx.numpy(), np.cos(x.numpy()) * y.numpy())
    assert np.allclose(du_dy.numpy(), np.sin(x.numpy()))


def test_derivative_caching_returns_identical_objects():
    fields = make_fields(8)
    x, y = fields.get("x"), fields.get("y")
    fields.register("u", x * x * y)
    first = fields.d("u", "x")
    again = fields.d("u", "x")
    assert first is again
    cross = fields.d("u", "y")  # cached from the same backward sweep
    assert cross is fields.d("u", "y")


def test_second_derivatives_and_symmetry():
    fields = make_fields(32)
    x, y = fields.get("x"), fields.get("y")
    fields.register("u", ad.sin(x * y))
    uxy = fields.d2("u", "x", "y")
    uyx = fields.d2("u", "y", "x")
    assert np.allclose(uxy.numpy(), uyx.numpy(), atol=1e-12)
    xv, yv = x.numpy(), y.numpy()
    expected = np.cos(xv * yv) - xv * yv * np.sin(xv * yv)
    assert np.allclose(uxy.numpy(), expected, atol=1e-12)


def test_laplacian_of_harmonic_function_is_zero():
    fields = make_fields(64)
    x, y = fields.get("x"), fields.get("y")
    fields.register("u", x * x - y * y)  # harmonic
    lap = fields.laplacian("u")
    assert np.allclose(lap.numpy(), 0.0, atol=1e-12)


def test_laplacian_value():
    fields = make_fields(64)
    x, y = fields.get("x"), fields.get("y")
    fields.register("u", x ** 4.0 + y ** 2.0)
    lap = fields.laplacian("u")
    expected = 12.0 * x.numpy() ** 2 + 2.0
    assert np.allclose(lap.numpy(), expected, atol=1e-10)


def test_unknown_field_raises():
    fields = make_fields(4)
    with pytest.raises(KeyError):
        fields.get("nope")
    with pytest.raises(KeyError):
        fields.d("nope", "x")


def test_contains_protocol():
    fields = make_fields(4)
    assert "x" in fields
    assert "u" not in fields
