"""Burgers residual, trainable coefficients, and the 3-D Poisson residual."""

import numpy as np
import pytest

from repro import autodiff as ad
from repro.autodiff import gradients
from repro.autodiff import Tensor
from repro.pde import (
    Burgers1D, Fields, NavierStokes2D, NavierStokes3D, Poisson3D,
    TrainableCoefficient, burgers_travelling_wave,
)


class TestBurgers:
    def fields_on(self, n=48, seed=0):
        rng = np.random.default_rng(seed)
        features = rng.uniform(-1.0, 1.0, (n, 2))
        return Fields.from_features(features, spatial_names=("x", "t"))

    def test_travelling_wave_is_exact(self):
        nu = 0.1
        fields = self.fields_on()
        x, t = fields.get("x"), fields.get("t")
        a, c = 0.5, 0.5
        xi = (x - c * t) * (a / (2.0 * nu))
        fields.register("u", c - a * ad.tanh(xi))
        res = Burgers1D(nu=nu).residuals(fields)["burgers"]
        assert np.allclose(res.numpy(), 0.0, atol=1e-9)

    def test_wave_helper_matches_tensor_form(self):
        nu, a, c = 0.2, 0.4, 0.3
        x = np.linspace(-1, 1, 20)
        t = np.full_like(x, 0.5)
        values = burgers_travelling_wave(x, t, nu, amplitude=a, speed=c)
        expected = c - a * np.tanh((x - c * t) * a / (2 * nu))
        assert np.allclose(values, expected)

    def test_inviscid_limit_detects_nonsolution(self):
        fields = self.fields_on()
        x, t = fields.get("x"), fields.get("t")
        fields.register("u", x * 1.0 + t * 0.0)  # u=x: u_t + u u_x = x != 0
        res = Burgers1D(nu=0.0).residuals(fields)["burgers"]
        assert np.allclose(res.numpy(), x.numpy(), atol=1e-12)


class TestTrainableCoefficient:
    def test_positive_transform_roundtrip(self):
        coeff = TrainableCoefficient(0.37, positive=True)
        assert np.isclose(coeff.value(), 0.37, rtol=1e-6)

    def test_unconstrained(self):
        coeff = TrainableCoefficient(-2.0, positive=False)
        assert np.isclose(coeff.value(), -2.0)

    def test_positive_requires_positive_initial(self):
        with pytest.raises(ValueError):
            TrainableCoefficient(-1.0, positive=True)

    def test_gradient_flows_to_coefficient(self):
        coeff = TrainableCoefficient(0.5)
        fields = Fields.from_features(
            np.random.default_rng(0).uniform(-1, 1, (16, 2)),
            spatial_names=("x", "t"))
        x, t = fields.get("x"), fields.get("t")
        fields.register("u", ad.sin(x) * ad.cos(t))
        res = Burgers1D(nu=coeff).residuals(fields)["burgers"]
        loss = (res * res).mean()
        grad, = gradients(loss, [coeff.raw])
        assert abs(grad.item()) > 0.0

    def test_coefficient_recovery_by_gradient_descent(self):
        # data generated with nu*=0.3; recover nu from the residual alone
        true_nu = 0.3
        rng = np.random.default_rng(1)
        features = rng.uniform(-1.0, 1.0, (128, 2))
        coeff = TrainableCoefficient(0.05)
        from repro.nn import Adam
        opt = Adam([coeff.raw], lr=0.05)
        for _ in range(150):
            fields = Fields.from_features(features, spatial_names=("x", "t"))
            x, t = fields.get("x"), fields.get("t")
            a, c = 0.5, 0.5
            xi = (x - c * t) * (a / (2.0 * true_nu))
            fields.register("u", c - a * ad.tanh(xi))
            res = Burgers1D(nu=coeff).residuals(fields)["burgers"]
            loss = (res * res).mean()
            opt.step(gradients(loss, [coeff.raw]))
        assert np.isclose(coeff.value(), true_nu, rtol=0.05)

    def test_navier_stokes_accepts_coefficient(self):
        coeff = TrainableCoefficient(0.01)
        pde = NavierStokes2D(nu=coeff)
        fields = Fields.from_features(
            np.random.default_rng(2).uniform(-1, 1, (8, 2)))
        x, y = fields.get("x"), fields.get("y")
        fields.register("u", ad.sin(x) * y)
        fields.register("v", ad.cos(y) * x)
        fields.register("p", x * y)
        res = pde.residuals(fields)
        assert all(np.all(np.isfinite(r.numpy())) for r in res.values())


class TestNavierStokes3D:
    def beltrami_fields(self, nu, k=1.3, n=40, seed=5, forced=True):
        """Register the exact ABC/Beltrami flow (A=B=C=1) on a batch."""
        rng = np.random.default_rng(seed)
        features = rng.uniform(0.0, 1.0, (n, 3))
        fields = Fields.from_features(features,
                                      spatial_names=("x", "y", "z"))
        x, y, z = fields.get("x"), fields.get("y"), fields.get("z")
        u = ad.sin(k * z) + ad.cos(k * y)
        v = ad.sin(k * x) + ad.cos(k * z)
        w = ad.sin(k * y) + ad.cos(k * x)
        p = (u * u + v * v + w * w) * -0.5
        for name, tensor in (("u", u), ("v", v), ("w", w), ("p", p)):
            fields.register(name, tensor)
        if forced:
            # the exact body force f = nu k^2 U, as constant fields
            for name, tensor in (("f_u", u), ("f_v", v), ("f_w", w)):
                fields.register(name,
                                Tensor(nu * k * k * tensor.numpy()))
        return fields

    def test_beltrami_solves_forced_navier_stokes_exactly(self):
        nu = 0.07
        fields = self.beltrami_fields(nu)
        residuals = NavierStokes3D(nu=nu).residuals(fields)
        assert set(residuals) == {"continuity", "momentum_x",
                                  "momentum_y", "momentum_z"}
        for name, tensor in residuals.items():
            assert np.allclose(tensor.numpy(), 0.0, atol=1e-9), name

    def test_unforced_residual_equals_viscous_defect(self):
        """Without the body force the momentum residual is nu k^2 U."""
        nu, k = 0.07, 1.3
        fields = self.beltrami_fields(nu, k=k, forced=False)
        residuals = NavierStokes3D(nu=nu).residuals(fields)
        for coord, var in (("momentum_x", "u"), ("momentum_y", "v"),
                           ("momentum_z", "w")):
            expected = nu * k * k * fields.get(var).numpy()
            assert np.allclose(residuals[coord].numpy(), expected,
                               atol=1e-9)

    def test_accepts_trainable_viscosity(self):
        coeff = TrainableCoefficient(0.05)
        fields = self.beltrami_fields(0.05, forced=False)
        residuals = NavierStokes3D(nu=coeff).residuals(fields)
        loss = None
        for tensor in residuals.values():
            term = (tensor * tensor).mean()
            loss = term if loss is None else loss + term
        grad, = gradients(loss, [coeff.raw])
        assert abs(grad.item()) > 0.0


class TestPoisson3D:
    def test_manufactured_3d_solution(self):
        rng = np.random.default_rng(3)
        features = rng.uniform(-1, 1, (32, 3))
        fields = Fields.from_features(features,
                                      spatial_names=("x", "y", "z"))
        x, y, z = fields.get("x"), fields.get("y"), fields.get("z")
        fields.register("u", ad.sin(x) * ad.sin(y) * ad.sin(z))
        pde = Poisson3D(source=lambda xv, yv, zv:
                        -3.0 * np.sin(xv) * np.sin(yv) * np.sin(zv))
        res = pde.residuals(fields)["poisson"]
        assert np.allclose(res.numpy(), 0.0, atol=1e-9)

    def test_harmonic_3d(self):
        rng = np.random.default_rng(4)
        features = rng.uniform(-1, 1, (24, 3))
        fields = Fields.from_features(features,
                                      spatial_names=("x", "y", "z"))
        x, y, z = fields.get("x"), fields.get("y"), fields.get("z")
        fields.register("u", x * x + y * y - 2.0 * (z * z))
        res = Poisson3D().residuals(fields)["poisson"]
        assert np.allclose(res.numpy(), 0.0, atol=1e-10)
