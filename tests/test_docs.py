"""docs/ stays in sync with the registries (mirrors the docs-check CI job).

``tools/check_docs.py`` is the enforcement point: every registered problem
needs a section in ``docs/workloads.md`` and every relative link in
``docs/`` and the README must resolve.  These tests run it as CI does —
in a subprocess, so registry experiments cannot pollute this process.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def _run(code=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO / "src") +
                         os.pathsep + env.get("PYTHONPATH", ""))
    if code is None:
        cmd = [sys.executable, str(REPO / "tools" / "check_docs.py")]
    else:
        cmd = [sys.executable, "-c", code]
    return subprocess.run(cmd, capture_output=True, text=True, env=env,
                          cwd=REPO)


def test_docs_check_passes():
    result = _run()
    assert result.returncode == 0, result.stdout + result.stderr
    assert "docs check passed" in result.stdout


def test_docs_check_detects_undocumented_problem():
    """Registering a problem without a workloads.md section must fail."""
    code = (
        "import sys\n"
        "sys.path.insert(0, 'src'); sys.path.insert(0, 'tools')\n"
        "from repro.api import register_problem\n"
        "@register_problem('totally_undocumented', config_factory=lambda\n"
        "                  scale='repro': None)\n"
        "def _build(config, n_interior, rng):\n"
        "    '''An undocumented test-only problem.'''\n"
        "import check_docs\n"
        "sys.exit(check_docs.main())\n"
    )
    result = _run(code)
    assert result.returncode == 1, result.stdout + result.stderr
    assert "totally_undocumented" in result.stdout


def test_docs_check_detects_broken_link(tmp_path):
    """A dangling relative link in docs/ must fail the check."""
    code = (
        "import sys, shutil, pathlib\n"
        "sys.path.insert(0, 'tools')\n"
        "import check_docs\n"
        f"scratch = pathlib.Path({str(tmp_path)!r})\n"
        "docs = scratch / 'docs'\n"
        "shutil.copytree('docs', docs)\n"
        "(docs / 'broken.md').write_text('see [gone](no_such_page.md)')\n"
        "(scratch / 'README.md').write_text('# stub')\n"
        "check_docs.REPO = scratch\n"
        "check_docs.DOCS = docs\n"
        "errors = check_docs.check_relative_links()\n"
        "assert any('no_such_page.md' in e for e in errors), errors\n"
    )
    result = _run(code)
    assert result.returncode == 0, result.stdout + result.stderr
