"""Validators over parameterized feature matrices (the AR validation path)."""

import numpy as np

from repro import autodiff as ad
from repro.training import PointwiseValidator


class RadiusNet:
    """Outputs (u, v, p) = (r, x*r, 0) so errors are analytic."""

    def __call__(self, features):
        x = features[:, 0:1]
        r = features[:, 2:3]
        zero = x * 0.0
        return ad.concat([r * 1.0, x * r, zero], axis=1)


def test_param_column_feeds_network():
    rng = np.random.default_rng(0)
    pts = rng.uniform(size=(60, 2))
    features = np.concatenate([pts, np.full((60, 1), 0.9)], axis=1)
    validator = PointwiseValidator(
        "ar", features,
        {"u": np.full(60, 0.9), "v": pts[:, 0] * 0.9},
        ("u", "v", "p"), param_names=("r_inner",))
    errors = validator.evaluate(RadiusNet())
    assert np.isclose(errors["u"], 0.0, atol=1e-12)
    assert np.isclose(errors["v"], 0.0, atol=1e-12)


def test_different_radii_give_different_errors():
    rng = np.random.default_rng(1)
    pts = rng.uniform(size=(60, 2))

    def validator_at(r):
        features = np.concatenate([pts, np.full((60, 1), r)], axis=1)
        return PointwiseValidator(
            "ar", features, {"u": np.full(60, 1.0)},
            ("u", "v", "p"), param_names=("r_inner",))

    net = RadiusNet()
    err_small = validator_at(0.75).evaluate(net)["u"]
    err_match = validator_at(1.0).evaluate(net)["u"]
    assert err_match < 1e-12
    assert err_small > 0.2


def test_trainer_averages_over_radii_like_paper():
    from repro.nn import Adam, FullyConnected
    from repro.training import DataConstraint, Trainer
    from repro.geometry import PointCloud

    rng = np.random.default_rng(2)
    pts = rng.uniform(size=(40, 2))
    cloud = PointCloud(coords=pts, params=np.full((40, 1), 0.9),
                       param_names=("r_inner",))
    net = FullyConnected(3, 3, width=4, depth=1,
                         rng=np.random.default_rng(3))
    constraint = DataConstraint("d", cloud, ("u", "v", "p"),
                                {"u": np.zeros(40)}, batch_size=8)
    validators = []
    for r in (1.0, 0.875, 0.75):
        features = np.concatenate([pts, np.full((40, 1), r)], axis=1)
        validators.append(PointwiseValidator(
            f"ar_r{r}", features, {"u": np.full(40, r)},
            ("u", "v", "p"), param_names=("r_inner",)))
    trainer = Trainer(net, [constraint], Adam(net.parameters()),
                      validators=validators, seed=0)
    merged = trainer.validate()
    per = [v.evaluate(net)["u"] for v in validators]
    assert np.isclose(merged["u"], np.mean(per))
