"""Constraints and validators."""

import numpy as np
import pytest

from repro import autodiff as ad
from repro.geometry import PointCloud, Rectangle
from repro.nn import FullyConnected
from repro.pde import Poisson2D
from repro.training import (
    BoundaryConstraint, InteriorConstraint, PointwiseValidator, relative_l2,
)

RNG = np.random.default_rng(0)


class StubNet:
    """Fake network: columns are [2*x, x+y]."""

    def __call__(self, features):
        x = features[:, 0:1]
        y = features[:, 1:2]
        return ad.concat([2.0 * x, x + y], axis=1)


class TestInteriorConstraint:
    def make(self, sdf_weighting=False, **kw):
        rect = Rectangle((0.0, 0.0), (1.0, 1.0))
        cloud = rect.sample_interior(64, RNG)
        net = FullyConnected(2, 1, width=8, depth=1,
                             rng=np.random.default_rng(1))
        constraint = InteriorConstraint("interior", cloud, Poisson2D(),
                                        batch_size=16,
                                        sdf_weighting=sdf_weighting, **kw)
        return constraint, net, cloud

    def test_residual_shapes(self):
        constraint, net, _ = self.make()
        residuals, weight = constraint.residuals(net, np.arange(16))
        assert set(residuals) == {"poisson"}
        assert residuals["poisson"].shape == (16, 1)
        assert weight is None

    def test_sdf_weighting_returns_wall_distances(self):
        constraint, net, cloud = self.make(sdf_weighting=True)
        _, weight = constraint.residuals(net, np.arange(8))
        assert weight.shape == (8, 1)
        assert np.allclose(weight, cloud.sdf[:8])

    def test_residual_weights_scale(self):
        plain, net, _ = self.make()
        scaled = InteriorConstraint("interior", plain.cloud, Poisson2D(),
                                    batch_size=16,
                                    residual_weights={"poisson": 3.0},
                                    sdf_weighting=False)
        r_plain, _ = plain.residuals(net, np.arange(8))
        r_scaled, _ = scaled.residuals(net, np.arange(8))
        assert np.allclose(r_scaled["poisson"].numpy(),
                           3.0 * r_plain["poisson"].numpy())

    def test_n_points(self):
        constraint, _, cloud = self.make()
        assert constraint.n_points == len(cloud)


class TestBoundaryConstraint:
    def make_cloud(self, n=32):
        rect = Rectangle((0.0, 0.0), (1.0, 1.0))
        return rect.sample_boundary(n, RNG)

    def test_constant_target(self):
        cloud = self.make_cloud()
        bc = BoundaryConstraint("lid", cloud, ("u", "v"), {"u": 1.0},
                                batch_size=8)
        residuals, _ = bc.residuals(StubNet(), np.arange(8))
        expected = 2.0 * cloud.coords[:8, 0:1] - 1.0
        assert np.allclose(residuals["lid_u"].numpy(), expected)

    def test_callable_target(self):
        cloud = self.make_cloud()
        bc = BoundaryConstraint("wall", cloud, ("u", "v"),
                                {"v": lambda c, p: c[:, 0] + c[:, 1]},
                                batch_size=8)
        residuals, _ = bc.residuals(StubNet(), np.arange(8))
        assert np.allclose(residuals["wall_v"].numpy(), 0.0, atol=1e-12)

    def test_unknown_target_rejected(self):
        cloud = self.make_cloud()
        with pytest.raises(KeyError):
            BoundaryConstraint("bc", cloud, ("u",), {"w": 0.0}, batch_size=8)

    def test_multiple_targets(self):
        cloud = self.make_cloud()
        bc = BoundaryConstraint("noslip", cloud, ("u", "v"),
                                {"u": 0.0, "v": 0.0}, batch_size=8)
        residuals, _ = bc.residuals(StubNet(), np.arange(4))
        assert set(residuals) == {"noslip_u", "noslip_v"}


class TestRelativeL2:
    def test_formula(self):
        assert np.isclose(relative_l2([1.0, 1.0], [1.0, 0.0]),
                          1.0 / 1.0)

    def test_zero_error(self):
        assert relative_l2([2.0, 3.0], [2.0, 3.0]) == 0.0

    def test_zero_reference_fallback(self):
        assert np.isclose(relative_l2([3.0, 4.0], [0.0, 0.0]), 5.0)


class TestPointwiseValidator:
    def test_exact_prediction_gives_zero_error(self):
        features = RNG.uniform(size=(50, 2))
        refs = {"u": 2.0 * features[:, 0], "v": features.sum(axis=1)}
        validator = PointwiseValidator("test", features, refs, ("u", "v"))
        errors = validator.evaluate(StubNet())
        assert np.isclose(errors["u"], 0.0, atol=1e-12)
        assert np.isclose(errors["v"], 0.0, atol=1e-12)

    def test_derived_variable(self):
        features = RNG.uniform(size=(40, 2))
        refs = {"w": 4.0 * features[:, 0]}
        validator = PointwiseValidator(
            "test", features, refs, ("u", "v"),
            derived={"w": lambda fields: fields.get("u") * 2.0})
        errors = validator.evaluate(StubNet())
        assert np.isclose(errors["w"], 0.0, atol=1e-12)

    def test_unresolvable_variable_rejected(self):
        with pytest.raises(KeyError):
            PointwiseValidator("bad", np.zeros((5, 2)),
                               {"zeta": np.zeros(5)}, ("u",))

    def test_imperfect_prediction_positive_error(self):
        features = RNG.uniform(size=(30, 2))
        refs = {"u": np.zeros(30)}
        validator = PointwiseValidator("test", features, refs, ("u", "v"))
        errors = validator.evaluate(StubNet())
        assert errors["u"] > 0.0
