"""DataConstraint and end-to-end inverse-problem training."""

import numpy as np
import pytest

from repro import autodiff as ad
from repro.geometry import Rectangle
from repro.nn import Adam, FullyConnected
from repro.pde import Burgers1D, TrainableCoefficient
from repro.training import DataConstraint, InteriorConstraint, Trainer
from repro.geometry import PointCloud

RNG = np.random.default_rng(0)


class StubNet:
    def __call__(self, features):
        x = features[:, 0:1]
        y = features[:, 1:2]
        return ad.concat([2.0 * x, x + y], axis=1)


class TestDataConstraint:
    def make_cloud(self, n=40):
        return PointCloud(coords=RNG.uniform(size=(n, 2)))

    def test_zero_residual_on_exact_data(self):
        cloud = self.make_cloud()
        dc = DataConstraint("sensors", cloud, ("u", "v"),
                            {"u": 2.0 * cloud.coords[:, 0]}, batch_size=8)
        residuals, weight = dc.residuals(StubNet(), np.arange(8))
        assert np.allclose(residuals["sensors_u"].numpy(), 0.0, atol=1e-12)
        assert weight is None

    def test_nonzero_residual_on_biased_data(self):
        cloud = self.make_cloud()
        dc = DataConstraint("sensors", cloud, ("u", "v"),
                            {"u": np.zeros(len(cloud))}, batch_size=8)
        residuals, _ = dc.residuals(StubNet(), np.arange(8))
        expected = 2.0 * cloud.coords[:8, 0:1]
        assert np.allclose(residuals["sensors_u"].numpy(), expected)

    def test_unknown_variable_rejected(self):
        with pytest.raises(KeyError):
            DataConstraint("bad", self.make_cloud(), ("u",),
                           {"w": np.zeros(40)}, batch_size=8)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DataConstraint("bad", self.make_cloud(), ("u", "v"),
                           {"u": np.zeros(7)}, batch_size=8)


class TestInverseTraining:
    def test_recover_viscosity_from_data(self):
        """Joint (net, nu) training on Burgers data generated at nu*=0.25."""
        true_nu = 0.25
        amplitude, speed = 0.5, 0.5
        rng = np.random.default_rng(1)

        coords = rng.uniform(-1.0, 1.0, (1200, 2))   # (x, t)
        cloud = PointCloud(coords=coords)
        from repro.pde import burgers_travelling_wave
        data = burgers_travelling_wave(coords[:, 0], coords[:, 1], true_nu,
                                       amplitude=amplitude, speed=speed)

        coeff = TrainableCoefficient(0.05, name="nu")
        pde = Burgers1D(nu=coeff)
        interior = InteriorConstraint("interior", cloud, pde, batch_size=96,
                                      sdf_weighting=False,
                                      spatial_names=("x", "t"))
        sensors = DataConstraint("sensors", cloud, ("u",), {"u": data},
                                 batch_size=96, weight=20.0,
                                 spatial_names=("x", "t"))

        net = FullyConnected(2, 1, width=24, depth=2, activation="tanh",
                             rng=np.random.default_rng(2))
        params = net.parameters() + [coeff.raw]
        trainer = Trainer(net, [interior, sensors],
                          Adam(params, lr=5e-3),
                          extra_parameters=[coeff.raw], seed=0)
        trainer.train(700, validate_every=10_000, record_every=200)

        assert np.isclose(coeff.value(), true_nu, rtol=0.25), \
            f"recovered nu={coeff.value():.3f}, true {true_nu}"
