"""History records and Table-1/2 summary statistics."""

import numpy as np

from repro.training import History


def make_history():
    history = History(label="demo")
    errs = [0.5, 0.3, 0.2, 0.25, 0.15]
    for i, e in enumerate(errs):
        history.record(step=i * 100, wall_time=float(i), loss=1.0 / (i + 1),
                       errors={"u": e, "v": e * 2}, probe_points=i * 10)
    return history


def test_min_error():
    history = make_history()
    assert np.isclose(history.min_error("u"), 0.15)
    assert np.isclose(history.min_error("v"), 0.30)


def test_time_to_reach():
    history = make_history()
    assert history.time_to_reach("u", 0.3) == 1.0
    assert history.time_to_reach("u", 0.10) is None
    assert history.time_to_reach("u", 0.5) == 0.0


def test_value_at_min():
    history = make_history()
    # min of u is at the last record, where v = 0.30
    assert np.isclose(history.value_at_min("u", "v"), 0.30)


def test_error_series_drops_nan():
    history = History()
    history.record(0, 0.0, 1.0, errors={"u": 0.5})
    history.record(1, 1.0, 0.9, errors={})           # no validation this step
    history.record(2, 2.0, 0.8, errors={"u": 0.4})
    times, values = history.error_series("u")
    assert len(values) == 2
    assert np.allclose(times, [0.0, 2.0])


def test_late_variable_gets_nan_padding():
    history = History()
    history.record(0, 0.0, 1.0, errors={"u": 0.5})
    history.record(1, 1.0, 0.9, errors={"u": 0.4, "p": 0.9})
    assert len(history.errors["p"]) == 2
    assert np.isnan(history.errors["p"][0])


def test_unknown_variable_empty():
    history = make_history()
    times, values = history.error_series("nope")
    assert len(times) == 0
    assert np.isnan(history.min_error("nope"))


def test_csv_roundtrip(tmp_path):
    history = make_history()
    path = tmp_path / "hist.csv"
    history.to_csv(path)
    loaded = History.from_csv(path, label="demo")
    assert loaded.steps == history.steps
    assert np.allclose(loaded.losses, history.losses)
    assert np.allclose(loaded.errors["u"], history.errors["u"])
    assert loaded.probe_points == history.probe_points
