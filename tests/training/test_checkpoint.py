"""Checkpoint save/restore roundtrips."""

import numpy as np

from repro.autodiff import Tensor, gradients
from repro.nn import Adam, FullyConnected, SGD
from repro.training.checkpoint import load_checkpoint, save_checkpoint


def train_a_bit(net, opt, steps=5, seed=0):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(size=(32, 2))
    for _ in range(steps):
        loss = (net(Tensor(xs)) ** 2.0).mean()
        opt.step(gradients(loss, net.parameters()))
    return xs


def test_net_roundtrip(tmp_path):
    net = FullyConnected(2, 1, width=6, depth=2,
                         rng=np.random.default_rng(0))
    path = tmp_path / "ckpt.npz"
    save_checkpoint(path, net)
    xs = np.random.default_rng(1).uniform(size=(8, 2))
    before = net(Tensor(xs)).numpy().copy()
    for p in net.parameters():
        p.data += 1.0
    load_checkpoint(path, net)
    assert np.allclose(net(Tensor(xs)).numpy(), before)


def test_adam_state_resumes_identically(tmp_path):
    def fresh():
        net = FullyConnected(2, 1, width=6, depth=1,
                             rng=np.random.default_rng(0))
        return net, Adam(net.parameters(), lr=1e-2)

    # train 5 steps, checkpoint, train 5 more
    net_a, opt_a = fresh()
    train_a_bit(net_a, opt_a, steps=5)
    path = tmp_path / "mid.npz"
    save_checkpoint(path, net_a, opt_a, extra={"step": 5})
    train_a_bit(net_a, opt_a, steps=5, seed=9)
    reference = net_a.state_dict()

    # restore into a fresh trainer and repeat the last 5 steps
    net_b, opt_b = fresh()
    extra = load_checkpoint(path, net_b, opt_b)
    assert int(extra["step"]) == 5
    assert opt_b.step_count == 5
    train_a_bit(net_b, opt_b, steps=5, seed=9)
    for key, value in net_b.state_dict().items():
        assert np.allclose(value, reference[key], atol=1e-12), key


def test_sgd_momentum_state_roundtrip(tmp_path):
    net = FullyConnected(2, 1, width=4, depth=1,
                         rng=np.random.default_rng(2))
    opt = SGD(net.parameters(), lr=1e-2, momentum=0.9)
    train_a_bit(net, opt, steps=3)
    path = tmp_path / "sgd.npz"
    save_checkpoint(path, net, opt)

    net2 = FullyConnected(2, 1, width=4, depth=1,
                          rng=np.random.default_rng(3))
    opt2 = SGD(net2.parameters(), lr=999.0, momentum=0.9)
    load_checkpoint(path, net2, opt2)
    assert np.isclose(opt2.lr, 1e-2)
    for v1, v2 in zip(opt._velocity, opt2._velocity):
        assert np.allclose(v1, v2)


def test_missing_optimizer_state_raises(tmp_path):
    import pytest
    net = FullyConnected(2, 1, width=4, depth=1,
                         rng=np.random.default_rng(0))
    path = tmp_path / "no_opt.npz"
    save_checkpoint(path, net)
    with pytest.raises(KeyError):
        load_checkpoint(path, net, Adam(net.parameters()))
