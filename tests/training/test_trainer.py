"""Trainer integration: end-to-end convergence and sampler wiring."""

import numpy as np
import pytest

from repro.geometry import Rectangle
from repro.nn import Adam, ExponentialDecayLR, FullyConnected
from repro.pde import Poisson2D
from repro.sampling import MISSampler, SGMSampler, UniformSampler
from repro.training import (
    BoundaryConstraint, InteriorConstraint, PointwiseValidator, Trainer,
)


def poisson_problem(n_interior=1500, seed=0):
    rng = np.random.default_rng(seed)
    rect = Rectangle((0.0, 0.0), (1.0, 1.0))
    interior = rect.sample_interior(n_interior, rng)
    boundary = rect.sample_boundary(400, rng)
    pde = Poisson2D(source=lambda x, y:
                    -2.0 * np.pi ** 2 * np.sin(np.pi * x) * np.sin(np.pi * y))
    ic = InteriorConstraint("interior", interior, pde, batch_size=128,
                            sdf_weighting=False)
    bc = BoundaryConstraint("walls", boundary, ("u",), {"u": 0.0},
                            batch_size=64, weight=10.0)
    val_pts = rng.uniform(0, 1, (300, 2))
    ref = np.sin(np.pi * val_pts[:, 0]) * np.sin(np.pi * val_pts[:, 1])
    validator = PointwiseValidator("poisson", val_pts, {"u": ref}, ("u",))
    return interior, [ic, bc], validator


def make_net(seed=1, width=24, depth=2):
    return FullyConnected(2, 1, width=width, depth=depth, activation="tanh",
                          rng=np.random.default_rng(seed))


class TestEndToEnd:
    def test_poisson_converges_with_uniform_sampling(self):
        _, constraints, validator = poisson_problem()
        net = make_net()
        trainer = Trainer(net, constraints, Adam(net.parameters(), lr=3e-3),
                          validators=[validator], seed=0)
        history = trainer.train(600, validate_every=100, record_every=100)
        assert history.min_error("u") < 0.2
        assert history.losses[-1] < 0.1 * history.losses[0]

    def test_poisson_with_sgm_sampler(self):
        interior, constraints, validator = poisson_problem()
        net = make_net()
        sgm = SGMSampler(interior.features(), k=8, level=4, tau_e=150,
                         tau_G=10_000, probe_ratio=0.15, seed=0,
                         num_vectors=8)
        trainer = Trainer(net, constraints,
                          Adam(net.parameters(), lr=3e-3),
                          samplers={"interior": sgm},
                          validators=[validator], seed=0)
        history = trainer.train(400, validate_every=100, record_every=100)
        assert history.min_error("u") < 0.35
        assert sgm.probe_points > 0
        assert history.probe_points[-1] == trainer.total_probe_points()

    def test_poisson_with_mis_sampler(self):
        interior, constraints, validator = poisson_problem()
        net = make_net()
        mis = MISSampler(len(interior), tau_e=150, measure="loss", seed=0)
        trainer = Trainer(net, constraints,
                          Adam(net.parameters(), lr=3e-3),
                          samplers={"interior": mis},
                          validators=[validator], seed=0)
        history = trainer.train(300, validate_every=100, record_every=100)
        # MIS probes the whole dataset at steps 0 and 150
        assert mis.probe_points == 2 * len(interior)
        assert np.isfinite(history.losses[-1])


class TestMechanics:
    def test_requires_constraints(self):
        net = make_net()
        with pytest.raises(ValueError):
            Trainer(net, [], Adam(net.parameters()))

    def test_uniform_sampler_default_no_overhead(self):
        _, constraints, _ = poisson_problem(n_interior=300)
        net = make_net(width=8, depth=1)
        trainer = Trainer(net, constraints, Adam(net.parameters()), seed=0)
        trainer.train(20, validate_every=10, record_every=10)
        assert trainer.total_probe_points() == 0

    def test_scheduler_steps(self):
        _, constraints, _ = poisson_problem(n_interior=300)
        net = make_net(width=8, depth=1)
        opt = Adam(net.parameters(), lr=1e-3)
        sched = ExponentialDecayLR(opt, decay_rate=0.5, decay_steps=10)
        trainer = Trainer(net, constraints, opt, scheduler=sched, seed=0)
        trainer.train(10, validate_every=100, record_every=5)
        assert opt.lr < 1e-3

    def test_wall_times_monotone(self):
        _, constraints, _ = poisson_problem(n_interior=300)
        net = make_net(width=8, depth=1)
        trainer = Trainer(net, constraints, Adam(net.parameters()), seed=0)
        history = trainer.train(30, validate_every=15, record_every=5)
        assert all(b >= a for a, b in zip(history.wall_times,
                                          history.wall_times[1:]))

    def test_multiple_validators_averaged(self):
        _, constraints, _ = poisson_problem(n_interior=300)
        rng = np.random.default_rng(5)
        pts = rng.uniform(size=(50, 2))
        v1 = PointwiseValidator("a", pts, {"u": np.zeros(50)}, ("u",))
        v2 = PointwiseValidator("b", pts, {"u": np.ones(50)}, ("u",))
        net = make_net(width=8, depth=1)
        trainer = Trainer(net, constraints, Adam(net.parameters()),
                          validators=[v1, v2], seed=0)
        merged = trainer.validate()
        direct = 0.5 * (v1.evaluate(net)["u"] + v2.evaluate(net)["u"])
        assert np.isclose(merged["u"], direct)

    def test_background_rebuild_credits_clock(self):
        interior, constraints, _ = poisson_problem(n_interior=600)
        net = make_net(width=8, depth=1)

        def build(background):
            sgm = SGMSampler(interior.features(), k=6, level=3, tau_e=20,
                             tau_G=25, seed=0, num_vectors=8)
            trainer = Trainer(net, constraints, Adam(net.parameters()),
                              samplers={"interior": sgm},
                              background_rebuild=background, seed=0)
            history = trainer.train(60, validate_every=100, record_every=10)
            return history.wall_times[-1], sgm

        charged, sgm_charged = build(background=False)
        hidden, sgm_hidden = build(background=True)
        assert sgm_charged.rebuild_count >= 2
        # hidden accounting must not exceed charged accounting by the cost
        # of the mid-training rebuilds (same machine, same work)
        assert hidden <= charged * 1.5
