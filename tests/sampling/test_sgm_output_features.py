"""SGM output-feature graph rebuild (paper §3.2, last sentence)."""

import numpy as np

from repro.sampling import SGMSampler


def make_sampler(append, n=400, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.uniform(size=(n, 2))
    # outputs split the cloud along x irrespective of spatial proximity
    outputs = (features[:, 0:1] > 0.5).astype(float) * 10.0
    sampler = SGMSampler(features, k=6, level=4, tau_e=50, tau_G=100,
                         append_output_features=append,
                         output_feature_weight=3.0, seed=seed,
                         num_vectors=8)
    sampler.bind_probes(probe_loss=lambda i: np.ones(len(i)),
                        probe_outputs=lambda i: outputs[i])
    return sampler, features, outputs


def test_first_build_ignores_outputs():
    sampler, _, _ = make_sampler(append=True)
    sampler.start()
    assert sampler.probe_points == 0  # no output probe on the initial build


def test_rebuild_probes_outputs_once_per_rebuild():
    sampler, _, _ = make_sampler(append=True)
    sampler.start()
    before = sampler.probe_points
    sampler.build_clusters()
    assert sampler.probe_points == before + sampler.n_points


def test_output_features_change_clustering():
    plain, features, outputs = make_sampler(append=False, seed=3)
    plain.start()
    plain.build_clusters()
    labels_plain = plain.labels.copy()

    aug, _, _ = make_sampler(append=True, seed=3)
    aug.start()
    aug.build_clusters()
    labels_aug = aug.labels.copy()

    # with the output column, clusters should rarely straddle the output
    # discontinuity at x = 0.5
    def straddle_fraction(labels):
        left = features[:, 0] <= 0.5
        straddling = 0
        for c in np.unique(labels):
            members = labels == c
            if left[members].any() and (~left[members]).any():
                straddling += members.sum()
        return straddling / len(labels)

    assert straddle_fraction(labels_aug) < straddle_fraction(labels_plain)


def test_disabled_by_default():
    sampler, _, _ = make_sampler(append=False)
    sampler.start()
    sampler.build_clusters()
    assert sampler.probe_points == 0
