"""RAR sampler (extension baseline)."""

import numpy as np
import pytest

from repro.sampling import RARSampler


def make(n=400, **kw):
    sampler = RARSampler(n, initial_fraction=0.25, add_per_refresh=50,
                         candidate_pool=100, tau_e=10, seed=0, **kw)
    losses = np.linspace(0.0, 1.0, n)  # worst residuals at high indices
    sampler.bind_probes(probe_loss=lambda i: losses[i])
    return sampler


def test_initial_active_fraction():
    sampler = make()
    assert len(sampler.active) == 100


def test_batches_drawn_from_active_set():
    sampler = make()
    batch = sampler.batch_indices(0, 32)
    assert set(batch.tolist()) <= set(sampler.active.tolist())


def test_refresh_grows_active_set_toward_high_loss():
    sampler = make()
    before = len(sampler.active)
    for step in range(11):
        sampler.batch_indices(step, 16)
    assert len(sampler.active) == before + 50
    # newly added points should skew to the high-loss end
    new_points = sampler.active[before:]
    assert new_points.mean() > 200


def test_probe_overhead_counted():
    sampler = make()
    for step in range(11):
        sampler.batch_indices(step, 16)
    assert sampler.probe_points == 100


def test_requires_probe():
    sampler = RARSampler(100, tau_e=5, seed=0)
    with pytest.raises(RuntimeError):
        for step in range(6):
            sampler.batch_indices(step, 8)


def test_saturation_stops_growth():
    sampler = RARSampler(60, initial_fraction=1.0, add_per_refresh=10,
                         tau_e=5, seed=0)
    sampler.bind_probes(probe_loss=lambda i: np.ones(len(i)))
    for step in range(11):
        sampler.batch_indices(step, 8)
    assert len(sampler.active) == 60


def test_state_dict_round_trip_preserves_active_set():
    # the grown active set is the sampler's whole point: a resume that
    # reset it to the initial fraction would silently undo refinement
    sampler = make()
    for step in range(11):
        sampler.batch_indices(step, 16)
    state = sampler.state_dict()

    losses = np.linspace(0.0, 1.0, 400)
    restored = RARSampler(400, initial_fraction=0.25, add_per_refresh=50,
                          candidate_pool=100, tau_e=10, seed=0)
    restored.bind_probes(probe_loss=lambda i: losses[i])
    restored.load_state_dict(state)

    np.testing.assert_array_equal(restored.active, sampler.active)
    assert restored._active_set == sampler._active_set
    # identical RNG + active set: the next batches match exactly
    for step in range(11, 25):
        np.testing.assert_array_equal(restored.batch_indices(step, 16),
                                      sampler.batch_indices(step, 16))
    np.testing.assert_array_equal(restored.active, sampler.active)
