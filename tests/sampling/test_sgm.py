"""SGM-PINN sampler: clustering, scoring, epoch invariants (Algorithm 1)."""

import numpy as np
import pytest

from repro.sampling import SGMSampler


def grid_features(n_side=20):
    xs = np.linspace(0.0, 1.0, n_side)
    gx, gy = np.meshgrid(xs, xs)
    return np.stack([gx.ravel(), gy.ravel()], axis=1)


def corner_loss(features):
    """High loss concentrated in the top-right corner."""
    def probe(indices):
        pts = features[indices]
        return np.exp(-20.0 * ((pts[:, 0] - 1.0) ** 2 +
                               (pts[:, 1] - 1.0) ** 2))
    return probe


def make_sampler(features=None, **kwargs):
    features = grid_features() if features is None else features
    defaults = dict(k=8, level=4, tau_e=50, tau_G=200, probe_ratio=0.15,
                    seed=0, num_vectors=12)
    defaults.update(kwargs)
    sampler = SGMSampler(features, **defaults)
    sampler.bind_probes(probe_loss=corner_loss(features),
                        probe_outputs=lambda i: features[i])
    return sampler, features


class TestClustering:
    def test_start_builds_partition(self):
        sampler, features = make_sampler()
        sampler.start()
        assert sampler.labels.shape == (len(features),)
        total = sum(len(c) for c in sampler.clusters)
        assert total == len(features)

    def test_rebuild_counted(self):
        sampler, _ = make_sampler()
        sampler.start()
        assert sampler.rebuild_count == 1
        assert sampler.rebuild_seconds > 0.0

    def test_tau_g_triggers_rebuild(self):
        sampler, _ = make_sampler(tau_G=60, tau_e=30)
        for step in range(61):
            sampler.batch_indices(step, 16)
        assert sampler.rebuild_count == 2


class TestScoring:
    def test_probe_count_is_r_fraction(self):
        sampler, _ = make_sampler(probe_ratio=0.15)
        sampler.start()
        sampler.refresh_scores()
        expected = sum(max(1, int(np.ceil(0.15 * len(c))))
                       for c in sampler.clusters)
        assert sampler.probe_points == expected

    def test_ratios_within_requested_range(self):
        sampler, _ = make_sampler(ratio_range=(0.1, 0.8))
        sampler.start()
        sampler.refresh_scores()
        assert np.all(sampler.sampling_ratios >= 0.1 - 1e-12)
        assert np.all(sampler.sampling_ratios <= 0.8 + 1e-12)

    def test_high_loss_cluster_gets_max_ratio(self):
        sampler, features = make_sampler()
        sampler.start()
        sampler.refresh_scores()
        centroids = np.array([features[c].mean(axis=0)
                              for c in sampler.clusters])
        corner = np.argmin(np.linalg.norm(centroids - np.array([1.0, 1.0]),
                                          axis=1))
        far = np.argmin(np.linalg.norm(centroids - np.array([0.0, 0.0]),
                                       axis=1))
        assert (sampler.sampling_ratios[corner] >
                sampler.sampling_ratios[far])
        assert np.isclose(sampler.sampling_ratios[corner], sampler.ratio_max,
                          atol=0.05)

    def test_requires_probe_binding(self):
        sampler = SGMSampler(grid_features(), k=8, level=4)
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.refresh_scores()


class TestEpoch:
    def test_floor_one_sample_per_cluster(self):
        sampler, _ = make_sampler(ratio_range=(0.01, 0.9))
        sampler.start()
        sampler.refresh_scores()
        composition = sampler.epoch_composition()
        assert np.all(composition >= 1)

    def test_composition_matches_ratios(self):
        sampler, _ = make_sampler()
        sampler.start()
        sampler.refresh_scores()
        composition = sampler.epoch_composition()
        for count, ratio, members in zip(composition,
                                         sampler.sampling_ratios,
                                         sampler.clusters):
            assert count == max(1, int(round(ratio * len(members))))

    def test_epoch_has_no_duplicates(self):
        sampler, _ = make_sampler()
        sampler.start()
        sampler.refresh_scores()
        assert len(np.unique(sampler._epoch)) == len(sampler._epoch)

    def test_batches_cycle_through_epoch(self):
        sampler, _ = make_sampler(tau_e=1000)
        seen = set()
        for step in range(60):
            seen.update(sampler.batch_indices(step, 16).tolist())
        assert seen == set(sampler._epoch.tolist())

    def test_batch_exact_size_even_when_wrapping(self):
        sampler, _ = make_sampler()
        sampler.start()
        sampler.refresh_scores()
        epoch_len = len(sampler._epoch)
        batch = sampler.batch_indices(1, epoch_len + 7)
        assert len(batch) == epoch_len + 7

    def test_tau_e_triggers_refresh(self):
        sampler, _ = make_sampler(tau_e=25, tau_G=10_000)
        for step in range(51):
            sampler.batch_indices(step, 8)
        assert sampler.refresh_count == 3  # steps 0, 25, 50

    def test_deterministic_under_seed(self):
        a, _ = make_sampler(seed=11)
        b, _ = make_sampler(seed=11)
        batch_a = a.batch_indices(0, 32)
        batch_b = b.batch_indices(0, 32)
        assert np.array_equal(batch_a, batch_b)


class TestISR:
    def features_with_transition(self):
        rng = np.random.default_rng(0)
        return rng.uniform(size=(500, 2))

    def test_isr_requires_output_probe(self):
        features = self.features_with_transition()
        sampler = SGMSampler(features, k=8, level=4, use_isr=True, seed=0)
        sampler.bind_probes(probe_loss=lambda i: np.ones(len(i)))
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.refresh_scores()

    def test_isr_boosts_unstable_region(self):
        features = self.features_with_transition()
        # outputs change sharply across x = 0.5; losses are uniform so the
        # ISR term is the only signal
        outputs = np.tanh(30.0 * (features[:, 0:1] - 0.5))

        def make(use_isr):
            sampler = SGMSampler(features, k=8, level=4, use_isr=use_isr,
                                 probe_ratio=0.5, isr_k=8, seed=0,
                                 num_vectors=12)
            sampler.bind_probes(probe_loss=lambda i: np.ones(len(i)),
                                probe_outputs=lambda i: outputs[i])
            sampler.start()
            sampler.refresh_scores()
            centroids = np.array([features[c].mean(axis=0)
                                  for c in sampler.clusters])
            near = np.abs(centroids[:, 0] - 0.5) < 0.1
            far = np.abs(centroids[:, 0] - 0.5) > 0.3
            if not near.any() or not far.any():
                pytest.skip("clustering left no near/far clusters")
            return (sampler.sampling_ratios[near].mean(),
                    sampler.sampling_ratios[far].mean())

    # without ISR all ratios collapse to the same value (uniform loss)
        near_plain, far_plain = make(use_isr=False)
        assert np.isclose(near_plain, far_plain, atol=1e-6)
        near_isr, far_isr = make(use_isr=True)
        assert near_isr > far_isr
