"""Hypothesis property tests on sampler invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import MISSampler, SGMSampler, UniformSampler


@settings(max_examples=25, deadline=None)
@given(st.integers(10, 200), st.integers(1, 32), st.integers(0, 2 ** 31))
def test_uniform_batches_always_valid(n, batch, seed):
    sampler = UniformSampler(n, seed=seed)
    indices = sampler.batch_indices(0, batch)
    assert indices.shape == (batch,)
    assert indices.min() >= 0 and indices.max() < n


@settings(max_examples=25, deadline=None)
@given(st.integers(20, 150), st.integers(0, 2 ** 31))
def test_mis_probabilities_always_normalised(n, seed):
    rng = np.random.default_rng(seed)
    values = rng.exponential(size=n)
    sampler = MISSampler(n, tau_e=100, measure="loss", seed=seed)
    sampler.bind_probes(probe_loss=lambda i: values[i],
                        probe_grad_norm=lambda i: values[i])
    sampler.batch_indices(0, min(8, n))
    assert np.isclose(sampler.probabilities.sum(), 1.0)
    assert np.all(sampler.probabilities > 0)


@settings(max_examples=25, deadline=None)
@given(st.integers(20, 150), st.integers(0, 2 ** 31))
def test_mis_weights_positive_mean_one(n, seed):
    rng = np.random.default_rng(seed)
    values = rng.exponential(size=n) + 0.01
    sampler = MISSampler(n, tau_e=100, measure="loss", seed=seed)
    sampler.bind_probes(probe_loss=lambda i: values[i],
                        probe_grad_norm=lambda i: values[i])
    batch = sampler.batch_indices(0, min(16, n))
    weights = sampler.batch_weights(batch)
    assert np.all(weights > 0)
    assert np.isclose(weights.mean(), 1.0)


@settings(max_examples=10, deadline=None)
@given(st.integers(100, 300), st.integers(2, 6), st.integers(0, 2 ** 31))
def test_sgm_epoch_always_covers_every_cluster(n, level, seed):
    rng = np.random.default_rng(seed)
    features = rng.uniform(size=(n, 2))
    losses = rng.exponential(size=n)
    sampler = SGMSampler(features, k=min(6, n - 2), level=level, tau_e=1000,
                         tau_G=10_000, seed=seed, num_vectors=6)
    sampler.bind_probes(probe_loss=lambda i: losses[i])
    sampler.start()
    sampler.refresh_scores()
    composition = sampler.epoch_composition()
    assert len(composition) == len(sampler.clusters)
    assert np.all(composition >= 1)                  # Algorithm 1 floor
    assert np.all(composition <= [len(c) for c in sampler.clusters])


@settings(max_examples=10, deadline=None)
@given(st.integers(100, 250), st.integers(0, 2 ** 31))
def test_sgm_probe_subset_within_clusters(n, seed):
    rng = np.random.default_rng(seed)
    features = rng.uniform(size=(n, 2))
    sampler = SGMSampler(features, k=6, level=3, probe_ratio=0.2,
                         seed=seed, num_vectors=6)
    sampler.bind_probes(probe_loss=lambda i: np.ones(len(i)))
    sampler.start()
    subsets = sampler._probe_subset()
    for members, subset in zip(sampler.clusters, subsets):
        assert set(subset.tolist()) <= set(members.tolist())
        assert len(subset) == max(1, int(np.ceil(0.2 * len(members))))
