"""Uniform and MIS baseline samplers."""

import numpy as np
import pytest

from repro.sampling import MISSampler, UniformSampler


class TestUniform:
    def test_batches_within_range_and_unique(self):
        sampler = UniformSampler(100, seed=0)
        batch = sampler.batch_indices(0, 32)
        assert batch.shape == (32,)
        assert len(np.unique(batch)) == 32
        assert batch.min() >= 0 and batch.max() < 100

    def test_deterministic_under_seed(self):
        a = UniformSampler(50, seed=3).batch_indices(0, 10)
        b = UniformSampler(50, seed=3).batch_indices(0, 10)
        assert np.array_equal(a, b)

    def test_batch_larger_than_dataset_allows_replacement(self):
        sampler = UniformSampler(10, seed=0)
        batch = sampler.batch_indices(0, 25)
        assert batch.shape == (25,)

    def test_no_probe_overhead(self):
        sampler = UniformSampler(100)
        sampler.batch_indices(0, 8)
        assert sampler.probe_points == 0

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            UniformSampler(0)

    def test_coverage_over_many_batches(self):
        sampler = UniformSampler(40, seed=1)
        seen = set()
        for step in range(50):
            seen.update(sampler.batch_indices(step, 8).tolist())
        assert len(seen) == 40


class TestMIS:
    def make_sampler(self, n=200, measure="grad_norm", tau_e=10, **kw):
        sampler = MISSampler(n, tau_e=tau_e, measure=measure, seed=0, **kw)
        # importance concentrated on the first half of the indices
        values = np.zeros(n)
        values[: n // 2] = 1.0

        def probe(indices):
            return values[indices]

        sampler.bind_probes(probe_loss=probe, probe_grad_norm=probe)
        return sampler, values

    def test_requires_probes(self):
        sampler = MISSampler(10, tau_e=5)
        with pytest.raises(RuntimeError):
            sampler.batch_indices(0, 4)

    def test_probabilities_follow_measure(self):
        sampler, values = self.make_sampler()
        sampler.batch_indices(0, 16)
        p = sampler.probabilities
        assert p[0] > 3.0 * p[-1]
        assert np.isclose(p.sum(), 1.0)

    def test_floor_keeps_all_points_reachable(self):
        sampler, _ = self.make_sampler(floor_fraction=0.2)
        sampler.batch_indices(0, 16)
        assert sampler.probabilities.min() > 0.0

    def test_empirical_sampling_bias(self):
        sampler, values = self.make_sampler()
        counts = np.zeros(200)
        for step in range(200):
            batch = sampler.batch_indices(step, 32)
            np.add.at(counts, batch, 1.0)
        high = counts[:100].sum()
        low = counts[100:].sum()
        assert high > 2.0 * low

    def test_probe_overhead_counted_per_refresh(self):
        sampler, _ = self.make_sampler(n=100, tau_e=10)
        for step in range(20):
            sampler.batch_indices(step, 8)
        # refresh at step 0 and step 10
        assert sampler.probe_points == 200

    def test_importance_weights_mean_one(self):
        sampler, _ = self.make_sampler()
        batch = sampler.batch_indices(0, 32)
        w = sampler.batch_weights(batch)
        assert np.isclose(w.mean(), 1.0)
        assert np.all(w > 0)

    def test_zero_measure_falls_back_to_uniform(self):
        sampler = MISSampler(50, tau_e=5, seed=0)
        sampler.bind_probes(probe_loss=lambda i: np.zeros(len(i)),
                            probe_grad_norm=lambda i: np.zeros(len(i)))
        sampler.batch_indices(0, 8)
        assert np.allclose(sampler.probabilities, 1.0 / 50)

    def test_loss_measure_uses_loss_probe(self):
        sampler = MISSampler(60, tau_e=5, measure="loss", seed=0)
        values = np.linspace(0, 1, 60)
        sampler.bind_probes(probe_loss=lambda i: values[i],
                            probe_grad_norm=lambda i: np.zeros(len(i)))
        sampler.batch_indices(0, 8)
        assert sampler.probabilities[-1] > sampler.probabilities[0]

    def test_unknown_measure_rejected(self):
        with pytest.raises(ValueError):
            MISSampler(10, measure="nope")

    def test_batch_larger_than_dataset_falls_back_to_replacement(self):
        # regression: rng.choice(replace=False, p=...) used to raise
        # "Cannot take a larger sample than population" on small configs
        sampler, _ = self.make_sampler(n=10)
        batch = sampler.batch_indices(0, 25)
        assert batch.shape == (25,)
        assert batch.min() >= 0 and batch.max() < 10
        w = sampler.batch_weights(batch)
        assert np.all(np.isfinite(w)) and np.isclose(w.mean(), 1.0)

    def test_batch_exceeding_admissible_points_uses_replacement(self):
        # floor_fraction=0 zeroes half the probabilities; a batch larger
        # than the admissible half must still draw (with replacement) and
        # never touch a zero-probability index
        sampler, values = self.make_sampler(n=20, floor_fraction=0.0)
        batch = sampler.batch_indices(0, 15)
        assert batch.shape == (15,)
        assert np.all(values[batch] > 0)

    def test_small_batch_path_leaves_common_path_untouched(self):
        # the replacement fallback must not perturb the RNG stream of
        # ordinary draws (golden trajectories depend on it)
        a, _ = self.make_sampler(n=50)
        b, _ = self.make_sampler(n=50)
        assert np.array_equal(a.batch_indices(0, 16), b.batch_indices(0, 16))

    def test_rejects_non_positive_batch(self):
        sampler, _ = self.make_sampler(n=10)
        with pytest.raises(ValueError, match="positive"):
            sampler.batch_indices(0, 0)
