"""Property tests on every *registered* sampler, via the registry factory.

The suite engine trains arbitrary registered samplers, so the invariants
the trainer relies on must hold for every registry entry, not just the
hand-constructed samplers of ``test_sampler_properties``:

* batch indices are always in-bounds and exactly the requested size;
* importance probabilities/ratios are finite and normalised/bounded;
* batch weights (when a sampler reweights) are positive with mean one.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import list_samplers, make_sampler
from repro.experiments import burgers_config
from repro.geometry import PointCloud

ALL_SAMPLERS = list_samplers()


def _config(n):
    """A smoke config with SGM hyper-parameters sized for tiny clouds."""
    return dataclasses.replace(
        burgers_config("smoke"), knn_k=min(6, n - 2), lrd_level=3,
        tau_e=50, tau_G=200, probe_ratio=0.25)


def _cloud(n, seed):
    rng = np.random.default_rng(seed)
    return PointCloud(coords=rng.uniform(size=(n, 2)))


def _bind_fake_probes(sampler, n, seed):
    """Deterministic trainer-free probes (loss, outputs, grad norm)."""
    rng = np.random.default_rng(seed + 1)
    losses = rng.exponential(size=n) + 1e-3
    outputs = rng.normal(size=(n, 2))
    sampler.bind_probes(probe_loss=lambda idx: losses[np.asarray(idx)],
                        probe_outputs=lambda idx: outputs[np.asarray(idx)],
                        probe_grad_norm=lambda idx: losses[np.asarray(idx)])


def _make(kind, n, seed):
    sampler = make_sampler(kind, _config(n), _cloud(n, seed), seed)
    _bind_fake_probes(sampler, n, seed)
    sampler.start()
    return sampler


def test_registry_has_the_paper_samplers():
    assert {"uniform", "mis", "sgm", "sgm_s"} <= set(ALL_SAMPLERS)


@settings(max_examples=8, deadline=None)
@given(st.sampled_from(ALL_SAMPLERS), st.integers(40, 120),
       st.integers(1, 48), st.integers(0, 2 ** 31))
def test_batches_in_bounds_and_sized(kind, n, batch, seed):
    sampler = _make(kind, n, seed)
    for step in range(4):
        indices = sampler.batch_indices(step, batch)
        assert indices.shape == (batch,)
        assert indices.dtype.kind in "iu"
        assert indices.min() >= 0 and indices.max() < n


@settings(max_examples=8, deadline=None)
@given(st.sampled_from(ALL_SAMPLERS), st.integers(40, 120),
       st.integers(0, 2 ** 31))
def test_batch_weights_finite_positive_mean_one(kind, n, seed):
    sampler = _make(kind, n, seed)
    indices = sampler.batch_indices(0, min(16, n))
    weights = sampler.batch_weights(indices)
    if weights is not None:      # uniform/SGM batches are unweighted
        weights = np.asarray(weights, dtype=np.float64)
        assert np.all(np.isfinite(weights))
        assert np.all(weights > 0)
        assert np.isclose(weights.mean(), 1.0)


@settings(max_examples=8, deadline=None)
@given(st.integers(40, 120), st.integers(0, 2 ** 31))
def test_mis_probabilities_normalised_via_registry(n, seed):
    sampler = _make("mis", n, seed)
    sampler.batch_indices(0, min(8, n))
    probs = np.asarray(sampler.probabilities, dtype=np.float64)
    assert probs.shape == (n,)
    assert np.all(np.isfinite(probs)) and np.all(probs > 0)
    assert np.isclose(probs.sum(), 1.0)


@settings(max_examples=6, deadline=None)
@given(st.sampled_from(["sgm", "sgm_s"]), st.integers(60, 140),
       st.integers(0, 2 ** 31))
def test_sgm_ratios_finite_and_bounded_via_registry(kind, n, seed):
    sampler = _make(kind, n, seed)
    sampler.refresh_scores()
    ratios = np.asarray(sampler.sampling_ratios, dtype=np.float64)
    assert len(ratios) == len(sampler.clusters)
    assert np.all(np.isfinite(ratios))
    assert np.all((ratios >= sampler.ratio_min)
                  & (ratios <= sampler.ratio_max))
    scores = np.asarray(sampler.cluster_scores, dtype=np.float64)
    assert np.all(np.isfinite(scores))


@settings(max_examples=6, deadline=None)
@given(st.sampled_from(ALL_SAMPLERS), st.integers(40, 100),
       st.integers(0, 2 ** 31))
def test_same_seed_same_batches_via_registry(kind, n, seed):
    a = _make(kind, n, seed)
    b = _make(kind, n, seed)
    for step in range(3):
        assert np.array_equal(a.batch_indices(step, 8),
                              b.batch_indices(step, 8))
