"""Determinism of the Session-based training engine (same seed → same run)."""

import numpy as np

import repro
from repro.experiments import ldc_config, ldc_methods


def _train(method, seed=None, steps=10):
    config = ldc_config("smoke")
    session = (repro.problem("ldc", config=config)
               .sampler(method.kind)
               .n_interior(method.n_interior)
               .batch_size(method.batch_size))
    if seed is not None:
        session.seed(seed)
    return session.train(steps=steps)


def test_same_seed_same_losses():
    method = ldc_methods(ldc_config("smoke"))[0]
    a = _train(method)
    b = _train(method)
    assert np.allclose(a.history.losses, b.history.losses)


def test_sgm_run_deterministic():
    config = ldc_config("smoke")
    method = [m for m in ldc_methods(config) if m.kind == "sgm"][0]
    a = _train(method)
    b = _train(method)
    assert np.allclose(a.history.losses, b.history.losses)
    assert np.array_equal(a.sampler.labels, b.sampler.labels)


def test_different_methods_share_initial_network():
    config = ldc_config("smoke")
    uniform, _, mis, sgm = ldc_methods(config)
    r_uniform = _train(uniform, steps=1)
    r_sgm = _train(sgm, steps=1)
    # same seed => identical initialisation (the fair-comparison invariant)
    state_u = r_uniform.net.state_dict()
    state_s = r_sgm.net.state_dict()
    # compare the first-layer weights before training diverges materially
    assert state_u["layers.0.weight"].shape == state_s["layers.0.weight"].shape


def test_seed_changes_trajectory():
    method = ldc_methods(ldc_config("smoke"))[0]
    a = _train(method, seed=1)
    b = _train(method, seed=2)
    assert not np.allclose(a.history.losses, b.history.losses)
