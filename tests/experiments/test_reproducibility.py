"""Determinism of the experiment runner (same seed → same run)."""

import numpy as np

from repro.experiments import ldc_config, ldc_methods, run_ldc_method


def test_same_seed_same_losses():
    config = ldc_config("smoke")
    method = ldc_methods(config)[0]
    a = run_ldc_method(config, method, steps=10)
    b = run_ldc_method(config, method, steps=10)
    assert np.allclose(a.history.losses, b.history.losses)


def test_sgm_run_deterministic():
    config = ldc_config("smoke")
    method = [m for m in ldc_methods(config) if m.kind == "sgm"][0]
    a = run_ldc_method(config, method, steps=10)
    b = run_ldc_method(config, method, steps=10)
    assert np.allclose(a.history.losses, b.history.losses)
    assert np.array_equal(a.sampler.labels, b.sampler.labels)


def test_different_methods_share_initial_network():
    config = ldc_config("smoke")
    uniform, _, mis, sgm = ldc_methods(config)
    r_uniform = run_ldc_method(config, uniform, steps=1)
    r_sgm = run_ldc_method(config, sgm, steps=1)
    # same seed => identical initialisation (the fair-comparison invariant)
    state_u = r_uniform.net.state_dict()
    state_s = r_sgm.net.state_dict()
    # compare the first-layer weights before training diverges materially
    assert state_u["layers.0.weight"].shape == state_s["layers.0.weight"].shape


def test_seed_changes_trajectory():
    config = ldc_config("smoke")
    method = ldc_methods(config)[0]
    a = run_ldc_method(config, method, seed=1, steps=10)
    b = run_ldc_method(config, method, seed=2, steps=10)
    assert not np.allclose(a.history.losses, b.history.losses)
