"""The two PR-5 workloads: inverse_burgers and ns3d as first-class problems.

Covers the inverse path end-to-end — coefficient state-dict round-trip,
the engine folding the coefficient into the optimizer, a convergence smoke
test asserting recovered ν moves toward the true value — and the ns3d
problem's shape claims (third velocity output ``w``, 3-D probes).
"""

import numpy as np
import pytest

import repro
from repro.api import build_problem
from repro.experiments import inverse_burgers_config, ns3d_config
from repro.experiments.ns3d import ns3d_exact
from repro.pde import TrainableCoefficient


class TestTrainableCoefficientStateDict:
    def test_roundtrip_restores_value(self):
        coeff = TrainableCoefficient(0.37, positive=True, name="nu")
        state = coeff.state_dict()
        assert sorted(state) == ["raw"]

        other = TrainableCoefficient(5.0, positive=True, name="nu")
        other.load_state_dict(state)
        assert other.value() == coeff.value()

    def test_roundtrip_preserves_raw_bits(self):
        coeff = TrainableCoefficient(0.123456789, positive=False)
        other = TrainableCoefficient(9.0, positive=False)
        other.load_state_dict(coeff.state_dict())
        np.testing.assert_array_equal(other.raw.data, coeff.raw.data)

    def test_state_dict_copies(self):
        coeff = TrainableCoefficient(0.5)
        state = coeff.state_dict()
        state["raw"][...] = 99.0
        assert coeff.value() != pytest.approx(99.0)


class TestInverseBurgersProblem:
    def test_problem_carries_the_coefficient(self):
        config = inverse_burgers_config("smoke")
        prob = build_problem("inverse_burgers", config, 300,
                             np.random.default_rng(0))
        assert sorted(prob.extra_modules) == ["nu"]
        assert len(prob.extra_parameters) == 1
        assert prob.extra_modules["nu"].value() == pytest.approx(
            config.nu_initial, rel=1e-6)
        assert [c.name for c in prob.constraints] == ["interior", "sensors"]
        assert prob.spatial_names == ("x", "t")

    def test_engine_optimizes_the_coefficient(self):
        """After a few steps the coefficient must have moved off its
        initial value (its parameter is inside the Adam parameter list)."""
        config = inverse_burgers_config("smoke")
        result = (repro.problem("inverse_burgers", scale="smoke")
                  .sampler("uniform").n_interior(300).train(steps=5))
        assert "nu" in result.coefficients
        assert result.coefficients["nu"] != pytest.approx(
            config.nu_initial, rel=1e-9)

    def test_validator_reports_recovery_error(self):
        result = (repro.problem("inverse_burgers", scale="smoke")
                  .sampler("uniform").n_interior(300).train(steps=3))
        assert sorted(result.history.errors) == ["nu", "u"]
        # at the (10x too small) initial guess the recovery error is ~0.9
        first_nu_err = result.history.errors["nu"][0]
        assert 0.5 < first_nu_err <= 1.0

    def test_convergence_smoke_nu_moves_toward_true(self):
        """Recovered ν must close most of the gap to the true viscosity."""
        config = inverse_burgers_config("smoke")
        result = (repro.problem("inverse_burgers", scale="smoke")
                  .sampler("uniform").train(steps=600))
        recovered = result.coefficients["nu"]
        initial_gap = abs(config.nu_initial - config.true_nu)
        final_gap = abs(recovered - config.true_nu)
        assert final_gap < 0.5 * initial_gap, (
            f"recovered nu={recovered:.4f} did not move toward "
            f"true nu={config.true_nu} (started {config.nu_initial})")
        # and the recorded err(nu) series reflects the same convergence
        nu_errors = [e for e in result.history.errors["nu"]
                     if np.isfinite(e)]
        assert nu_errors[-1] < nu_errors[0]


class TestNS3DProblem:
    def test_outputs_include_w(self):
        prob = build_problem("ns3d", ns3d_config("smoke"), 300,
                             np.random.default_rng(0))
        assert prob.output_names == ("u", "v", "w", "p")
        assert prob.spatial_names == ("x", "y", "z")
        assert prob.in_features == 3 and prob.out_features == 4
        assert prob.extra_modules == {}

    def test_beltrami_field_is_divergence_free_numerically(self):
        config = ns3d_config("smoke")
        rng = np.random.default_rng(1)
        pts = rng.uniform(0.1, 0.9, (50, 3))
        h = 1e-6
        div = np.zeros(50)
        for axis, var in enumerate(("u", "v", "w")):
            plus, minus = pts.copy(), pts.copy()
            plus[:, axis] += h
            minus[:, axis] -= h
            fp = ns3d_exact(config, plus[:, 0], plus[:, 1], plus[:, 2])[var]
            fm = ns3d_exact(config, minus[:, 0], minus[:, 1],
                            minus[:, 2])[var]
            div += (fp - fm) / (2 * h)
        assert np.max(np.abs(div)) < 1e-5

    def test_trains_and_validates_all_four_outputs(self):
        result = (repro.problem("ns3d", scale="smoke")
                  .sampler("uniform").n_interior(300).train(steps=3))
        assert sorted(result.history.errors) == ["p", "u", "v", "w"]
        assert np.all(np.isfinite(result.history.losses))
