"""The registry-driven suite engine: resolution, parity, ordering."""

import numpy as np
import pytest

import repro
from repro.api import MethodSpec
from repro.experiments import (
    SuiteResult, burgers_config, ldc_config, method_label,
    methods_from_samplers, resolve_methods, run_suite, suite_table,
)

SAMPLERS = ("uniform", "mis", "sgm", "sgm_s")


# ----------------------------------------------------------------------
# Method resolution
# ----------------------------------------------------------------------
def test_method_label_follows_paper_columns():
    assert method_label("uniform", 500) == "U500"
    assert method_label("mis", 500) == "MIS500"
    assert method_label("sgm", 500) == "SGM500"
    assert method_label("sgm_s", 1024) == "SGM-S1024"
    assert method_label("my_rule", 64) == "MY-RULE64"


def test_methods_from_samplers_defaults_to_registry():
    config = burgers_config("smoke")
    specs = methods_from_samplers(config)
    assert [s.kind for s in specs] == sorted(SAMPLERS)
    assert all(s.n_interior == config.n_interior_small for s in specs)
    assert all(s.batch_size == config.batch_small for s in specs)


def test_resolve_methods_accepts_names_specs_and_mixtures():
    config = burgers_config("smoke")
    explicit = MethodSpec("U-big", "uniform", 600, 48)
    specs = resolve_methods(config, ["sgm", explicit])
    assert [s.label for s in specs] == [f"SGM{config.batch_small}", "U-big"]
    assert specs[1] is explicit


def test_resolve_methods_rejects_unknown_sampler_and_duplicates():
    config = burgers_config("smoke")
    with pytest.raises(KeyError, match="unknown sampler"):
        resolve_methods(config, ["not_a_sampler"])
    with pytest.raises(KeyError, match="unknown sampler"):
        resolve_methods(config, [MethodSpec("x", "bogus", 100, 8)])
    with pytest.raises(ValueError, match="duplicate"):
        resolve_methods(config, ["sgm", "sgm"])
    with pytest.raises(ValueError, match="at least one"):
        resolve_methods(config, [])


# ----------------------------------------------------------------------
# Serial execution + SuiteResult surface
# ----------------------------------------------------------------------
def test_run_suite_serial_returns_ordered_suiteresult():
    suite = run_suite("burgers", ["uniform", "sgm"], backend="serial",
                      scale="smoke", steps=4)
    assert isinstance(suite, SuiteResult)
    assert suite.problem == "burgers" and suite.backend == "serial"
    assert suite.executor == "serial"    # deprecated-name alias
    assert suite.labels == ["U32", "SGM32"]
    assert len(suite) == 2
    assert set(suite.histories()) == {"U32", "SGM32"}
    assert all(t > 0 for t in suite.timings().values())
    assert suite.total_seconds >= max(suite.timings().values())
    with pytest.raises(KeyError, match="unknown method label"):
        suite["nope"]


def test_run_suite_rejects_unknown_problem_and_backend():
    with pytest.raises(KeyError, match="unknown problem"):
        run_suite("not_a_problem", scale="smoke")
    with pytest.raises(ValueError, match="unknown backend"):
        run_suite("burgers", ["uniform"], backend="threads", scale="smoke",
                  steps=1)


def test_executor_kwarg_is_deprecated_but_still_routes():
    with pytest.warns(DeprecationWarning, match="pass backend="):
        suite = run_suite("burgers", ["uniform"], executor="serial",
                          scale="smoke", steps=2)
    assert suite.backend == "serial"
    with pytest.raises(ValueError, match="conflicting"):
        run_suite("burgers", ["uniform"], backend="serial",
                  executor="process", scale="smoke", steps=1)


def test_run_results_reconstruct_trained_networks():
    config = burgers_config("smoke")
    suite = run_suite("burgers", ["uniform"], backend="serial",
                      config=config, steps=4)
    results = suite.run_results()
    (result,) = results.values()
    # the rebuilt net must carry the exact trained parameters
    state = result.net.state_dict()
    for key, value in suite.methods[0].net_state.items():
        assert np.array_equal(state[key], value)
    assert result.sampler.probe_points == suite.methods[0].probe_points


def test_suite_table_renders_all_columns():
    suite = run_suite("burgers", ["uniform", "mis"], backend="serial",
                      scale="smoke", steps=4)
    text = suite_table(suite)
    assert "U32" in text and "MIS32" in text
    assert "train wall [s]" in text


@pytest.mark.parametrize("problem", sorted(repro.list_problems()))
def test_run_suite_works_for_every_registered_problem(problem):
    suite = run_suite(problem, ["uniform", "sgm"], backend="serial",
                      scale="smoke", steps=3)
    assert suite.problem == problem and len(suite) == 2
    for method in suite:
        assert len(method.history.losses) >= 1
        assert np.all(np.isfinite(method.history.losses))


# ----------------------------------------------------------------------
# Serial vs process parity (the scaling subsystem's core invariant)
# ----------------------------------------------------------------------
def _assert_method_parity(serial, parallel):
    assert serial.labels == parallel.labels
    for s, p in zip(serial, parallel):
        assert s.label == p.label and s.seed == p.seed
        assert np.array_equal(s.history.losses, p.history.losses), s.label
        assert s.history.steps == p.history.steps
        assert sorted(s.history.errors) == sorted(p.history.errors)
        for var in s.history.errors:
            np.testing.assert_array_equal(s.history.errors[var],
                                          p.history.errors[var])
        assert s.probe_points == p.probe_points
        if s.sampler_stats.labels is not None:
            assert np.array_equal(s.sampler_stats.labels,
                                  p.sampler_stats.labels)
        for key in s.net_state:
            assert np.array_equal(s.net_state[key], p.net_state[key]), (
                s.label, key)


def test_serial_and_process_backends_are_bit_identical():
    config = burgers_config("smoke")
    methods = ["uniform", "mis", "sgm"]
    serial = run_suite("burgers", methods, backend="serial", config=config,
                       steps=6)
    parallel = run_suite("burgers", methods, backend="process",
                         config=config, steps=6)
    _assert_method_parity(serial, parallel)


def test_process_results_keep_spec_order_not_completion_order():
    # heavier methods first: if results were appended in completion order,
    # the cheap uniform column would finish (and land) before SGM
    config = ldc_config("smoke")
    methods = [
        MethodSpec("SGM-S-heavy", "sgm_s", 900, 32),
        MethodSpec("SGM-heavy", "sgm", 900, 32),
        MethodSpec("U-light", "uniform", 120, 8),
    ]
    suite = run_suite("ldc", methods, backend="process", config=config,
                      steps=5, max_workers=3)
    assert suite.labels == ["SGM-S-heavy", "SGM-heavy", "U-light"]


def test_process_backend_respects_explicit_seed():
    a = run_suite("burgers", ["uniform"], backend="process", scale="smoke",
                  steps=5, seed=7)
    b = run_suite("burgers", ["uniform"], backend="serial", scale="smoke",
                  steps=5, seed=7)
    c = run_suite("burgers", ["uniform"], backend="serial", scale="smoke",
                  steps=5, seed=8)
    assert np.array_equal(a.methods[0].history.losses,
                          b.methods[0].history.losses)
    assert not np.allclose(b.methods[0].history.losses,
                           c.methods[0].history.losses)


# ----------------------------------------------------------------------
# Session front door
# ----------------------------------------------------------------------
def test_session_suite_applies_overrides():
    suite = (repro.problem("burgers", scale="smoke")
             .n_interior(300).batch_size(16).seed(3)
             .suite(["uniform", "sgm"], steps=4))
    assert suite.labels == ["U16", "SGM16"]
    assert suite.seed == 3
    assert all(m.spec.n_interior == 300 for m in suite)
    assert all(m.spec.batch_size == 16 for m in suite)


def test_session_suite_honours_validators_override():
    suite = (repro.problem("burgers", scale="smoke")
             .n_interior(200).validators([])
             .suite(["uniform"], backend="process", steps=4))
    # validators=[] must reach the workers: no errors recorded at all
    assert suite.methods[0].history.errors == {}


def test_run_suite_validators_override():
    serial = run_suite("burgers", ["uniform"], backend="serial",
                       scale="smoke", steps=4, validators=[])
    assert serial.methods[0].history.errors == {}


def test_session_suite_defaults_to_all_registered_samplers():
    suite = (repro.problem("burgers", scale="smoke")
             .n_interior(200).suite(steps=2))
    assert [m.kind for m in suite] == sorted(SAMPLERS)
