"""Problem builders and (smoke-scale) runner integration."""

import numpy as np
import pytest

from repro.experiments import (
    annular_ring_config, annular_ring_geometry, ar_methods, build_ar_problem,
    build_ldc_problem, ldc_config, ldc_methods,
)
from repro.experiments.annular_ring import inlet_profile

RNG = np.random.default_rng(0)


class TestLDCProblem:
    def setup_method(self):
        self.config = ldc_config("smoke")
        self.problem = build_ldc_problem(self.config, 500,
                                         np.random.default_rng(1))

    def test_constraint_names(self):
        names = [c.name for c in self.problem["constraints"]]
        assert names == ["interior", "lid", "noslip"]

    def test_interior_cloud_size_and_sdf(self):
        cloud = self.problem["interior_cloud"]
        assert len(cloud) == 500
        assert cloud.sdf is not None and np.all(cloud.sdf > 0)

    def test_lid_points_on_top_wall(self):
        lid = next(c for c in self.problem["constraints"] if c.name == "lid")
        assert np.allclose(lid.cloud.coords[:, 1], 1.0)

    def test_noslip_excludes_lid(self):
        noslip = next(c for c in self.problem["constraints"]
                      if c.name == "noslip")
        assert np.all(noslip.cloud.coords[:, 1] < 1.0)

    def test_outputs(self):
        assert self.problem["output_names"] == ("u", "v", "p")


class TestARProblem:
    def setup_method(self):
        self.config = annular_ring_config("smoke")
        self.problem = build_ar_problem(self.config, 600,
                                        np.random.default_rng(2))

    def test_constraint_names(self):
        names = [c.name for c in self.problem["constraints"]]
        assert names == ["interior", "walls", "inlet", "outlet"]

    def test_interior_has_param_column(self):
        cloud = self.problem["interior_cloud"]
        assert cloud.params.shape == (600, 1)
        assert cloud.param_names == ("r_inner",)
        lo, hi = self.config.r_inner_range
        assert np.all((cloud.params >= lo) & (cloud.params <= hi))

    def test_interior_respects_per_point_radius(self):
        cloud = self.problem["interior_cloud"]
        radii = np.linalg.norm(cloud.coords, axis=1)
        assert np.all(radii >= cloud.params[:, 0] - 1e-9)

    def test_inlet_constraint_targets_parabolic_profile(self):
        inlet = next(c for c in self.problem["constraints"]
                     if c.name == "inlet")
        assert np.allclose(inlet.cloud.coords[:, 0], -5.0)
        target = inlet.targets["u"]
        ys = np.array([0.0, 0.5, 1.0])
        coords = np.stack([np.full(3, -5.0), ys], axis=1)
        values = target(coords, None)
        assert np.isclose(values[0], 1.5)
        assert np.isclose(values[1], 1.5 * 0.75)
        assert np.isclose(values[2], 0.0)

    def test_outlet_pins_pressure(self):
        outlet = next(c for c in self.problem["constraints"]
                      if c.name == "outlet")
        assert outlet.targets == {"p": 0.0}

    def test_geometry_factory(self):
        geom = annular_ring_geometry(1.0)
        pts = np.array([[0.0, 1.5], [0.0, 0.0], [-4.0, 0.0], [0.0, 2.5]])
        inside = geom.contains(pts)
        assert inside[0] and inside[2]
        assert not inside[1] and not inside[3]

    def test_inlet_profile_helper(self):
        assert inlet_profile(np.array([2.0]), 1.5)[0] == 0.0


class TestRunnerSmoke:
    def test_method_specs_cover_table1(self):
        config = ldc_config("smoke")
        labels = [m.label for m in ldc_methods(config)]
        assert labels == ["U32", "U64", "MIS32", "SGM32"]

    def test_method_specs_cover_table2(self):
        config = annular_ring_config("smoke")
        labels = [m.label for m in ar_methods(config,
                                              include_plain_sgm=True)]
        assert labels == ["U32", "U64", "MIS32", "SGM32", "SGM-S32"]

    def test_run_single_method_smoke(self):
        from repro.experiments import run_suite
        config = ldc_config("smoke")
        method = ldc_methods(config)[0]
        suite = run_suite("ldc", [method], backend="serial", config=config,
                          steps=12)
        (result,) = suite.run_results().values()
        assert len(result.history.steps) >= 2
        assert np.isfinite(result.history.losses[-1])
        assert result.net.num_parameters() > 0

    def test_unknown_sampler_kind_rejected(self):
        from repro.api import make_sampler
        from repro.geometry import PointCloud
        cloud = PointCloud(coords=np.zeros((10, 2)))
        with pytest.raises(KeyError, match="bogus"):
            make_sampler("bogus", ldc_config("smoke"), cloud, 0)
