"""Figure generation paths with lightweight stub networks."""

import types

import numpy as np
import pytest

from repro import autodiff as ad
from repro.experiments import annular_ring_config, pressure_error_fields
from repro.experiments.annular_ring import ar_reference


class ZeroNet:
    """Predicts zero everywhere (u, v, p)."""

    def __call__(self, features):
        zero = features[:, 0:1] * 0.0
        return ad.concat([zero, zero, zero], axis=1)


class PerfectPressureNet:
    """Predicts the reference pressure exactly (u, v still zero)."""

    def __init__(self, reference):
        self.reference = reference

    def __call__(self, features):
        from repro.utils import bilinear_interpolate
        pts = features.numpy()[:, :2]
        p = bilinear_interpolate(self.reference["xs"], self.reference["ys"],
                                 self.reference["p"], pts)
        zero = features[:, 0:1] * 0.0
        from repro.autodiff import Tensor
        return ad.concat([zero, zero, Tensor(p.reshape(-1, 1))], axis=1)


@pytest.fixture(scope="module")
def config():
    return annular_ring_config("smoke")


@pytest.fixture(scope="module")
def reference(config):
    return ar_reference(config, 1.0)


def wrap(net):
    return types.SimpleNamespace(net=net)


def test_zero_net_error_equals_reference_magnitude(config, reference):
    results = {"zero": wrap(ZeroNet())}
    fig4 = pressure_error_fields(results, config, r_inner=1.0)
    mask = fig4["mask"]
    expected = np.abs(reference["p"][mask]).mean()
    assert np.isclose(fig4["mean_abs_error"]["zero"], expected, rtol=1e-9)


def test_perfect_net_error_is_zero(config, reference):
    results = {"perfect": wrap(PerfectPressureNet(reference))}
    fig4 = pressure_error_fields(results, config, r_inner=1.0)
    assert fig4["mean_abs_error"]["perfect"] < 1e-9


def test_ranking_between_methods(config, reference):
    results = {"zero": wrap(ZeroNet()),
               "perfect": wrap(PerfectPressureNet(reference))}
    fig4 = pressure_error_fields(results, config, r_inner=1.0)
    assert (fig4["mean_abs_error"]["perfect"] <
            fig4["mean_abs_error"]["zero"])


def test_fields_shape_and_nan_outside(config):
    results = {"zero": wrap(ZeroNet())}
    fig4 = pressure_error_fields(results, config, r_inner=1.0)
    field = fig4["fields"]["zero"]
    assert field.shape == fig4["mask"].shape
    assert np.all(np.isnan(field[~fig4["mask"]]))
    assert np.all(np.isfinite(field[fig4["mask"]]))
