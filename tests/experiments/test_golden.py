"""Golden-trajectory regression tests: every problem × sampler pair.

Short deterministic loss trajectories (6 steps, every step recorded) are
pinned in ``golden_trajectories.json`` for the full registry cross product,
so refactors of the trainer/sampler/problem wiring cannot silently change
numerics.  If a change is *intentionally* numeric-affecting, regenerate the
goldens and explain the shift in the commit::

    PYTHONPATH=src python tests/experiments/test_golden.py
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.api import list_problems, list_samplers

GOLDEN_PATH = Path(__file__).parent / "golden_trajectories.json"

#: one deterministic, CI-sized run per registry pair
STEPS = 6
N_INTERIOR = 400
RTOL = 1e-5

#: the 20 problem × sampler pairs pinned before inverse_burgers/ns3d were
#: registered (PR 5); their trajectories must never change when the
#: registry grows — regeneration only *adds* entries for new pairs
LEGACY_PROBLEMS = ("advection_diffusion", "annular_ring", "burgers", "ldc",
                   "poisson3d")
LEGACY_KEYS = tuple(f"{p}:{s}" for p in LEGACY_PROBLEMS
                    for s in ("mis", "sgm", "sgm_s", "uniform"))
#: sha256 of the canonical JSON of the 20 legacy entries.  Re-pinned once
#: when the float64 gradient-upcast fix (mask dtypes, sdf sample weights,
#: coefficient dtype) intentionally moved the ldc/annular_ring entries onto
#: float32-exact trajectories; the other 12 legacy entries stayed
#: byte-identical to the PR 2-4 pin.
LEGACY_SHA256 = ("b49dadd898ac79d3f995da25398b49921a0ff68917c7f25c"
                 "56e6604da7c1a4c0")


def _pairs():
    return [(prob, samp) for prob in list_problems()
            for samp in list_samplers()]


def _run_pair(problem, sampler):
    """The pinned scenario: smoke scale, tiny dataset, every step recorded,
    no validators (losses alone pin the numerics)."""
    result = (repro.problem(problem, scale="smoke")
              .config(record_every=1)
              .sampler(sampler)
              .n_interior(N_INTERIOR)
              .validators([])
              .train(steps=STEPS))
    return [float(loss) for loss in result.history.losses]


def _load_goldens():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def test_legacy_golden_entries_are_byte_identical():
    """Growing the registry must not touch the 20 pre-existing entries."""
    goldens = _load_goldens()["trajectories"]
    legacy = {key: goldens[key] for key in sorted(LEGACY_KEYS)}
    blob = json.dumps(legacy, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    assert digest == LEGACY_SHA256, (
        "the pre-existing golden trajectories changed; registering new "
        "problems must only ADD entries (regenerate() preserves existing "
        "keys — did something alter shared numerics?)")


def test_golden_file_covers_the_full_registry():
    goldens = _load_goldens()["trajectories"]
    assert sorted(goldens) == sorted(f"{p}:{s}" for p, s in _pairs()), (
        "registry changed: regenerate with "
        "`PYTHONPATH=src python tests/experiments/test_golden.py`")


@pytest.mark.parametrize("problem,sampler", _pairs())
def test_golden_trajectory(problem, sampler):
    goldens = _load_goldens()["trajectories"]
    key = f"{problem}:{sampler}"
    assert key in goldens, (f"no golden for {key}; regenerate with "
                            f"`python tests/experiments/test_golden.py`")
    losses = _run_pair(problem, sampler)
    expected = goldens[key]
    assert len(losses) == len(expected)
    np.testing.assert_allclose(
        losses, expected, rtol=RTOL, atol=1e-12,
        err_msg=f"{key} trajectory drifted from the pinned golden; if the "
                f"numeric change is intentional, regenerate the goldens")


def regenerate(all_pairs=False):
    """Pin trajectories for registry pairs missing from the golden file.

    Existing entries are preserved byte-identically (so growing the
    registry cannot silently shift old numerics); pass ``all_pairs=True``
    (CLI: ``--all``) after an *intentional* numeric change to re-pin
    everything — and update ``LEGACY_SHA256`` accordingly.
    """
    trajectories = {}
    if not all_pairs and GOLDEN_PATH.exists():
        trajectories = _load_goldens()["trajectories"]
        stale = sorted(set(trajectories) -
                       {f"{p}:{s}" for p, s in _pairs()})
        for key in stale:
            print(f"dropping stale entry {key}")
            del trajectories[key]
    for problem, sampler in _pairs():
        key = f"{problem}:{sampler}"
        if key in trajectories:
            continue
        trajectories[key] = _run_pair(problem, sampler)
        print(f"{key}: {trajectories[key]}")
    payload = {
        "scenario": {"scale": "smoke", "n_interior": N_INTERIOR,
                     "steps": STEPS, "record_every": 1, "validators": []},
        "trajectories": dict(sorted(trajectories.items())),
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(trajectories)} entries)")


if __name__ == "__main__":
    import sys
    regenerate(all_pairs="--all" in sys.argv)
