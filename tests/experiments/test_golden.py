"""Golden-trajectory regression tests: every problem × sampler pair.

Short deterministic loss trajectories (6 steps, every step recorded) are
pinned in ``golden_trajectories.json`` for the full registry cross product,
so refactors of the trainer/sampler/problem wiring cannot silently change
numerics.  If a change is *intentionally* numeric-affecting, regenerate the
goldens and explain the shift in the commit::

    PYTHONPATH=src python tests/experiments/test_golden.py
"""

import json
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.api import list_problems, list_samplers

GOLDEN_PATH = Path(__file__).parent / "golden_trajectories.json"

#: one deterministic, CI-sized run per registry pair
STEPS = 6
N_INTERIOR = 400
RTOL = 1e-5


def _pairs():
    return [(prob, samp) for prob in list_problems()
            for samp in list_samplers()]


def _run_pair(problem, sampler):
    """The pinned scenario: smoke scale, tiny dataset, every step recorded,
    no validators (losses alone pin the numerics)."""
    result = (repro.problem(problem, scale="smoke")
              .config(record_every=1)
              .sampler(sampler)
              .n_interior(N_INTERIOR)
              .validators([])
              .train(steps=STEPS))
    return [float(loss) for loss in result.history.losses]


def _load_goldens():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def test_golden_file_covers_the_full_registry():
    goldens = _load_goldens()["trajectories"]
    assert sorted(goldens) == sorted(f"{p}:{s}" for p, s in _pairs()), (
        "registry changed: regenerate with "
        "`PYTHONPATH=src python tests/experiments/test_golden.py`")


@pytest.mark.parametrize("problem,sampler", _pairs())
def test_golden_trajectory(problem, sampler):
    goldens = _load_goldens()["trajectories"]
    key = f"{problem}:{sampler}"
    assert key in goldens, (f"no golden for {key}; regenerate with "
                            f"`python tests/experiments/test_golden.py`")
    losses = _run_pair(problem, sampler)
    expected = goldens[key]
    assert len(losses) == len(expected)
    np.testing.assert_allclose(
        losses, expected, rtol=RTOL, atol=1e-12,
        err_msg=f"{key} trajectory drifted from the pinned golden; if the "
                f"numeric change is intentional, regenerate the goldens")


def regenerate():
    """Re-pin every trajectory (run after intentional numeric changes)."""
    trajectories = {}
    for problem, sampler in _pairs():
        key = f"{problem}:{sampler}"
        trajectories[key] = _run_pair(problem, sampler)
        print(f"{key}: {trajectories[key]}")
    payload = {
        "scenario": {"scale": "smoke", "n_interior": N_INTERIOR,
                     "steps": STEPS, "record_every": 1, "validators": []},
        "trajectories": trajectories,
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    regenerate()
