"""Config presets and table/figure formatters (no training required)."""

import numpy as np
import pytest

from repro.experiments import (
    annular_ring_config, format_table, ldc_config, table1_rows, table2_rows,
    error_curves, render_curves, curves_to_csv,
)
from repro.training import History


class TestConfigs:
    @pytest.mark.parametrize("factory", (ldc_config, annular_ring_config))
    @pytest.mark.parametrize("scale", ("paper", "repro", "smoke"))
    def test_presets_constructible(self, factory, scale):
        config = factory(scale)
        assert config.scale == scale

    @pytest.mark.parametrize("factory", (ldc_config, annular_ring_config))
    def test_unknown_scale_rejected(self, factory):
        with pytest.raises(ValueError):
            factory("gigantic")

    @pytest.mark.parametrize("factory", (ldc_config, annular_ring_config))
    @pytest.mark.parametrize("scale", ("paper", "repro", "smoke"))
    def test_structural_ratios_preserved(self, factory, scale):
        config = factory(scale)
        assert config.batch_small < config.batch_large
        assert config.n_interior_small < config.n_interior_large
        assert config.tau_e < config.tau_G <= config.steps
        assert 0.0 < config.probe_ratio < 1.0

    def test_paper_preset_matches_paper_hyperparameters(self):
        ldc = ldc_config("paper")
        assert ldc.batch_small == 500 and ldc.batch_large == 4000
        assert ldc.tau_e == 7000 and ldc.tau_G == 25_000
        assert ldc.knn_k == 30 and ldc.lrd_level == 10
        ar = annular_ring_config("paper")
        assert ar.batch_small == 1024 and ar.batch_large == 4096
        assert ar.knn_k == 7 and ar.lrd_level == 6
        assert ar.r_inner_range == (0.75, 1.1)
        assert ar.validation_radii == (1.0, 0.875, 0.75)


def synthetic_history(label, best, n=10, extra=("nu",)):
    history = History(label=label)
    for i in range(n):
        err = best + (1.0 - best) * (1.0 - i / (n - 1.0))
        errors = {"u": err, "v": err * 1.1, "p": err * 1.2}
        for var in extra:
            errors[var] = err * 0.9
        history.record(i * 10, float(i), 1.0 / (i + 1.0), errors=errors)
    return history


class TestTables:
    def make_ldc_histories(self):
        return {
            "U128": synthetic_history("U128", 0.30),
            "U320": synthetic_history("U320", 0.20),
            "MIS128": synthetic_history("MIS128", 0.18),
            "SGM128": synthetic_history("SGM128", 0.12),
        }

    def test_table1_structure(self):
        columns, rows = table1_rows(self.make_ldc_histories())
        labels = [r[0] for r in rows]
        assert labels[:3] == ["Min(u)", "Min(v)", "Min(nu)"]
        assert any(l.startswith("T(U320_u") for l in labels)
        assert any(l.startswith("T(SGM128_v") for l in labels)
        assert columns == ["U128", "U320", "MIS128", "SGM128"]

    def test_table1_min_values(self):
        columns, rows = table1_rows(self.make_ldc_histories())
        min_u = dict(rows)["Min(u)"]
        assert np.isclose(min_u["SGM128"], 0.12)
        assert np.isclose(min_u["U320"], 0.20)

    def test_table1_time_blanks_for_unreached(self):
        histories = self.make_ldc_histories()
        columns, rows = table1_rows(histories)
        t_sgm_u = dict(rows)["T(SGM128_u)"]
        # only SGM reaches its own best error
        assert t_sgm_u["SGM128"] is not None
        assert t_sgm_u["U128"] is None

    def test_table2_structure(self):
        histories = {
            "U128": synthetic_history("U128", 0.30, extra=()),
            "U320": synthetic_history("U320", 0.20, extra=()),
            "MIS128": synthetic_history("MIS128", 0.25, extra=()),
            "SGM-S128": synthetic_history("SGM-S128", 0.15, extra=()),
        }
        columns, rows = table2_rows(histories)
        labels = [r[0] for r in rows]
        assert "p at Min(v)" in labels
        value = dict(rows)["p at Min(v)"]["SGM-S128"]
        assert np.isclose(value, 0.15 * 1.2, atol=1e-9)

    def test_format_table_renders_blanks(self):
        text = format_table("demo", ["A", "B"],
                            [("row", {"A": 1.0, "B": None})])
        assert "demo" in text and "-" in text and "1.0000" in text


class TestFigures:
    def test_error_curves_and_render(self):
        histories = {"U128": synthetic_history("U128", 0.3)}
        curves = error_curves(histories, var="v")
        times, errors = curves["U128"]
        assert len(times) == 10
        chart = render_curves(curves, "demo fig")
        assert "demo fig" in chart

    def test_curves_csv(self, tmp_path):
        histories = {"A": synthetic_history("A", 0.3, n=5)}
        path = tmp_path / "fig.csv"
        curves_to_csv(error_curves(histories, "u"), path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "label,wall_time,error"
        assert len(lines) == 6
