"""Cross-problem benchmark matrix: grid resolution, per-cell parity with
the standalone suite, shared-pool failure handling."""

import numpy as np
import pytest

import repro
from repro.api import MethodSpec
from repro.experiments import (
    MatrixResult, burgers_config, matrix_table, resolve_problems, run_matrix,
    run_suite,
)
from repro.store import RunStore

PROBLEMS = ("burgers", "poisson3d")
SAMPLERS = ("uniform", "sgm")


# ----------------------------------------------------------------------
# Grid resolution
# ----------------------------------------------------------------------
def test_resolve_problems_all_and_none_expand_to_registry():
    assert resolve_problems() == sorted(repro.list_problems())
    assert resolve_problems("all") == sorted(repro.list_problems())


def test_resolve_problems_accepts_comma_string_and_list():
    assert resolve_problems("burgers, poisson3d") == ["burgers", "poisson3d"]
    assert resolve_problems(["poisson3d", "burgers"]) == ["poisson3d",
                                                         "burgers"]


def test_resolve_problems_rejects_unknown_duplicates_empty():
    with pytest.raises(KeyError, match="unknown problem"):
        resolve_problems(["not_a_problem"])
    with pytest.raises(ValueError, match="duplicate"):
        resolve_problems(["burgers", "burgers"])
    with pytest.raises(ValueError, match="at least one"):
        resolve_problems([])
    with pytest.raises(ValueError, match="at least one"):
        resolve_problems(",")


# ----------------------------------------------------------------------
# MatrixResult surface
# ----------------------------------------------------------------------
def test_run_matrix_serial_returns_grid_grouped_by_problem():
    matrix = run_matrix(PROBLEMS, SAMPLERS, backend="serial",
                        scale="smoke", steps=3)
    assert isinstance(matrix, MatrixResult)
    assert matrix.problems == list(PROBLEMS)
    assert matrix.n_cells == len(matrix) == 4
    assert matrix.labels() == {"burgers": ["U32", "SGM32"],
                               "poisson3d": ["U32", "SGM32"]}
    cells = list(matrix.cells())
    assert [(p, m.label) for p, m in cells] == [
        ("burgers", "U32"), ("burgers", "SGM32"),
        ("poisson3d", "U32"), ("poisson3d", "SGM32")]
    suite = matrix["burgers"]
    assert suite.problem == "burgers" and suite.labels == ["U32", "SGM32"]
    with pytest.raises(KeyError, match="unknown problem"):
        matrix["nope"]
    assert matrix.run_ids() == []       # no store attached
    for _, method in cells:
        assert np.all(np.isfinite(method.history.losses))


def test_matrix_table_renders_one_block_per_problem():
    matrix = run_matrix(PROBLEMS, ["uniform"], backend="serial",
                        scale="smoke", steps=3)
    text = matrix_table(matrix)
    assert "[burgers]" in text and "[poisson3d]" in text
    assert "2 problems" in text


def test_run_matrix_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown backend"):
        run_matrix(["burgers"], ["uniform"], backend="threads",
                   scale="smoke", steps=1)


# ----------------------------------------------------------------------
# Per-cell parity with the standalone suite (the tentpole invariant)
# ----------------------------------------------------------------------
def _assert_cell_parity(suite_method, matrix_method):
    assert suite_method.label == matrix_method.label
    assert suite_method.seed == matrix_method.seed
    assert np.array_equal(suite_method.history.losses,
                          matrix_method.history.losses)
    assert suite_method.history.steps == matrix_method.history.steps
    for var in suite_method.history.errors:
        np.testing.assert_array_equal(suite_method.history.errors[var],
                                      matrix_method.history.errors[var])
    assert suite_method.probe_points == matrix_method.probe_points
    for key in suite_method.net_state:
        assert np.array_equal(suite_method.net_state[key],
                              matrix_method.net_state[key]), (
            suite_method.label, key)


@pytest.mark.parametrize("backend", ["serial", "process"])
def test_matrix_cells_bit_identical_to_standalone_suites(backend):
    matrix = run_matrix(PROBLEMS, SAMPLERS, backend=backend,
                        scale="smoke", steps=5)
    for problem in PROBLEMS:
        suite = run_suite(problem, SAMPLERS, backend="serial",
                          scale="smoke", steps=5)
        assert suite.labels == matrix[problem].labels
        for s, m in zip(suite, matrix[problem]):
            _assert_cell_parity(s, m)


def test_matrix_honours_explicit_seed_and_config_overrides():
    config = burgers_config("smoke")
    a = run_matrix(["burgers"], ["uniform"], backend="serial",
                   scale="smoke", steps=4, seed=7,
                   configs={"burgers": config})
    b = run_suite("burgers", ["uniform"], backend="serial",
                  config=config, steps=4, seed=7)
    _assert_cell_parity(b.methods[0], a["burgers"].methods[0])


def test_matrix_accepts_explicit_method_specs():
    spec = MethodSpec("U-big", "uniform", 300, 16)
    matrix = run_matrix(["burgers"], [spec], backend="serial",
                        scale="smoke", steps=3)
    assert matrix.labels() == {"burgers": ["U-big"]}


# ----------------------------------------------------------------------
# One store for the whole grid
# ----------------------------------------------------------------------
def test_matrix_records_every_cell_into_one_store(tmp_path):
    store = RunStore(tmp_path / "matrix-runs")
    matrix = run_matrix(PROBLEMS, ["uniform"], backend="process",
                        scale="smoke", steps=4, store=store)
    run_ids = matrix.run_ids()
    assert len(run_ids) == 2
    assert matrix.store_root == str(store.root)
    recorded = {store.open(run_id).meta["problem"] for run_id in run_ids}
    assert recorded == set(PROBLEMS)
    for run_id in run_ids:
        assert store.open(run_id).status == "completed"


# ----------------------------------------------------------------------
# Failure handling on the shared pool
# ----------------------------------------------------------------------
class ExplodingValidator:
    """Picklable validator that fails the first cell as soon as it runs."""

    def evaluate(self, net):
        raise RuntimeError("validator exploded")


def test_process_failure_attaches_cell_label_and_cancels_siblings(tmp_path):
    store = RunStore(tmp_path / "doomed")
    with pytest.raises(RuntimeError) as excinfo:
        # the full registry grid (5 problems x 4 samplers = 20 cells):
        # every cell would fail at its first validation, but the first
        # failure must cancel the pending queue instead of letting all
        # twenty train/fail to completion
        run_matrix(None, None, backend="process", scale="smoke",
                   steps=4, max_workers=1, store=store,
                   validators=[ExplodingValidator()])
    message = str(excinfo.value)
    assert ":smoke:" in message                  # the failing cell's label
    assert "validator exploded" in message
    assert excinfo.value.__cause__ is not None
    # with max_workers=1 only the cells the pool had already fed to
    # the worker can have started; the cancelled majority never records.
    # (the exact count depends on the pool's prefetch, hence the margin)
    n_cells = len(repro.list_problems()) * len(repro.list_samplers())
    assert len(store.runs()) < n_cells / 2


def test_serial_failure_propagates_immediately():
    with pytest.raises(RuntimeError, match="validator exploded"):
        run_matrix(["burgers"], ["uniform"], backend="serial",
                   scale="smoke", steps=4,
                   validators=[ExplodingValidator()])


# ----------------------------------------------------------------------
# Session front door
# ----------------------------------------------------------------------
def test_session_matrix_applies_overrides_across_problems():
    matrix = (repro.problem("burgers", scale="smoke")
              .n_interior(300).batch_size(16).seed(3)
              .matrix(PROBLEMS, ["uniform"], steps=3))
    assert matrix.labels() == {"burgers": ["U16"], "poisson3d": ["U16"]}
    for _, method in matrix.cells():
        assert method.seed == 3
        assert method.spec.n_interior == 300


def test_session_matrix_defaults_to_all_registered_problems():
    matrix = (repro.problem("burgers", scale="smoke")
              .n_interior(200).validators([]).matrix(samplers=["uniform"],
                                                     steps=2))
    assert matrix.problems == sorted(repro.list_problems())
