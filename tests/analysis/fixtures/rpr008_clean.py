"""RPR008 clean counterpart: listings are sorted (or merely counted)."""
import os
from pathlib import Path


def scan(root):
    found = []
    for entry in sorted(Path(root).iterdir()):
        found.append(entry.name)
    names = [name for name in sorted(os.listdir(root))]
    # order-insensitive aggregation over a generator stays quiet
    total = sum(1 for _ in Path(root).rglob("*.json"))
    return found, names, total
