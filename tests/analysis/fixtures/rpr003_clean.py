"""RPR003 clean counterpart: sets are sorted before iteration."""


def place(names, extras):
    order = []
    for name in sorted({n.lower() for n in names}):
        order.append(name)
    seen = set(names)
    present = "x" in seen            # membership tests are order-free
    ranked = [name for name in sorted(seen)]
    merged = sorted(set(names) | set(extras))
    return order, present, ranked, merged
