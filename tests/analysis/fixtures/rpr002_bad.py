"""RPR002 fixture: wall-clock reads (linted under a training/ relpath)."""
import time
from datetime import datetime


def train_step(step):
    started = time.time()
    stamp = datetime.now().isoformat()
    nanos = time.time_ns()
    return started, stamp, nanos
