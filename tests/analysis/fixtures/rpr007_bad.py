"""RPR007 fixture: checkpointable classes losing array state on resume."""
import numpy as np


class Sampler:
    """Base class whose subclasses inherit the round-trip."""

    def __init__(self, n):
        self.n = n

    def state_dict(self):
        return {"n": self.n}

    def load_state_dict(self, state):
        self.n = int(state["n"])


class LeakySampler:
    def __init__(self, n):
        self.weights = np.ones(n)        # never round-tripped: flagged
        self.offsets = np.arange(n)      # covered by the string key below

    def state_dict(self):
        return {"offsets": self.offsets.copy()}

    def load_state_dict(self, state):
        self.offsets = np.asarray(state["offsets"])


class GrowingSampler(Sampler):
    def __init__(self, n):
        super().__init__(n)
        self.history = []                # grown in refresh(): flagged

    def refresh(self, losses):
        self.history.append(losses.mean())
        self.scores = np.zeros(len(losses))   # inherited dict misses this
