"""RPR010 fixture: callables an execution backend cannot re-import."""


class Sweep:
    def run_cell(self, item):
        return item * 2

    def launch(self, backend, queue, items, labels):
        results = [backend.submit(lambda item: item * 2, items, labels)]

        def local_task(item):
            return item * 2

        queue.enqueue(local_task, items, labels)

        runner = lambda item: item + 1        # noqa: E731 (fixture)
        work_queue = queue
        results.append(work_queue.submit(runner, items, labels))

        results.append(backend.submit(self.run_cell, items, labels))
        return results
