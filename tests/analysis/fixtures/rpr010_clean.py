"""RPR010 clean counterpart: module-level tasks with importable names."""


def run_cell(item):
    return item * 2


def launch(backend, queue, items, labels):
    results = backend.submit(run_cell, items, labels)
    job_ids = queue.enqueue("fixtures.rpr010_clean:run_cell", items, labels)
    renamed = [series.submit(str, item)       # not a backend receiver
               for series, item in zip(items, items)]
    return results, job_ids, renamed
