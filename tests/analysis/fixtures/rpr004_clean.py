"""RPR004 clean counterpart: module-level tasks, plain picklable args."""


def double(item):
    return item * 2


def launch(pool, items):
    futures = [pool.submit(double, item) for item in items]
    mapped = pool.map(double, items)
    renamed = [s.map(str.lower) for s in items]   # not a pool receiver
    return futures, list(mapped), renamed
