"""RPR006 clean counterpart: None defaults, containers built per call."""


def collect(item, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket


def index(key, table=None, *, tags=(), limit=10, label="row"):
    table = {} if table is None else table
    table[key] = tuple(tags)
    return table
