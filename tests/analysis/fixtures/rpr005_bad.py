"""RPR005 fixture: a problem module importing a sibling problem module.

The test pre-scans this directory, so ``rpr005_clean`` (which also defines a
``build_*_problem``) is a sibling problem module from this file's view.
"""
from . import rpr005_clean
from .rpr005_clean import build_demo_problem
import rpr005_clean as sibling


def build_other_problem(config, n_interior, rng):
    return {"base": build_demo_problem(config, n_interior, rng),
            "module": rpr005_clean, "alias": sibling}
