"""RPR005 clean counterpart: a problem module using only shared layers."""
import numpy as np


def build_demo_problem(config, n_interior, rng):
    points = rng.random((n_interior, 2))
    return {"points": np.asarray(points), "config": config}
