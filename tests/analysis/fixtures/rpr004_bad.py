"""RPR004 fixture: unpicklable callables handed to a process pool."""


def launch(pool, executor, items):
    futures = [pool.submit(lambda item: item * 2, item) for item in items]

    def local_task(item):
        return item * 2

    futures.append(pool.submit(local_task, items[0]))

    doubler = lambda item: item * 2          # noqa: E731 (fixture)
    futures.append(pool.submit(doubler, items[0]))

    results = executor.map(lambda item: item + 1, items)
    return futures, list(results)
