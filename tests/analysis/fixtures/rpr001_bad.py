"""RPR001 fixture: hidden-global-state randomness (never imported)."""
import random

import numpy as np
from numpy.random import normal


def jitter(points):
    noise = np.random.rand(len(points))
    shift = np.random.normal(0.0, 1.0, size=len(points))
    pick = random.choice(points)
    random.shuffle(points)
    return points + noise + shift + pick + normal()
