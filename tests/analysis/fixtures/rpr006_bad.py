"""RPR006 fixture: mutable default arguments."""


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket


def index(key, table={}, *, tags=set()):
    table[key] = tags
    return table


def gather(rows, pool=list(), seen=dict()):
    pool.extend(rows)
    return pool, seen
