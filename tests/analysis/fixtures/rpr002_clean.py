"""RPR002 clean counterpart: monotonic duration accounting only."""
import time


def train_step(step):
    started = time.perf_counter()
    return time.perf_counter() - started
