"""RPR008 fixture: OS-ordered directory listings feeding iteration."""
import glob
import os
from pathlib import Path


def scan(root):
    found = []
    for entry in Path(root).iterdir():
        found.append(entry.name)
    names = [name for name in os.listdir(root)]
    matches = list(glob.glob(str(Path(root) / "*.npz")))
    for path in Path(root).rglob("*.json"):
        found.append(path.name)
    return found, names, matches
