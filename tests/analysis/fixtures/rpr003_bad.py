"""RPR003 fixture: unordered set iteration leaking into results."""


def place(names, extras):
    order = []
    for name in {n.lower() for n in names}:
        order.append(name)
    ranked = [name for name in set(names)]
    merged = list(set(names) | set(extras))
    pairs = list(enumerate(frozenset(extras)))
    return order, ranked, merged, pairs
