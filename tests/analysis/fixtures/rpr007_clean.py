"""RPR007 clean counterpart: every array attribute round-trips."""
import numpy as np


class CoveredSampler:
    def __init__(self, n):
        self.weights = np.ones(n)
        self.scratch = []                # only filled here, never grown later
        self.scratch.append(n)

    def state_dict(self):
        return {"weights": self.weights.copy()}

    def load_state_dict(self, state):
        self.weights = np.asarray(state["weights"])


class Momentum:
    def __init__(self, params):
        self._velocity = [np.zeros_like(p) for p in params]

    def step(self, grads):
        for v, g in zip(self._velocity, grads):
            v += g

    def state_dict(self):
        # string key matches the attribute modulo the leading underscore
        return {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state):
        self._velocity = [np.asarray(v) for v in state["velocity"]]


class PlainHelper:
    """Not checkpointable at all: array attrs are fine without a dict."""

    def __init__(self, n):
        self.table = np.zeros(n)
