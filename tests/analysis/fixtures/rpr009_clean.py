"""RPR009 clean counterpart: timings flow through repro.obs."""
import time

from repro import obs


def train_step(step):
    with obs.span("train.step", step=step):
        with obs.timed_span("sampler.rebuild") as rebuild:
            pass
    with obs.stopwatch() as wall:
        pass
    # a deliberate raw read stays, but must be marked
    drift = time.perf_counter()  # repro: noqa RPR009
    return rebuild.seconds, wall.seconds, drift
