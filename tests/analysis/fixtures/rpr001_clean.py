"""RPR001 clean counterpart: every draw comes from a seeded Generator."""
import numpy as np
from numpy.random import default_rng


def jitter(points, seed):
    rng = np.random.default_rng(seed)
    other = default_rng(np.random.SeedSequence(seed))
    noise = rng.random(len(points))
    shift = other.normal(0.0, 1.0, size=len(points))
    pick = rng.choice(points)
    return points + noise + shift + pick
