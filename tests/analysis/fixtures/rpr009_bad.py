"""RPR009 fixture: raw timers (linted under a training/ relpath)."""
import time
from time import perf_counter

from repro.utils import Timer


def train_step(step):
    started = time.perf_counter()
    bare = perf_counter()
    tick = time.monotonic()
    with Timer() as timer:
        pass
    return started, bare, tick, timer
