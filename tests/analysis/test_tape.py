"""Tape-analyzer tests: pinned burgers graph + all-problem consistency.

The pinned counts freeze the *structure* of the per-step graph the trainer
builds for burgers.  They are part of the compile-readiness contract: the
record-once/replay-many refactor must reproduce exactly this graph, so an
unintentional structural change (extra ops, lost sharing, dtype drift)
fails here before it can silently change cost or numerics.
"""

import pytest

import repro.api.problems  # noqa: F401  (populate the registry)
from repro.analysis import analyze_tape, trace_training_step
from repro.api.registry import list_problems
from repro.autodiff import Tensor, op_name, record_tape


def test_burgers_tape_structure_is_pinned():
    report = analyze_tape("burgers")
    assert report.shape_consistent, (report.shape_issues,
                                     report.gradient_issues)
    assert report.n_nodes == 107
    assert report.n_constants == 19
    assert report.n_params == 6
    assert report.loss_shape == ()
    assert report.loss_dtype == "float32"
    assert report.op_counts["matmul"] == 22
    assert report.op_counts["mul"] == 22
    assert report.op_counts["transpose"] == 18
    assert report.op_counts["add"] == 13
    assert report.op_counts["sum_"] == 10
    assert report.op_counts["tanh"] == 4
    assert report.dead_nodes == 32
    assert report.duplicate_subgraphs == 9
    assert report.duplicate_nodes == 9
    assert report.upcast_gradients == 0


@pytest.mark.parametrize("problem", list_problems())
def test_every_registered_problem_is_shape_consistent(problem):
    report = analyze_tape(problem)
    assert report.shape_consistent, (report.shape_issues,
                                     report.gradient_issues)
    assert report.n_nodes > 0
    assert report.op_counts
    # a scalar loss with a gradient for every parameter
    assert report.loss_shape == ()
    assert not report.gradient_issues


def test_report_round_trips_to_dict():
    report = analyze_tape("burgers")
    tree = report.to_dict()
    assert tree["problem"] == "burgers"
    assert tree["shape_consistent"] is True
    assert tree["nodes"] == report.n_nodes
    assert sum(tree["op_counts"].values()) == report.n_nodes
    assert isinstance(report.format(), str)


def test_trace_is_deterministic():
    tape_a, loss_a, _ = trace_training_step("burgers")
    tape_b, loss_b, _ = trace_training_step("burgers")
    assert len(tape_a.nodes) == len(tape_b.nodes)
    assert [op_name(n) for n in tape_a.nodes] == \
           [op_name(n) for n in tape_b.nodes]
    assert float(loss_a.data) == float(loss_b.data)


def test_record_tape_restores_constructors():
    import repro.autodiff.ops as ops
    node_before, leaf_before = ops._node, ops._leaf
    with record_tape() as tape:
        result = Tensor([1.0, 2.0], requires_grad=True) * 3.0
    assert ops._node is node_before and ops._leaf is leaf_before
    assert len(tape.nodes) == 1
    assert op_name(tape.nodes[0]) == "mul"
    assert tape.constants          # the coerced 3.0 scalar
    assert id(result) in tape.created_ids()
    # recording off again: nothing new lands on the tape
    _ = Tensor([1.0], requires_grad=True) * 2.0
    assert len(tape.nodes) == 1
