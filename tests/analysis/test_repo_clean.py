"""Tier-1 gate: the repo's own source tree passes its own linter.

This is the enforcement end of the analysis subsystem: every invariant in
the rule catalog (seeded RNG only, no wall-clock in hot paths,
deterministic iteration, picklable pool tasks, registry-mediated experiment
wiring, complete state_dict round-trips) holds over ``src/repro`` itself.
A new violation anywhere in the package fails this test with the exact
file:line and fix hint.
"""

from repro.analysis import lint_project
from repro.analysis.project import prescan, repo_source_root


def test_repro_source_tree_is_lint_clean():
    violations = lint_project()
    assert violations == [], "\n" + "\n".join(v.format() for v in violations)


def test_prescan_sees_the_real_problem_modules():
    root = repo_source_root()
    project = prescan(sorted(root.rglob("*.py")))
    assert {"ldc", "annular_ring", "burgers", "poisson3d",
            "advection_diffusion", "inverse_burgers",
            "ns3d"} <= set(project["problem_modules"])
    # the api front-door is not a problem module (its build_problem has no
    # middle name), so RPR005 lets it import the real ones
    assert "problems" not in project["problem_modules"]
    assert {"Sampler", "Optimizer", "Module"} <= \
        set(project["state_dict_classes"])
