"""Fixture-backed tests for every shipped lint rule + the framework.

Each rule has a ``<id>_bad.py`` fixture it must fire on and a
``<id>_clean.py`` counterpart it must stay silent on.  Fixtures are parsed,
never imported.
"""

from pathlib import Path

import pytest

from repro.analysis import available_rules, lint_file, lint_source, rule_catalog
from repro.analysis.project import lint_paths, prescan

FIXTURES = Path(__file__).parent / "fixtures"

#: relpath override per rule (RPR002/RPR009 are scoped to hot-path subsystems)
RELPATHS = {"RPR002": "repro/training/{name}",
            "RPR009": "repro/training/{name}"}

RULE_IDS = ["RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
            "RPR007", "RPR008", "RPR009", "RPR010"]


def run_fixture(rule_id, kind):
    name = f"{rule_id.lower()}_{kind}.py"
    path = FIXTURES / name
    relpath = RELPATHS.get(rule_id, "repro/{name}").format(name=name)
    # per-file prescan: RPR005/RPR007 need problem-module / base-class facts
    project = prescan(sorted(FIXTURES.glob("rpr*.py")))
    return [v for v in lint_file(path, relpath=relpath, project=project)
            if v.rule_id == rule_id]


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_fires_on_bad_fixture(rule_id):
    violations = run_fixture(rule_id, "bad")
    assert violations, f"{rule_id} found nothing in its bad fixture"
    for violation in violations:
        assert violation.rule_id == rule_id
        assert violation.line > 0
        assert violation.hint


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_silent_on_clean_fixture(rule_id):
    violations = run_fixture(rule_id, "clean")
    assert violations == [], [v.format() for v in violations]


def test_expected_bad_fixture_counts():
    # pin the per-fixture finding counts so a rule that silently loses a
    # code path (or over-fires) is caught, not just total silence
    counts = {rule_id: len(run_fixture(rule_id, "bad"))
              for rule_id in RULE_IDS}
    assert counts == {"RPR001": 5, "RPR002": 3, "RPR003": 4, "RPR004": 4,
                      "RPR005": 3, "RPR006": 5, "RPR007": 3, "RPR008": 4,
                      "RPR009": 4, "RPR010": 4}


# ----------------------------------------------------------------------
# Framework behaviour
# ----------------------------------------------------------------------
def test_catalog_lists_at_least_the_shipped_rules():
    ids = [rule.id for rule in available_rules()]
    assert ids == sorted(ids)
    assert set(RULE_IDS) <= set(ids)
    for entry in rule_catalog():
        assert entry["title"] and entry["hint"] and entry["rationale"]
        assert entry["severity"] in ("error", "warning")


def test_bare_noqa_suppresses_everything_on_the_line():
    source = "def f(a, b=[]):  # repro: noqa\n    return b\n"
    assert lint_source(source) == []


def test_targeted_noqa_suppresses_only_named_rules():
    suppressed = "def f(a, b=[]):  # repro: noqa RPR006\n    return b\n"
    assert lint_source(suppressed) == []
    other = "def f(a, b=[]):  # repro: noqa RPR001,RPR003\n    return b\n"
    violations = lint_source(other)
    assert [v.rule_id for v in violations] == ["RPR006"]


def test_noqa_inside_string_literal_does_not_suppress():
    source = ('def f(a, b=[]):\n'
              '    return "# repro: noqa"\n')
    assert [v.rule_id for v in lint_source(source)] == ["RPR006"]


def test_syntax_error_reports_rpr000():
    violations = lint_source("def broken(:\n", path="x.py")
    assert [v.rule_id for v in violations] == ["RPR000"]
    assert violations[0].severity == "error"


def test_select_restricts_rules():
    source = ("import numpy as np\n"
              "def f(xs=[]):\n"
              "    return np.random.rand(3)\n")
    assert {v.rule_id for v in lint_source(source)} == {"RPR001", "RPR006"}
    only = lint_source(source, select=["RPR001"])
    assert {v.rule_id for v in only} == {"RPR001"}


def test_lint_paths_prescans_and_sorts(tmp_path):
    # two problem modules importing each other: the pre-scan must discover
    # both and RPR005 must fire in both directions
    (tmp_path / "alpha.py").write_text(
        "import beta\n\ndef build_alpha_problem(c, n, rng):\n    return c\n")
    (tmp_path / "beta.py").write_text(
        "import alpha\n\ndef build_beta_problem(c, n, rng):\n    return c\n")
    violations = lint_paths([tmp_path], select=["RPR005"])
    assert len(violations) == 2
    assert [Path(v.path).name for v in violations] == ["alpha.py", "beta.py"]


def test_api_build_problem_is_not_a_problem_module(tmp_path):
    # the registry front-door defines build_problem (no middle name): it
    # must not be fenced off from importing the real problem modules
    (tmp_path / "gamma.py").write_text(
        "def build_gamma_problem(c, n, rng):\n    return c\n")
    (tmp_path / "front.py").write_text(
        "import gamma\n\ndef build_problem(name):\n    return name\n")
    assert lint_paths([tmp_path], select=["RPR005"]) == []
