"""Experiment-file loading and the resolved-config round-trip."""

import dataclasses
import json

import pytest

from repro.experiments import burgers_config, ldc_config
from repro.store import (RunConfig, config_from_tables, config_to_tables,
                         load_run_config)
from repro.store.toml_compat import dumps

EXPERIMENT = """
[run]
problem = "burgers"
sampler = "mis"
scale = "smoke"
steps = 25
seed = 7
n_interior = 500
batch_size = 16

[config]
record_every = 5
tau_e = 10

[config.network]
width = 8

[store]
root = "my-runs"
checkpoint_every = 10

[suite]
samplers = ["uniform", "mis"]
backend = "process"
"""


def _write(tmp_path, text, name="exp.toml"):
    path = tmp_path / name
    path.write_text(text)
    return path


def test_load_run_config_toml(tmp_path):
    rc = load_run_config(_write(tmp_path, EXPERIMENT))
    assert rc.problem == "burgers" and rc.sampler == "mis"
    assert rc.steps == 25 and rc.seed == 7
    assert rc.store_root == "my-runs" and rc.checkpoint_every == 10
    assert rc.samplers == ["uniform", "mis"] and rc.backend == "process"
    assert rc.executor == "process"     # deprecated-name alias


def test_legacy_executor_key_maps_onto_backend(tmp_path):
    legacy = EXPERIMENT.replace('backend = "process"',
                                'executor = "process"')
    rc = load_run_config(_write(tmp_path, legacy))
    assert rc.backend == "process"
    both = EXPERIMENT + 'executor = "serial"\n'
    with pytest.raises(ValueError, match="keep only backend"):
        load_run_config(_write(tmp_path, both))


def test_load_run_config_json(tmp_path):
    data = {"run": {"problem": "poisson3d"}, "config": {"steps": 11}}
    path = _write(tmp_path, json.dumps(data), name="exp.json")
    rc = load_run_config(path)
    assert rc.problem == "poisson3d"
    assert rc.overrides == {"steps": 11}


def test_build_config_applies_overrides(tmp_path):
    rc = load_run_config(_write(tmp_path, EXPERIMENT))
    config = rc.build_config()
    base = burgers_config("smoke")
    assert config.record_every == 5 and config.tau_e == 10
    assert config.network.width == 8
    # untouched fields keep the scale preset's values
    assert config.network.depth == base.network.depth
    assert config.nu == base.nu


def test_session_carries_run_settings(tmp_path):
    rc = load_run_config(_write(tmp_path, EXPERIMENT))
    session = rc.session()
    assert session.name == "burgers"
    assert session._sampler == "mis"
    assert session._seed == 7
    assert session._n_interior == 500 and session._batch_size == 16
    assert session._steps == 25


def test_unknown_keys_rejected():
    with pytest.raises(ValueError, match="run"):
        RunConfig.from_dict({"config": {}})
    with pytest.raises(ValueError, match="bogus"):
        RunConfig.from_dict({"run": {"problem": "ldc", "bogus": 1}})
    with pytest.raises(ValueError, match="typo"):
        RunConfig.from_dict({"run": {"problem": "ldc"}, "store": {"typo": 1}})
    with pytest.raises(ValueError, match="mystery"):
        RunConfig.from_dict({"run": {"problem": "ldc"}, "mystery": {}})


def test_unknown_config_fields_rejected_at_build():
    rc = RunConfig.from_dict(
        {"run": {"problem": "ldc"}, "config": {"not_a_field": 1}})
    with pytest.raises(ValueError, match="not_a_field"):
        rc.build_config()


def test_unknown_problem_and_sampler_rejected_at_build():
    with pytest.raises(KeyError, match="unknown problem"):
        RunConfig.from_dict({"run": {"problem": "nope"}}).build_config()
    with pytest.raises(KeyError, match="unknown sampler"):
        RunConfig.from_dict(
            {"run": {"problem": "ldc", "sampler": "nope"}}).build_config()


def test_every_shipped_example_config_resolves():
    """examples/configs/*.toml: one per registered problem, all loadable."""
    from pathlib import Path
    from repro.api import list_problems
    directory = Path(__file__).resolve().parents[2] / "examples" / "configs"
    configs = sorted(directory.glob("*.toml"))
    problems = set()
    for path in configs:
        rc = load_run_config(path)
        rc.build_config()                 # validates names + overrides
        assert rc.store_root is not None  # examples showcase the store
        problems.add(rc.problem)
    assert problems == set(list_problems())


class TestResolvedConfigRoundTrip:
    def test_every_field_survives(self):
        config = ldc_config("smoke")
        config = dataclasses.replace(config, reynolds=123.0, tau_e=17)
        tables = config_to_tables("ldc", config)
        rebuilt = config_from_tables(tables)
        assert rebuilt == config

    def test_roundtrip_through_toml_text(self):
        from repro.store.toml_compat import loads
        from repro.experiments import annular_ring_config
        config = annular_ring_config("smoke")      # has tuple-typed fields
        tables = loads(dumps(config_to_tables("annular_ring", config)))
        rebuilt = config_from_tables(tables)
        assert rebuilt == config
        assert isinstance(rebuilt.r_inner_range, tuple)
