"""RunStore record lifecycle, history streaming, and store concurrency."""

import json

import numpy as np
import pytest

import repro
from repro.store import RunStore, history_from_jsonl
from repro.training import History


def _train(store, steps=8, sampler="uniform", run_id=None, **session_kw):
    session = (repro.problem("burgers", scale="smoke")
               .config(record_every=2)
               .sampler(sampler)
               .n_interior(300)
               .validators([]))
    return session.train(steps=steps, store=store, run_id=run_id,
                         **session_kw)


class TestRecordLifecycle:
    def test_completed_run_record(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        result = _train(store, run_id="r1")
        assert result.run_id == "r1"
        record = store.open("r1")
        assert record.status == "completed"
        meta = record.meta
        assert meta["problem"] == "burgers" and meta["sampler"] == "uniform"
        assert meta["steps"] == 8 and meta["n_interior"] == 300
        assert meta["validators"] == "none"
        assert meta["repro_version"] == repro.__version__
        assert np.isclose(meta["final_loss"], result.history.losses[-1])

    def test_streamed_history_matches_result(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        result = _train(store, run_id="r1")
        stored = store.open("r1").history()
        assert stored.steps == result.history.steps
        assert np.array_equal(stored.losses, result.history.losses)

    def test_config_toml_rebuilds_exact_config(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        result = _train(store, run_id="r1")
        assert store.open("r1").load_config() == result.config

    def test_run_ids_unique_and_listable(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        ids = {_train(store, sampler=s).run_id for s in ("uniform", "mis")}
        assert len(ids) == 2
        assert {r.run_id for r in store.runs()} == ids
        assert store.runs(problem="ldc") == []
        assert len(store.runs(status="completed")) == 2

    def test_duplicate_run_id_rejected(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        _train(store, run_id="r1")
        with pytest.raises(FileExistsError):
            _train(store, run_id="r1")

    def test_unknown_run_raises_keyerror_naming_known(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        _train(store, run_id="r1")
        with pytest.raises(KeyError, match="r1"):
            store.open("nope")

    def test_delete(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        _train(store, run_id="r1")
        store.delete("r1")
        assert "r1" not in store and len(store) == 0

    def test_failed_run_marked(self, tmp_path):
        from repro.api.session import run_problem
        store = RunStore(tmp_path / "runs")
        session = (repro.problem("burgers", scale="smoke")
                   .n_interior(300).validators([]))

        def bomb(step, **_):
            if step == 3:
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            run_problem(session.build(), session._config, sampler="uniform",
                        steps=8, validators=[], store=store, run_id="r1",
                        step_hooks=[bomb])
        record = store.open("r1")
        assert record.status == "failed"
        assert "boom" in record.meta["error"]


class TestHistoryJsonl:
    def test_roundtrip_with_nan_errors(self, tmp_path):
        path = tmp_path / "h.jsonl"
        from repro.store.run_store import _StreamingHistory
        history = _StreamingHistory("x", path)
        history.record(0, 0.1, 1.0, errors={"u": 0.5})
        history.record(1, 0.2, 0.9, errors={"u": float("nan"), "v": 0.4})
        loaded = history_from_jsonl(path, label="x")
        assert loaded.steps == [0, 1]
        np.testing.assert_array_equal(loaded.losses, history.losses)
        np.testing.assert_array_equal(np.isnan(loaded.errors["u"]),
                                      np.isnan(history.errors["u"]))

    def test_torn_tail_line_ignored(self, tmp_path):
        path = tmp_path / "h.jsonl"
        line = json.dumps({"step": 0, "wall_time": 0.1, "loss": 1.0,
                           "probe_points": 0, "errors": {}})
        path.write_text(line + "\n" + line[: len(line) // 2])
        loaded = history_from_jsonl(path)
        assert loaded.steps == [0]

    def test_missing_file_gives_empty_history(self, tmp_path):
        loaded = history_from_jsonl(tmp_path / "absent.jsonl")
        assert isinstance(loaded, History) and loaded.steps == []


class TestStoreConcurrency:
    def test_process_pool_suite_records_every_method(self, tmp_path):
        """Each sharded worker writes its own record into the shared store."""
        store = RunStore(tmp_path / "runs")
        suite = (repro.problem("burgers", scale="smoke")
                 .config(record_every=2)
                 .n_interior(300)
                 .suite(["uniform", "mis", "sgm"], backend="process",
                        steps=6, store=store))
        run_ids = [m.run_id for m in suite]
        assert len(set(run_ids)) == 3 and all(run_ids)
        for method in suite:
            record = store.open(method.run_id)
            assert record.status == "completed"
            assert record.label == method.label
            stored = record.history()
            assert np.array_equal(stored.losses, method.history.losses)

    def test_serial_and_process_stores_agree(self, tmp_path):
        serial = RunStore(tmp_path / "serial")
        parallel = RunStore(tmp_path / "parallel")
        base = (repro.problem("burgers", scale="smoke")
                .config(record_every=2).n_interior(300))
        s = base.suite(["uniform", "sgm"], backend="serial", steps=6,
                       store=serial)
        p = base.suite(["uniform", "sgm"], backend="process", steps=6,
                       store=parallel)
        for ms, mp in zip(s, p):
            hs = serial.open(ms.run_id).history()
            hp = parallel.open(mp.run_id).history()
            assert np.array_equal(hs.losses, hp.losses)
