"""TOML compat layer: writer round-trips and the <3.11 fallback parser."""

import math

import pytest

from repro.store import toml_compat
from repro.store.toml_compat import _loads_fallback, dumps, loads

DOCUMENT = {
    "run": {"problem": "burgers", "sampler": "sgm", "steps": 50,
            "seed": 0, "resume": True},
    "config": {"nu": 0.0031830988618, "velocity": [1.0, 0.5],
               "label": 'with "quotes" and\nnewline',
               "network": {"width": 32, "depth": 3, "activation": "tanh"}},
}


def test_writer_reader_roundtrip():
    assert loads(dumps(DOCUMENT)) == DOCUMENT


def test_fallback_parser_matches_tomllib_output():
    """The py<3.11 fallback must agree with tomllib on everything we emit."""
    text = dumps(DOCUMENT)
    assert _loads_fallback(text) == loads(text)


def test_fallback_parses_handwritten_toml():
    text = """
    # experiment
    [run]
    problem = "ldc"           # inline comment
    steps = 2_500_000
    ratio = 1.5e-3
    on = true
    off = false

    [config.network]
    width = 512
    sizes = [1, 2,
             3]               # multi-line array
    names = ["a", "b#c"]
    """
    data = _loads_fallback(text)
    assert data["run"]["problem"] == "ldc"
    assert data["run"]["steps"] == 2_500_000
    assert data["run"]["ratio"] == pytest.approx(1.5e-3)
    assert data["run"]["on"] is True and data["run"]["off"] is False
    assert data["config"]["network"]["sizes"] == [1, 2, 3]
    assert data["config"]["network"]["names"] == ["a", "b#c"]


def test_fallback_errors_name_the_line():
    with pytest.raises(ValueError, match="line 2"):
        _loads_fallback("[run]\nsteps = 1979-05-27\n")
    with pytest.raises(ValueError, match="key = value"):
        _loads_fallback("not an assignment\n")


def test_writer_rejects_unserialisable_values():
    with pytest.raises(ValueError):
        dumps({"a": {"x": math.inf}})
    with pytest.raises(TypeError):
        dumps({"a": {"x": object()}})


def test_writer_skips_none_values():
    text = dumps({"run": {"problem": "ldc", "steps": None}})
    assert "steps" not in text
    assert loads(text) == {"run": {"problem": "ldc"}}


def test_load_dump_files(tmp_path):
    path = tmp_path / "exp.toml"
    toml_compat.dump(DOCUMENT, path)
    assert toml_compat.load(path) == DOCUMENT
