"""Convergence-vs-time figures must render from stored records alone."""

import csv

import numpy as np
import pytest

import repro
from repro.store import (RunStore, convergence_curves, render_convergence,
                         save_convergence_csv)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """Two recorded smoke runs (different samplers) in one store."""
    root = tmp_path_factory.mktemp("figure-store")
    store = RunStore(root)
    session = (repro.problem("burgers", scale="smoke")
               .config(record_every=2).n_interior(300))
    for sampler in ("uniform", "sgm"):
        session.sampler(sampler).train(steps=8, store=store,
                                       label=f"{sampler}-col")
    return store


def _fresh_records(store):
    """Reload through a brand-new RunStore: no live objects survive."""
    return list(reversed(RunStore(store.root).runs(status="completed")))


def test_loss_curves_from_store_alone(store):
    curves = convergence_curves(_fresh_records(store))
    assert set(curves) == {"uniform-col", "sgm-col"}
    for times, losses in curves.values():
        assert len(times) == len(losses) > 0
        assert all(np.isfinite(losses))
        assert times == sorted(times)


def test_error_variable_curves(store):
    curves = convergence_curves(_fresh_records(store), var="u")
    for times, errors in curves.values():
        assert len(times) == len(errors) > 0
        assert all(e >= 0 for e in errors)


def test_unvalidated_variable_gives_empty_series(store):
    curves = convergence_curves(_fresh_records(store), var="not_a_var")
    assert all(len(times) == 0 for times, _ in curves.values())


def test_render_convergence_ascii(store):
    text = render_convergence(_fresh_records(store))
    assert "Convergence vs wall time (burgers)" in text
    assert "uniform-col" in text and "sgm-col" in text
    assert "log10(loss)" in text
    text_u = render_convergence(_fresh_records(store), var="u")
    assert "err(u)" in text_u


def test_render_handles_empty_series(store):
    text = render_convergence(_fresh_records(store), var="not_a_var")
    assert "no data" in text


def test_save_convergence_csv_roundtrip(store, tmp_path):
    path = tmp_path / "fig.csv"
    save_convergence_csv(_fresh_records(store), path, var="loss")
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["problem", "label", "wall_time", "loss"]
    assert {row[0] for row in rows[1:]} == {"burgers"}
    labels = {row[1] for row in rows[1:]}
    assert labels == {"uniform-col", "sgm-col"}
    # every data row is (problem, label, float, float)
    for row in rows[1:]:
        float(row[2]), float(row[3])


def test_duplicate_labels_disambiguated_by_id_tail(tmp_path):
    store = RunStore(tmp_path / "dupes")
    session = (repro.problem("burgers", scale="smoke")
               .config(record_every=2).n_interior(300).validators([]))
    for _ in range(2):
        session.train(steps=4, store=store, label="same")
    curves = convergence_curves(RunStore(store.root).runs())
    assert len(curves) == 2
    assert any(label.startswith("same#") for label in curves)


def test_no_records_raises():
    with pytest.raises(ValueError, match="no runs"):
        convergence_curves([])
