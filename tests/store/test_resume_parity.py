"""Checkpoint round-trips and bit-identical mid-run resume.

The store's core guarantee: kill a recorded run anywhere, resume it from
its newest checkpoint, and the stitched loss/error trajectory equals an
uninterrupted run exactly — for every sampler family (each carries
different mutable state: RNG streams, MIS probabilities, SGM clusters and
epoch cursors).
"""

import numpy as np
import pytest

import repro
from repro.api.session import run_problem
from repro.store import RunStore, resume_run
from repro.store.run_store import (load_training_checkpoint,
                                   save_training_checkpoint)


class Interrupted(Exception):
    """Stands in for SIGKILL in-process (no record/cleanup code runs)."""


def _session(sampler, validators, problem="burgers"):
    session = (repro.problem(problem, scale="smoke")
               .config(record_every=2)
               .sampler(sampler)
               .n_interior(400))
    if validators is not None:
        session.validators(validators)
    return session


def _interrupt_hook(at_step):
    def hook(step, **_):
        if step == at_step:
            raise Interrupted()
    return hook


def _run_interrupted(store, sampler, validators, steps, interrupt_at,
                     checkpoint_every, problem="burgers"):
    session = _session(sampler, validators, problem=problem)
    with pytest.raises(Interrupted):
        run_problem(session.build(), session._config, sampler=sampler,
                    steps=steps, validators=validators, store=store,
                    run_id="victim", checkpoint_every=checkpoint_every,
                    step_hooks=[_interrupt_hook(interrupt_at)])
    return store.open("victim")


@pytest.mark.parametrize("sampler", ["uniform", "mis", "sgm", "sgm_s"])
def test_resume_is_bit_identical_for_every_sampler(tmp_path, sampler):
    baseline = _session(sampler, []).train(steps=14)
    store = RunStore(tmp_path / "runs")
    record = _run_interrupted(store, sampler, [], steps=14, interrupt_at=9,
                              checkpoint_every=4)
    assert record.status == "failed"
    assert [s for s, _ in record.checkpoints()] == [3, 7]

    resumed = resume_run(store, "victim")
    assert store.open("victim").status == "completed"
    np.testing.assert_array_equal(resumed.history.losses,
                                  baseline.history.losses)
    assert resumed.history.steps == baseline.history.steps
    stored = store.open("victim").history()
    np.testing.assert_array_equal(stored.losses, baseline.history.losses)


def test_inverse_run_resumes_bit_identically_with_coefficient(tmp_path):
    """The inverse workload adds a trainable coefficient to the training
    state; interrupted+resumed must equal uninterrupted exactly — losses,
    err(u)/err(nu) series, and the recovered coefficient itself."""
    baseline = _session("sgm", None, problem="inverse_burgers").train(steps=14)
    store = RunStore(tmp_path / "runs")
    record = _run_interrupted(store, "sgm", None, steps=14, interrupt_at=9,
                              checkpoint_every=4, problem="inverse_burgers")
    assert [s for s, _ in record.checkpoints()] == [3, 7]

    resumed = resume_run(store, "victim")
    np.testing.assert_array_equal(resumed.history.losses,
                                  baseline.history.losses)
    assert sorted(resumed.history.errors) == ["nu", "u"]
    for var in baseline.history.errors:
        np.testing.assert_array_equal(
            np.nan_to_num(resumed.history.errors[var]),
            np.nan_to_num(baseline.history.errors[var]))
    assert resumed.coefficients == baseline.coefficients


def test_inverse_checkpoint_restores_the_coefficient_raw_state(tmp_path):
    """The coefficient's raw parameter must round-trip through the
    full-training-state checkpoint bit-for-bit."""
    from repro.api.session import _wire_training
    session = _session("uniform", [], problem="inverse_burgers")
    prob = session.build()
    config = session._config
    trainer, _ = _wire_training(prob, config, "uniform", 32, config.seed, [])
    trainer.train(6, validate_every=4, record_every=2)
    moved_raw = prob.extra_modules["nu"].raw.data.copy()
    path = tmp_path / "ckpt.npz"
    save_training_checkpoint(path, trainer, step=5, elapsed=1.0, errors={})

    session2 = _session("uniform", [], problem="inverse_burgers")
    prob2 = session2.build()
    trainer2, _ = _wire_training(prob2, config, "uniform", 32, config.seed,
                                 [])
    assert not np.array_equal(prob2.extra_modules["nu"].raw.data, moved_raw)
    load_training_checkpoint(path, trainer2)
    np.testing.assert_array_equal(prob2.extra_modules["nu"].raw.data,
                                  moved_raw)
    # and the coefficient's Adam moments came back with the optimizer state
    np.testing.assert_array_equal(trainer2.optimizer._m[-1],
                                  trainer.optimizer._m[-1])


def test_checkpoint_module_mismatch_is_rejected(tmp_path):
    """A forward-problem checkpoint must not restore onto an inverse
    trainer (and vice versa) — the extra-module sets must match."""
    from repro.api.session import _wire_training
    forward = _session("uniform", [])
    prob = forward.build()
    trainer, _ = _wire_training(prob, forward._config, "uniform", 32,
                                forward._config.seed, [])
    path = tmp_path / "fwd.npz"
    save_training_checkpoint(path, trainer, step=0, elapsed=0.0, errors={})

    inverse = _session("uniform", [], problem="inverse_burgers")
    prob2 = inverse.build()
    trainer2, _ = _wire_training(prob2, inverse._config, "uniform", 32,
                                 inverse._config.seed, [])
    before = {k: v.copy() for k, v in trainer2.net.state_dict().items()}
    with pytest.raises(KeyError, match="extra-module"):
        load_training_checkpoint(path, trainer2)
    # rejection happens before anything is applied: the trainer must not
    # be left half-restored
    for key, value in trainer2.net.state_dict().items():
        np.testing.assert_array_equal(value, before[key])


def test_resume_matches_validation_errors_too(tmp_path):
    """With default validators the error series must also stitch exactly."""
    baseline = _session("sgm", None).train(steps=14)
    store = RunStore(tmp_path / "runs")
    _run_interrupted(store, "sgm", None, steps=14, interrupt_at=8,
                     checkpoint_every=5)
    resumed = resume_run(store, "victim")
    assert set(resumed.history.errors) == set(baseline.history.errors)
    for var in baseline.history.errors:
        np.testing.assert_array_equal(
            np.nan_to_num(resumed.history.errors[var]),
            np.nan_to_num(baseline.history.errors[var]))


def test_post_checkpoint_records_are_replayed_not_duplicated(tmp_path):
    """A kill after records past the last checkpoint must not double-record:
    the resumed run truncates the stream to the checkpoint and replays."""
    store = RunStore(tmp_path / "runs")
    record = _run_interrupted(store, "uniform", [], steps=20, interrupt_at=11,
                              checkpoint_every=4)
    # records exist past the newest checkpoint (step 7): steps 8 and 10
    assert record.history().steps == [0, 2, 4, 6, 8, 10]
    resumed = resume_run(store, "victim")
    assert resumed.history.steps == [0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 19]
    stored = store.open("victim").history()
    assert stored.steps == resumed.history.steps   # no duplicates on disk


def test_resume_without_checkpoint_restarts_from_scratch(tmp_path):
    baseline = _session("uniform", []).train(steps=10)
    store = RunStore(tmp_path / "runs")
    _run_interrupted(store, "uniform", [], steps=10, interrupt_at=2,
                     checkpoint_every=50)     # killed before any checkpoint
    assert store.open("victim").latest_checkpoint() is None
    resumed = resume_run(store, "victim")
    np.testing.assert_array_equal(resumed.history.losses,
                                  baseline.history.losses)


def test_resume_completed_run_refuses_without_more_steps(tmp_path):
    store = RunStore(tmp_path / "runs")
    result = _session("uniform", []).train(steps=6, store=store)
    with pytest.raises(ValueError, match="already completed"):
        resume_run(store, result.run_id)
    with pytest.raises(ValueError, match="already completed"):
        resume_run(store, result.run_id, steps=6)     # not an extension


def test_resume_extends_a_completed_run(tmp_path):
    """The docstring's use case: finish 8 steps, then continue to 16."""
    store = RunStore(tmp_path / "runs")
    result = _session("uniform", []).train(steps=8, store=store,
                                           checkpoint_every=4)
    extended = resume_run(store, result.run_id, steps=16)
    record = store.open(result.run_id)
    assert record.status == "completed"
    assert record.meta["steps"] == 16
    assert extended.history.steps[-1] == 15
    # every step the 16-step baseline records carries the identical loss
    # (the extension additionally keeps the first run's final record at
    # step 7, which the uninterrupted baseline never records)
    baseline = _session("uniform", []).train(steps=16)
    extended_losses = dict(zip(extended.history.steps,
                               extended.history.losses))
    for step, loss in zip(baseline.history.steps, baseline.history.losses):
        assert extended_losses[step] == loss


def test_resume_can_extend_total_steps(tmp_path):
    store = RunStore(tmp_path / "runs")
    _run_interrupted(store, "uniform", [], steps=12, interrupt_at=9,
                     checkpoint_every=4)
    resumed = resume_run(store, "victim", steps=20)
    assert resumed.history.steps[-1] == 19
    assert store.open("victim").meta["steps"] == 20


def test_resume_can_change_checkpoint_cadence(tmp_path):
    store = RunStore(tmp_path / "runs")
    _run_interrupted(store, "uniform", [], steps=20, interrupt_at=9,
                     checkpoint_every=4)
    resume_run(store, "victim", checkpoint_every=5)
    record = store.open("victim")
    assert record.meta["checkpoint_every"] == 5
    # old cadence left [3, 7]; the resumed stretch checkpoints at %5 == 4
    assert [s for s, _ in record.checkpoints()] == [3, 7, 9, 14, 19]


def test_training_checkpoint_roundtrip_restores_all_state(tmp_path):
    """Save mid-run, mutate everything, load: trainer state must match."""
    session = _session("sgm", [])
    prob = session.build()
    from repro.api.session import _wire_training
    config = session._config
    trainer, sampler = _wire_training(prob, config, "sgm", 32, config.seed,
                                      [])
    trainer.train(6, validate_every=4, record_every=2)
    path = tmp_path / "ckpt.npz"
    save_training_checkpoint(path, trainer, step=5, elapsed=1.5,
                             errors={"u": 0.25})

    session2 = _session("sgm", [])
    prob2 = session2.build()
    trainer2, sampler2 = _wire_training(prob2, config, "sgm", 32,
                                        config.seed, [])
    step, elapsed, errors = load_training_checkpoint(path, trainer2)
    assert step == 5 and elapsed == 1.5 and errors == {"u": 0.25}
    # network + optimizer
    for key, value in trainer.net.state_dict().items():
        np.testing.assert_array_equal(trainer2.net.state_dict()[key], value)
    assert trainer2.optimizer.step_count == trainer.optimizer.step_count
    # scheduler
    assert trainer2.scheduler._step == trainer.scheduler._step
    # every sampler's RNG stream continues identically
    for name in trainer.samplers:
        a = trainer.samplers[name].rng.integers(1 << 30, size=5)
        b = trainer2.samplers[name].rng.integers(1 << 30, size=5)
        np.testing.assert_array_equal(a, b)
    # SGM cluster state
    np.testing.assert_array_equal(sampler2.labels, sampler.labels)
    np.testing.assert_array_equal(sampler2._epoch, sampler._epoch)
    assert sampler2._cursor == sampler._cursor
    assert sampler2.refresh_count == sampler.refresh_count


def test_custom_validators_refuse_resume(tmp_path):
    from repro.training import PointwiseValidator
    store = RunStore(tmp_path / "runs")
    session = _session("uniform", None)
    validator = PointwiseValidator(
        "custom", np.random.default_rng(0).uniform(size=(8, 2)),
        {"u": np.zeros(8)}, ("u",), spatial_names=("x", "t"))
    run_problem(session.build(), session._config, sampler="uniform",
                steps=4, validators=[validator], store=store, run_id="v")
    assert store.open("v").meta["validators"] == "custom"
    with pytest.raises(ValueError, match="validators"):
        resume_run(store, "v")
