"""LRD decomposition invariants (paper S2)."""

import numpy as np
import scipy.sparse as sp

from repro.graph import (
    adjacency_from_edges, cluster_sizes, exact_effective_resistance,
    grid_partition, knn_adjacency, lrd_decompose, parallel_lrd,
)

RNG = np.random.default_rng(0)


def cloud_adjacency(n=200, k=6, seed=0):
    points = np.random.default_rng(seed).uniform(size=(n, 2))
    return points, knn_adjacency(points, k)


class TestDecomposition:
    def test_labels_form_exact_partition(self):
        _, adj = cloud_adjacency()
        result = lrd_decompose(adj, level=4)
        assert result.labels.shape == (200,)
        assert result.labels.min() == 0
        assert result.labels.max() == result.n_clusters - 1
        assert cluster_sizes(result.labels).sum() == 200

    def test_level_controls_coarseness(self):
        _, adj = cloud_adjacency()
        counts = [lrd_decompose(adj, level=l, seed=1).n_clusters
                  for l in (1, 3, 5, 7)]
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        assert counts[0] > counts[-1]

    def test_target_cluster_count(self):
        _, adj = cloud_adjacency(n=256)
        result = lrd_decompose(adj, level=3, budget=np.inf)
        assert result.n_clusters == 256 // 8

    def test_diameter_bound_tracked(self):
        _, adj = cloud_adjacency()
        result = lrd_decompose(adj, level=5)
        assert np.all(result.diameters <= result.budget + 1e-12)

    def test_true_er_diameter_within_tracked_bound(self):
        # exact check on a small graph: the real resistance diameter of each
        # cluster never exceeds the spanning-tree upper bound we maintain
        points, adj = cloud_adjacency(n=60, k=4, seed=3)
        result = lrd_decompose(adj, level=3, num_vectors=96, seed=4)
        for c in range(result.n_clusters):
            members = np.flatnonzero(result.labels == c)
            if len(members) < 2:
                continue
            pairs = [(a, b) for i, a in enumerate(members)
                     for b in members[i + 1:]]
            er = exact_effective_resistance(adj, pairs)
            assert er.max() <= result.budget * 1.6 + 1e-9

    def test_min_clusters_respected(self):
        _, adj = cloud_adjacency(n=64)
        result = lrd_decompose(adj, level=20, budget=np.inf, min_clusters=5)
        assert result.n_clusters >= 5

    def test_no_edges_graph(self):
        adj = sp.csr_matrix((5, 5))
        result = lrd_decompose(adj, level=3)
        assert result.n_clusters == 5
        assert np.array_equal(result.labels, np.arange(5))

    def test_precomputed_edge_resistance_used(self):
        _, adj = cloud_adjacency(n=50, k=4)
        coo = sp.triu(adj, k=1).tocoo()
        er = np.ones(coo.nnz)
        result = lrd_decompose(adj, level=2, edge_resistance=er)
        assert np.array_equal(result.edge_resistance, er)

    def test_clusters_are_spatially_coherent(self):
        points, adj = cloud_adjacency(n=300, k=6, seed=5)
        result = lrd_decompose(adj, level=4, seed=5)
        intra = []
        for c in range(result.n_clusters):
            members = points[result.labels == c]
            if len(members) >= 2:
                intra.append(np.linalg.norm(
                    members - members.mean(axis=0), axis=1).mean())
        global_spread = np.linalg.norm(points - points.mean(axis=0),
                                       axis=1).mean()
        assert np.mean(intra) < 0.5 * global_spread

    def test_deterministic_under_seed(self):
        _, adj = cloud_adjacency()
        a = lrd_decompose(adj, level=4, seed=7)
        b = lrd_decompose(adj, level=4, seed=7)
        assert np.array_equal(a.labels, b.labels)


class TestGridPartition:
    def test_partition_covers_all_points(self):
        points = RNG.uniform(size=(500, 2))
        cells = grid_partition(points, 3)
        joined = np.concatenate(cells)
        assert len(joined) == 500
        assert len(np.unique(joined)) == 500

    def test_single_cell(self):
        points = RNG.uniform(size=(50, 2))
        cells = grid_partition(points, 1)
        assert len(cells) == 1 and len(cells[0]) == 50

    def test_cells_respect_spatial_bounds(self):
        points = RNG.uniform(size=(400, 2))
        cells = grid_partition(points, 2)
        for idx in cells:
            cell_points = points[idx]
            span = cell_points.max(axis=0) - cell_points.min(axis=0)
            assert np.all(span <= 0.5 + 1e-9)

    def test_invalid_cells_per_dim(self):
        import pytest
        with pytest.raises(ValueError):
            grid_partition(RNG.uniform(size=(10, 2)), 0)


class TestParallelLRD:
    def test_labels_unique_across_cells(self):
        points = RNG.uniform(size=(400, 2))
        labels, count = parallel_lrd(points, k=5, level=3, cells_per_dim=2)
        assert labels.shape == (400,)
        assert labels.max() == count - 1
        # each cell's labels are disjoint, so every point got assigned
        assert len(np.unique(labels)) == count

    def test_single_cell_matches_direct(self):
        points = np.random.default_rng(9).uniform(size=(150, 2))
        labels, count = parallel_lrd(points, k=5, level=3, cells_per_dim=1,
                                     seed=0)
        adj = knn_adjacency(points, 5)
        direct = lrd_decompose(adj, level=3, seed=0)
        assert count == direct.n_clusters
        # same partition up to relabelling
        mapping = {}
        for a, b in zip(labels, direct.labels):
            mapping.setdefault(a, b)
            assert mapping[a] == b
