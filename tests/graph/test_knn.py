"""kNN search backends and edge-list construction."""

import numpy as np
import pytest

from repro.graph import HNSWIndex, knn_graph_edges, knn_search

RNG = np.random.default_rng(0)


def test_kdtree_matches_brute_force():
    points = RNG.uniform(size=(200, 2))
    idx_tree, dist_tree = knn_search(points, 5, backend="kdtree")
    idx_brute, dist_brute = knn_search(points, 5, backend="brute")
    assert np.allclose(np.sort(dist_tree, axis=1), np.sort(dist_brute, axis=1))
    # neighbour sets agree (order may differ on ties)
    for a, b in zip(idx_tree, idx_brute):
        assert set(a) == set(b)


def test_knn_excludes_self():
    points = RNG.uniform(size=(50, 2))
    indices, _ = knn_search(points, 4)
    for i, row in enumerate(indices):
        assert i not in row


def test_knn_invalid_k():
    points = RNG.uniform(size=(10, 2))
    with pytest.raises(ValueError):
        knn_search(points, 0)
    with pytest.raises(ValueError):
        knn_search(points, 10)


def test_edge_list_unique_and_ordered():
    points = RNG.uniform(size=(100, 2))
    indices, distances = knn_search(points, 6)
    edges, lengths = knn_graph_edges(indices, distances)
    assert np.all(edges[:, 0] < edges[:, 1])
    keys = edges[:, 0] * 100 + edges[:, 1]
    assert len(np.unique(keys)) == len(keys)
    assert len(lengths) == len(edges)


def test_edge_lengths_match_geometry():
    points = RNG.uniform(size=(60, 2))
    indices, distances = knn_search(points, 3)
    edges, lengths = knn_graph_edges(indices, distances)
    direct = np.linalg.norm(points[edges[:, 0]] - points[edges[:, 1]], axis=1)
    assert np.allclose(lengths, direct)


def test_edge_count_bounds():
    points = RNG.uniform(size=(80, 2))
    indices, distances = knn_search(points, 4)
    edges, _ = knn_graph_edges(indices, distances)
    # between n*k/2 (all mutual) and n*k (no mutual)
    assert 80 * 4 / 2 <= len(edges) <= 80 * 4


class TestHNSW:
    def test_recall_against_exact(self):
        points = RNG.uniform(size=(300, 2))
        idx_exact, _ = knn_search(points, 5, backend="kdtree")
        idx_hnsw, _ = knn_search(points, 5, backend="hnsw",
                                 rng=np.random.default_rng(1))
        hits = sum(len(set(a) & set(b)) for a, b in zip(idx_hnsw, idx_exact))
        recall = hits / idx_exact.size
        assert recall > 0.9, f"HNSW recall too low: {recall:.3f}"

    def test_query_exact_on_tiny_set(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [5.0, 5.0]])
        index = HNSWIndex(dim=2, rng=np.random.default_rng(0))
        index.build(points)
        ids, dists = index.query(np.array([0.1, 0.1]), k=2)
        assert ids[0] == 0
        assert np.isclose(dists[0], np.hypot(0.1, 0.1))

    def test_query_empty_index_raises(self):
        index = HNSWIndex(dim=2)
        with pytest.raises(RuntimeError):
            index.query(np.zeros(2), 1)

    def test_incremental_add(self):
        index = HNSWIndex(dim=2, rng=np.random.default_rng(2))
        for p in RNG.uniform(size=(50, 2)):
            index.add(p)
        assert len(index) == 50
        ids, _ = index.query(RNG.uniform(size=2), k=3)
        assert len(ids) == 3

    def test_knn_batch_shape(self):
        points = RNG.uniform(size=(100, 3))
        index = HNSWIndex(dim=3, rng=np.random.default_rng(3))
        index.build(points)
        ids, dists = index.knn(points, 4, exclude_self=True)
        assert ids.shape == (100, 4)
        for i, row in enumerate(ids):
            assert i not in row
