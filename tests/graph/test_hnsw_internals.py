"""HNSW internals: layer distribution, connectivity limits, edge cases."""

import numpy as np
import pytest

from repro.graph import HNSWIndex

RNG = np.random.default_rng(0)


def build_index(n=200, m=8, seed=1):
    index = HNSWIndex(dim=2, m=m, rng=np.random.default_rng(seed))
    index.build(RNG.uniform(size=(n, 2)))
    return index


def test_level_distribution_is_geometric_ish():
    index = build_index(n=400)
    levels = np.array(index.levels)
    assert levels.min() == 0
    # most nodes live on the base layer
    assert (levels == 0).mean() > 0.7
    assert levels.max() >= 1          # some hierarchy exists


def test_entry_point_has_max_level():
    index = build_index()
    assert index.levels[index.entry_point] == index.max_level


def test_connection_limits_respected():
    index = build_index(m=6)
    for node, per_level in enumerate(index.neighbours):
        for level, links in per_level.items():
            limit = 12 if level == 0 else 6
            assert len(links) <= limit, \
                f"node {node} level {level}: {len(links)} links"


def test_links_are_bidirectional_enough_for_search():
    # every node must be reachable: query each point for itself
    index = build_index(n=150)
    found_self = 0
    for i, point in enumerate(index.points):
        ids, dists = index.query(point, k=1)
        if len(ids) and ids[0] == i:
            found_self += 1
    assert found_self > 140


def test_query_k_larger_than_index():
    index = HNSWIndex(dim=2, rng=np.random.default_rng(0))
    index.build(RNG.uniform(size=(5, 2)))
    ids, dists = index.query(np.array([0.5, 0.5]), k=10)
    assert len(ids) <= 5
    assert np.all(np.diff(dists) >= -1e-12)   # sorted ascending


def test_duplicate_points_handled():
    index = HNSWIndex(dim=2, rng=np.random.default_rng(2))
    pts = np.vstack([np.zeros((5, 2)), RNG.uniform(size=(20, 2))])
    index.build(pts)
    ids, dists = index.query(np.zeros(2), k=3)
    assert np.isclose(dists[0], 0.0)


def test_results_sorted_by_distance():
    index = build_index()
    _, dists = index.query(np.array([0.5, 0.5]), k=8)
    assert np.all(np.diff(dists) >= -1e-12)
