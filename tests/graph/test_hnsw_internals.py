"""HNSW internals: layer distribution, connectivity limits, edge cases."""

import numpy as np
import pytest

from repro.graph import HNSWIndex

RNG = np.random.default_rng(0)


def build_index(n=200, m=8, seed=1):
    index = HNSWIndex(dim=2, m=m, rng=np.random.default_rng(seed))
    index.build(RNG.uniform(size=(n, 2)))
    return index


def test_level_distribution_is_geometric_ish():
    index = build_index(n=400)
    levels = np.array(index.levels)
    assert levels.min() == 0
    # most nodes live on the base layer
    assert (levels == 0).mean() > 0.7
    assert levels.max() >= 1          # some hierarchy exists


def test_entry_point_has_max_level():
    index = build_index()
    assert index.levels[index.entry_point] == index.max_level


def test_connection_limits_respected():
    index = build_index(m=6)
    for node, per_level in enumerate(index.neighbours):
        for level, links in per_level.items():
            limit = 12 if level == 0 else 6
            assert len(links) <= limit, \
                f"node {node} level {level}: {len(links)} links"


def test_links_are_bidirectional_enough_for_search():
    # every node must be reachable: query each point for itself
    index = build_index(n=150)
    found_self = 0
    for i, point in enumerate(index.points):
        ids, dists = index.query(point, k=1)
        if len(ids) and ids[0] == i:
            found_self += 1
    assert found_self > 140


def test_query_k_larger_than_index():
    index = HNSWIndex(dim=2, rng=np.random.default_rng(0))
    index.build(RNG.uniform(size=(5, 2)))
    ids, dists = index.query(np.array([0.5, 0.5]), k=10)
    assert len(ids) <= 5
    assert np.all(np.diff(dists) >= -1e-12)   # sorted ascending


def test_duplicate_points_handled():
    index = HNSWIndex(dim=2, rng=np.random.default_rng(2))
    pts = np.vstack([np.zeros((5, 2)), RNG.uniform(size=(20, 2))])
    index.build(pts)
    ids, dists = index.query(np.zeros(2), k=3)
    assert np.isclose(dists[0], 0.0)


def test_results_sorted_by_distance():
    index = build_index()
    _, dists = index.query(np.array([0.5, 0.5]), k=8)
    assert np.all(np.diff(dists) >= -1e-12)


# ----------------------------------------------------------------------
# Tiny clouds: knn() used to crash assigning a short row into (n, k)
# ----------------------------------------------------------------------
class TestKnnTinyClouds:
    def test_knn_cloud_smaller_than_k_pads_rows(self):
        pts = RNG.uniform(size=(4, 2))
        index = HNSWIndex(dim=2, rng=np.random.default_rng(0)).build(pts)
        ids, dists = index.knn(pts, k=8, exclude_self=True)
        assert ids.shape == (4, 8) and dists.shape == (4, 8)
        for i, row in enumerate(ids):
            assert i not in row
            # the 3 real neighbours all appear; padding only repeats them
            assert set(row) == set(range(4)) - {i}

    def test_knn_cloud_equal_to_k(self):
        pts = RNG.uniform(size=(6, 2))
        index = HNSWIndex(dim=2, rng=np.random.default_rng(1)).build(pts)
        ids, _ = index.knn(pts, k=6, exclude_self=True)
        assert ids.shape == (6, 6)
        for i, row in enumerate(ids):
            assert i not in row

    def test_knn_padding_is_deterministic(self):
        pts = RNG.uniform(size=(3, 2))
        a = HNSWIndex(dim=2, rng=np.random.default_rng(2)).build(pts)
        b = HNSWIndex(dim=2, rng=np.random.default_rng(2)).build(pts)
        ids_a, dists_a = a.knn(pts, k=7, exclude_self=True)
        ids_b, dists_b = b.knn(pts, k=7, exclude_self=True)
        assert np.array_equal(ids_a, ids_b)
        assert np.array_equal(dists_a, dists_b)

    def test_knn_without_exclude_self_pads_too(self):
        pts = RNG.uniform(size=(2, 2))
        index = HNSWIndex(dim=2, rng=np.random.default_rng(3)).build(pts)
        ids, dists = index.knn(pts, k=5, exclude_self=False)
        assert ids.shape == (2, 5)
        # closest neighbour of each point is itself at distance zero
        assert np.allclose(dists[np.arange(2), 0], 0.0)

    def test_knn_single_point_with_exclude_self_raises(self):
        index = HNSWIndex(dim=2, rng=np.random.default_rng(4))
        index.build(np.zeros((1, 2)))
        with pytest.raises(ValueError, match="too small"):
            index.knn(np.zeros((1, 2)), k=1, exclude_self=True)
        # without exclusion the lone point is its own neighbour
        ids, dists = index.knn(np.zeros((1, 2)), k=2, exclude_self=False)
        assert ids.shape == (1, 2) and np.allclose(dists, 0.0)


# ----------------------------------------------------------------------
# Doubling buffer: add() must stay amortized O(1) per insert
# ----------------------------------------------------------------------
class TestDoublingBuffer:
    def test_points_view_matches_inserted(self):
        pts = RNG.uniform(size=(37, 2))
        index = HNSWIndex(dim=2, rng=np.random.default_rng(5)).build(pts)
        assert len(index) == 37
        assert index.points.shape == (37, 2)
        assert np.array_equal(index.points, pts)

    def test_buffer_grows_geometrically(self):
        index = HNSWIndex(dim=2, rng=np.random.default_rng(6))
        for p in RNG.uniform(size=(100, 2)):
            index.add(p)
        assert len(index) == 100
        assert len(index._buffer) >= 100
        # capacity doubles, so at most ~2x overshoot
        assert len(index._buffer) <= 256

    def test_reserve_preserves_contents(self):
        pts = RNG.uniform(size=(10, 2))
        index = HNSWIndex(dim=2, rng=np.random.default_rng(7)).build(pts)
        index.reserve(1000)
        assert np.array_equal(index.points, pts)
        assert len(index._buffer) >= 1000

    def test_build_then_incremental_adds(self):
        index = HNSWIndex(dim=2, rng=np.random.default_rng(8))
        index.build(RNG.uniform(size=(20, 2)))
        for p in RNG.uniform(size=(20, 2)):
            index.add(p)
        assert len(index) == 40
        ids, _ = index.query(np.array([0.5, 0.5]), k=5)
        assert len(ids) == 5
