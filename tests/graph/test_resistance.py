"""Effective resistance: exact laws, estimator accuracy, metric properties."""

import numpy as np
import pytest

from repro.graph import (
    adjacency_from_edges, approx_edge_resistance, exact_effective_resistance,
    knn_adjacency, resistance_embedding, spectral_embedding_resistance,
)

RNG = np.random.default_rng(0)


def path_graph(n, weights=None):
    edges = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    if weights is None:
        weights = np.ones(n - 1)
    return adjacency_from_edges(n, edges, weights)


def complete_graph(n):
    edges = np.array([(i, j) for i in range(n) for j in range(i + 1, n)])
    return adjacency_from_edges(n, edges, np.ones(len(edges)))


class TestExact:
    def test_single_edge(self):
        adj = adjacency_from_edges(2, np.array([[0, 1]]), np.array([2.0]))
        er = exact_effective_resistance(adj, [[0, 1]])
        assert np.isclose(er[0], 0.5)  # R = 1/w

    def test_series_law_on_path(self):
        adj = path_graph(5)
        er = exact_effective_resistance(adj, [[0, 4]])
        assert np.isclose(er[0], 4.0)

    def test_weighted_series(self):
        adj = path_graph(4, weights=np.array([1.0, 2.0, 4.0]))
        er = exact_effective_resistance(adj, [[0, 3]])
        assert np.isclose(er[0], 1.0 + 0.5 + 0.25)

    def test_parallel_law(self):
        # two parallel unit edges = one edge of weight 2
        adj = adjacency_from_edges(2, np.array([[0, 1], [0, 1]]),
                                   np.array([1.0, 1.0]))
        er = exact_effective_resistance(adj, [[0, 1]])
        assert np.isclose(er[0], 0.5)

    def test_complete_graph_value(self):
        n = 7
        er = exact_effective_resistance(complete_graph(n), [[0, 1]])
        assert np.isclose(er[0], 2.0 / n)

    def test_symmetry(self):
        adj = knn_adjacency(RNG.uniform(size=(40, 2)), 4)
        pairs = np.array([[0, 5], [5, 0], [3, 17], [17, 3]])
        er = exact_effective_resistance(adj, pairs)
        assert np.isclose(er[0], er[1])
        assert np.isclose(er[2], er[3])

    def test_triangle_inequality(self):
        adj = knn_adjacency(RNG.uniform(size=(30, 2)), 4)
        nodes = RNG.choice(30, size=(20, 3))
        for a, b, c in nodes:
            r = exact_effective_resistance(adj, [[a, b], [b, c], [a, c]])
            assert r[2] <= r[0] + r[1] + 1e-9

    def test_identical_nodes_zero(self):
        adj = path_graph(4)
        er = exact_effective_resistance(adj, [[2, 2]])
        assert np.isclose(er[0], 0.0)


class TestApprox:
    def test_jl_sketch_close_to_exact(self):
        points = RNG.uniform(size=(120, 2))
        adj = knn_adjacency(points, 6)
        import scipy.sparse as sp
        coo = sp.triu(adj, k=1).tocoo()
        pairs = np.stack([coo.row, coo.col], axis=1)
        exact = exact_effective_resistance(adj, pairs)
        approx = approx_edge_resistance(adj, pairs, num_vectors=128, seed=1)
        rel = np.abs(approx - exact) / exact
        assert np.median(rel) < 0.15
        assert np.mean(rel) < 0.25

    def test_jl_sketch_preserves_ordering(self):
        # ER-based contraction only needs the *ordering* of edge resistances
        adj = path_graph(30, weights=np.linspace(1.0, 5.0, 29))
        pairs = np.stack([np.arange(29), np.arange(1, 30)], axis=1)
        exact = exact_effective_resistance(adj, pairs)
        approx = approx_edge_resistance(adj, pairs, num_vectors=96, seed=2)
        corr = np.corrcoef(np.argsort(np.argsort(exact)),
                           np.argsort(np.argsort(approx)))[0, 1]
        assert corr > 0.95

    def test_embedding_shape(self):
        adj = knn_adjacency(RNG.uniform(size=(50, 2)), 4)
        z = resistance_embedding(adj, num_vectors=8, seed=0)
        assert z.shape == (8, 50)

    def test_cg_solver_matches_splu(self):
        adj = knn_adjacency(RNG.uniform(size=(60, 2)), 5)
        a = approx_edge_resistance(adj, num_vectors=16, seed=3, solver="splu")
        b = approx_edge_resistance(adj, num_vectors=16, seed=3, solver="cg")
        assert np.allclose(a, b, rtol=1e-4)

    def test_bad_solver_rejected(self):
        adj = path_graph(5)
        with pytest.raises(ValueError):
            resistance_embedding(adj, solver="nope")

    def test_bad_pairs_rejected(self):
        adj = path_graph(5)
        with pytest.raises(ValueError):
            exact_effective_resistance(adj, np.zeros((3, 3)))


class TestSpectral:
    def test_full_rank_matches_exact(self):
        points = RNG.uniform(size=(40, 2))
        adj = knn_adjacency(points, 5)
        import scipy.sparse as sp
        coo = sp.triu(adj, k=1).tocoo()
        pairs = np.stack([coo.row, coo.col], axis=1)
        exact = exact_effective_resistance(adj, pairs)
        spectral = spectral_embedding_resistance(adj, pairs, rank=39)
        assert np.allclose(spectral, exact, rtol=5e-3, atol=1e-6)

    def test_truncation_is_lower_bound(self):
        points = RNG.uniform(size=(60, 2))
        adj = knn_adjacency(points, 5)
        import scipy.sparse as sp
        coo = sp.triu(adj, k=1).tocoo()
        pairs = np.stack([coo.row, coo.col], axis=1)
        exact = exact_effective_resistance(adj, pairs)
        truncated = spectral_embedding_resistance(adj, pairs, rank=8)
        assert np.all(truncated <= exact + 1e-9)
