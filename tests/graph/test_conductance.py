"""Conductance diagnostics for LRD partitions (paper §3.3)."""

import numpy as np

from repro.graph import (
    adjacency_from_edges, cluster_conductance, cut_fraction, knn_adjacency,
    lrd_decompose, partition_summary,
)

RNG = np.random.default_rng(0)


def two_blobs(n=200, separation=5.0, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 0.3, (n // 2, 2))
    b = rng.normal(separation, 0.3, (n // 2, 2))
    return np.vstack([a, b])


def test_cut_fraction_zero_for_whole_graph():
    adj = knn_adjacency(RNG.uniform(size=(50, 2)), 4)
    assert cut_fraction(adj, np.zeros(50, dtype=int)) == 0.0


def test_cut_fraction_one_for_singletons():
    adj = knn_adjacency(RNG.uniform(size=(50, 2)), 4)
    assert np.isclose(cut_fraction(adj, np.arange(50)), 1.0)


def test_natural_split_has_low_conductance():
    points = two_blobs()
    adj = knn_adjacency(points, 6)
    labels = (np.arange(len(points)) >= len(points) // 2).astype(int)
    natural = cluster_conductance(adj, labels)
    rng = np.random.default_rng(1)
    random_labels = rng.integers(0, 2, len(points))
    random = cluster_conductance(adj, random_labels)
    assert natural.max() < 0.2 * random.max()


def test_lrd_cuts_bounded_fraction_of_edges():
    # Alev et al.: LRD removes only a constant fraction of edge weight
    points = RNG.uniform(size=(400, 2))
    adj = knn_adjacency(points, 8)
    result = lrd_decompose(adj, level=4, seed=0)
    frac = cut_fraction(adj, result.labels)
    assert frac < 0.8


def test_lrd_clusters_beat_random_partition_conductance():
    points = RNG.uniform(size=(400, 2))
    adj = knn_adjacency(points, 8)
    result = lrd_decompose(adj, level=4, seed=0)
    lrd_phi = cluster_conductance(adj, result.labels)
    rng = np.random.default_rng(2)
    random_labels = rng.integers(0, result.n_clusters, 400)
    rand_phi = cluster_conductance(adj, random_labels)
    assert lrd_phi.mean() < rand_phi.mean()


def test_partition_summary_fields():
    adj = knn_adjacency(RNG.uniform(size=(120, 2)), 5)
    result = lrd_decompose(adj, level=3, seed=0)
    summary = partition_summary(adj, result.labels)
    assert summary["n_clusters"] == result.n_clusters
    assert 0.0 <= summary["cut_fraction"] <= 1.0
    assert summary["min_size"] >= 1
    assert summary["max_size"] <= 120
    assert summary["mean_conductance"] <= summary["max_conductance"]


def test_single_cluster_conductance_empty():
    adj = adjacency_from_edges(3, np.array([[0, 1], [1, 2]]), np.ones(2))
    assert cluster_conductance(adj, np.zeros(3, dtype=int)).size == 0
