"""Failure injection and edge cases for the autodiff engine."""

import numpy as np
import pytest

from repro import autodiff as ad
from repro.autodiff import Tensor, gradients


class TestNonFiniteValues:
    def test_nan_propagates_not_crashes(self):
        x = Tensor(np.array([1.0, np.nan]), requires_grad=True)
        g, = gradients((x * 2.0).sum(), [x])
        assert np.allclose(g.numpy(), 2.0)  # linear op: grad indep of value

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_inf_through_exp(self):
        x = Tensor(np.array([1000.0]), requires_grad=True)
        y = ad.exp(x)
        assert np.isinf(y.numpy()[0])
        g, = gradients(y.sum(), [x])
        assert np.isinf(g.numpy()[0])

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_division_by_zero_gives_inf_gradient(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        y = 1.0 / x
        g, = gradients(y.sum(), [x])
        assert not np.isfinite(g.numpy()[0])

    def test_sigmoid_saturation_has_zero_not_nan_grad(self):
        x = Tensor(np.array([-1e4, 1e4]), requires_grad=True)
        g, = gradients(ad.sigmoid(x).sum(), [x])
        assert np.all(np.isfinite(g.numpy()))
        assert np.allclose(g.numpy(), 0.0, atol=1e-12)


class TestDtypePreservation:
    def test_float32_graph_stays_float32(self):
        x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        y = (x * 2.0 + 1.0) / 3.0 - 0.5
        assert y.dtype == np.float32
        g, = gradients(y.sum(), [x])
        assert g.dtype == np.float32

    def test_float32_through_activations(self):
        x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        assert ad.silu(x).dtype == np.float32
        assert ad.tanh(x).dtype == np.float32

    def test_mixed_array_operands_promote(self):
        a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones(3, dtype=np.float64))
        assert (a + b).dtype == np.float64


class TestDegenerateShapes:
    def test_empty_tensor_ops(self):
        x = Tensor(np.zeros((0, 3)), requires_grad=True)
        y = (x * 2.0).sum()
        g, = gradients(y, [x])
        assert g.shape == (0, 3)

    def test_scalar_shape_tensor(self):
        x = Tensor(np.array(2.0), requires_grad=True)
        g, = gradients(x * x, [x])
        assert g.shape == ()
        assert np.isclose(g.item(), 4.0)

    def test_single_element_matmul(self):
        a = Tensor(np.ones((1, 1)), requires_grad=True)
        b = Tensor(np.full((1, 1), 3.0), requires_grad=True)
        g_a, g_b = gradients((a @ b).sum(), [a, b])
        assert np.isclose(g_a.item(), 3.0)
        assert np.isclose(g_b.item(), 1.0)


class TestGraphReuse:
    def test_same_graph_differentiated_twice(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x ** 3.0
        g1, = gradients(y.sum(), [x])
        g2, = gradients(y.sum(), [x])
        assert np.allclose(g1.numpy(), g2.numpy())

    def test_gradient_of_mixed_order_sum(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        y = x ** 2.0
        dy, = gradients(y.sum(), [x])
        combined = (y + dy).sum()     # x^2 + 2x
        g, = gradients(combined, [x])
        assert np.isclose(g.item(), 2.0 * 1.5 + 2.0)

    def test_detached_branch_excluded(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x
        z = y.detach() * x            # gradient only through the right factor
        g, = gradients(z.sum(), [x])
        assert np.isclose(g.item(), 9.0)


class TestConcatSplitEdgeCases:
    def test_concat_single_tensor(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = ad.concat([x], axis=0)
        g, = gradients((y * 3.0).sum(), [x])
        assert np.allclose(g.numpy(), 3.0)

    def test_concat_negative_axis(self):
        a = Tensor(np.ones((2, 1)), requires_grad=True)
        b = Tensor(np.ones((2, 2)), requires_grad=True)
        out = ad.concat([a, b], axis=-1)
        assert out.shape == (2, 3)
        g_a, g_b = gradients(out.sum(), [a, b])
        assert g_a.shape == (2, 1) and g_b.shape == (2, 2)

    def test_getitem_single_row(self):
        x = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        g, = gradients((x[1] * 2.0).sum(), [x])
        expected = np.zeros((3, 2))
        expected[1] = 2.0
        assert np.allclose(g.numpy(), expected)

    def test_getitem_repeated_integer_rows_accumulate(self):
        x = Tensor(np.ones((3, 1)), requires_grad=True)
        idx = np.array([0, 0, 2])
        g, = gradients(x[idx].sum(), [x])
        assert np.allclose(g.numpy().ravel(), [2.0, 0.0, 1.0])
