"""Replay-engine tests: bit-identical parity and stale-tape fallback.

The record-once/replay-many contract is *bit-identity*, not tolerance: a
compiled step must reproduce the eager loss/gradient trajectory exactly
(``==`` on Python floats, no ``allclose``).  Every registered problem is
trained twice — eager and compiled — under the SGM sampler, whose mid-run
importance refreshes are the hardest case (per-step weight inputs plus
probe forward passes between steps).
"""

import numpy as np
import pytest

import repro.api.problems  # noqa: F401  (populate the registry)
from repro.api.registry import list_problems
from repro.api.session import Session, _wire_training
from repro.autodiff import ReplayStale


def _train(problem, sampler, compile, steps=6, hooks=()):
    session = Session(problem, scale="smoke").sampler(sampler)
    prob = session.build()
    trainer, _ = _wire_training(prob, session._config, sampler,
                                session._config.batch_small,
                                session._config.seed, [])
    history = trainer.train(steps, validate_every=10**6, record_every=1,
                            step_hooks=hooks, compile=compile)
    return list(history.losses), trainer


@pytest.mark.parametrize("problem", list_problems())
def test_replay_matches_eager_bit_identically(problem):
    eager, _ = _train(problem, "sgm", compile=False)
    replayed, trainer = _train(problem, "sgm", compile=True)
    # the program must actually have compiled (not silently fallen back)
    assert trainer.compile_info() == "replay", trainer.compile_info()
    assert replayed == eager


def test_compile_reports_tracing_before_enough_steps():
    _, trainer = _train("burgers", "uniform", compile=True, steps=1)
    assert trainer.compile_info() == "tracing"


def test_stale_tape_falls_back_to_eager_and_training_continues():
    # a mid-run batch-size change invalidates the compiled tape's input
    # shapes; the step must fall back to eager (permanently) and keep
    # training rather than replaying a wrong graph
    def shrink(step, trainer, **_):
        if step == 3:
            for constraint in trainer.constraints:
                constraint.batch_size = max(8, constraint.batch_size // 2)

    losses, trainer = _train("burgers", "uniform", compile=True, steps=8,
                             hooks=(shrink,))
    assert len(losses) == 8
    assert np.isfinite(losses).all()
    info = trainer.compile_info()
    assert info.startswith("eager (refused: stale tape"), info


def test_program_run_rejects_shape_drift_directly():
    _, trainer = _train("burgers", "uniform", compile=True, steps=4)
    program = trainer.replay_state.program
    assert program is not None
    batches, weights = trainer._step_batches(4)
    externals = trainer._replay_externals(batches)
    externals[0] = externals[0][:-1]   # drop a row: shape mismatch
    with pytest.raises(ReplayStale):
        program.run(externals, trainer._weight_list(weights))


def test_closure_optimizers_ignore_compile():
    # L-BFGS re-evaluates the graph inside its closure; compile=True must
    # be a no-op there (no replay state machine), not an error
    from repro.nn import LBFGS

    session = Session("burgers", scale="smoke").sampler("uniform")
    prob = session.build()
    trainer, _ = _wire_training(prob, session._config, "uniform",
                                session._config.batch_small,
                                session._config.seed, [])
    trainer.optimizer = LBFGS(trainer.params)
    trainer.scheduler = None
    history = trainer.train(2, validate_every=10**6, record_every=1,
                            compile=True)
    assert len(history.losses) == 2
    assert trainer.compile_info() == "eager"
