"""Value and first-order gradient checks for every primitive op."""

import numpy as np
import pytest

from repro import autodiff as ad
from repro.autodiff import Tensor, gradcheck, gradients

RNG = np.random.default_rng(0)


def rand(*shape, low=-2.0, high=2.0):
    return RNG.uniform(low, high, size=shape)


class TestValues:
    def test_add_values(self):
        a, b = rand(3, 2), rand(3, 2)
        assert np.allclose(ad.add(a, b).numpy(), a + b)

    def test_sub_values(self):
        a, b = rand(3, 2), rand(3, 2)
        assert np.allclose(ad.sub(a, b).numpy(), a - b)

    def test_mul_values(self):
        a, b = rand(4), rand(4)
        assert np.allclose(ad.mul(a, b).numpy(), a * b)

    def test_div_values(self):
        a, b = rand(4), rand(4, low=0.5, high=2.0)
        assert np.allclose(ad.div(a, b).numpy(), a / b)

    def test_matmul_values(self):
        a, b = rand(3, 4), rand(4, 5)
        assert np.allclose(ad.matmul(a, b).numpy(), a @ b)

    def test_matmul_rejects_1d(self):
        with pytest.raises(ValueError):
            ad.matmul(rand(3), rand(3))

    def test_unary_values(self):
        x = rand(5, low=0.1, high=2.0)
        assert np.allclose(ad.exp(x).numpy(), np.exp(x))
        assert np.allclose(ad.log(x).numpy(), np.log(x))
        assert np.allclose(ad.sqrt(x).numpy(), np.sqrt(x))
        assert np.allclose(ad.sin(x).numpy(), np.sin(x))
        assert np.allclose(ad.cos(x).numpy(), np.cos(x))
        assert np.allclose(ad.tanh(x).numpy(), np.tanh(x))

    def test_sigmoid_matches_definition(self):
        x = rand(7, low=-30, high=30)
        expected = 1.0 / (1.0 + np.exp(-x))
        assert np.allclose(ad.sigmoid(x).numpy(), expected)

    def test_sigmoid_extreme_inputs_are_stable(self):
        x = np.array([-1e3, 1e3])
        out = ad.sigmoid(x).numpy()
        assert np.all(np.isfinite(out))
        assert np.allclose(out, [0.0, 1.0])

    def test_silu_definition(self):
        x = rand(6)
        assert np.allclose(ad.silu(x).numpy(), x / (1.0 + np.exp(-x)))

    def test_relu_values(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert np.allclose(ad.relu(x).numpy(), [0.0, 0.0, 2.0])

    def test_softplus_values(self):
        x = rand(5, low=-5, high=5)
        assert np.allclose(ad.softplus(x).numpy(), np.log1p(np.exp(x)))

    def test_absolute_values(self):
        x = np.array([-2.0, 0.0, 3.0])
        assert np.allclose(ad.absolute(x).numpy(), [2.0, 0.0, 3.0])

    def test_maximum_minimum_values(self):
        a, b = rand(6), rand(6)
        assert np.allclose(ad.maximum(a, b).numpy(), np.maximum(a, b))
        assert np.allclose(ad.minimum(a, b).numpy(), np.minimum(a, b))

    def test_where_values(self):
        a, b = rand(5), rand(5)
        cond = a > b
        assert np.allclose(ad.where(cond, a, b).numpy(), np.where(cond, a, b))

    def test_sum_axis_values(self):
        x = rand(3, 4)
        assert np.allclose(ad.sum_(x, axis=0).numpy(), x.sum(axis=0))
        assert np.allclose(ad.sum_(x, axis=1, keepdims=True).numpy(),
                           x.sum(axis=1, keepdims=True))
        assert np.allclose(ad.sum_(x).numpy(), x.sum())

    def test_mean_values(self):
        x = rand(3, 4)
        assert np.allclose(ad.mean(x).numpy(), x.mean())
        assert np.allclose(ad.mean(x, axis=1).numpy(), x.mean(axis=1))

    def test_reshape_transpose_values(self):
        x = rand(3, 4)
        assert ad.reshape(x, (4, 3)).shape == (4, 3)
        assert np.allclose(ad.transpose(x).numpy(), x.T)

    def test_concat_values(self):
        a, b = rand(2, 3), rand(2, 2)
        out = ad.concat([a, b], axis=1)
        assert np.allclose(out.numpy(), np.concatenate([a, b], axis=1))

    def test_getitem_values(self):
        x = rand(4, 5)
        assert np.allclose(ad.getitem(Tensor(x), (slice(None), slice(1, 3))).numpy(),
                           x[:, 1:3])

    def test_power_values(self):
        x = rand(5, low=0.2, high=2.0)
        assert np.allclose(ad.power(x, 3.0).numpy(), x ** 3.0)


class TestGradients:
    def test_add_grad(self):
        gradcheck(lambda a, b: (a + b).sum(), [rand(3, 2), rand(3, 2)])

    def test_mul_grad(self):
        gradcheck(lambda a, b: (a * b).mean(), [rand(3, 2), rand(3, 2)])

    def test_div_grad(self):
        gradcheck(lambda a, b: (a / b).sum(),
                  [rand(4), rand(4, low=0.5, high=2.0)])

    def test_matmul_grad(self):
        gradcheck(lambda a, b: (a @ b).sum(), [rand(3, 4), rand(4, 2)])

    def test_exp_log_grad(self):
        gradcheck(lambda x: ad.exp(x).sum(), [rand(5)])
        gradcheck(lambda x: ad.log(x).sum(), [rand(5, low=0.5, high=3.0)])

    def test_trig_grad(self):
        gradcheck(lambda x: ad.sin(x).sum(), [rand(5)])
        gradcheck(lambda x: ad.cos(x).sum(), [rand(5)])

    def test_tanh_sigmoid_silu_grad(self):
        gradcheck(lambda x: ad.tanh(x).sum(), [rand(5)])
        gradcheck(lambda x: ad.sigmoid(x).sum(), [rand(5)])
        gradcheck(lambda x: ad.silu(x).sum(), [rand(5)])

    def test_softplus_grad(self):
        gradcheck(lambda x: ad.softplus(x).sum(), [rand(5)])

    def test_power_grad(self):
        gradcheck(lambda x: ad.power(x, 2.5).sum(), [rand(5, low=0.3, high=2.0)])

    def test_sqrt_grad(self):
        gradcheck(lambda x: ad.sqrt(x).sum(), [rand(5, low=0.5, high=3.0)])

    def test_abs_grad_away_from_zero(self):
        gradcheck(lambda x: ad.absolute(x).sum(), [rand(5, low=0.5, high=2.0)])

    def test_maximum_grad(self):
        a = np.array([1.0, -2.0, 3.0])
        b = np.array([0.5, 0.5, 4.0])
        gradcheck(lambda x, y: ad.maximum(x, y).sum(), [a, b])

    def test_where_grad(self):
        a, b = rand(5), rand(5)
        cond = rand(5) > 0
        gradcheck(lambda x, y: ad.where(cond, x, y).sum(), [a, b])

    def test_sum_axis_grad(self):
        gradcheck(lambda x: (ad.sum_(x, axis=0) ** 2.0).sum(), [rand(3, 4)])
        gradcheck(lambda x: (ad.sum_(x, axis=(0, 1)) ** 2.0).sum(), [rand(3, 4)])

    def test_mean_grad(self):
        gradcheck(lambda x: (ad.mean(x, axis=1) ** 2.0).sum(), [rand(3, 4)])

    def test_reshape_grad(self):
        gradcheck(lambda x: (ad.reshape(x, (6,)) ** 2.0).sum(), [rand(2, 3)])

    def test_transpose_grad(self):
        gradcheck(lambda x: (ad.transpose(x) @ x).sum(), [rand(2, 3)])

    def test_broadcast_grads(self):
        gradcheck(lambda a, b: (a + b).sum(), [rand(3, 1), rand(1, 4)])
        gradcheck(lambda a, b: (a * b).sum(), [rand(4), rand(2, 4)])
        gradcheck(lambda a, b: (a / b).sum(),
                  [rand(2, 1, 3), rand(3, low=0.5, high=2.0)])

    def test_scalar_broadcast_grad(self):
        gradcheck(lambda x: (x * 3.0 + 1.0).sum(), [rand(3, 2)])

    def test_concat_grad(self):
        gradcheck(lambda a, b: (ad.concat([a, b], axis=1) ** 2.0).sum(),
                  [rand(2, 3), rand(2, 2)])

    def test_getitem_slice_grad(self):
        gradcheck(lambda x: (x[:, 1:3] ** 2.0).sum(), [rand(4, 5)])

    def test_getitem_int_array_grad(self):
        idx = np.array([0, 2, 2, 3])
        gradcheck(lambda x: (x[idx] ** 2.0).sum(), [rand(5, 2)])

    def test_broadcast_to_grad(self):
        gradcheck(lambda x: (ad.broadcast_to(x, (4, 3)) ** 2.0).sum(), [rand(1, 3)])


class TestTensorBasics:
    def test_detach_blocks_gradients(self):
        x = Tensor(rand(3), requires_grad=True)
        y = (x.detach() * 2.0).sum()
        assert not y.requires_grad

    def test_requires_grad_propagates(self):
        x = Tensor(rand(3), requires_grad=True)
        c = Tensor(rand(3))
        assert (x + c).requires_grad
        assert not (c + c).requires_grad

    def test_constant_graph_is_pruned(self):
        c = Tensor(rand(3))
        out = ad.tanh(c * 2.0)
        assert out.is_leaf

    def test_repr_mentions_shape(self):
        x = Tensor(rand(2, 2), requires_grad=True, name="w")
        assert "shape=(2, 2)" in repr(x)
        assert "w" in repr(x)

    def test_item_and_len(self):
        assert Tensor(np.array([3.5])).item() == 3.5
        assert len(Tensor(rand(4, 2))) == 4

    def test_numpy_returns_backing_array(self):
        x = np.zeros(3)
        assert ad.as_tensor(x).numpy() is x

    def test_radd_rsub_with_ndarray(self):
        x = Tensor(rand(3), requires_grad=True)
        arr = rand(3)
        left = arr + x
        right = x + arr
        assert np.allclose(left.numpy(), right.numpy())
        assert left.requires_grad

    def test_gradients_through_operator_sugar(self):
        gradcheck(lambda a, b: ((a - b) ** 2.0 / 2.0 + (-a) * b).sum(),
                  [rand(3), rand(3)])


class TestDtypeDiscipline:
    """float32 graphs must stay float32 through forward AND backward.

    The backward masks of maximum/minimum/where historically hardcoded
    ``.astype(np.float64)`` and silently upcast every downstream gradient;
    they now adopt the operand dtype.  Scalar peers (Python literals, numpy
    scalars, 0-d arrays) adopt the tensor's dtype; real data arrays keep
    their own.
    """

    def _f32(self, *shape):
        return rand(*shape).astype(np.float32)

    def test_maximum_gradient_keeps_float32(self):
        a = Tensor(self._f32(5), requires_grad=True)
        b = Tensor(self._f32(5), requires_grad=True)
        ga, gb = gradients(ad.maximum(a, b).sum(), [a, b])
        assert ga.dtype == np.float32
        assert gb.dtype == np.float32

    def test_minimum_gradient_keeps_float32(self):
        a = Tensor(self._f32(5), requires_grad=True)
        b = Tensor(self._f32(5), requires_grad=True)
        ga, gb = gradients(ad.minimum(a, b).sum(), [a, b])
        assert ga.dtype == np.float32
        assert gb.dtype == np.float32

    def test_where_gradient_keeps_float32(self):
        cond = rand(5) > 0.0
        a = Tensor(self._f32(5), requires_grad=True)
        b = Tensor(self._f32(5), requires_grad=True)
        ga, gb = gradients(ad.where(cond, a, b).sum(), [a, b])
        assert ga.dtype == np.float32
        assert gb.dtype == np.float32

    def test_numpy_scalar_peer_adopts_tensor_dtype(self):
        x = Tensor(self._f32(3), requires_grad=True)
        for scalar in (2.0, np.float64(2.0), np.array(2.0)):
            y = x * scalar
            assert y.dtype == np.float32, f"promoted by {scalar!r}"
            (g,) = gradients(y.sum(), [x])
            assert g.dtype == np.float32, f"gradient promoted by {scalar!r}"

    def test_data_array_peer_keeps_its_dtype(self):
        # a 1-d float64 array carries data, not a literal: promotion is
        # the caller's explicit choice and must be preserved
        x = Tensor(self._f32(3), requires_grad=True)
        y = x * np.ones(3, dtype=np.float64)
        assert y.dtype == np.float64
