"""Behavioural tests of the gradients() API surface."""

import numpy as np
import pytest

from repro.autodiff import Tensor, grad, gradients, tanh


def test_gradients_accepts_single_tensor_arguments():
    x = Tensor(np.array([2.0]), requires_grad=True)
    g, = gradients((x * x).sum(), x)
    assert np.allclose(g.numpy(), [4.0])


def test_grad_outputs_seed_scales_result():
    x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    y = x * 3.0
    seed = Tensor(np.array([10.0, 100.0]))
    g, = gradients(y, [x], grad_outputs=seed)
    assert np.allclose(g.numpy(), [30.0, 300.0])


def test_multiple_outputs_accumulate():
    x = Tensor(np.array([1.5]), requires_grad=True)
    y1 = x * 2.0
    y2 = x * x
    g, = gradients([y1, y2], [x])
    assert np.allclose(g.numpy(), [2.0 + 2.0 * 1.5])


def test_unused_input_returns_zeros_by_default():
    x = Tensor(np.array([1.0]), requires_grad=True)
    z = Tensor(np.array([5.0, 6.0]), requires_grad=True)
    g_x, g_z = gradients((x * x).sum(), [x, z])
    assert np.allclose(g_z.numpy(), [0.0, 0.0])
    assert g_z.shape == z.shape
    assert np.allclose(g_x.numpy(), [2.0])


def test_unused_input_raises_when_not_allowed():
    x = Tensor(np.array([1.0]), requires_grad=True)
    z = Tensor(np.array([5.0]), requires_grad=True)
    with pytest.raises(ValueError):
        gradients((x * x).sum(), [x, z], allow_unused=False)


def test_non_grad_input_raises():
    x = Tensor(np.array([1.0]))
    with pytest.raises(ValueError):
        gradients((tanh(x)).sum(), [x])


def test_non_tensor_input_raises():
    x = Tensor(np.array([1.0]), requires_grad=True)
    with pytest.raises(TypeError):
        gradients((x * x).sum(), [np.array([1.0])])


def test_input_used_twice_accumulates():
    x = Tensor(np.array([3.0]), requires_grad=True)
    y = x * x + x * 2.0
    g, = gradients(y.sum(), [x])
    assert np.allclose(g.numpy(), [2.0 * 3.0 + 2.0])


def test_gradient_wrt_intermediate_node():
    x = Tensor(np.array([2.0]), requires_grad=True)
    h = x * x          # intermediate
    y = h * 3.0
    g_h, = gradients(y.sum(), [h])
    assert np.allclose(g_h.numpy(), [3.0])


def test_diamond_graph_accumulates_once_per_path():
    x = Tensor(np.array([1.0]), requires_grad=True)
    a = x * 2.0
    b = x * 3.0
    y = a * b  # y = 6 x^2, dy/dx = 12 x
    g, = gradients(y.sum(), [x])
    assert np.allclose(g.numpy(), [12.0])


def test_grad_wrapper():
    f = grad(lambda x: (x ** 3.0).sum())
    x = Tensor(np.array([2.0]), requires_grad=True)
    assert np.allclose(f(x).numpy(), [12.0])


def test_deep_chain_does_not_recurse():
    # iterative topo sort must handle graphs deeper than Python's stack limit
    x = Tensor(np.array([0.5]), requires_grad=True)
    y = x
    for _ in range(3000):
        y = y * 1.0001
    g, = gradients(y.sum(), [x])
    assert np.isfinite(g.item())


def test_gradients_are_tensors_and_differentiable():
    x = Tensor(np.array([1.2]), requires_grad=True)
    g, = gradients((x ** 4.0).sum(), [x])
    assert isinstance(g, Tensor)
    g2, = gradients(g.sum(), [x])
    assert np.allclose(g2.numpy(), [12.0 * 1.2 ** 2])
