"""Hypothesis property tests: analytic gradients agree with finite differences
and algebraic identities hold across randomly generated shapes and values."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro import autodiff as ad
from repro.autodiff import Tensor, gradcheck, gradients

finite = st.floats(min_value=-3.0, max_value=3.0,
                   allow_nan=False, allow_infinity=False, width=64)
small_arrays = arrays(np.float64,
                      array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
                      elements=finite)


@settings(max_examples=40, deadline=None)
@given(small_arrays)
def test_tanh_gradcheck_any_shape(x):
    gradcheck(lambda t: ad.tanh(t).sum(), [x])


@settings(max_examples=40, deadline=None)
@given(small_arrays)
def test_silu_gradcheck_any_shape(x):
    gradcheck(lambda t: ad.silu(t).sum(), [x])


@settings(max_examples=40, deadline=None)
@given(small_arrays, st.data())
def test_addition_commutes_with_gradients(a, data):
    b = data.draw(arrays(np.float64, a.shape, elements=finite))
    shape = np.broadcast_shapes(a.shape, b.shape)
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    left = (ta + tb).sum()
    right = (tb + ta).sum()
    ga_left, = gradients(left, [ta])
    ga_right, = gradients(right, [ta])
    assert np.allclose(ga_left.numpy(), ga_right.numpy())
    assert left.shape == () and (ta + tb).shape == shape


@settings(max_examples=40, deadline=None)
@given(small_arrays)
def test_sum_then_scale_linearity(x):
    t = Tensor(x, requires_grad=True)
    g1, = gradients((t * 2.0).sum(), [t])
    g2, = gradients(t.sum() * 2.0, [t])
    assert np.allclose(g1.numpy(), g2.numpy())
    assert np.allclose(g1.numpy(), 2.0 * np.ones_like(x))


@settings(max_examples=40, deadline=None)
@given(small_arrays)
def test_product_rule(x):
    t = Tensor(x, requires_grad=True)
    g, = gradients((ad.sin(t) * ad.cos(t)).sum(), [t])
    expected = np.cos(x) ** 2 - np.sin(x) ** 2
    assert np.allclose(g.numpy(), expected, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(small_arrays)
def test_chain_rule_composition(x):
    t = Tensor(x, requires_grad=True)
    g, = gradients(ad.tanh(ad.sin(t)).sum(), [t])
    expected = (1.0 - np.tanh(np.sin(x)) ** 2) * np.cos(x)
    assert np.allclose(g.numpy(), expected, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=5),
       st.integers(min_value=1, max_value=5),
       st.integers(min_value=1, max_value=5),
       st.data())
def test_matmul_gradcheck_random_dims(n, k, m, data):
    rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 31)))
    a = rng.normal(size=(n, k))
    b = rng.normal(size=(k, m))
    gradcheck(lambda x, y: (x @ y).sum(), [a, b])


@settings(max_examples=30, deadline=None)
@given(small_arrays)
def test_gradient_of_constant_wrt_input_is_zero(x):
    t = Tensor(x, requires_grad=True)
    const = Tensor(np.ones_like(x))
    g, = gradients((const * 2.0).sum() + t.sum() * 0.0, [t])
    assert np.allclose(g.numpy(), 0.0)


@settings(max_examples=30, deadline=None)
@given(small_arrays)
def test_double_negation_identity(x):
    t = Tensor(x, requires_grad=True)
    g, = gradients((-(-t)).sum(), [t])
    assert np.allclose(g.numpy(), np.ones_like(x))


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=5),
              elements=finite))
def test_sum_axis_consistency(x):
    t = Tensor(x, requires_grad=True)
    total = ad.sum_(ad.sum_(t, axis=0), axis=0)
    g, = gradients(total, [t])
    assert np.allclose(g.numpy(), np.ones_like(x))
