"""Second- and third-order derivative correctness — the PINN-critical path."""

import numpy as np

from repro.autodiff import Tensor, concat, gradients, sigmoid, silu, sin, tanh


def test_second_derivative_of_tanh():
    x = Tensor(np.linspace(-2.0, 2.0, 11), requires_grad=True)
    y = tanh(x)
    dy, = gradients(y.sum(), [x])
    d2y, = gradients(dy.sum(), [x])
    t = np.tanh(x.numpy())
    assert np.allclose(d2y.numpy(), -2.0 * t * (1.0 - t ** 2), atol=1e-12)


def test_third_derivative_of_tanh():
    x = Tensor(np.linspace(-1.5, 1.5, 9), requires_grad=True)
    dy, = gradients(tanh(x).sum(), [x])
    d2y, = gradients(dy.sum(), [x])
    d3y, = gradients(d2y.sum(), [x])
    t = np.tanh(x.numpy())
    expected = -2.0 * (1.0 - t ** 2) * (1.0 - 3.0 * t ** 2)
    assert np.allclose(d3y.numpy(), expected, atol=1e-12)


def test_second_derivative_of_sin_polynomial():
    x = Tensor(np.linspace(0.1, 3.0, 13), requires_grad=True)
    y = sin(x) * x ** 2.0
    dy, = gradients(y.sum(), [x])
    d2y, = gradients(dy.sum(), [x])
    xv = x.numpy()
    expected = 2.0 * np.sin(xv) + 4.0 * xv * np.cos(xv) - xv ** 2 * np.sin(xv)
    assert np.allclose(d2y.numpy(), expected, atol=1e-12)


def test_second_derivative_of_sigmoid():
    x = Tensor(np.linspace(-3.0, 3.0, 15), requires_grad=True)
    dy, = gradients(sigmoid(x).sum(), [x])
    d2y, = gradients(dy.sum(), [x])
    s = 1.0 / (1.0 + np.exp(-x.numpy()))
    expected = s * (1.0 - s) * (1.0 - 2.0 * s)
    assert np.allclose(d2y.numpy(), expected, atol=1e-12)


def test_laplacian_of_mlp_output_matches_finite_differences():
    rng = np.random.default_rng(3)
    w1 = Tensor(rng.normal(0.0, 0.5, (2, 16)), requires_grad=True)
    w2 = Tensor(rng.normal(0.0, 0.5, (16, 1)), requires_grad=True)

    def u_np(pts):
        return np.tanh(pts @ w1.numpy()) @ w2.numpy()

    pts = rng.uniform(-1.0, 1.0, (6, 2))
    x = Tensor(pts[:, 0:1].copy(), requires_grad=True)
    y = Tensor(pts[:, 1:2].copy(), requires_grad=True)
    u = tanh(concat([x, y], axis=1) @ w1) @ w2
    du_dx, du_dy = gradients(u.sum(), [x, y])
    d2u_dx2, = gradients(du_dx.sum(), [x])
    d2u_dy2, = gradients(du_dy.sum(), [y])
    laplacian = d2u_dx2.numpy() + d2u_dy2.numpy()

    eps = 1e-5
    fd = np.zeros_like(laplacian)
    for axis in range(2):
        up = pts.copy()
        down = pts.copy()
        up[:, axis] += eps
        down[:, axis] -= eps
        fd += (u_np(up) - 2.0 * u_np(pts) + u_np(down)) / eps ** 2
    assert np.allclose(laplacian, fd, rtol=1e-4, atol=1e-6)


def test_mixed_partial_symmetry():
    rng = np.random.default_rng(4)
    x = Tensor(rng.uniform(-1, 1, (5, 1)), requires_grad=True)
    y = Tensor(rng.uniform(-1, 1, (5, 1)), requires_grad=True)
    u = sin(x * y) + (x ** 2.0) * y
    du_dx, = gradients(u.sum(), [x])
    d2u_dxdy, = gradients(du_dx.sum(), [y])
    du_dy, = gradients(u.sum(), [y])
    d2u_dydx, = gradients(du_dy.sum(), [x])
    assert np.allclose(d2u_dxdy.numpy(), d2u_dydx.numpy(), atol=1e-12)


def test_grad_of_grad_through_silu_network():
    rng = np.random.default_rng(5)
    w = Tensor(rng.normal(0.0, 0.7, (1, 8)), requires_grad=True)
    v = Tensor(rng.normal(0.0, 0.7, (8, 1)), requires_grad=True)
    x = Tensor(rng.uniform(-1, 1, (7, 1)), requires_grad=True)
    u = silu(x @ w) @ v
    du, = gradients(u.sum(), [x])
    d2u, = gradients(du.sum(), [x])

    def u_np(pts):
        h = pts @ w.numpy()
        return (h / (1.0 + np.exp(-h))) @ v.numpy()

    eps = 1e-5
    pts = x.numpy()
    fd = (u_np(pts + eps) - 2.0 * u_np(pts) + u_np(pts - eps)) / eps ** 2
    assert np.allclose(d2u.numpy(), fd, rtol=1e-4, atol=1e-6)


def test_gradient_of_gradient_wrt_parameters():
    # d/dw of (du/dx) — the coupling PINN losses need when optimizing params.
    w = Tensor(np.array([[0.7]]), requires_grad=True)
    x = Tensor(np.array([[0.3]]), requires_grad=True)
    u = tanh(x @ w)
    du_dx, = gradients(u.sum(), [x])  # w * (1 - tanh(xw)^2)
    dw, = gradients(du_dx.sum(), [w])
    xv, wv = 0.3, 0.7
    t = np.tanh(xv * wv)
    expected = (1.0 - t ** 2) - wv * 2.0 * t * (1.0 - t ** 2) * xv
    assert np.allclose(dw.numpy(), expected, atol=1e-12)
