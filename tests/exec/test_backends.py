"""The backend registry + the cross-backend bit-parity invariant."""

import numpy as np
import pytest

from repro.exec import (ExecutionBackend, QueueBackend, SerialBackend,
                        backend_names, register_backend, resolve_backend)
from repro.experiments import burgers_config, run_matrix, run_suite

SAMPLERS = ("uniform", "sgm")


# ----------------------------------------------------------------------
# Registry and resolution
# ----------------------------------------------------------------------
def test_shipped_backends_are_registered():
    assert set(backend_names()) >= {"serial", "process", "queue"}


def test_resolve_backend_accepts_names_and_instances():
    serial = resolve_backend("serial")
    assert isinstance(serial, SerialBackend) and serial.inline
    prebuilt = SerialBackend()
    assert resolve_backend(prebuilt) is prebuilt
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("threads")


def test_queue_backend_requires_a_store():
    with pytest.raises(ValueError, match="needs a run store"):
        resolve_backend("queue")


def test_custom_backends_register_and_resolve(tmp_path):
    @register_backend("recording")
    class RecordingBackend(ExecutionBackend):
        inline = True

        def __init__(self, max_workers=None):
            self.max_workers = max_workers
            self.calls = []

        def submit(self, fn, tasks, labels, verbose=False):
            self.calls.append(list(labels))
            return [fn(task) for task in tasks]

    try:
        backend = resolve_backend("recording")
        suite = run_suite("burgers", ["uniform"], backend=backend,
                          scale="smoke", steps=2)
        assert suite.backend == "recording"
        assert backend.calls == [["burgers:smoke:U32"]]
    finally:
        from repro.exec.base import BACKENDS
        BACKENDS.pop("recording", None)


# ----------------------------------------------------------------------
# Cross-backend parity (the tentpole invariant)
# ----------------------------------------------------------------------
def assert_method_parity(reference, other):
    assert reference.labels == other.labels
    for a, b in zip(reference, other):
        assert a.label == b.label and a.seed == b.seed
        assert np.array_equal(a.history.losses, b.history.losses), a.label
        assert a.history.steps == b.history.steps
        assert sorted(a.history.errors) == sorted(b.history.errors)
        for var in a.history.errors:
            np.testing.assert_array_equal(a.history.errors[var],
                                          b.history.errors[var])
        assert a.probe_points == b.probe_points
        for key in a.net_state:
            assert np.array_equal(a.net_state[key], b.net_state[key]), (
                a.label, key)


def test_suite_is_bit_identical_across_all_three_backends(tmp_path):
    config = burgers_config("smoke")
    serial = run_suite("burgers", SAMPLERS, backend="serial",
                       config=config, steps=6)
    process = run_suite("burgers", SAMPLERS, backend="process",
                        config=config, steps=6)
    queue = run_suite("burgers", SAMPLERS, backend="queue", config=config,
                      steps=6, store=tmp_path / "qstore")
    assert queue.backend == "queue"
    assert_method_parity(serial, process)
    assert_method_parity(serial, queue)


def test_matrix_is_bit_identical_across_serial_and_queue(tmp_path):
    problems = ("burgers", "poisson3d")
    serial = run_matrix(problems, ["uniform"], backend="serial",
                        scale="smoke", steps=4)
    queue = run_matrix(problems, ["uniform"], backend="queue",
                       scale="smoke", steps=4,
                       store=tmp_path / "qstore")
    assert queue.backend == "queue"
    for problem in problems:
        assert_method_parity(serial[problem], queue[problem])
    # every cell trained through the durable queue, not in-process
    from repro.exec import TaskQueue
    jobs = TaskQueue.for_store(tmp_path / "qstore").pending()
    assert jobs == []   # all terminal


class ExplodingValidator:
    """Picklable validator that fails its cell on first evaluation."""

    def evaluate(self, net):
        raise RuntimeError("validator exploded")


def test_queue_failure_carries_cell_label_and_cancels_siblings(tmp_path):
    backend = QueueBackend(tmp_path / "qstore", max_workers=1)
    with pytest.raises(RuntimeError) as excinfo:
        run_suite("burgers", ["uniform", "mis", "sgm"], backend=backend,
                  scale="smoke", steps=4,
                  validators=[ExplodingValidator()])
    assert "U32" in str(excinfo.value)
    assert "validator exploded" in str(excinfo.value)
    assert excinfo.value.__cause__ is not None


def test_serial_failure_carries_cell_label(tmp_path):
    with pytest.raises(RuntimeError,
                       match=r"\[burgers:smoke:U32\] validator exploded"):
        run_suite("burgers", ["uniform"], backend="serial", scale="smoke",
                  steps=4, validators=[ExplodingValidator()])
