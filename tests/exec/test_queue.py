"""TaskQueue mechanics: refs, leases, takeover, journal tolerance."""

import json
import time

import pytest

from repro.exec import TaskQueue, function_ref
from repro.exec.queue import resolve_ref


def double(task):
    return task * 2


def explode(task):
    raise ValueError(f"boom on {task!r}")


# ----------------------------------------------------------------------
# Function references (the queue's import-by-name contract)
# ----------------------------------------------------------------------
def test_function_ref_round_trips_module_level_functions():
    ref = function_ref(double)
    assert ref.endswith(":double")
    assert resolve_ref(ref) is double


def test_function_ref_rejects_unimportable_callables():
    with pytest.raises(ValueError, match="module-level"):
        function_ref(lambda task: task)

    def local(task):
        return task

    with pytest.raises(ValueError, match="module-level"):
        function_ref(local)
    with pytest.raises(ValueError, match="module-level"):
        function_ref("hi".upper)


# ----------------------------------------------------------------------
# Enqueue / claim / complete lifecycle
# ----------------------------------------------------------------------
def make_queue(tmp_path):
    return TaskQueue.for_store(tmp_path / "store")


def test_enqueue_claim_complete_round_trip(tmp_path):
    queue = make_queue(tmp_path)
    job_ids = queue.enqueue(function_ref(double), [3, 4], ["a", "b"])
    assert len(job_ids) == 2
    assert queue.pending(job_ids) == job_ids
    assert queue.job_meta(job_ids[0])["status"] == "queued"

    lease = queue.claim("w1", lease_seconds=30.0)
    assert lease is not None and lease.job_id == job_ids[0]
    meta = queue.job_meta(lease.job_id)
    assert meta["status"] == "running"
    assert meta["attempts"] == 1 and meta["worker"] == "w1"

    fn, task = queue.load_task(lease.job_id)
    queue.complete(lease, fn(task))
    assert queue.job_meta(lease.job_id)["status"] == "done"
    assert queue.load_result(lease.job_id) == 6
    assert queue.pending(job_ids) == job_ids[1:]
    events = [e["event"] for e in queue.journal()]
    assert events.count("enqueue") == 2
    assert "claim" in events and "done" in events


def test_claim_skips_jobs_with_live_leases(tmp_path):
    queue = make_queue(tmp_path)
    (job_id,) = queue.enqueue(function_ref(double), [1], ["a"])
    first = queue.claim("w1", lease_seconds=30.0)
    assert first is not None
    # the only job is leased and unexpired: a sibling finds nothing
    assert queue.claim("w2", lease_seconds=30.0) is None
    assert queue.job_meta(job_id)["attempts"] == 1


def test_expired_lease_is_taken_over_and_counted_as_reclaim(tmp_path):
    queue = make_queue(tmp_path)
    (job_id,) = queue.enqueue(function_ref(double), [5], ["a"])
    stale = queue.claim("w1", lease_seconds=0.05)
    assert stale is not None
    time.sleep(0.1)

    lease = queue.claim("w2", lease_seconds=30.0)
    assert lease is not None and lease.worker == "w2"
    meta = queue.job_meta(job_id)
    assert meta["attempts"] == 2 and meta["worker"] == "w2"
    reclaims = [e for e in queue.journal() if e["event"] == "reclaim"]
    assert len(reclaims) == 1 and reclaims[0]["attempt"] == 2

    # the original worker's lease is dead: its renewal must refuse
    assert stale.renew(30.0) is False
    # ... while the takeover's own heartbeat still works
    assert lease.renew(30.0) is True
    queue.complete(lease, 10)
    assert queue.load_result(job_id) == 10


def test_failed_task_persists_the_exception(tmp_path):
    queue = make_queue(tmp_path)
    (job_id,) = queue.enqueue(function_ref(explode), [7], ["a"])
    lease = queue.claim("w1", lease_seconds=30.0)
    fn, task = queue.load_task(job_id)
    with pytest.raises(ValueError):
        fn(task)
    queue.fail(lease, ValueError("boom on 7"))
    assert queue.job_meta(job_id)["status"] == "failed"
    error = queue.load_error(job_id)
    assert isinstance(error, ValueError) and "boom on 7" in str(error)


def test_cancel_queued_leaves_running_and_finished_jobs_alone(tmp_path):
    queue = make_queue(tmp_path)
    job_ids = queue.enqueue(function_ref(double), [1, 2, 3],
                            ["a", "b", "c"])
    lease = queue.claim("w1", lease_seconds=30.0)
    queue.complete(lease, 2)
    lease = queue.claim("w1", lease_seconds=30.0)   # job b now running
    cancelled = queue.cancel_queued(job_ids)
    assert cancelled == [job_ids[2]]
    assert queue.job_meta(job_ids[0])["status"] == "done"
    assert queue.job_meta(job_ids[1])["status"] == "running"
    assert queue.job_meta(job_ids[2])["status"] == "cancelled"
    assert queue.pending(job_ids) == [job_ids[1]]


def test_journal_tolerates_a_torn_trailing_line(tmp_path):
    queue = make_queue(tmp_path)
    queue.enqueue(function_ref(double), [1, 2], ["a", "b"])
    complete = queue.journal()
    assert len(complete) == 2
    with open(queue.journal_path, "a", encoding="utf-8") as handle:
        handle.write('{"event": "claim", "jo')     # crash mid-append
    events = queue.journal()
    assert events == complete                      # torn tail dropped
    # a recovered writer appends normally after the torn line
    queue._journal("cancel", job="x")
    assert [e["event"] for e in queue.journal()][:2] == ["enqueue",
                                                         "enqueue"]


def test_torn_lease_file_counts_as_dead(tmp_path):
    queue = make_queue(tmp_path)
    (job_id,) = queue.enqueue(function_ref(double), [1], ["a"])
    job_dir = queue.jobs_dir / job_id
    (job_dir / "lease.json").write_text('{"worker": "w1", "exp',
                                        encoding="utf-8")
    lease = queue.claim("w2", lease_seconds=30.0)
    assert lease is not None and lease.worker == "w2"
    current = json.loads((job_dir / "lease.json").read_text())
    assert current["nonce"] == lease.nonce
