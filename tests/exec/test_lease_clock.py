"""Lease lifecycle under an injected fake clock — zero real-time sleeps.

Every expiry decision in :class:`TaskQueue` flows through its ``clock``
callable, so advancing a counter exercises claim / expiry / reclaim /
renewal exactly as hours of wall time would.
"""

import pickle

import pytest

from repro.exec import TaskQueue
from repro.exec.queue import function_ref, resolve_ref


class FakeClock:
    """Settable epoch-seconds source."""

    def __init__(self, start=1_000.0):
        self.now = float(start)

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += float(seconds)


def _square(task):
    (x,) = task
    return x * x


def _enqueue_one(queue):
    ref = function_ref(_square)
    (job_id,) = queue.enqueue(ref, [(3,)], ["cell"])
    return job_id


def test_claim_expire_reclaim_without_sleeping(tmp_path):
    clock = FakeClock()
    queue = TaskQueue(tmp_path / "queue", clock=clock)
    job_id = _enqueue_one(queue)

    lease = queue.claim("worker-a", lease_seconds=30.0)
    assert lease is not None and lease.job_id == job_id
    assert queue.job_meta(job_id)["attempts"] == 1

    # while the lease is live no sibling can claim, no matter how often
    # it asks
    assert queue.claim("worker-b", lease_seconds=30.0) is None
    clock.advance(29.0)
    assert queue.claim("worker-b", lease_seconds=30.0) is None

    # one more second and the lease is dead: the takeover path fires
    clock.advance(1.5)
    takeover = queue.claim("worker-b", lease_seconds=30.0)
    assert takeover is not None and takeover.worker == "worker-b"
    assert queue.job_meta(job_id)["attempts"] == 2
    events = [e["event"] for e in queue.journal()]
    assert events.count("claim") == 1 and events.count("reclaim") == 1

    # the ghost's renewal fails (its nonce was replaced), the winner's
    # heartbeat works
    assert lease.renew(30.0) is False
    assert takeover.renew(30.0) is True


def test_renewal_pushes_expiry_from_the_fake_clock(tmp_path):
    clock = FakeClock()
    queue = TaskQueue(tmp_path / "queue", clock=clock)
    _enqueue_one(queue)

    lease = queue.claim("worker-a", lease_seconds=10.0)
    clock.advance(8.0)
    assert lease.renew(10.0) is True        # heartbeat at t+8 -> expires t+18
    clock.advance(8.0)                      # t+16 < t+18: still live
    assert queue.claim("worker-b", lease_seconds=10.0) is None
    clock.advance(3.0)                      # t+19 > t+18: dead
    assert queue.claim("worker-b", lease_seconds=10.0) is not None


def test_force_expire_makes_a_live_lease_reclaimable(tmp_path):
    clock = FakeClock()
    queue = TaskQueue(tmp_path / "queue", clock=clock)
    job_id = _enqueue_one(queue)

    lease = queue.claim("worker-a", lease_seconds=3600.0)
    assert queue.claim("worker-b", lease_seconds=3600.0) is None
    assert queue.force_expire(job_id) is True
    takeover = queue.claim("worker-b", lease_seconds=3600.0)
    assert takeover is not None
    # the original holder lost the race the moment the nonce changed
    assert lease.renew(3600.0) is False
    assert "force_expire" in [e["event"] for e in queue.journal()]


def test_stale_eligibility_read_cannot_steal_a_fresh_live_lease(tmp_path):
    """Regression: the claim-scan/claim-write race must have one winner.

    A worker can read a job as eligible (queued, no live lease) and then
    lose the claim race to a sibling before it writes its own lease.  Its
    stale eligibility read must NOT let it take over the sibling's fresh
    live lease — that double claim left one dp rank computing nowhere
    while two workers computed the same rank.
    """
    clock = FakeClock()
    queue = TaskQueue(tmp_path / "queue", clock=clock)
    job_id = _enqueue_one(queue)
    job_dir = queue.jobs_dir / job_id
    stale_meta = dict(queue.job_meta(job_id))   # read while still queued

    winner = queue.claim("worker-a", lease_seconds=30.0)
    assert winner is not None

    # worker-b now acts on its stale read, exactly as claim() would
    loser = queue._try_claim(job_dir, dict(stale_meta), "worker-b", 30.0)
    assert loser is None
    assert winner.renew(30.0) is True           # the live lease survived
    assert queue.job_meta(job_id)["attempts"] == 1

    # once the winner's lease really is dead the same stale read may win
    clock.advance(31.0)
    takeover = queue._try_claim(job_dir, dict(queue.job_meta(job_id)),
                                "worker-b", 30.0)
    assert takeover is not None and takeover.worker == "worker-b"
    assert winner.renew(30.0) is False


def test_force_expire_without_a_lease_reports_false(tmp_path):
    queue = TaskQueue(tmp_path / "queue", clock=FakeClock())
    job_id = _enqueue_one(queue)
    assert queue.force_expire(job_id) is False


def test_completed_job_round_trips_result_under_fake_clock(tmp_path):
    clock = FakeClock()
    queue = TaskQueue(tmp_path / "queue", clock=clock)
    job_id = _enqueue_one(queue)
    lease = queue.claim("worker-a", lease_seconds=5.0)
    fn, task = queue.load_task(job_id)
    assert fn is resolve_ref(function_ref(_square))
    queue.complete(lease, fn(task))
    assert queue.job_meta(job_id)["status"] == "done"
    assert queue.load_result(job_id) == 9
    assert queue.pending() == []
    # journal timestamps come from the fake clock, not the wall
    assert all(e["time"] == pytest.approx(clock.now, abs=1e-6)
               or e["time"] <= clock.now
               for e in queue.journal())


def test_default_clock_is_wall_time(tmp_path):
    queue = TaskQueue(tmp_path / "queue")
    import time
    before = time.time()
    assert before <= queue.clock() <= time.time()


def test_fake_clock_pickles_for_forked_workers():
    clock = FakeClock(42.0)
    clone = pickle.loads(pickle.dumps(clock))
    assert clone() == 42.0
