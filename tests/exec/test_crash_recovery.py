"""A SIGKILL'd queue worker must cost wall-clock, never correctness.

The scenario: two external workers share a store's queue; the first to
claim the sweep's only cell is killed mid-training (a validator SIGKILLs
the process — no cleanup, no exception handling, exactly like the OOM
killer).  Its lease stops renewing; once it expires the surviving worker
re-claims and re-executes the cell.  Because every task seeds itself
from its spec, the recovered run is bit-identical to a serial baseline.

The lease period is an hour, so expiry never happens by the wall clock:
the test watches for the kill marker and *force-expires* the dead
worker's lease (:meth:`TaskQueue.force_expire`), compressing the
"stopped renewing, expiry passed" wait to zero.  No step of the
recovery story depends on a real-time sleep.
"""

import dataclasses
import multiprocessing
import os
import signal
import threading

import numpy as np

from repro.exec import QueueBackend, TaskQueue, run_worker
from repro.experiments import burgers_config, run_suite

#: long enough that lease expiry cannot happen by wall clock during the
#: test — reclamation must come from the explicit force-expire below
LEASE_SECONDS = 3600.0


class KillOnceValidator:
    """Picklable validator that SIGKILLs the first process to run it.

    The marker file makes the kill one-shot: the re-claiming worker (and
    the serial baseline, which pre-creates the marker) sees the marker
    and validates normally, so both runs record identical errors.
    """

    def __init__(self, marker):
        self.marker = str(marker)

    def evaluate(self, net):
        if not os.path.exists(self.marker):
            with open(self.marker, "w", encoding="utf-8") as handle:
                handle.write("killed\n")
            os.kill(os.getpid(), signal.SIGKILL)
        return {"probe": 0.0}


def _start_worker(store_root, index):
    context = multiprocessing.get_context("fork")
    proc = context.Process(
        target=run_worker, args=(str(store_root),),
        kwargs={"worker_id": f"crashtest-{index}",
                "lease_seconds": LEASE_SECONDS,
                "poll": 0.05, "max_idle_seconds": 60.0},
        daemon=True)
    proc.start()
    return proc


def _expire_after_kill(queue, marker, stop):
    """Watch for the kill marker, then force-expire the dead lease.

    The marker is written immediately before the SIGKILL, so once it
    exists the claiming worker is gone (or going) and its lease — which
    would otherwise pin the job for an hour — can be expired at once.
    """
    while not stop.is_set():
        if marker.exists():
            for job_dir in (sorted(queue.jobs_dir.iterdir())
                            if queue.jobs_dir.is_dir() else []):
                if (job_dir / "lease.json").exists():
                    queue.force_expire(job_dir.name)
                    return
        stop.wait(0.05)


def test_sigkilled_worker_job_is_reclaimed_bit_identically(tmp_path):
    store_root = tmp_path / "store"
    marker = tmp_path / "killed.marker"
    config = dataclasses.replace(burgers_config("smoke"), validate_every=2)
    validators = [KillOnceValidator(marker)]

    queue = TaskQueue.for_store(store_root)
    stop = threading.Event()
    watcher = threading.Thread(target=_expire_after_kill,
                               args=(queue, marker, stop), daemon=True)
    watcher.start()

    workers = [_start_worker(store_root, i) for i in range(2)]
    try:
        backend = QueueBackend(store_root, workers_external=True,
                               lease_seconds=LEASE_SECONDS, poll=0.05,
                               wait_timeout=120.0)
        recovered = run_suite("burgers", ["uniform"], backend=backend,
                              config=config, steps=6,
                              validators=validators)
    finally:
        stop.set()
        watcher.join(timeout=10.0)
        for proc in workers:
            proc.terminate()
            proc.join(timeout=10.0)

    assert marker.exists()          # the kill really happened

    # the one job went through a crash: claimed, died, re-claimed
    (job_id,) = [p.name for p in sorted(queue.jobs_dir.iterdir())]
    meta = queue.job_meta(job_id)
    assert meta["status"] == "done"
    assert meta["attempts"] == 2
    events = [e["event"] for e in queue.journal()]
    assert "reclaim" in events
    assert "force_expire" in events
    claimers = {e["worker"] for e in queue.journal()
                if e["event"] in ("claim", "reclaim")}
    assert len(claimers) == 2       # the survivor, not the ghost, finished

    # bit-parity with a serial run that never crashed (marker pre-exists,
    # so its validator behaves exactly like the re-claiming worker's)
    serial = run_suite("burgers", ["uniform"], backend="serial",
                       config=config, steps=6, validators=validators)
    a, b = serial.methods[0], recovered.methods[0]
    assert np.array_equal(a.history.losses, b.history.losses)
    assert a.history.steps == b.history.steps
    for var in a.history.errors:
        np.testing.assert_array_equal(a.history.errors[var],
                                      b.history.errors[var])
    for key in a.net_state:
        assert np.array_equal(a.net_state[key], b.net_state[key]), key
