"""Interpolation, clocks, and ASCII plotting."""

import time
import warnings

import numpy as np
import pytest

from repro.utils import TrainingClock, Timer, ascii_plot, bilinear_interpolate


class TestBilinear:
    def test_exact_on_linear_function(self):
        xs = np.linspace(0, 2, 9)
        ys = np.linspace(-1, 1, 7)
        gx, gy = np.meshgrid(xs, ys)
        field = 3.0 * gx - 2.0 * gy + 1.0
        rng = np.random.default_rng(0)
        pts = np.stack([rng.uniform(0, 2, 50), rng.uniform(-1, 1, 50)], axis=1)
        vals = bilinear_interpolate(xs, ys, field, pts)
        expected = 3.0 * pts[:, 0] - 2.0 * pts[:, 1] + 1.0
        assert np.allclose(vals, expected)

    def test_grid_nodes_exact(self):
        xs = np.linspace(0, 1, 5)
        field = np.arange(25.0).reshape(5, 5)
        pts = np.array([[xs[2], xs[3]]])
        assert np.isclose(bilinear_interpolate(xs, xs, field, pts)[0],
                          field[3, 2])

    def test_outside_points_filled(self):
        xs = np.linspace(0, 1, 5)
        field = np.zeros((5, 5))
        vals = bilinear_interpolate(xs, xs, field, np.array([[2.0, 0.5]]),
                                    fill_value=-7.0)
        assert vals[0] == -7.0

    def test_all_outside(self):
        xs = np.linspace(0, 1, 5)
        vals = bilinear_interpolate(xs, xs, np.zeros((5, 5)),
                                    np.array([[5.0, 5.0], [-1.0, 0.0]]))
        assert np.all(np.isnan(vals))


class TestClocks:
    def test_timer_measures(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_training_clock_credit(self):
        clock = TrainingClock()
        time.sleep(0.02)
        before = clock.elapsed()
        clock.credit(0.015)
        after = clock.elapsed()
        assert after < before
        assert after >= 0.0

    def test_negative_credit_rejected(self):
        clock = TrainingClock()
        with pytest.raises(ValueError):
            clock.credit(-1.0)

    def test_elapsed_never_negative(self):
        clock = TrainingClock()
        with pytest.warns(RuntimeWarning, match="exceeds the wall clock"):
            clock.credit(100.0)
        assert clock.elapsed() == 0.0

    def test_raw_and_credited_tracked_separately(self):
        clock = TrainingClock()
        time.sleep(0.02)
        clock.credit(0.005)
        clock.credit(0.005)
        assert clock.credited == pytest.approx(0.01)
        raw = clock.raw_elapsed()
        assert raw >= 0.02
        assert clock.elapsed() == pytest.approx(raw - 0.01, abs=1e-3)
        # crediting leaves the raw clock untouched
        assert clock.raw_elapsed() >= raw

    def test_offset_pre_ages_raw_clock(self):
        clock = TrainingClock(offset=5.0)
        assert clock.raw_elapsed() >= 5.0
        assert clock.elapsed() >= 5.0

    def test_overcredit_warns_once(self):
        clock = TrainingClock()
        with pytest.warns(RuntimeWarning, match="exceeds the wall clock"):
            clock.credit(50.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            clock.credit(1.0)  # already warned; stays quiet
        assert clock.credited == 51.0


class TestAsciiPlot:
    def test_renders_series_and_legend(self):
        xs = np.linspace(0, 10, 50)
        chart = ascii_plot([(xs, np.exp(-xs), "fast"),
                            (xs, np.exp(-0.3 * xs), "slow")],
                           logy=True, title="decay")
        assert "decay" in chart
        assert "*=fast" in chart and "+=slow" in chart
        assert "|" in chart

    def test_handles_empty(self):
        chart = ascii_plot([(np.array([]), np.array([]), "none")],
                           title="empty")
        assert "(no data)" in chart

    def test_nonpositive_dropped_in_logy(self):
        xs = np.arange(5.0)
        ys = np.array([1.0, 0.0, -1.0, 2.0, 3.0])
        chart = ascii_plot([(xs, ys, "s")], logy=True)
        assert "range" in chart
