"""ACM solver knobs: beta, viscosity models, convergence reporting."""

import numpy as np
import pytest

from repro.solvers import ACMSolver


def poiseuille_setup(ny=21, nx=41):
    """Plane channel flow driven by inlet velocity — parabolic solution."""
    xs = np.linspace(0.0, 4.0, nx)
    ys = np.linspace(0.0, 1.0, ny)
    mask = np.ones((ny, nx), dtype=bool)
    profile = 4.0 * ys * (1.0 - ys)   # peak 1 at center

    def apply_bcs(u, v, p):
        u[0, :] = u[-1, :] = 0.0
        v[0, :] = v[-1, :] = 0.0
        u[:, 0] = profile
        v[:, 0] = 0.0
        p[:, 0] = p[:, 1]
        u[:, -1] = u[:, -2]
        v[:, -1] = v[:, -2]
        p[:, -1] = 0.0

    return xs, ys, mask, apply_bcs


def test_poiseuille_profile_preserved_downstream():
    xs, ys, mask, apply_bcs = poiseuille_setup()
    solver = ACMSolver(xs, ys, mask, nu=0.1)
    result = solver.solve(apply_bcs, velocity_scale=1.0, max_steps=8000,
                          tol=1e-4)
    mid = result.u[:, len(xs) // 2]
    expected = 4.0 * ys * (1.0 - ys)
    assert np.max(np.abs(mid - expected)) < 0.12


def test_explicit_beta_converges():
    xs, ys, mask, apply_bcs = poiseuille_setup(ny=15, nx=31)
    solver = ACMSolver(xs, ys, mask, nu=0.1, beta=10.0)
    result = solver.solve(apply_bcs, velocity_scale=1.0, max_steps=6000,
                          tol=1e-3)
    assert np.all(np.isfinite(result.u))
    assert result.final_residual < 0.1


def test_viscosity_model_hook_called():
    xs, ys, mask, apply_bcs = poiseuille_setup(ny=15, nx=31)
    calls = []

    def model(u, v, dx, dy, m):
        calls.append(1)
        return np.zeros_like(u)

    solver = ACMSolver(xs, ys, mask, nu=0.1, viscosity_model=model)
    solver.solve(apply_bcs, velocity_scale=1.0, max_steps=50, tol=0.0)
    assert len(calls) == 50


def test_variable_viscosity_slows_flow():
    xs, ys, mask, apply_bcs = poiseuille_setup(ny=15, nx=31)
    base = ACMSolver(xs, ys, mask, nu=0.1).solve(
        apply_bcs, velocity_scale=1.0, max_steps=4000, tol=1e-3)
    thick = ACMSolver(xs, ys, mask, nu=0.1,
                      viscosity_model=lambda u, v, dx, dy, m:
                      np.full_like(u, 0.4)).solve(
        apply_bcs, velocity_scale=1.0, max_steps=4000, tol=1e-3)
    # higher effective viscosity damps the outflow peak faster downstream
    assert thick.u[:, -2].max() <= base.u[:, -2].max() + 1e-6


def test_residual_history_recorded():
    xs, ys, mask, apply_bcs = poiseuille_setup(ny=11, nx=21)
    solver = ACMSolver(xs, ys, mask, nu=0.1)
    result = solver.solve(apply_bcs, velocity_scale=1.0, max_steps=500,
                          tol=0.0, check_every=100)
    assert len(result.residual_history) == 5
    assert result.steps == 500


def test_solid_cells_stay_zero():
    xs, ys, mask, apply_bcs = poiseuille_setup(ny=15, nx=31)
    mask[5:8, 10:14] = False  # block in the middle

    def bcs(u, v, p):
        apply_bcs(u, v, p)
        u[~mask] = 0.0
        v[~mask] = 0.0

    solver = ACMSolver(xs, ys, mask, nu=0.1)
    result = solver.solve(bcs, velocity_scale=1.0, max_steps=2000, tol=1e-3)
    assert np.allclose(result.u[5:8, 10:14], 0.0)
