"""LDC reference solver vs the Ghia benchmark."""

import numpy as np
import pytest

from repro.solvers import (
    ghia_u_centerline, ghia_v_centerline, ldc_wall_distance, solve_ldc,
    zero_eq_viscosity_field,
)
from repro.utils import bilinear_interpolate


@pytest.fixture(scope="module")
def ldc100():
    return solve_ldc(reynolds=100.0, resolution=49, max_steps=15000, tol=2e-5)


def test_converged(ldc100):
    assert ldc100.final_residual < 1e-3
    assert ldc100.steps < 15000


def test_lid_and_wall_bcs(ldc100):
    # corners belong to the side walls (regularized cavity), so check the
    # interior of the lid
    assert np.allclose(ldc100.u[-1, 1:-1], 1.0)
    assert np.allclose(ldc100.u[0, :], 0.0)
    assert np.allclose(ldc100.v[:, 0], 0.0)
    assert np.allclose(ldc100.v[:, -1], 0.0)


def test_u_centerline_matches_ghia(ldc100):
    y, u_ref = ghia_u_centerline(100)
    pts = np.stack([np.full_like(y, 0.5), y], axis=1)
    u_sol = bilinear_interpolate(ldc100.xs, ldc100.ys, ldc100.u, pts)
    assert np.max(np.abs(u_sol - u_ref)) < 0.06


def test_v_centerline_matches_ghia(ldc100):
    x, v_ref = ghia_v_centerline(100)
    pts = np.stack([x, np.full_like(x, 0.5)], axis=1)
    v_sol = bilinear_interpolate(ldc100.xs, ldc100.ys, ldc100.v, pts)
    assert np.max(np.abs(v_sol - v_ref)) < 0.06


def test_primary_vortex_rotation(ldc100):
    # lid drags fluid right along the top, so flow returns left below
    mid = len(ldc100.ys) // 2
    assert ldc100.u[-5, mid] > 0.0
    assert ldc100.u[mid, mid] < 0.0


def test_nu_t_field_attached_and_nonnegative(ldc100):
    assert ldc100.nu_t.shape == ldc100.u.shape
    assert np.all(ldc100.nu_t >= 0.0)


def test_turbulent_variant_runs():
    res = solve_ldc(reynolds=100.0, resolution=33, turbulent=True,
                    max_steps=3000, tol=1e-3)
    assert np.all(np.isfinite(res.u))
    assert np.abs(res.u).max() <= 1.5


def test_wall_distance():
    xs = np.linspace(0, 1, 11)
    wall = ldc_wall_distance(xs, xs)
    assert np.isclose(wall[5, 5], 0.5)
    assert np.isclose(wall[0, 3], 0.0)
    assert np.isclose(wall[1, 5], 0.1)


def test_zero_eq_viscosity_pure_shear():
    xs = np.linspace(0, 1, 21)
    gx, gy = np.meshgrid(xs, xs)
    u = gy.copy()           # du/dy = 1 -> G = 1
    v = np.zeros_like(u)
    wall = np.full_like(u, 0.01)
    nu_t = zero_eq_viscosity_field(u, v, wall, max_distance=0.5,
                                   dx=xs[1] - xs[0], dy=xs[1] - xs[0])
    expected = (0.419 * 0.01) ** 2
    assert np.allclose(nu_t[5:-5, 5:-5], expected, rtol=1e-6)


def test_ghia_tables_sane():
    y, u100 = ghia_u_centerline(100)
    assert u100[-1] == 1.0 and u100[0] == 0.0
    x, v1000 = ghia_v_centerline(1000)
    assert v1000[0] == 0.0 and v1000[-1] == 0.0
    with pytest.raises(KeyError):
        ghia_u_centerline(123)
