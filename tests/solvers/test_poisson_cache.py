"""Poisson FDM solver and the solution cache."""

import numpy as np
import pytest

from repro.solvers import get_or_compute, solve_poisson_dirichlet


def test_poisson_matches_manufactured_solution():
    # u = sin(pi x) sin(pi y)  ->  f = -2 pi^2 u, u = 0 on the boundary
    def source(x, y):
        return -2.0 * np.pi ** 2 * np.sin(np.pi * x) * np.sin(np.pi * y)

    xs, ys, u = solve_poisson_dirichlet(source, resolution=65)
    gx, gy = np.meshgrid(xs, ys)
    exact = np.sin(np.pi * gx) * np.sin(np.pi * gy)
    assert np.max(np.abs(u - exact)) < 5e-3


def test_poisson_boundary_zero():
    xs, ys, u = solve_poisson_dirichlet(lambda x, y: np.ones_like(x),
                                        resolution=33)
    assert np.allclose(u[0, :], 0.0) and np.allclose(u[:, -1], 0.0)


def test_poisson_sign_of_solution():
    # laplace(u) = 1 with zero BCs gives u < 0 inside
    xs, ys, u = solve_poisson_dirichlet(lambda x, y: np.ones_like(x),
                                        resolution=33)
    assert u[16, 16] < 0.0


class TestCache:
    def test_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = []

        def builder():
            calls.append(1)
            return {"a": np.arange(5.0), "b": np.eye(2)}

        first = get_or_compute("unit", builder)
        second = get_or_compute("unit", builder)
        assert len(calls) == 1
        assert np.array_equal(first["a"], second["a"])
        assert np.array_equal(first["b"], np.eye(2))
        assert (tmp_path / "unit.npz").exists()

    def test_distinct_keys(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        get_or_compute("k1", lambda: {"x": np.zeros(1)})
        get_or_compute("k2", lambda: {"x": np.ones(1)})
        assert np.array_equal(
            get_or_compute("k2", lambda: {"x": np.full(1, 9.0)})["x"],
            np.ones(1))
