"""Annular-ring reference solver."""

import numpy as np
import pytest

from repro.solvers import annulus_mask, solve_annulus


@pytest.fixture(scope="module")
def ring():
    return solve_annulus(inner_radius=1.0, nx=101, ny=41, max_steps=12000,
                         tol=2e-4)


class TestMask:
    def test_geometry_regions(self):
        xs = np.linspace(-5, 5, 101)
        ys = np.linspace(-2, 2, 41)
        mask = annulus_mask(xs, ys, inner_radius=1.0)
        gx, gy = np.meshgrid(xs, ys)
        # channel interior
        assert mask[np.argmin(np.abs(ys - 0.0)), np.argmin(np.abs(xs + 4.0))]
        # inside the hole: solid
        assert not mask[np.argmin(np.abs(ys)), np.argmin(np.abs(xs))]
        # chamber bulge above the channel
        iy = np.argmin(np.abs(ys - 1.5))
        ix = np.argmin(np.abs(xs - 0.0))
        assert mask[iy, ix]
        # far corner outside everything
        assert not mask[0, 0]

    def test_inner_radius_parameter(self):
        xs = np.linspace(-5, 5, 101)
        ys = np.linspace(-2, 2, 41)
        small = annulus_mask(xs, ys, inner_radius=0.75)
        large = annulus_mask(xs, ys, inner_radius=1.1)
        assert small.sum() > large.sum()


class TestFlow:
    def test_converged_and_finite(self, ring):
        assert np.all(np.isfinite(ring.u))
        assert ring.final_residual < 5e-3

    def test_inlet_profile(self, ring):
        iy = np.argmin(np.abs(ring.ys))
        assert np.isclose(ring.u[iy, 0], 1.5, atol=0.05)
        top = np.argmin(np.abs(ring.ys - 0.95))
        assert ring.u[top, 0] < 0.4

    def test_outlet_pressure_zero(self, ring):
        fluid = ring.mask[:, -1]
        assert np.allclose(ring.p[fluid, -1], 0.0)

    def test_mass_conservation(self, ring):
        dy = ring.ys[1] - ring.ys[0]
        influx = np.sum(ring.u[:, 1] * ring.mask[:, 1]) * dy
        outflux = np.sum(ring.u[:, -2] * ring.mask[:, -2]) * dy
        assert influx > 1.5  # sanity: parabolic profile integral ~2
        assert abs(outflux - influx) / influx < 0.1

    def test_flow_splits_around_cylinder(self, ring):
        # above and below the inner cylinder the x-velocity is positive
        ix = np.argmin(np.abs(ring.xs))
        above = np.argmin(np.abs(ring.ys - 1.5))
        below = np.argmin(np.abs(ring.ys + 1.5))
        assert ring.u[above, ix] > 0.05
        assert ring.u[below, ix] > 0.05

    def test_symmetry_about_centerline(self, ring):
        u = np.where(ring.mask, ring.u, 0.0)
        asym = np.abs(u - u[::-1, :]).max()
        assert asym < 0.15 * np.abs(u).max()

    def test_no_slip_inside_hole(self, ring):
        gx, gy = np.meshgrid(ring.xs, ring.ys)
        hole = gx ** 2 + gy ** 2 < 0.8 ** 2
        assert np.allclose(ring.u[hole], 0.0)
        assert np.allclose(ring.v[hole], 0.0)
