"""World-size parity matrix: the trajectory is a function of the shard
count, never of the worker count, the backend, or the execution mode.

``world_size=1`` computes all logical shards inline; every other cell —
more ranks, thread/process/queue placement, compiled replay — must
reproduce its history (steps, losses, errors, probe points) and final
network weights bit-for-bit.  Wall times are physical and excluded by
construction (they are not compared anywhere here).
"""

import numpy as np
import pytest

from repro.dp import run_dp
from repro.experiments import (
    advection_diffusion_config, annular_ring_config, burgers_config,
    inverse_burgers_config, ldc_config, ns3d_config, poisson3d_config,
)

#: every registered problem, smoke-sized for the tier-1 budget
PROBLEMS = {
    "ldc": ldc_config,
    "annular_ring": annular_ring_config,
    "burgers": burgers_config,
    "poisson3d": poisson3d_config,
    "advection_diffusion": advection_diffusion_config,
    "inverse_burgers": inverse_burgers_config,
    "ns3d": ns3d_config,
}
STEPS = 4
N_INTERIOR = 320
BATCH = 64


def _run(problem, *, world_size, backend="thread", compile=False,
         sampler="sgm", store=None):
    config = PROBLEMS[problem]("smoke")
    return run_dp(problem, config, sampler=sampler, steps=STEPS,
                  n_interior=N_INTERIOR, batch_size=BATCH,
                  world_size=world_size, backend=backend, compile=compile,
                  store=store)


def _assert_bit_identical(a, b):
    assert a.history.steps == b.history.steps
    assert a.history.losses == b.history.losses
    assert a.history.probe_points == b.history.probe_points
    assert set(a.history.errors) == set(b.history.errors)
    for var in a.history.errors:
        np.testing.assert_array_equal(a.history.errors[var],
                                      b.history.errors[var])
    a_state, b_state = a.net.state_dict(), b.net.state_dict()
    assert set(a_state) == set(b_state)
    for key in a_state:
        assert a_state[key].tobytes() == b_state[key].tobytes(), key


@pytest.mark.parametrize("problem", sorted(PROBLEMS))
def test_world_size_parity_across_every_problem(problem):
    """W in {1, 2, 4} on in-process thread ranks, sgm sharding."""
    serial = _run(problem, world_size=1)
    assert serial.history.losses, "trajectory must not be empty"
    for world_size in (2, 4):
        distributed = _run(problem, world_size=world_size)
        _assert_bit_identical(serial, distributed)
        # every rank's replica folded the same reduced gradients
        head = distributed.rank_results[0]["net_state"]
        for rank_result in distributed.rank_results[1:]:
            for key in head:
                assert np.array_equal(rank_result["net_state"][key],
                                      head[key]), (world_size, key)


@pytest.mark.parametrize("kind", ["uniform", "mis"])
def test_world_size_parity_for_other_sampler_kinds(kind):
    serial = _run("burgers", world_size=1, sampler=kind)
    distributed = _run("burgers", world_size=4, sampler=kind)
    _assert_bit_identical(serial, distributed)


def test_compiled_replay_matches_eager_shard_step():
    eager = _run("burgers", world_size=1)
    compiled = _run("burgers", world_size=1, compile=True)
    _assert_bit_identical(eager, compiled)


def test_process_backend_matches_inline(tmp_path):
    serial = _run("burgers", world_size=1)
    distributed = _run("burgers", world_size=2, backend="process")
    _assert_bit_identical(serial, distributed)


def test_compile_under_process_backend_matches_eager_inline(tmp_path):
    serial = _run("burgers", world_size=1)
    compiled = _run("burgers", world_size=2, backend="process",
                    compile=True)
    _assert_bit_identical(serial, compiled)


def test_queue_backend_matches_inline(tmp_path):
    serial = _run("burgers", world_size=1)
    distributed = _run("burgers", world_size=2, backend="queue",
                       store=tmp_path / "store")
    _assert_bit_identical(serial, distributed)
    assert distributed.run_id is not None   # rank 0 recorded durably


def test_recorded_histories_match_across_world_sizes(tmp_path):
    """The durable history.jsonl rows agree bitwise (wall_time aside)."""
    import json
    rows = {}
    for world_size in (1, 4):
        result = _run("burgers", world_size=world_size,
                      backend="thread" if world_size > 1 else "process",
                      store=tmp_path / f"w{world_size}")
        path = (tmp_path / f"w{world_size}" / result.run_id /
                "history.jsonl")
        rows[world_size] = []
        for line in path.read_text().splitlines():
            record = json.loads(line)
            record.pop("wall_time")
            rows[world_size].append(record)
    assert rows[1] == rows[4]


def test_world_size_above_shard_count_is_rejected():
    with pytest.raises(ValueError, match="logical"):
        _run("burgers", world_size=5)


def test_compile_on_thread_ranks_is_rejected():
    with pytest.raises(ValueError, match="isolation"):
        _run("burgers", world_size=2, backend="thread", compile=True)


def test_custom_validator_lists_are_rejected():
    config = burgers_config("smoke")
    with pytest.raises(ValueError, match="validators"):
        run_dp("burgers", config, steps=2, n_interior=N_INTERIOR,
               batch_size=BATCH, validators=[object()])


def test_session_and_cli_surface_reach_run_dp(tmp_path):
    import repro
    serial = _run("burgers", world_size=1)
    result = (repro.problem("burgers", scale="smoke")
              .sampler("sgm").n_interior(N_INTERIOR).batch_size(BATCH)
              .train(steps=STEPS, world_size=2, backend="thread"))
    _assert_bit_identical(serial, result)

    from repro.cli import main
    rc = main(["run", "burgers", "--sampler", "sgm", "--scale", "smoke",
               "--steps", str(STEPS), "--n-interior", str(N_INTERIOR),
               "--batch-size", str(BATCH), "--world-size", "2",
               "--backend", "thread", "--store", str(tmp_path / "cli")])
    assert rc == 0
