"""StoreExchange rendezvous mechanics: publication, timeout, garbage."""

import threading

import numpy as np
import pytest

from repro.dp import StoreExchange


def _payload(value):
    return {"loss": np.float32(value),
            "grads": [np.full(4, value, dtype=np.float32)]}


def test_two_ranks_rendezvous_and_see_identical_bits(tmp_path):
    root = tmp_path / "dp"
    a = StoreExchange(root, n_shards=4, world_size=2, rank=0, timeout=30.0)
    b = StoreExchange(root, n_shards=4, world_size=2, rank=1, timeout=30.0)

    results = {}

    def run(rank, exchange, local):
        results[rank] = exchange.exchange(0, "grad", local)

    t = threading.Thread(target=run, args=(1, b, {1: _payload(1.0),
                                                  3: _payload(3.0)}))
    t.start()
    run(0, a, {0: _payload(0.0), 2: _payload(2.0)})
    t.join(timeout=30.0)

    assert sorted(results[0]) == sorted(results[1]) == [0, 1, 2, 3]
    for shard in range(4):
        left = results[0][shard]["grads"][0]
        right = results[1][shard]["grads"][0]
        assert left.tobytes() == right.tobytes()
        assert left[0] == np.float32(shard)


def test_missing_shard_raises_a_named_timeout(tmp_path):
    exchange = StoreExchange(tmp_path / "dp", n_shards=2, world_size=2,
                             rank=0, timeout=0.1, poll=0.02)
    with pytest.raises(TimeoutError, match="shard-0001"):
        exchange.exchange(0, "grad", {0: _payload(0.0)})


def test_old_rounds_are_garbage_collected_after_all_acks(tmp_path):
    root = tmp_path / "dp"
    exchange = StoreExchange(root, n_shards=1, world_size=1, rank=0,
                             timeout=5.0)
    for step in range(4):
        exchange.exchange(step, "grad", {0: _payload(float(step))})
    rounds = sorted(p.name for p in root.iterdir())
    # rounds older than step-2 with every rank's ack are gone; the two
    # freshest (a straggler may still read step-1) remain
    assert "round-00000000-grad" not in rounds
    assert "round-00000001-grad" not in rounds
    assert "round-00000002-grad" in rounds
    assert "round-00000003-grad" in rounds
