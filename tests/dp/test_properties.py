"""Property battery for the data-parallel primitives.

Hypothesis drives the two invariants the whole design rests on:

* the fixed-order pairwise tree reduction is a pure function of the
  ordered shard contributions — gather order, worker count, and payload
  routing (in-process vs through the ``.npz`` codec) never change a bit;
* every partition helper produces an exact disjoint cover, for every
  sampler kind the dp mode supports.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.dp import (
    ClusterPlan, LocalExchange, ShardSGMSampler, check_disjoint_cover,
    decode_payload, encode_payload, make_shard_sampler, payload_nbytes,
    shard_batch_sizes, shard_cover, stride_shards, tree_add, tree_reduce,
)
from repro.experiments import burgers_config

finite32 = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False,
                     allow_infinity=False, width=32)
grad_array = arrays(np.float32,
                    array_shapes(min_dims=1, max_dims=2, min_side=1,
                                 max_side=6),
                    elements=finite32)


@st.composite
def gradient_pytrees(draw, n_contributions):
    """``n`` same-structure pytrees of float32 arrays (a gradient list
    plus scalar bookkeeping), mimicking real shard payloads."""
    n_grads = draw(st.integers(min_value=1, max_value=4))
    shapes = [draw(array_shapes(min_dims=1, max_dims=2, min_side=1,
                                max_side=6)) for _ in range(n_grads)]
    trees = []
    for _ in range(n_contributions):
        trees.append({
            "loss": np.float32(draw(finite32)),
            "grads": [draw(arrays(np.float32, shape, elements=finite32))
                      for shape in shapes],
        })
    return trees


# ----------------------------------------------------------------------
# tree reduction
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=9), st.data())
def test_tree_reduce_is_bit_invariant_to_gather_order(n, data):
    trees = data.draw(gradient_pytrees(n))
    reduced = tree_reduce(trees)

    # contributions may *arrive* in any order; the reducer consumes them
    # in ascending shard order, so a permuted gather changes nothing
    order = data.draw(st.permutations(list(range(n))))
    gathered = {shard: trees[shard] for shard in order}
    again = tree_reduce([gathered[s] for s in range(n)])

    assert np.float32(again["loss"]) == np.float32(reduced["loss"])
    for a, b in zip(again["grads"], reduced["grads"]):
        assert a.dtype == np.float32
        assert a.tobytes() == b.tobytes()


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=8), st.data())
def test_tree_reduce_is_bit_invariant_to_worker_placement(n, data):
    """Routing shards to W workers (any W) must not change the sum: the
    schedule depends only on the logical shard count."""
    trees = data.draw(gradient_pytrees(n))
    reference = tree_reduce(trees)
    for world_size in range(1, n + 1):
        # rank r hosts shards {s : s % W == r}; the gather reassembles
        # the full ascending-shard-order list regardless of placement
        hosted = {r: [s for s in range(n) if s % world_size == r]
                  for r in range(world_size)}
        gathered = {}
        for r in range(world_size):
            for s in hosted[r]:
                gathered[s] = trees[s]
        reduced = tree_reduce([gathered[s] for s in range(n)])
        assert np.float32(reduced["loss"]) == np.float32(reference["loss"])
        for a, b in zip(reduced["grads"], reference["grads"]):
            assert a.tobytes() == b.tobytes()


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=8), st.data())
def test_tree_reduce_matches_explicit_pairwise_schedule(n, data):
    trees = data.draw(gradient_pytrees(n))
    reduced = tree_reduce(trees)

    def pairwise(items):
        if len(items) == 1:
            return items[0]
        folded = [tree_add(items[i], items[i + 1])
                  for i in range(0, len(items) - 1, 2)]
        if len(items) % 2:
            folded.append(items[-1])
        return pairwise(folded)

    manual = pairwise(trees)
    assert np.float32(manual["loss"]) == np.float32(reduced["loss"])
    for a, b in zip(manual["grads"], reduced["grads"]):
        assert a.tobytes() == b.tobytes()


def test_tree_reduce_differs_from_left_fold_showing_order_matters():
    """The guard rail is real: float32 addition is order-sensitive, so a
    left fold and the pairwise tree genuinely disagree on some inputs —
    which is exactly why the schedule must be pinned."""
    rng = np.random.default_rng(7)
    trees = [{"g": rng.standard_normal(256).astype(np.float32) * 10 ** k}
             for k in range(-3, 5)]
    tree = tree_reduce(trees)["g"]
    fold = trees[0]["g"].copy()
    for t in trees[1:]:
        fold = fold + t["g"]
    assert tree.shape == fold.shape
    assert not np.array_equal(tree, fold)


def test_tree_add_rejects_mismatched_structures():
    with pytest.raises(ValueError):
        tree_add({"a": np.float32(1)}, {"b": np.float32(1)})
    with pytest.raises(ValueError):
        tree_add([np.float32(1)], [np.float32(1), np.float32(2)])
    with pytest.raises(ValueError):
        tree_reduce([])


# ----------------------------------------------------------------------
# payload codec (the disk rendezvous must be bit-transparent)
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(gradient_pytrees(1))
def test_payload_codec_round_trips_bit_exactly(trees):
    payload = {
        "loss": np.asarray(trees[0]["loss"]),
        "grads": trees[0]["grads"],
        "probe_points": 123,
        "rebuild_seconds": 0.25,
        "validators": {0: {"u": (1.5, 2.5)}, 2: {"v": (0.0, 1.0)}},
    }
    buffer = io.BytesIO()
    np.savez(buffer, **encode_payload(payload))
    buffer.seek(0)
    with np.load(buffer) as archive:
        decoded = decode_payload(archive)
    assert np.asarray(decoded["loss"]).tobytes() == \
        np.asarray(payload["loss"]).tobytes()
    assert len(decoded["grads"]) == len(payload["grads"])
    for a, b in zip(decoded["grads"], payload["grads"]):
        assert a.dtype == b.dtype and a.tobytes() == b.tobytes()
    assert decoded["probe_points"] == 123
    assert decoded["rebuild_seconds"] == 0.25
    assert decoded["validators"] == payload["validators"]


def test_payload_codec_rejects_unknown_and_gapped_keys():
    with pytest.raises(ValueError):
        decode_payload({"mystery": np.float32(1)})
    with pytest.raises(ValueError):
        decode_payload({"grad0000": np.float32(1),
                        "grad0002": np.float32(1)})
    with pytest.raises(ValueError):
        encode_payload({"validators": {0: {"u|v": (1.0, 2.0)}}})


def test_local_exchange_requires_every_shard():
    exchange = LocalExchange(4)
    with pytest.raises(ValueError):
        exchange.exchange(0, "grad", {0: {}, 1: {}})


def test_payload_nbytes_counts_arrays():
    payload = {"loss": np.zeros((), np.float32),
               "grads": [np.zeros(8, np.float32), np.zeros(4, np.float64)],
               "validators": {0: {"u": (1.0, 2.0)}}}
    assert payload_nbytes(payload) >= 4 + 32 + 32


# ----------------------------------------------------------------------
# partitions: exact disjoint cover, always
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=1, max_value=400), st.integers(min_value=1,
                                                            max_value=16))
def test_stride_shards_disjoint_cover(n_points, n_shards):
    if n_points < n_shards:
        with pytest.raises(ValueError):
            stride_shards(n_points, n_shards)
        return
    shards = stride_shards(n_points, n_shards)
    check_disjoint_cover(shards, n_points)
    assert all(len(s) > 0 for s in shards)


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=1, max_value=4096), st.integers(min_value=1,
                                                             max_value=16))
def test_shard_batch_sizes_sum_and_balance(batch_size, n_shards):
    if batch_size < n_shards:
        with pytest.raises(ValueError):
            shard_batch_sizes(batch_size, n_shards)
        return
    sizes = shard_batch_sizes(batch_size, n_shards)
    assert sum(sizes) == batch_size
    assert max(sizes) - min(sizes) <= 1
    assert all(s >= 1 for s in sizes)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=200), min_size=1,
                max_size=40),
       st.integers(min_value=1, max_value=8))
def test_assign_clusters_covers_and_balances(sizes, n_shards):
    from repro.dp import assign_clusters
    if len(sizes) < n_shards:
        with pytest.raises(ValueError):
            assign_clusters(sizes, n_shards)
        return
    shard_of_cluster = assign_clusters(sizes, n_shards)
    assert len(shard_of_cluster) == len(sizes)
    assert set(shard_of_cluster) == set(range(n_shards))   # no empty shard
    # LPT guarantee: no shard exceeds the mean load by more than the
    # largest cluster
    loads = np.zeros(n_shards)
    np.add.at(loads, shard_of_cluster, sizes)
    assert loads.max() - loads.min() <= max(sizes)


def test_check_disjoint_cover_flags_duplicates_and_holes():
    with pytest.raises(ValueError, match="more than one"):
        check_disjoint_cover([[0, 1], [1, 2]], 3)
    with pytest.raises(ValueError, match="missing"):
        check_disjoint_cover([[0], [2]], 3)
    with pytest.raises(ValueError, match="out of range"):
        check_disjoint_cover([[0, 3]], 3)


# ----------------------------------------------------------------------
# shard samplers: disjoint cover per sampler kind, rank-independence
# ----------------------------------------------------------------------
def _interior_constraint(n_interior=256):
    import repro
    prob = repro.problem("burgers", scale="smoke").n_interior(
        n_interior).build()
    return prob, prob.constraints[0]


@pytest.mark.parametrize("kind", ["uniform", "mis", "sgm"])
def test_every_sampler_kind_yields_exact_disjoint_cover(kind):
    config = burgers_config("smoke")
    prob, interior = _interior_constraint()
    n_shards = 4
    plan = None
    if kind == "sgm":
        plan = ClusterPlan(prob.interior_cloud.features(), n_shards,
                           k=config.knn_k, level=config.lrd_level, seed=0)
    samplers = []
    for shard in range(n_shards):
        seed_seq = np.random.SeedSequence([0, 0, shard])
        samplers.append(make_shard_sampler(
            kind, config, interior, n_shards=n_shards, shard=shard,
            seed_seq=seed_seq, plan=plan))
    for sampler in samplers:
        sampler.start()
    cover = shard_cover(samplers, interior.n_points)
    check_disjoint_cover(cover, interior.n_points)


def test_sgm_plan_is_identical_across_independent_builders():
    """Two ranks each building the plan must derive identical clusters
    and identical shard assignment — the lockstep precondition."""
    config = burgers_config("smoke")
    prob, _ = _interior_constraint()
    features = prob.interior_cloud.features()
    plans = [ClusterPlan(features, 4, k=config.knn_k,
                         level=config.lrd_level, seed=0) for _ in range(2)]
    for shard in range(4):
        a, _ = plans[0].shard_members(0, shard)
        b, _ = plans[1].shard_members(0, shard)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


def test_shard_sampler_batches_live_inside_the_shard():
    config = burgers_config("smoke")
    _, interior = _interior_constraint()
    sampler = make_shard_sampler(
        "uniform", config, interior, n_shards=4, shard=1,
        seed_seq=np.random.SeedSequence([0, 0, 1]))
    sampler.start()
    owned = set(sampler.indices.tolist())
    for step in range(5):
        batch = sampler.batch_indices(step, 16)
        assert set(batch.tolist()) <= owned


def test_shard_sgm_sampler_state_round_trips(tmp_path):
    config = burgers_config("smoke")
    prob, interior = _interior_constraint()
    plan = ClusterPlan(prob.interior_cloud.features(), 2,
                       k=config.knn_k, level=config.lrd_level, seed=0)
    sampler = ShardSGMSampler(plan, 0, tau_e=3, tau_G=0,
                              probe_ratio=0.2,
                              seed=np.random.SeedSequence([0, 0, 0]))
    sampler.bind_probes(probe_loss=lambda idx: np.ones(len(idx)))
    sampler.start()
    drawn = [sampler.batch_indices(step, 8) for step in range(4)]

    twin = ShardSGMSampler(plan, 0, tau_e=3, tau_G=0, probe_ratio=0.2,
                           seed=np.random.SeedSequence([0, 0, 0]))
    twin.bind_probes(probe_loss=lambda idx: np.ones(len(idx)))
    twin.start()
    for step in range(2):
        twin.batch_indices(step, 8)
    state = twin.state_dict()

    resumed = ShardSGMSampler(plan, 0, tau_e=3, tau_G=0, probe_ratio=0.2,
                              seed=np.random.SeedSequence([0, 0, 0]))
    resumed.bind_probes(probe_loss=lambda idx: np.ones(len(idx)))
    resumed.load_state_dict(state)
    for step in range(2, 4):
        np.testing.assert_array_equal(resumed.batch_indices(step, 8),
                                      drawn[step])


def test_dp_unsupported_sampler_kind_raises():
    config = burgers_config("smoke")
    _, interior = _interior_constraint()
    with pytest.raises(ValueError, match="sampler kinds"):
        make_shard_sampler("sgm_s", config, interior, n_shards=2, shard=0,
                           seed_seq=np.random.SeedSequence([0]))


def test_validator_partial_sums_merge_to_the_relative_l2():
    from repro.training.validators import merge_partial_l2
    rng = np.random.default_rng(0)
    pred = rng.standard_normal(101)
    ref = rng.standard_normal(101)
    num = float(((pred - ref) ** 2).sum())
    den = float((ref ** 2).sum())
    merged = merge_partial_l2(num, den)
    expected = np.linalg.norm(pred - ref) / np.linalg.norm(ref)
    assert merged == pytest.approx(float(expected), rel=1e-12)
    assert merge_partial_l2(4.0, 0.0) == 2.0
