"""Module system, layers, and MLP behaviour."""

import numpy as np
import pytest

from repro.autodiff import Tensor, gradients
from repro.nn import (
    ACTIVATIONS, Activation, FourierEncoding, FullyConnected, Identity,
    Linear, Module, Parameter,
)


def test_linear_shapes_and_values():
    rng = np.random.default_rng(0)
    layer = Linear(3, 5, rng=rng)
    x = Tensor(rng.normal(size=(7, 3)))
    out = layer(x)
    assert out.shape == (7, 5)
    expected = x.numpy() @ layer.weight.numpy() + layer.bias.numpy()
    assert np.allclose(out.numpy(), expected)


def test_linear_gradients_flow_to_parameters():
    rng = np.random.default_rng(1)
    layer = Linear(2, 2, rng=rng)
    x = Tensor(rng.normal(size=(4, 2)))
    loss = (layer(x) ** 2.0).mean()
    grads = gradients(loss, layer.parameters())
    assert len(grads) == 2
    assert grads[0].shape == layer.weight.shape
    assert grads[1].shape == layer.bias.shape
    assert np.any(grads[0].numpy() != 0.0)


def test_parameter_discovery_order_and_names():
    rng = np.random.default_rng(2)
    net = FullyConnected(2, 1, width=4, depth=2, rng=rng)
    names = [name for name, _ in net.named_parameters()]
    assert names == [
        "layers.0.weight", "layers.0.bias",
        "layers.1.weight", "layers.1.bias",
        "head.weight", "head.bias",
    ]


def test_num_parameters_matches_architecture():
    net = FullyConnected(2, 3, width=8, depth=2, rng=np.random.default_rng(0))
    expected = (2 * 8 + 8) + (8 * 8 + 8) + (8 * 3 + 3)
    assert net.num_parameters() == expected


def test_state_dict_roundtrip():
    rng = np.random.default_rng(3)
    net = FullyConnected(2, 1, width=4, depth=1, rng=rng)
    state = net.state_dict()
    x = Tensor(rng.normal(size=(5, 2)))
    before = net(x).numpy().copy()
    for p in net.parameters():
        p.data += 1.0
    assert not np.allclose(net(x).numpy(), before)
    net.load_state_dict(state)
    assert np.allclose(net(x).numpy(), before)


def test_load_state_dict_rejects_bad_keys():
    net = FullyConnected(2, 1, width=4, depth=1, rng=np.random.default_rng(0))
    with pytest.raises(KeyError):
        net.load_state_dict({"nope": np.zeros(3)})


def test_load_state_dict_rejects_bad_shape():
    net = FullyConnected(2, 1, width=4, depth=1, rng=np.random.default_rng(0))
    state = net.state_dict()
    state["head.weight"] = np.zeros((1, 1))
    with pytest.raises(ValueError):
        net.load_state_dict(state)


def test_activation_registry_rejects_unknown():
    with pytest.raises(ValueError):
        Activation("nope")


@pytest.mark.parametrize("name", sorted(ACTIVATIONS))
def test_all_activations_evaluate(name):
    act = Activation(name)
    x = Tensor(np.linspace(-1, 1, 5))
    out = act(x)
    assert out.shape == x.shape
    assert np.all(np.isfinite(out.numpy()))


def test_identity_passthrough():
    x = Tensor(np.arange(4.0))
    assert Identity()(x) is x


def test_fourier_encoding_shape_and_range():
    rng = np.random.default_rng(4)
    enc = FourierEncoding(2, num_frequencies=8, rng=rng)
    assert enc.out_features == 16
    x = Tensor(rng.uniform(size=(10, 2)))
    out = enc(x)
    assert out.shape == (10, 16)
    assert np.all(np.abs(out.numpy()) <= 1.0 + 1e-12)


def test_fourier_encoding_frequencies_not_trainable():
    enc = FourierEncoding(2, num_frequencies=4, rng=np.random.default_rng(0))
    assert list(enc.named_parameters()) == []


def test_mlp_with_encoding_wires_widths():
    rng = np.random.default_rng(5)
    enc = FourierEncoding(2, num_frequencies=8, rng=rng)
    net = FullyConnected(2, 1, width=6, depth=2, encoding=enc, rng=rng)
    x = Tensor(rng.uniform(size=(3, 2)))
    assert net(x).shape == (3, 1)
    assert net.layers[0].in_features == enc.out_features


def test_mlp_rejects_zero_depth():
    with pytest.raises(ValueError):
        FullyConnected(2, 1, width=4, depth=0)


def test_mlp_deterministic_under_seed():
    a = FullyConnected(2, 1, width=4, depth=2, rng=np.random.default_rng(42))
    b = FullyConnected(2, 1, width=4, depth=2, rng=np.random.default_rng(42))
    x = Tensor(np.random.default_rng(0).uniform(size=(5, 2)))
    assert np.allclose(a(x).numpy(), b(x).numpy())


def test_module_forward_is_abstract():
    with pytest.raises(NotImplementedError):
        Module()(1)


def test_xavier_bound():
    from repro.nn import xavier_uniform
    w = xavier_uniform(np.random.default_rng(0), 100, 50)
    bound = np.sqrt(6.0 / 150)
    assert w.shape == (100, 50)
    assert np.max(np.abs(w)) <= bound


def test_parameter_requires_grad():
    p = Parameter(np.zeros(3))
    assert p.requires_grad
