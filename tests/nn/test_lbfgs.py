"""L-BFGS optimizer: convergence and line-search behaviour."""

import numpy as np
import pytest

from repro.autodiff import Tensor, gradients
from repro.nn import FullyConnected, LBFGS, Parameter


def quadratic_closure(p, target, scale):
    def closure():
        diff = p - Tensor(target)
        loss = ((diff * diff) * Tensor(scale)).sum()
        grads = gradients(loss, [p])
        return loss.item(), [g.numpy() for g in grads]
    return closure


def test_converges_on_illconditioned_quadratic():
    target = np.array([1.0, -2.0, 3.0])
    scale = np.array([100.0, 1.0, 0.01])   # condition number 1e4
    p = Parameter(np.zeros(3))
    opt = LBFGS([p], lr=1.0, history=10)
    closure = quadratic_closure(p, target, scale)
    for _ in range(60):
        opt.step_closure(closure)
    assert np.allclose(p.data, target, atol=1e-3)


def test_beats_gradient_descent_on_same_budget():
    target = np.array([1.0, -2.0])
    scale = np.array([50.0, 0.5])
    p_lbfgs = Parameter(np.zeros(2))
    opt = LBFGS([p_lbfgs], lr=1.0)
    closure = quadratic_closure(p_lbfgs, target, scale)
    for _ in range(20):
        final = opt.step_closure(closure)

    from repro.nn import SGD
    p_sgd = Parameter(np.zeros(2))
    sgd = SGD([p_sgd], lr=0.01)
    for _ in range(20):
        diff = p_sgd - Tensor(target)
        loss = ((diff * diff) * Tensor(scale)).sum()
        sgd.step(gradients(loss, [p_sgd]))
    err_lbfgs = np.linalg.norm(p_lbfgs.data - target)
    err_sgd = np.linalg.norm(p_sgd.data - target)
    assert err_lbfgs < err_sgd


def test_line_search_rejects_bad_steps():
    # a huge lr must not blow up thanks to backtracking
    p = Parameter(np.array([5.0]))
    opt = LBFGS([p], lr=1e6, max_line_search=40)
    closure = quadratic_closure(p, np.zeros(1), np.ones(1))
    for _ in range(10):
        loss = opt.step_closure(closure)
    assert np.isfinite(loss)
    assert abs(p.data[0]) < 5.0


def test_memory_is_bounded():
    p = Parameter(np.zeros(4))
    opt = LBFGS([p], history=3)
    closure = quadratic_closure(p, np.ones(4), np.ones(4))
    for _ in range(10):
        opt.step_closure(closure)
    assert len(opt._s) <= 3


def test_plain_step_rejected():
    p = Parameter(np.zeros(2))
    opt = LBFGS([p])
    with pytest.raises(RuntimeError):
        opt.step([np.zeros(2)])


def test_refines_network_after_adam():
    # the classic PINN recipe: Adam then L-BFGS on a regression task
    rng = np.random.default_rng(0)
    net = FullyConnected(1, 1, width=12, depth=2, activation="tanh", rng=rng)
    xs = np.linspace(-1, 1, 48).reshape(-1, 1)
    ys = xs ** 2
    from repro.autodiff import Tensor as T
    from repro.nn import Adam
    adam = Adam(net.parameters(), lr=5e-3)
    for _ in range(200):
        loss = ((net(T(xs)) - T(ys)) ** 2.0).mean()
        adam.step(gradients(loss, net.parameters()))
    adam_loss = loss.item()

    opt = LBFGS(net.parameters(), lr=1.0)

    def closure():
        loss = ((net(T(xs)) - T(ys)) ** 2.0).mean()
        grads = gradients(loss, net.parameters())
        return loss.item(), [g.numpy() for g in grads]

    for _ in range(30):
        final = opt.step_closure(closure)
    assert final < adam_loss


def test_state_dict_round_trip_resumes_bit_identically():
    # curvature pairs are the optimizer's memory: a resumed L-BFGS must
    # walk the exact trajectory an uninterrupted one would
    target = np.array([1.0, -2.0, 3.0])
    scale = np.array([100.0, 1.0, 0.01])

    p_full = Parameter(np.zeros(3))
    opt_full = LBFGS([p_full], lr=1.0, history=5)
    closure_full = quadratic_closure(p_full, target, scale)
    for _ in range(6):
        opt_full.step_closure(closure_full)

    p_half = Parameter(np.zeros(3))
    opt_half = LBFGS([p_half], lr=1.0, history=5)
    closure_half = quadratic_closure(p_half, target, scale)
    for _ in range(3):
        opt_half.step_closure(closure_half)
    state = opt_half.state_dict()

    p_resumed = Parameter(p_half.data.copy())
    opt_resumed = LBFGS([p_resumed], lr=1.0, history=5)
    opt_resumed.load_state_dict(state)
    closure_resumed = quadratic_closure(p_resumed, target, scale)
    for _ in range(3):
        opt_resumed.step_closure(closure_resumed)

    assert opt_resumed.step_count == opt_full.step_count
    np.testing.assert_array_equal(p_resumed.data, p_full.data)
    assert len(opt_resumed._s) == len(opt_full._s)
    for s_resumed, s_full in zip(opt_resumed._s, opt_full._s):
        np.testing.assert_array_equal(s_resumed, s_full)


def test_state_dict_before_first_step_omits_last_grad():
    p = Parameter(np.zeros(2))
    opt = LBFGS([p], history=4)
    state = opt.state_dict()
    assert "last_flat_grad" not in state
    assert state["s"] == [] and state["y"] == []

    fresh = LBFGS([Parameter(np.zeros(2))], history=4)
    fresh.load_state_dict(state)
    assert fresh._last_flat_grad is None
    assert fresh._s == [] and fresh._y == []
