"""Optimizer and scheduler correctness."""

import numpy as np
import pytest

from repro.autodiff import gradients
from repro.nn import (
    Adam, ConstantLR, ExponentialDecayLR, FullyConnected, Parameter, SGD,
    clip_grad_norm,
)
from repro.autodiff import Tensor


def quadratic_loss(p, target):
    diff = p - target
    return (diff * diff).sum()


def test_sgd_matches_hand_computed_step():
    p = Parameter(np.array([1.0, -2.0]))
    opt = SGD([p], lr=0.1)
    loss = quadratic_loss(p, np.zeros(2))
    grads = gradients(loss, [p])
    opt.step([g.numpy().copy() for g in grads])
    assert np.allclose(p.data, [1.0 - 0.1 * 2.0, -2.0 + 0.1 * 4.0])


def test_sgd_momentum_accumulates():
    p = Parameter(np.array([1.0]))
    opt = SGD([p], lr=0.1, momentum=0.9)
    opt.step([np.array([1.0])])
    first = p.data.copy()
    opt.step([np.array([1.0])])
    second_step = first - p.data
    assert second_step > 0.1  # momentum adds to the raw gradient step


def test_adam_first_step_is_lr_sized():
    p = Parameter(np.array([5.0]))
    opt = Adam([p], lr=0.01)
    opt.step([np.array([123.0])])
    # bias-corrected Adam's first update is ~lr * sign(grad)
    assert np.allclose(p.data, 5.0 - 0.01, atol=1e-6)


def test_adam_converges_on_quadratic():
    p = Parameter(np.array([3.0, -4.0]))
    target = np.array([1.0, 2.0])
    opt = Adam([p], lr=0.05)
    for _ in range(500):
        loss = quadratic_loss(p, target)
        grads = gradients(loss, [p])
        opt.step(grads)
    assert np.allclose(p.data, target, atol=1e-3)


def test_adam_trains_small_regression_net():
    rng = np.random.default_rng(0)
    net = FullyConnected(1, 1, width=16, depth=2, activation="tanh", rng=rng)
    xs = np.linspace(-1.0, 1.0, 64).reshape(-1, 1)
    ys = np.sin(np.pi * xs)
    opt = Adam(net.parameters(), lr=5e-3)
    x_t, y_t = Tensor(xs), Tensor(ys)
    first_loss = None
    for step in range(400):
        pred = net(x_t)
        loss = ((pred - y_t) ** 2.0).mean()
        if first_loss is None:
            first_loss = loss.item()
        opt.step(gradients(loss, net.parameters()))
    assert loss.item() < 0.05 * first_loss


def test_optimizer_rejects_empty_params():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)


def test_optimizer_rejects_wrong_grad_count():
    p = Parameter(np.zeros(2))
    opt = SGD([p], lr=0.1)
    with pytest.raises(ValueError):
        opt.step([])


def test_clip_grad_norm_scales_in_place():
    g1 = np.array([3.0, 0.0])
    g2 = np.array([0.0, 4.0])
    norm = clip_grad_norm([g1, g2], max_norm=1.0)
    assert np.isclose(norm, 5.0)
    total = np.sqrt((g1 ** 2).sum() + (g2 ** 2).sum())
    assert np.isclose(total, 1.0)


def test_clip_grad_norm_noop_below_threshold():
    g = np.array([0.3, 0.4])
    norm = clip_grad_norm([g], max_norm=1.0)
    assert np.isclose(norm, 0.5)
    assert np.allclose(g, [0.3, 0.4])


def test_exponential_decay_schedule():
    p = Parameter(np.zeros(1))
    opt = Adam([p], lr=1.0)
    sched = ExponentialDecayLR(opt, decay_rate=0.5, decay_steps=10)
    for _ in range(10):
        sched.step()
    assert np.isclose(opt.lr, 0.5)
    for _ in range(10):
        sched.step()
    assert np.isclose(opt.lr, 0.25)


def test_constant_lr_never_changes():
    p = Parameter(np.zeros(1))
    opt = Adam([p], lr=0.123)
    sched = ConstantLR(opt)
    for _ in range(5):
        sched.step()
    assert opt.lr == 0.123
