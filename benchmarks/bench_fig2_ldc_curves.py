"""Figure 2: LDC v-error vs wall time for all four sampling methods."""

from repro.experiments import error_curves, render_curves


def test_figure2_curves(benchmark, ldc_suite_results):
    config, results = ldc_suite_results
    histories = {label: r.history for label, r in results.items()}

    curves = benchmark(error_curves, histories, "v")

    chart = render_curves(curves,
                          f"Figure 2 (scale={config.scale}): LDC v-error "
                          f"vs wall time [s]")
    print()
    print(chart)

    # every method must contribute a non-empty, finite series
    for label, (times, errors) in curves.items():
        assert len(times) > 0, f"{label} recorded no validation errors"
        assert all(e >= 0 for e in errors)
