"""Ablation (paper §5): sensitivity to the kNN size ``k`` and LRD level ``L``.

The conclusion notes that 'more complex examples can be sensitive to the
hyper-parameters k and L, as is the performance overhead'.  This bench
sweeps both knobs on a fixed cloud, recording cluster statistics and build
cost, plus a short training run per setting to expose the accuracy impact.
"""

import numpy as np
import pytest

import repro
from repro.graph import knn_adjacency, lrd_decompose

N = 10_000


@pytest.fixture(scope="module")
def fixed_cloud():
    return np.random.default_rng(0).uniform(size=(N, 2))


@pytest.mark.parametrize("k", (5, 15, 30))
def test_ablation_knn_k(benchmark, fixed_cloud, k):
    def build():
        adjacency = knn_adjacency(fixed_cloud, k)
        return lrd_decompose(adjacency, level=6, num_vectors=8)

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    sizes = np.bincount(result.labels)
    print(f"\nk={k}: {result.n_clusters} clusters, "
          f"edges={len(result.edges)}, max cluster {sizes.max()}")
    assert result.n_clusters >= 2


@pytest.mark.parametrize("level", (4, 8, 12))
def test_ablation_lrd_level(benchmark, fixed_cloud, level):
    adjacency = knn_adjacency(fixed_cloud, 12)

    result = benchmark.pedantic(lrd_decompose, args=(adjacency,),
                                kwargs={"level": level, "num_vectors": 8},
                                rounds=1, iterations=1)
    print(f"\nL={level}: {result.n_clusters} clusters "
          f"(target ~{max(2, N // 2 ** level)})")
    assert result.n_clusters >= 2


@pytest.mark.parametrize("level", (3, 6))
def test_ablation_training_accuracy(benchmark, level):
    """Short SGM training runs at two coarsening levels (smoke scale)."""
    def run():
        return (repro.problem("ldc", scale="smoke")
                .sampler("sgm")
                .config(lrd_level=level)
                .train())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    err = result.history.min_error("u")
    print(f"\nL={level}: clusters={len(result.sampler.clusters)}, "
          f"min err(u)={err:.3f}")
    assert np.isfinite(err)
