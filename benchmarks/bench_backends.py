"""Execution-backend shoot-out: serial vs process pool vs durable queue.

All three backends must produce bit-identical per-cell trajectories —
they only decide *where* each cell trains — so the interesting number is
pure placement overhead: pool fork/import cost for ``process``, enqueue +
lease + poll cost for ``queue``, both measured against the in-process
serial loop on the same smoke-scale matrix.

Run standalone (the CI `exec-smoke` job does)::

    PYTHONPATH=src python benchmarks/bench_backends.py --json BENCH_exec.json

Exits nonzero on any cross-backend trajectory divergence.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.experiments import run_matrix

BACKENDS = ("serial", "process", "queue")


def _sweep(backend, problems, samplers, steps, store_root):
    started = time.perf_counter()
    matrix = run_matrix(problems, samplers, backend=backend, scale="smoke",
                        steps=steps,
                        store=store_root if backend == "queue" else None)
    return time.perf_counter() - started, matrix


def _assert_parity(reference, other, backend):
    for (problem, a), (_, b) in zip(reference.cells(), other.cells()):
        if not np.array_equal(a.history.losses, b.history.losses):
            raise AssertionError(
                f"{backend} diverged from serial on {problem}:{a.label} — "
                f"backends must only decide placement, never numerics")
        for key in a.net_state:
            if not np.array_equal(a.net_state[key], b.net_state[key]):
                raise AssertionError(
                    f"{backend} net state diverged on {problem}:{a.label} "
                    f"({key})")


def bench(problems, samplers, steps):
    """Wall clock + overhead-vs-serial for every backend, parity-checked."""
    walls, matrices = {}, {}
    with tempfile.TemporaryDirectory() as tmp:
        for backend in BACKENDS:
            store_root = Path(tmp) / f"store-{backend}"
            walls[backend], matrices[backend] = _sweep(
                backend, problems, samplers, steps, store_root)
    for backend in ("process", "queue"):
        _assert_parity(matrices["serial"], matrices[backend], backend)
    serial = walls["serial"]
    return {
        "problems": list(problems),
        "samplers": list(samplers),
        "steps": steps,
        "n_cells": matrices["serial"].n_cells,
        "backends": {
            backend: {
                "wall_seconds": round(walls[backend], 4),
                "overhead_vs_serial_seconds": round(walls[backend] - serial,
                                                    4),
            }
            for backend in BACKENDS
        },
        "trajectories_identical": True,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default="BENCH_exec.json",
                        help="output path for the benchmark artifact")
    parser.add_argument("--problems", default="burgers,poisson3d",
                        help="comma-separated registered problems")
    parser.add_argument("--samplers", default="uniform,sgm",
                        help="comma-separated registered samplers")
    parser.add_argument("--steps", type=int, default=8)
    args = parser.parse_args(argv)

    problems = [p.strip() for p in args.problems.split(",") if p.strip()]
    samplers = [s.strip() for s in args.samplers.split(",") if s.strip()]
    result = bench(problems, samplers, args.steps)

    for backend, numbers in result["backends"].items():
        print(f"{backend:8s} {numbers['wall_seconds']:7.2f}s "
              f"({numbers['overhead_vs_serial_seconds']:+.2f}s vs serial)")
    print(f"{result['n_cells']} cells bit-identical across "
          f"{', '.join(BACKENDS)}")

    with open(args.json, "w") as fh:
        json.dump({"scale": "smoke", "result": result}, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
