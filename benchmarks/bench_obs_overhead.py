"""Tracing overhead gate: ``--trace`` must cost less than a few percent.

``repro.obs`` promises near-zero cost when disabled and a small, bounded
cost when enabled, so this benchmark trains the same burgers x SGM smoke
run with tracing off and on and compares wall time.  Loss trajectories
must be *identical* — tracing that perturbs results would invalidate the
golden-trajectory harness — and the traced run may be at most
``--max-overhead`` percent slower (best-of-``--repeats`` on both sides,
which filters shared-runner noise).

Run standalone (the CI `obs-overhead` job does)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --json BENCH_obs.json

Exits nonzero on overhead above the bound or any trajectory divergence.
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.api.problems import build_problem
from repro.api.registry import problem_registry
from repro.api.session import run_problem


def _run(problem, config, sampler, steps, trace):
    """Train one fresh run; returns (wall_seconds, losses, span_count)."""
    prob = build_problem(problem, config,
                         rng=np.random.default_rng(config.seed))
    started = time.perf_counter()
    result = run_problem(prob, config, sampler=sampler,
                         batch_size=config.batch_small, seed=config.seed,
                         steps=steps, validators=[], trace=trace)
    elapsed = time.perf_counter() - started
    spans = len(result.obs["spans"]) if result.obs else 0
    return elapsed, list(result.history.losses), spans


def bench(problem="burgers", sampler="sgm", steps=150, repeats=3):
    """Best-of-``repeats`` disabled vs enabled wall times + parity check."""
    config = problem_registry.get(problem).config_factory("smoke")
    plain, traced = [], []
    baseline_losses = None
    for _ in range(repeats):
        wall, losses, _ = _run(problem, config, sampler, steps, trace=False)
        plain.append(wall)
        wall, traced_losses, spans = _run(problem, config, sampler, steps,
                                          trace=True)
        traced.append(wall)
        if baseline_losses is None:
            baseline_losses = losses
        identical = (losses == baseline_losses
                     and traced_losses == baseline_losses)
        if not identical:
            raise AssertionError(
                "tracing changed the loss trajectory — obs must be "
                "observation-only")
    best_plain, best_traced = min(plain), min(traced)
    return {
        "problem": problem,
        "sampler": sampler,
        "steps": steps,
        "repeats": repeats,
        "disabled_seconds": round(best_plain, 4),
        "enabled_seconds": round(best_traced, 4),
        "overhead_percent": round(100 * (best_traced / best_plain - 1), 2),
        "spans_recorded": spans,
        "losses_identical": True,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default="BENCH_obs.json",
                        help="output path for the benchmark artifact")
    parser.add_argument("--problem", default="burgers")
    parser.add_argument("--sampler", default="sgm")
    parser.add_argument("--steps", type=int, default=150)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--max-overhead", type=float, default=5.0,
                        help="max traced slowdown in percent (default 5)")
    args = parser.parse_args(argv)

    result = bench(args.problem, args.sampler, args.steps, args.repeats)
    print(f"{args.problem} x {args.sampler}, {args.steps} steps "
          f"(best of {args.repeats}): "
          f"disabled {result['disabled_seconds']:.3f}s, "
          f"enabled {result['enabled_seconds']:.3f}s "
          f"-> {result['overhead_percent']:+.2f}% "
          f"({result['spans_recorded']} spans)")

    with open(args.json, "w") as fh:
        json.dump({"scale": "smoke", "max_overhead_percent":
                   args.max_overhead, "result": result}, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.json}")

    if result["overhead_percent"] > args.max_overhead:
        print(f"FAIL: tracing overhead {result['overhead_percent']:.2f}% "
              f"exceeds the {args.max_overhead:.1f}% bound",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
