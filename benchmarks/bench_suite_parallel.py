"""Sharded suite execution: serial vs process-pool wall-clock.

Method sweeps are embarrassingly parallel (each column trains an
independent network), so a ≥3-method sweep sharded over a process pool
should beat the serial loop on any multi-core machine while producing
bit-identical loss trajectories.  This benchmark measures both backends
on the same sweep and checks the parity invariant that makes the
comparison meaningful.
"""

import os

import numpy as np

from repro.experiments import ldc_config, ldc_methods, run_suite


def _sweep(backend):
    config = ldc_config(os.environ.get("REPRO_BENCH_SCALE", "smoke"))
    methods = ldc_methods(config)          # 4 columns: U, U_large, MIS, SGM
    return run_suite("ldc", methods, backend=backend, config=config)


def test_suite_parallel_vs_serial(benchmark):
    serial = _sweep("serial")
    parallel = benchmark.pedantic(lambda: _sweep("process"),
                                  rounds=1, iterations=1)

    print()
    print(f"serial   total: {serial.total_seconds:7.1f}s  "
          f"per-method {[round(t, 1) for t in serial.timings().values()]}")
    print(f"process  total: {parallel.total_seconds:7.1f}s  "
          f"({os.cpu_count()} cpus)")
    speedup = serial.total_seconds / max(parallel.total_seconds, 1e-9)
    print(f"speedup: {speedup:.2f}x")

    # parity: sharding must not change a single trajectory bit
    for s, p in zip(serial, parallel):
        assert s.label == p.label
        assert np.array_equal(s.history.losses, p.history.losses), s.label
        for key in s.net_state:
            assert np.array_equal(s.net_state[key], p.net_state[key])

    # pool startup + per-worker import overhead is fixed (a few seconds),
    # so the speedup claim is only meaningful once training dominates it —
    # at smoke scale on a small machine the comparison is just noise
    if (os.cpu_count() or 1) >= 2 and serial.total_seconds >= 10.0:
        assert parallel.total_seconds < serial.total_seconds, (
            f"parallel sweep ({parallel.total_seconds:.1f}s) not faster "
            f"than serial ({serial.total_seconds:.1f}s)")
