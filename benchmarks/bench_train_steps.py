"""End-to-end training throughput: eager graphs vs compiled-tape replay.

``repro.autodiff.replay`` promises a faster *whole training step* — not a
faster kernel — so this benchmark times ``Trainer.train`` itself, per
registered problem, in both modes.  Replay timing deliberately includes
the two trace steps and tape compilation: the reported speedup is what a
user actually observes for a run of ``--steps`` steps, amortization and
all.

Run standalone (the CI `bench-autodiff` job does)::

    PYTHONPATH=src python benchmarks/bench_train_steps.py \
        --json BENCH_train.json

Exits nonzero if replay is slower than eager on burgers — the ROADMAP's
hot-path compile refactor must never regress below its baseline.  Every
problem's mode is recorded (``trainer.compile_info()``), so a cell that
silently fell back to eager is visible in the artifact, but only the
burgers cell gates CI: smoke-scale wall times on shared runners are too
noisy to gate all seven.
"""

import argparse
import json
import sys
import time

import repro.api.problems  # noqa: F401  (populate the registry)
from repro.api.registry import list_problems
from repro.api.session import Session, _wire_training

GATE_PROBLEM = "burgers"


def _timed_train(problem, sampler, steps, compile):
    """Wire a fresh smoke-scale trainer and time ``steps`` optimizer steps.

    Construction (mesh, kNN graph, network init) is excluded; validation
    and history recording are pushed past the horizon so the loop is pure
    step work, matching what replay compiles.
    """
    session = Session(problem, scale="smoke").sampler(sampler)
    prob = session.build()
    trainer, _ = _wire_training(prob, session._config, sampler,
                                session._config.batch_small,
                                session._config.seed, [])
    started = time.perf_counter()
    trainer.train(steps, validate_every=10**6, record_every=10**6,
                  compile=compile)
    elapsed = time.perf_counter() - started
    return steps / elapsed, trainer.compile_info()


def bench_problem(problem, sampler="sgm", steps=400):
    """``{eager_steps_per_sec, replay_steps_per_sec, speedup, mode}``."""
    eager_rate, _ = _timed_train(problem, sampler, steps, compile=False)
    replay_rate, mode = _timed_train(problem, sampler, steps, compile=True)
    return {
        "sampler": sampler,
        "steps": steps,
        "eager_steps_per_sec": round(eager_rate, 2),
        "replay_steps_per_sec": round(replay_rate, 2),
        "speedup": round(replay_rate / eager_rate, 3),
        "mode": mode,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default="BENCH_train.json",
                        help="output path for the benchmark artifact")
    parser.add_argument("--problems", default="all",
                        help="comma list of problems (default: all)")
    parser.add_argument("--sampler", default="sgm")
    parser.add_argument("--steps", type=int, default=400)
    args = parser.parse_args(argv)

    names = (list_problems() if args.problems == "all"
             else [p.strip() for p in args.problems.split(",") if p.strip()])
    results = {}
    for name in names:
        results[name] = bench_problem(name, args.sampler, args.steps)
        cell = results[name]
        print(f"{name:>20}: eager {cell['eager_steps_per_sec']:7.1f} "
              f"replay {cell['replay_steps_per_sec']:7.1f} steps/s "
              f"(x{cell['speedup']:.2f}, {cell['mode']})")

    with open(args.json, "w") as fh:
        json.dump({"scale": "smoke", "results": results}, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.json}")

    gate = results.get(GATE_PROBLEM)
    if gate is not None:
        if gate["mode"] != "replay":
            print(f"FAIL: {GATE_PROBLEM} did not compile "
                  f"(mode={gate['mode']!r})", file=sys.stderr)
            return 1
        if gate["speedup"] < 1.0:
            print(f"FAIL: replay slower than eager on {GATE_PROBLEM} "
                  f"(x{gate['speedup']:.2f})", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
