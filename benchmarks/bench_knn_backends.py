"""S1 backends: exact KD-tree vs the pure-python HNSW the paper cites.

Records construction+query time and the HNSW recall against the exact
result (the sampler only needs approximate neighbourhoods).
"""

import numpy as np
import pytest

from repro.graph import knn_search

N = 1_500
K = 8


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(0).uniform(size=(N, 2))


@pytest.fixture(scope="module")
def exact_indices(points):
    indices, _ = knn_search(points, K, backend="kdtree")
    return indices


def test_kdtree_backend(benchmark, points):
    indices, _ = benchmark(knn_search, points, K, backend="kdtree")
    assert indices.shape == (N, K)


def test_brute_backend(benchmark, points):
    indices, _ = benchmark.pedantic(knn_search, args=(points, K),
                                    kwargs={"backend": "brute"},
                                    rounds=1, iterations=1)
    assert indices.shape == (N, K)


def test_hnsw_index_build_is_amortized_linear(benchmark):
    """Index construction alone (no queries).

    ``HNSWIndex.add`` used to ``np.vstack`` the whole point matrix per
    insert, making builds quadratic in N; the doubling buffer brings the
    append cost down to amortized O(1).  The assertion pins the scaling:
    a 4x larger build must cost well under the ~16x a quadratic append
    path would (graph wiring keeps it superlinear, so allow 10x).
    """
    import time

    from repro.graph.hnsw import HNSWIndex

    def build(n, seed=0):
        pts = np.random.default_rng(seed).uniform(size=(n, 2))
        return HNSWIndex(dim=2, rng=np.random.default_rng(1)).build(pts)

    benchmark.pedantic(build, args=(N,), rounds=1, iterations=1)

    timings = {}
    for n in (N // 4, N):
        started = time.perf_counter()
        build(n)
        timings[n] = time.perf_counter() - started
    ratio = timings[N] / timings[N // 4]
    print(f"\nHNSW build {N // 4} pts: {timings[N // 4]:.2f}s, "
          f"{N} pts: {timings[N]:.2f}s (x{ratio:.1f} for 4x points)")
    assert ratio < 10.0, f"build scaling looks quadratic: x{ratio:.1f}"


def test_hnsw_backend_with_recall(benchmark, points, exact_indices):
    indices, _ = benchmark.pedantic(
        knn_search, args=(points, K),
        kwargs={"backend": "hnsw", "rng": np.random.default_rng(1)},
        rounds=1, iterations=1)
    hits = sum(len(set(a) & set(b))
               for a, b in zip(indices, exact_indices))
    recall = hits / exact_indices.size
    print(f"\nHNSW recall@{K}: {recall:.3f}")
    assert recall > 0.85
