"""S1 backends: exact KD-tree vs the pure-python HNSW the paper cites.

Records construction+query time and the HNSW recall against the exact
result (the sampler only needs approximate neighbourhoods).
"""

import numpy as np
import pytest

from repro.graph import knn_search

N = 1_500
K = 8


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(0).uniform(size=(N, 2))


@pytest.fixture(scope="module")
def exact_indices(points):
    indices, _ = knn_search(points, K, backend="kdtree")
    return indices


def test_kdtree_backend(benchmark, points):
    indices, _ = benchmark(knn_search, points, K, backend="kdtree")
    assert indices.shape == (N, K)


def test_brute_backend(benchmark, points):
    indices, _ = benchmark.pedantic(knn_search, args=(points, K),
                                    kwargs={"backend": "brute"},
                                    rounds=1, iterations=1)
    assert indices.shape == (N, K)


def test_hnsw_backend_with_recall(benchmark, points, exact_indices):
    indices, _ = benchmark.pedantic(
        knn_search, args=(points, K),
        kwargs={"backend": "hnsw", "rng": np.random.default_rng(1)},
        rounds=1, iterations=1)
    hits = sum(len(set(a) & set(b))
               for a, b in zip(indices, exact_indices))
    recall = hits / exact_indices.size
    print(f"\nHNSW recall@{K}: {recall:.3f}")
    assert recall > 0.85
