"""§3.6 complexity: kNN construction, ER sketching, and LRD scaling.

The paper claims O(N log N) kNN, nearly-linear ER estimation, and
nearly-linear LRD.  These benchmarks record wall time across point-cloud
sizes so the scaling exponent can be read off the pytest-benchmark table.
"""

import numpy as np
import pytest

from repro.graph import knn_adjacency, knn_search, lrd_decompose

SIZES = (2_000, 8_000, 32_000)


def cloud(n, seed=0):
    return np.random.default_rng(seed).uniform(size=(n, 2))


@pytest.mark.parametrize("n", SIZES)
def test_knn_scaling(benchmark, n):
    points = cloud(n)
    indices, _ = benchmark.pedantic(knn_search, args=(points, 12),
                                    rounds=1, iterations=1, warmup_rounds=0)
    assert indices.shape == (n, 12)


@pytest.mark.parametrize("n", SIZES)
def test_lrd_scaling(benchmark, n):
    adjacency = knn_adjacency(cloud(n), 12)

    result = benchmark.pedantic(lrd_decompose, args=(adjacency,),
                                kwargs={"level": 7, "num_vectors": 12},
                                rounds=1, iterations=1, warmup_rounds=0)
    assert result.labels.shape == (n,)
    assert result.n_clusters >= max(2, n // 2 ** 7 // 2)


@pytest.mark.parametrize("n", (1_000, 4_000))
def test_isr_scaling(benchmark, n):
    from repro.stability import spade_scores
    rng = np.random.default_rng(1)
    points = rng.uniform(size=(n, 2))
    outputs = np.tanh(10.0 * (points[:, 0:1] - 0.5))

    result = benchmark.pedantic(spade_scores, args=(points, outputs),
                                kwargs={"k": 10, "rank": 6},
                                rounds=1, iterations=1, warmup_rounds=0)
    assert result.node_scores.shape == (n,)
