"""Data-parallel scaling: steps/sec vs world size, parity-gated.

``world_size`` chooses *placement only* — the trajectory is a pure
function of the logical shard count — so the interesting numbers are
throughput (steps/sec) as ranks are added and the allreduce volume per
step, measured against the inline ``world_size=1`` baseline on the same
problems.  Any divergence of losses, errors, or final weights from the
baseline is a correctness bug, and the benchmark exits nonzero.

Run standalone (the CI `dp-smoke` job does)::

    PYTHONPATH=src python benchmarks/bench_dp.py --json BENCH_dp.json

Exits nonzero on any cross-world-size trajectory divergence.
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.dp import run_dp
from repro.experiments import burgers_config, ldc_config, poisson3d_config

CONFIGS = {
    "burgers": burgers_config,
    "ldc": ldc_config,
    "poisson3d": poisson3d_config,
}


def _train(problem, *, world_size, backend, steps, n_interior, batch_size):
    started = time.perf_counter()
    result = run_dp(problem, CONFIGS[problem]("smoke"), sampler="sgm",
                    steps=steps, n_interior=n_interior,
                    batch_size=batch_size, world_size=world_size,
                    backend=backend)
    return time.perf_counter() - started, result


def _assert_parity(problem, world_size, baseline, candidate):
    """Trajectory + final weights must match the world_size=1 run bitwise."""
    if baseline.history.losses != candidate.history.losses:
        raise AssertionError(
            f"world_size={world_size} loss trajectory diverged from the "
            f"serial baseline on {problem} — world size must choose "
            f"placement, never numerics")
    for var in baseline.history.errors:
        if not np.array_equal(baseline.history.errors[var],
                              candidate.history.errors[var]):
            raise AssertionError(
                f"world_size={world_size} err({var}) diverged from the "
                f"serial baseline on {problem}")
    base_state = baseline.net.state_dict()
    cand_state = candidate.net.state_dict()
    for key in base_state:
        if base_state[key].tobytes() != cand_state[key].tobytes():
            raise AssertionError(
                f"world_size={world_size} final weights diverged from the "
                f"serial baseline on {problem} ({key})")


def bench(problems, world_sizes, backend, steps, n_interior, batch_size):
    """steps/sec for every problem x world size, parity-checked."""
    rows = {}
    for problem in problems:
        baseline = None
        rows[problem] = {}
        for world_size in world_sizes:
            wall, result = _train(
                problem, world_size=world_size,
                backend=backend if world_size > 1 else "process",
                steps=steps, n_interior=n_interior, batch_size=batch_size)
            if world_size == 1:
                baseline = result
            else:
                _assert_parity(problem, world_size, baseline, result)
            rows[problem][str(world_size)] = {
                "wall_seconds": round(wall, 4),
                "steps_per_second": round(steps / wall, 4),
                "final_loss": float(result.history.losses[-1]),
            }
    return {
        "problems": list(problems),
        "world_sizes": list(world_sizes),
        "backend": backend,
        "steps": steps,
        "n_interior": n_interior,
        "batch_size": batch_size,
        "throughput": rows,
        "trajectories_identical": True,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default="BENCH_dp.json",
                        help="output path for the benchmark artifact")
    parser.add_argument("--problems", default="burgers,ldc,poisson3d",
                        help="comma-separated registered problems")
    parser.add_argument("--world-sizes", default="1,2,4",
                        help="comma-separated world sizes (1 first: baseline)")
    parser.add_argument("--backend", default="process",
                        choices=("process", "thread"),
                        help="rank placement for world_size > 1")
    parser.add_argument("--steps", type=int, default=6)
    parser.add_argument("--n-interior", type=int, default=320)
    parser.add_argument("--batch-size", type=int, default=64)
    args = parser.parse_args(argv)

    problems = [p.strip() for p in args.problems.split(",") if p.strip()]
    world_sizes = [int(w) for w in args.world_sizes.split(",") if w.strip()]
    if world_sizes[0] != 1:
        parser.error("--world-sizes must start with 1 (the parity baseline)")

    result = bench(problems, world_sizes, args.backend, args.steps,
                   args.n_interior, args.batch_size)

    for problem, per_world in result["throughput"].items():
        for world_size, numbers in per_world.items():
            print(f"{problem:12s} W={world_size}  "
                  f"{numbers['steps_per_second']:7.2f} steps/s  "
                  f"({numbers['wall_seconds']:.2f}s)")
    print(f"{len(problems)} problems bit-identical across world sizes "
          f"{', '.join(str(w) for w in world_sizes)}")

    with open(args.json, "w") as fh:
        json.dump({"scale": "smoke", "result": result}, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
