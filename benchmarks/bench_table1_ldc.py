"""Table 1: LDC_zeroEq — minimum validation errors and time-to-threshold.

Times the full four-method training sweep (U_small, U_large, MIS, SGM) and
prints the reproduced table.  The paper's claims to check at any scale:

* SGM achieves the best Min(u)/Min(v)/Min(nu) among the small-batch methods;
* SGM reaches the baseline's (U_large's) best error fastest.
"""

from repro.experiments import format_table, ldc_config, run_ldc_suite, table1_rows


def test_table1_ldc(benchmark, ldc_suite_results):
    config, results = ldc_suite_results

    def regenerate():
        # the session fixture pays for training; the benchmark reports the
        # end-to-end sweep cost at smoke scale (rounds=1 keeps it bounded)
        fresh = run_ldc_suite(ldc_config("smoke"), verbose=False)
        return {label: r.history for label, r in fresh.items()}

    benchmark.pedantic(regenerate, rounds=1, iterations=1)

    histories = {label: r.history for label, r in results.items()}
    columns, rows = table1_rows(histories)
    print()
    print(format_table(
        f"Table 1 (scale={config.scale}): LDC_zeroEq min errors and "
        f"time-to-threshold [s]", columns, rows))
    print("\nProbe overhead (extra forward passes):")
    for label, r in results.items():
        print(f"  {label:>12}: {r.sampler.probe_points}")

    for label, history in histories.items():
        assert history.min_error("u") < 1.5, f"{label} diverged"
