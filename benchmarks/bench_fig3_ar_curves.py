"""Figure 3: annular-ring v-error vs wall time, including plain SGM.

The qualitative shape to reproduce: plain SGM (no ISR) trails the uniform
baseline on the parameterized problem, while SGM-S recovers it (§4.2).
"""

from repro.experiments import error_curves, render_curves


def test_figure3_curves(benchmark, ar_suite_results):
    config, results = ar_suite_results
    histories = {label: r.history for label, r in results.items()}

    curves = benchmark(error_curves, histories, "v")

    chart = render_curves(curves,
                          f"Figure 3 (scale={config.scale}): AR v-error vs "
                          f"wall time [s] (averaged over r_i)")
    print()
    print(chart)

    labels = list(curves)
    assert any("-S" in label for label in labels), "SGM-S curve missing"
    assert any(label.startswith("SGM") and "-S" not in label
               for label in labels), "plain SGM curve missing"
    for label, (times, errors) in curves.items():
        assert len(times) > 0, f"{label} has no error series"
