"""Figure 4: absolute pressure-error fields at r_i = 1.0 per method.

The paper visualises |p_pred - p_ref| over the annular-ring domain; here we
regenerate the fields on the reference grid and report each method's mean
absolute error (SGM-S should be lowest among the small-batch methods).
"""

import numpy as np

from repro.experiments import pressure_error_fields


def test_figure4_pressure_fields(benchmark, ar_suite_results):
    config, results = ar_suite_results

    fig4 = benchmark.pedantic(pressure_error_fields,
                              args=(results, config),
                              kwargs={"r_inner": 1.0},
                              rounds=1, iterations=1)

    print(f"\nFigure 4 (scale={config.scale}): mean |p_pred - p_ref| "
          f"at r_i=1.0")
    for label, value in sorted(fig4["mean_abs_error"].items(),
                               key=lambda kv: kv[1]):
        print(f"  {label:>12}: {value:.4f}")

    mask = fig4["mask"]
    for label, field in fig4["fields"].items():
        inside = field[mask]
        assert np.all(np.isfinite(inside)), f"{label} produced NaN errors"
        assert np.all(np.isnan(field[~mask])), "error leaked outside fluid"
