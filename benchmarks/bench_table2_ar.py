"""Table 2: parameterized annular ring — min errors, p at Min(v), times.

The paper's claims to check: SGM-S (with the ISR stability term) matches or
beats uniform sampling on u/v and improves p, while plain SGM *degrades*
parameterized training (visible in the Figure-3 curves).
"""

from repro.experiments import format_table, table2_rows


def test_table2_annular_ring(benchmark, ar_suite_results):
    config, results = ar_suite_results
    histories = {label: r.history for label, r in results.items()}

    table_histories = {label: h for label, h in histories.items()
                       if not (label.startswith("SGM") and "-S" not in label)}

    def build_rows():
        return table2_rows(table_histories)

    columns, rows = benchmark(build_rows)
    print()
    print(format_table(
        f"Table 2 (scale={config.scale}): annular ring, errors averaged "
        f"over r_i = {config.validation_radii}", columns, rows))

    for label, history in table_histories.items():
        assert history.min_error("u") < 1.5, f"{label} diverged"
        assert history.min_error("v") < 1.5, f"{label} diverged"
