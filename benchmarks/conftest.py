"""Shared fixtures for the benchmark suite.

Benchmarks default to the ``smoke`` scale so ``pytest benchmarks/
--benchmark-only`` finishes in minutes; set ``REPRO_BENCH_SCALE=repro`` to
regenerate the paper's tables at the full reproduction scale (tens of
minutes on a laptop CPU).  Set ``REPRO_BENCH_BACKEND=process`` to shard
the training sweeps over a process pool (identical trajectories, lower
wall-clock on multi-core machines).

The trained suites are session-cached: the table benchmark times the
training sweep itself, while the figure benchmarks time their artifact
generation from the shared results.
"""

import os

import pytest

from repro.experiments import (
    annular_ring_config, ldc_config, run_ar_suite, run_ldc_suite,
)


def bench_scale():
    """Scale preset for benchmark runs (env: REPRO_BENCH_SCALE)."""
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


def bench_backend():
    """Execution backend for benchmark runs (env: REPRO_BENCH_BACKEND)."""
    return os.environ.get("REPRO_BENCH_BACKEND", "serial")


@pytest.fixture(scope="session")
def ldc_suite_results():
    """Train the Table-1 methods once per session."""
    config = ldc_config(bench_scale())
    return config, run_ldc_suite(config, verbose=False,
                                 backend=bench_backend())


@pytest.fixture(scope="session")
def ar_suite_results():
    """Train the Table-2 (+ Figure-3) methods once per session."""
    config = annular_ring_config(bench_scale())
    return config, run_ar_suite(config, include_plain_sgm=True,
                                verbose=False, backend=bench_backend())
