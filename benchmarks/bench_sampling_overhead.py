"""§3.5/§3.6 overhead: score-refresh cost, MIS (full dataset) vs SGM (r·N).

The paper's central efficiency argument: prior IS methods recompute an
importance measure for *every* sample, while SGM probes only ``r = 15%`` of
each cluster.  This benchmark measures one refresh of each sampler on the
same LDC problem and asserts the probe accounting matches the claim.
"""

import numpy as np
import pytest

from repro.api import build_problem
from repro.experiments import ldc_config
from repro.nn import Adam, FullyConnected
from repro.sampling import MISSampler, SGMSampler
from repro.training import Trainer

N_POINTS = 8_000


@pytest.fixture(scope="module")
def ldc_training_setup():
    config = ldc_config("smoke")
    problem = build_problem("ldc", config, N_POINTS,
                            np.random.default_rng(0))
    for constraint in problem.constraints:
        constraint.batch_size = 64
    net = FullyConnected(problem.in_features, problem.out_features,
                         width=16, depth=2, rng=np.random.default_rng(0))
    return config, problem, net


def _trainer_with(sampler, problem, net):
    return Trainer(net, problem.constraints,
                   Adam(net.parameters(), lr=1e-3),
                   samplers={"interior": sampler}, seed=0)


def test_mis_refresh_probes_full_dataset(benchmark, ldc_training_setup):
    config, problem, net = ldc_training_setup
    sampler = MISSampler(N_POINTS, tau_e=10_000, seed=0)
    _trainer_with(sampler, problem, net)

    benchmark.pedantic(sampler._refresh, rounds=1, iterations=1)

    assert sampler.probe_points == N_POINTS  # every sample, as in Modulus


def test_sgm_refresh_probes_r_fraction(benchmark, ldc_training_setup):
    config, problem, net = ldc_training_setup
    sampler = SGMSampler(problem.interior_cloud.features(), k=8, level=5,
                         tau_e=10_000, tau_G=100_000, probe_ratio=0.15,
                         seed=0, num_vectors=8)
    _trainer_with(sampler, problem, net)
    sampler.start()

    benchmark.pedantic(sampler.refresh_scores, rounds=1, iterations=1)

    # r*N plus the 1-point floor for tiny clusters (§3.5)
    expected_min = int(0.15 * N_POINTS)
    assert expected_min <= sampler.probe_points <= int(0.35 * N_POINTS)
    print(f"\nSGM probed {sampler.probe_points} of {N_POINTS} points "
          f"({sampler.probe_points / N_POINTS:.1%}); MIS probes 100%")


def test_sgm_rebuild_cost(benchmark, ldc_training_setup):
    config, problem, net = ldc_training_setup
    sampler = SGMSampler(problem.interior_cloud.features(), k=8, level=5,
                         seed=0, num_vectors=8)

    benchmark.pedantic(sampler.build_clusters, rounds=1, iterations=1)

    assert sampler.rebuild_count == 1
    assert len(sampler.clusters) > 1
