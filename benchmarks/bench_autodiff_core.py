"""Engine micro-benchmarks: the per-iteration cost drivers of PINN training.

Not a paper artifact, but the regression guard for everything the tables
depend on: forward pass, parameter backward, and the second-order residual
pipeline that dominates training time.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor, gradients
from repro.nn import FullyConnected
from repro.pde import Fields, NavierStokes2D

BATCH = 256


@pytest.fixture(scope="module")
def net():
    return FullyConnected(2, 3, width=64, depth=4,
                          rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def features():
    return np.random.default_rng(1).uniform(size=(BATCH, 2))


def test_forward_pass(benchmark, net, features):
    x = Tensor(features)
    out = benchmark(net, x)
    assert out.shape == (BATCH, 3)


def test_parameter_backward(benchmark, net, features):
    params = net.parameters()

    def step():
        out = net(Tensor(features))
        loss = (out * out).mean()
        return gradients(loss, params)

    grads = benchmark(step)
    assert len(grads) == len(params)


def test_navier_stokes_residual_second_order(benchmark, net, features):
    pde = NavierStokes2D(nu=0.01)

    def residuals():
        fields = Fields.from_features(features)
        out = net(fields.input_tensor())
        for i, name in enumerate(("u", "v", "p")):
            fields.register(name, out[:, i:i + 1])
        return pde.residuals(fields)

    result = benchmark(residuals)
    assert set(result) == {"continuity", "momentum_x", "momentum_y"}


def test_full_training_step(benchmark, net, features):
    pde = NavierStokes2D(nu=0.01)
    params = net.parameters()

    def step():
        fields = Fields.from_features(features)
        out = net(fields.input_tensor())
        for i, name in enumerate(("u", "v", "p")):
            fields.register(name, out[:, i:i + 1])
        residuals = pde.residuals(fields)
        loss = None
        for r in residuals.values():
            term = (r * r).mean()
            loss = term if loss is None else loss + term
        return gradients(loss, params)

    grads = benchmark(step)
    assert len(grads) == len(params)
