"""Setuptools entry point.

All metadata (including the ``sgm-pinn`` console script) lives in
``pyproject.toml``; this file exists so editable installs work in offline
environments whose setuptools/pip lack the ``wheel`` package required by
PEP 660 editable wheels — there, run ``python setup.py develop`` directly
(pip's PEP 517 paths all need ``wheel`` until setuptools >= 70).
"""

from setuptools import setup

setup()
