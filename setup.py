"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools/pip lack the ``wheel`` package required by
PEP 660 editable wheels (pip then falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
