#!/usr/bin/env python
"""Gate per-subsystem line coverage against declared floors.

Reads the JSON report that ``pytest --cov=repro --cov-report=json`` wrote
(run by the CI ``tier1`` job) and fails if any subsystem listed in
``FLOORS`` covers fewer lines than its floor.  Aggregation is by lines,
not by file average, so one large cold file cannot hide behind many hot
small ones.

Usage::

    python tools/check_coverage.py coverage.json
"""

from __future__ import annotations

import json
import sys

#: subsystem (path fragment under src/repro/) -> minimum covered-line %
FLOORS = {
    "exec/": 65.0,
    "dp/": 75.0,
    "autodiff/": 60.0,
}


def subsystem_of(path):
    """Map a measured file path onto a floor key, or None."""
    normalized = path.replace("\\", "/")
    for fragment in FLOORS:
        if f"/repro/{fragment}" in f"/{normalized}":
            return fragment
    return None


def aggregate(report):
    """Sum covered/total statements per subsystem from a coverage JSON."""
    totals = {fragment: [0, 0] for fragment in FLOORS}
    for path, entry in report.get("files", {}).items():
        fragment = subsystem_of(path)
        if fragment is None:
            continue
        summary = entry["summary"]
        totals[fragment][0] += summary["covered_lines"]
        totals[fragment][1] += summary["num_statements"]
    return totals


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    report_path = argv[0] if argv else "coverage.json"
    try:
        with open(report_path, encoding="utf-8") as fh:
            report = json.load(fh)
    except OSError as exc:
        print(f"error: cannot read coverage report {report_path!r}: {exc}")
        return 1

    totals = aggregate(report)
    failures = []
    print(f"{'subsystem':12s} {'covered':>8s} {'lines':>8s} "
          f"{'percent':>8s} {'floor':>6s}")
    for fragment in sorted(FLOORS):
        covered, lines = totals[fragment]
        if lines == 0:
            failures.append(f"{fragment}: no measured files — was the "
                            f"subsystem renamed or excluded from --cov?")
            continue
        percent = 100.0 * covered / lines
        floor = FLOORS[fragment]
        marker = "ok" if percent >= floor else "FAIL"
        print(f"{fragment:12s} {covered:8d} {lines:8d} {percent:7.1f}% "
              f"{floor:5.0f}% {marker}")
        if percent < floor:
            failures.append(
                f"{fragment}: {percent:.1f}% covered, floor is "
                f"{floor:.0f}% — add tests or consciously lower the floor "
                f"in tools/check_coverage.py")

    for failure in failures:
        print(f"error: {failure}")
    if failures:
        return 1
    print("coverage floors satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
