#!/usr/bin/env python
"""Keep docs/ and the registries in sync (run by the docs-check CI job).

Checks
------
1. Every registered problem has a ``## `name```-style section in
   ``docs/workloads.md`` (so a new workload cannot ship undocumented).
2. Every relative markdown link in ``docs/*.md`` and ``README.md``
   resolves to an existing file (fragments are stripped; absolute URLs
   and pure anchors are skipped).

Usage::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
DOCS = REPO / "docs"

#: [text](target) markdown links; images share the syntax via a leading !
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_workload_sections():
    """Every registered problem needs a ``## `name``` heading."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.api import list_problems

    workloads = DOCS / "workloads.md"
    if not workloads.exists():
        return [f"missing {workloads.relative_to(REPO)}"]
    text = workloads.read_text(encoding="utf-8")
    headings = set(re.findall(r"^##\s+`([^`]+)`", text, flags=re.MULTILINE))
    errors = []
    for name in list_problems():
        if name not in headings:
            errors.append(
                f"docs/workloads.md: no section for registered problem "
                f"{name!r} (add a '## `{name}` — ...' heading)")
    return errors


def check_relative_links():
    """Relative links in docs/ and README must point at existing files."""
    errors = []
    pages = sorted(DOCS.glob("*.md")) + [REPO / "README.md"]
    for page in pages:
        text = page.read_text(encoding="utf-8")
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (page.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{page.relative_to(REPO)}: broken relative "
                              f"link -> {target}")
    return errors


def main():
    errors = check_workload_sections() + check_relative_links()
    for error in errors:
        print(f"error: {error}")
    if errors:
        return 1
    print("docs check passed: every registered problem is documented and "
          "all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
