#!/usr/bin/env python
"""Keep docs/ and the registries in sync (run by the docs-check CI job).

Checks
------
1. Every registered problem has a ``## `name```-style section in
   ``docs/workloads.md`` (so a new workload cannot ship undocumented).
2. Every relative markdown link in ``docs/*.md`` and ``README.md``
   resolves to an existing file (fragments are stripped; absolute URLs
   and pure anchors are skipped).
3. Every shipped lint rule has a ``### `RPRxxx```-style section in
   ``docs/analysis.md`` (so a new rule cannot ship undocumented), and the
   page documents no rule ids that do not exist.
4. Every ``--flag`` the CLI defines is at least mentioned in
   ``docs/cli.md`` (so a new flag cannot ship undocumented).
5. Every metric in the :mod:`repro.obs` catalog has a table row in
   ``docs/observability.md``, and the page lists no metric that does not
   ship (so the metric catalog and its docs cannot drift).

Usage::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
DOCS = REPO / "docs"

#: [text](target) markdown links; images share the syntax via a leading !
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_workload_sections():
    """Every registered problem needs a ``## `name``` heading."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.api import list_problems

    workloads = DOCS / "workloads.md"
    if not workloads.exists():
        return [f"missing {workloads.relative_to(REPO)}"]
    text = workloads.read_text(encoding="utf-8")
    headings = set(re.findall(r"^##\s+`([^`]+)`", text, flags=re.MULTILINE))
    errors = []
    for name in list_problems():
        if name not in headings:
            errors.append(
                f"docs/workloads.md: no section for registered problem "
                f"{name!r} (add a '## `{name}` — ...' heading)")
    return errors


def check_relative_links():
    """Relative links in docs/ and README must point at existing files."""
    errors = []
    pages = sorted(DOCS.glob("*.md")) + [REPO / "README.md"]
    for page in pages:
        text = page.read_text(encoding="utf-8")
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (page.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{page.relative_to(REPO)}: broken relative "
                              f"link -> {target}")
    return errors


def check_rule_catalog():
    """Every shipped lint rule needs a ``### `RPRxxx``` catalog section."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.analysis import available_rules

    page = DOCS / "analysis.md"
    if not page.exists():
        return [f"missing {page.relative_to(REPO)}"]
    text = page.read_text(encoding="utf-8")
    documented = set(re.findall(r"^###\s+`(RPR\d+)`", text,
                                flags=re.MULTILINE))
    shipped = {rule.id for rule in available_rules()}
    errors = []
    for rule_id in sorted(shipped - documented):
        errors.append(f"docs/analysis.md: no catalog section for shipped "
                      f"rule {rule_id} (add a '### `{rule_id}` — ...' "
                      f"heading)")
    for rule_id in sorted(documented - shipped):
        errors.append(f"docs/analysis.md: documents rule {rule_id}, which "
                      f"is not shipped (remove the section or restore the "
                      f"rule)")
    return errors


def check_cli_flags():
    """Every ``--flag`` defined by the CLI must appear in docs/cli.md."""
    cli = REPO / "src" / "repro" / "cli.py"
    page = DOCS / "cli.md"
    if not page.exists():
        return [f"missing {page.relative_to(REPO)}"]
    flags = set(re.findall(r'"(--[a-z][a-z0-9-]*)"',
                           cli.read_text(encoding="utf-8")))
    text = page.read_text(encoding="utf-8")
    errors = []
    for flag in sorted(flags):
        if flag not in text:
            errors.append(f"docs/cli.md: CLI flag {flag} is undocumented "
                          f"(mention it under the owning subcommand)")
    return errors


def check_metric_catalog():
    """Shipped obs metrics and docs/observability.md must agree exactly."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.obs import metric_catalog

    page = DOCS / "observability.md"
    if not page.exists():
        return [f"missing {page.relative_to(REPO)}"]
    text = page.read_text(encoding="utf-8")
    documented = set(re.findall(
        r"^\|\s*`([a-z][a-z0-9_.]*)`\s*\|\s*(?:counter|gauge)\s*\|", text,
        flags=re.MULTILINE))
    shipped = {entry["name"] for entry in metric_catalog()}
    errors = []
    for name in sorted(shipped - documented):
        errors.append(f"docs/observability.md: no table row for shipped "
                      f"metric {name!r} (add a '| `{name}` | <kind> | ...' "
                      f"row)")
    for name in sorted(documented - shipped):
        errors.append(f"docs/observability.md: documents metric {name!r}, "
                      f"which is not in the repro.obs catalog (remove the "
                      f"row or register the metric)")
    return errors


def main():
    errors = (check_workload_sections() + check_relative_links()
              + check_rule_catalog() + check_cli_flags()
              + check_metric_catalog())
    for error in errors:
        print(f"error: {error}")
    if errors:
        return 1
    print("docs check passed: every registered problem, lint rule, CLI "
          "flag, and obs metric is documented and all relative links "
          "resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
