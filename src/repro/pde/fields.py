"""Field bundle: named tensors plus memoized derivatives.

PINN residuals need many partial derivatives of the same network outputs with
respect to the same coordinates (eq. 3).  :class:`Fields` computes the
gradient of a field with respect to *all* registered coordinates in a single
reverse pass and caches every component, so e.g. requesting ``d("u", "x")``
and then ``d("u", "y")`` costs one backward sweep, not two.
"""

from __future__ import annotations

from ..autodiff import Tensor, concat, gradients

__all__ = ["Fields"]


class Fields:
    """Named tensor registry with cached first/second derivatives.

    Typical use::

        fields = Fields.from_features(features, spatial_names=("x", "y"))
        out = net(fields.input_tensor())
        fields.register("u", out[:, 0:1])
        du_dx = fields.d("u", "x")
        d2u_dx2 = fields.d2("u", "x", "x")
    """

    def __init__(self):
        self._coords = {}
        self._values = {}
        self._grad_cache = {}
        self._input = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_features(cls, features, spatial_names=("x", "y"), param_names=()):
        """Build coordinate leaf tensors from an ``(n, d+p)`` feature matrix.

        Spatial columns become differentiable leaves; parameter columns are
        also differentiable (parameterized PINNs may need ∂/∂param terms).
        """
        fields = cls()
        names = tuple(spatial_names) + tuple(param_names)
        if features.shape[1] != len(names):
            raise ValueError(f"feature matrix has {features.shape[1]} columns "
                             f"but {len(names)} names were given")
        for i, name in enumerate(names):
            column = Tensor(features[:, i:i + 1].copy(), requires_grad=True,
                            name=name)
            fields._coords[name] = column
            fields._values[name] = column
        return fields

    def input_tensor(self):
        """Concatenate coordinate columns into the network input tensor."""
        if self._input is None:
            self._input = concat(list(self._coords.values()), axis=1)
        return self._input

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    @property
    def coord_names(self):
        """Registered coordinate names in column order."""
        return tuple(self._coords)

    def register(self, name, tensor):
        """Register a named field (e.g. a network output column)."""
        self._values[name] = tensor

    def __contains__(self, name):
        return name in self._values

    def get(self, name):
        """Look up a field tensor by name."""
        if name not in self._values:
            raise KeyError(f"unknown field {name!r}; "
                           f"have {sorted(self._values)}")
        return self._values[name]

    # ------------------------------------------------------------------
    # Derivatives
    # ------------------------------------------------------------------
    def d(self, field_name, coord_name):
        """First derivative ``∂ field / ∂ coord`` (cached)."""
        key = (field_name, coord_name)
        if key not in self._grad_cache:
            field = self.get(field_name)
            coords = list(self._coords.values())
            grads = gradients(field.sum(), coords)
            for cname, grad in zip(self._coords, grads):
                self._grad_cache[(field_name, cname)] = grad
        return self._grad_cache[key]

    def d2(self, field_name, coord_a, coord_b):
        """Second derivative ``∂² field / ∂ coord_a ∂ coord_b`` (cached).

        Implemented as the derivative of the cached first derivative, so the
        backward-of-backward graph is shared across calls.
        """
        first = self.d(field_name, coord_a)
        derived_name = f"d({field_name})/d({coord_a})"
        if derived_name not in self._values:
            self._values[derived_name] = first
        return self.d(derived_name, coord_b)

    def laplacian(self, field_name):
        """Sum of unmixed second derivatives over all spatial coordinates
        registered as ``x``/``y``/``z``."""
        spatial = [n for n in self._coords if n in ("x", "y", "z")]
        total = None
        for name in spatial:
            term = self.d2(field_name, name, name)
            total = term if total is None else total + term
        return total
