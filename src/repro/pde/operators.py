"""Differential-operator conveniences over :class:`Fields` bundles.

Thin wrappers for the vector-calculus quantities the CFD problems keep
recomputing: divergence, vorticity, strain-rate invariant, and gradient
magnitude.  Each returns an ``(n, 1)`` tensor and reuses the bundle's
derivative cache.
"""

from __future__ import annotations

from .. import autodiff as ad

__all__ = ["divergence", "vorticity_2d", "strain_rate_invariant",
           "gradient_magnitude"]


def divergence(fields, components=("u", "v"), coords=("x", "y")):
    """``sum_i d(components[i]) / d(coords[i])``."""
    if len(components) != len(coords):
        raise ValueError("components and coords must pair up")
    total = None
    for comp, coord in zip(components, coords):
        term = fields.d(comp, coord)
        total = term if total is None else total + term
    return total


def vorticity_2d(fields, u="u", v="v"):
    """Scalar vorticity ``dv/dx - du/dy``."""
    return fields.d(v, "x") - fields.d(u, "y")


def strain_rate_invariant(fields, u="u", v="v"):
    """``G = 2 u_x^2 + 2 v_y^2 + (u_y + v_x)^2`` (zero-equation closure)."""
    u_x = fields.d(u, "x")
    v_y = fields.d(v, "y")
    shear = fields.d(u, "y") + fields.d(v, "x")
    return 2.0 * u_x * u_x + 2.0 * v_y * v_y + shear * shear


def gradient_magnitude(fields, name, coords=("x", "y"), eps=1e-12):
    """``||grad name||_2`` — the measure Modulus' MIS importance uses."""
    total = None
    for coord in coords:
        term = fields.d(name, coord)
        sq = term * term
        total = sq if total is None else total + sq
    return ad.sqrt(total + eps)
