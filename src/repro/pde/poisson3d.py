"""Poisson equation in three dimensions (coordinates named x, y, z)."""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from .base import PDE

__all__ = ["Poisson3D"]


class Poisson3D(PDE):
    """``laplace(u) = f(x, y, z)`` on a 3-D domain."""

    output_names = ("u",)

    def __init__(self, source=None):
        self.source = source

    def residual_names(self):
        return ("poisson",)

    def residuals(self, fields):
        lap = fields.laplacian("u")
        if self.source is None:
            return {"poisson": lap}
        x = fields.get("x").numpy()
        y = fields.get("y").numpy()
        z = fields.get("z").numpy()
        f = Tensor(np.asarray(self.source(x, y, z)).reshape(-1, 1))
        return {"poisson": lap - f}

    def replay_arrays(self, columns):
        if self.source is None:
            return ()
        return (np.asarray(self.source(columns["x"], columns["y"],
                                       columns["z"])).reshape(-1, 1),)
