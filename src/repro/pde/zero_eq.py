"""Zero-equation (mixing-length) turbulence closure, after Modulus'
``ZeroEquation``: the LDC benchmark in the paper adds this to laminar NS.

    l_m  = min(0.419 * d_wall, 0.09 * d_max)
    G    = 2 u_x^2 + 2 v_y^2 + (u_y + v_x)^2
    nu_t = rho * l_m^2 * sqrt(G)

``d_wall`` is the normal distance to the nearest wall; the geometry's signed
distance function provides it for interior points, exactly as Modulus reuses
its SDF.  The per-point distance is supplied through the field bundle as the
constant field ``"sdf"``.
"""

from __future__ import annotations

from .. import autodiff as ad

__all__ = ["ZeroEquationTurbulence"]


class ZeroEquationTurbulence:
    """Prandtl mixing-length eddy-viscosity model.

    Parameters
    ----------
    max_distance:
        ``d_max``, the maximum wall distance in the geometry (for the LDC
        cavity of side L this is L/2).
    rho:
        Fluid density.
    kappa:
        von Karman-like constant (Modulus uses 0.419).
    cap:
        Outer-layer constant (Modulus uses 0.09).
    """

    def __init__(self, max_distance, rho=1.0, kappa=0.419, cap=0.09):
        self.max_distance = float(max_distance)
        self.rho = float(rho)
        self.kappa = float(kappa)
        self.cap = float(cap)

    def mixing_length(self, wall_distance):
        """``min(kappa d, cap d_max)`` as a tensor."""
        return ad.minimum(self.kappa * wall_distance,
                          self.cap * self.max_distance)

    def nu_t(self, fields):
        """Turbulent viscosity tensor for the current batch."""
        if "sdf" not in fields:
            raise KeyError("zero-equation closure needs the 'sdf' field "
                           "(wall distance) registered on the batch")
        u_x = fields.d("u", "x")
        u_y = fields.d("u", "y")
        v_x = fields.d("v", "x")
        v_y = fields.d("v", "y")
        g = (2.0 * u_x * u_x + 2.0 * v_y * v_y +
             (u_y + v_x) * (u_y + v_x))
        l_m = self.mixing_length(fields.get("sdf"))
        # sqrt guarded away from zero: d sqrt/dG is unbounded at G=0
        return self.rho * l_m * l_m * ad.sqrt(g + 1e-12)
