"""PDE residual definitions built on the autodiff engine."""

from .fields import Fields
from .base import PDE
from .navier_stokes import NavierStokes2D, NavierStokes3D
from .zero_eq import ZeroEquationTurbulence
from .poisson import Poisson2D
from .poisson3d import Poisson3D
from .burgers import Burgers1D, burgers_travelling_wave
from .inverse import TrainableCoefficient
from .advection_diffusion import AdvectionDiffusion2D
from .operators import (divergence, vorticity_2d, strain_rate_invariant,
                        gradient_magnitude)

__all__ = [
    "Fields", "PDE", "NavierStokes2D", "NavierStokes3D",
    "ZeroEquationTurbulence",
    "Poisson2D", "Poisson3D", "Burgers1D", "burgers_travelling_wave",
    "TrainableCoefficient", "AdvectionDiffusion2D",
    "divergence", "vorticity_2d", "strain_rate_invariant",
    "gradient_magnitude",
]
