"""Steady advection-diffusion of a scalar in a prescribed/learned flow."""

from __future__ import annotations

from .base import PDE

__all__ = ["AdvectionDiffusion2D"]


class AdvectionDiffusion2D(PDE):
    """``u T_x + v T_y - alpha * laplace(T) = 0``.

    The advecting velocity ``(u, v)`` may be network outputs (conjugate
    heat-transfer style) or constant fields registered on the batch.
    """

    output_names = ("T",)

    def __init__(self, alpha):
        self.alpha = float(alpha)

    def residual_names(self):
        return ("advection_diffusion",)

    def residuals(self, fields):
        t_x = fields.d("T", "x")
        t_y = fields.d("T", "y")
        lap = fields.laplacian("T")
        u = fields.get("u")
        v = fields.get("v")
        return {"advection_diffusion": u * t_x + v * t_y - self.alpha * lap}
