"""Poisson equation residual — the quickstart and unit-test workhorse."""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from .base import PDE

__all__ = ["Poisson2D"]


class Poisson2D(PDE):
    """``laplace(u) = f(x, y)`` on a 2-D domain.

    Parameters
    ----------
    source:
        Callable ``(x_array, y_array) -> array`` giving the right-hand side
        ``f``; defaults to zero (Laplace equation).
    """

    output_names = ("u",)

    def __init__(self, source=None):
        self.source = source

    def residual_names(self):
        return ("poisson",)

    def residuals(self, fields):
        lap = fields.laplacian("u")
        if self.source is None:
            return {"poisson": lap}
        x = fields.get("x").numpy()
        y = fields.get("y").numpy()
        f = Tensor(np.asarray(self.source(x, y)).reshape(-1, 1))
        return {"poisson": lap - f}

    def replay_arrays(self, columns):
        if self.source is None:
            return ()
        return (np.asarray(self.source(columns["x"],
                                       columns["y"])).reshape(-1, 1),)
