"""Steady incompressible Navier-Stokes residuals in two and three dimensions.

Velocity-pressure form with optional spatially varying effective viscosity
(molecular + turbulent from a closure such as
:class:`repro.pde.zero_eq.ZeroEquationTurbulence`):

    continuity:  u_x + v_y = 0
    momentum_x:  u u_x + v u_y + p_x / rho - div(nu_eff grad u) = 0
    momentum_y:  u v_x + v v_y + p_y / rho - div(nu_eff grad v) = 0

With ``full_diffusion=True`` the divergence of the viscous flux is formed by
differentiating ``nu_eff * grad`` through the autodiff graph (third-order
terms when the closure depends on velocity gradients — faithful to Modulus).
``full_diffusion=False`` freezes ``nu_eff`` inside the diffusion operator
(``nu_eff * laplace``), a common PINN simplification that is ~2x faster; the
reproduction presets use the faithful form for correctness tests and the
frozen form inside the large training sweeps.

:class:`NavierStokes3D` extends the same form with a third velocity output
``w`` over coordinates ``(x, y, z)`` — the 3-D workload the trainer's
dimension-agnostic probes exercise end-to-end.  Optional per-momentum body
forces (manufactured-solution forcing) are read from constant fields named
``f_u`` / ``f_v`` / ``f_w`` when present, matching the
``Constraint.field_sources`` mechanism.
"""

from __future__ import annotations

from ..autodiff import gradients
from .base import PDE

__all__ = ["NavierStokes2D", "NavierStokes3D"]


class NavierStokes2D(PDE):
    """Steady incompressible 2-D Navier-Stokes (optionally turbulent)."""

    output_names = ("u", "v", "p")

    def __init__(self, nu, rho=1.0, turbulence=None, full_diffusion=True):
        # nu may be a float or a trainable coefficient (inverse problems)
        self.nu = nu if hasattr(nu, "tensor") else float(nu)
        self.rho = float(rho)
        self.turbulence = turbulence
        self.full_diffusion = bool(full_diffusion)

    def residual_names(self):
        return ("continuity", "momentum_x", "momentum_y")

    def _molecular_nu(self):
        """Viscosity as a scalar or (for inverse problems) a graph tensor."""
        return self.nu.tensor() if hasattr(self.nu, "tensor") else self.nu

    def effective_viscosity(self, fields):
        """Molecular viscosity plus the closure's turbulent viscosity."""
        if self.turbulence is None:
            return None  # constant nu — handled scalar-wise
        return self.turbulence.nu_t(fields) + self._molecular_nu()

    def _diffusion(self, fields, velocity_name, nu_eff):
        """- div(nu_eff grad w) for w in {u, v}."""
        w_x = fields.d(velocity_name, "x")
        w_y = fields.d(velocity_name, "y")
        if nu_eff is None:
            # constant (possibly trainable) molecular viscosity
            lap = (fields.d2(velocity_name, "x", "x") +
                   fields.d2(velocity_name, "y", "y"))
            return -(self._molecular_nu() * lap)
        if not self.full_diffusion:
            lap = (fields.d2(velocity_name, "x", "x") +
                   fields.d2(velocity_name, "y", "y"))
            return -(nu_eff.detach() * lap)
        flux_x = nu_eff * w_x
        flux_y = nu_eff * w_y
        coords = [fields.get("x"), fields.get("y")]
        dfx = gradients(flux_x.sum(), coords)[0]
        dfy = gradients(flux_y.sum(), coords)[1]
        return -(dfx + dfy)

    def residuals(self, fields):
        u, v = fields.get("u"), fields.get("v")
        u_x, u_y = fields.d("u", "x"), fields.d("u", "y")
        v_x, v_y = fields.d("v", "x"), fields.d("v", "y")
        p_x, p_y = fields.d("p", "x"), fields.d("p", "y")
        nu_eff = self.effective_viscosity(fields)
        return {
            "continuity": u_x + v_y,
            "momentum_x": (u * u_x + v * u_y + p_x / self.rho +
                           self._diffusion(fields, "u", nu_eff)),
            "momentum_y": (u * v_x + v * v_y + p_y / self.rho +
                           self._diffusion(fields, "v", nu_eff)),
        }


class NavierStokes3D(PDE):
    """Steady incompressible 3-D Navier-Stokes with constant viscosity.

    Outputs ``(u, v, w, p)`` over coordinates ``(x, y, z)``:

        continuity:  u_x + v_y + w_z = 0
        momentum_i:  (U . grad) U_i + p_i / rho - nu lap(U_i) - f_i = 0

    ``nu`` may be a float or a :class:`~repro.pde.TrainableCoefficient`
    (inverse problems).  Body forces ``f_i`` default to zero; when the
    constraint registers constant fields ``f_u`` / ``f_v`` / ``f_w`` (via
    ``Constraint.field_sources``) they are subtracted from the matching
    momentum residual — how the manufactured Beltrami workload turns an
    exact Euler solution into an exact forced Navier-Stokes solution.
    """

    output_names = ("u", "v", "w", "p")

    #: constant-field names read as body forces when registered
    FORCING_FIELDS = {"momentum_x": "f_u", "momentum_y": "f_v",
                      "momentum_z": "f_w"}

    def __init__(self, nu, rho=1.0):
        self.nu = nu if hasattr(nu, "tensor") else float(nu)
        self.rho = float(rho)

    def residual_names(self):
        return ("continuity", "momentum_x", "momentum_y", "momentum_z")

    def _molecular_nu(self):
        """Viscosity as a scalar or (for inverse problems) a graph tensor."""
        return self.nu.tensor() if hasattr(self.nu, "tensor") else self.nu

    def _momentum(self, fields, var, pressure_coord):
        u, v, w = fields.get("u"), fields.get("v"), fields.get("w")
        convection = (u * fields.d(var, "x") + v * fields.d(var, "y") +
                      w * fields.d(var, "z"))
        lap = (fields.d2(var, "x", "x") + fields.d2(var, "y", "y") +
               fields.d2(var, "z", "z"))
        return (convection + fields.d("p", pressure_coord) / self.rho -
                self._molecular_nu() * lap)

    def residuals(self, fields):
        out = {
            "continuity": (fields.d("u", "x") + fields.d("v", "y") +
                           fields.d("w", "z")),
            "momentum_x": self._momentum(fields, "u", "x"),
            "momentum_y": self._momentum(fields, "v", "y"),
            "momentum_z": self._momentum(fields, "w", "z"),
        }
        for name, force in self.FORCING_FIELDS.items():
            if force in fields:
                out[name] = out[name] - fields.get(force)
        return out
