"""Steady incompressible Navier-Stokes residuals in two dimensions.

Velocity-pressure form with optional spatially varying effective viscosity
(molecular + turbulent from a closure such as
:class:`repro.pde.zero_eq.ZeroEquationTurbulence`):

    continuity:  u_x + v_y = 0
    momentum_x:  u u_x + v u_y + p_x / rho - div(nu_eff grad u) = 0
    momentum_y:  u v_x + v v_y + p_y / rho - div(nu_eff grad v) = 0

With ``full_diffusion=True`` the divergence of the viscous flux is formed by
differentiating ``nu_eff * grad`` through the autodiff graph (third-order
terms when the closure depends on velocity gradients — faithful to Modulus).
``full_diffusion=False`` freezes ``nu_eff`` inside the diffusion operator
(``nu_eff * laplace``), a common PINN simplification that is ~2x faster; the
reproduction presets use the faithful form for correctness tests and the
frozen form inside the large training sweeps.
"""

from __future__ import annotations

from ..autodiff import gradients
from .base import PDE

__all__ = ["NavierStokes2D"]


class NavierStokes2D(PDE):
    """Steady incompressible 2-D Navier-Stokes (optionally turbulent)."""

    output_names = ("u", "v", "p")

    def __init__(self, nu, rho=1.0, turbulence=None, full_diffusion=True):
        # nu may be a float or a trainable coefficient (inverse problems)
        self.nu = nu if hasattr(nu, "tensor") else float(nu)
        self.rho = float(rho)
        self.turbulence = turbulence
        self.full_diffusion = bool(full_diffusion)

    def residual_names(self):
        return ("continuity", "momentum_x", "momentum_y")

    def _molecular_nu(self):
        """Viscosity as a scalar or (for inverse problems) a graph tensor."""
        return self.nu.tensor() if hasattr(self.nu, "tensor") else self.nu

    def effective_viscosity(self, fields):
        """Molecular viscosity plus the closure's turbulent viscosity."""
        if self.turbulence is None:
            return None  # constant nu — handled scalar-wise
        return self.turbulence.nu_t(fields) + self._molecular_nu()

    def _diffusion(self, fields, velocity_name, nu_eff):
        """- div(nu_eff grad w) for w in {u, v}."""
        w_x = fields.d(velocity_name, "x")
        w_y = fields.d(velocity_name, "y")
        if nu_eff is None:
            # constant (possibly trainable) molecular viscosity
            lap = (fields.d2(velocity_name, "x", "x") +
                   fields.d2(velocity_name, "y", "y"))
            return -(self._molecular_nu() * lap)
        if not self.full_diffusion:
            lap = (fields.d2(velocity_name, "x", "x") +
                   fields.d2(velocity_name, "y", "y"))
            return -(nu_eff.detach() * lap)
        flux_x = nu_eff * w_x
        flux_y = nu_eff * w_y
        coords = [fields.get("x"), fields.get("y")]
        dfx = gradients(flux_x.sum(), coords)[0]
        dfy = gradients(flux_y.sum(), coords)[1]
        return -(dfx + dfy)

    def residuals(self, fields):
        u, v = fields.get("u"), fields.get("v")
        u_x, u_y = fields.d("u", "x"), fields.d("u", "y")
        v_x, v_y = fields.d("v", "x"), fields.d("v", "y")
        p_x, p_y = fields.d("p", "x"), fields.d("p", "y")
        nu_eff = self.effective_viscosity(fields)
        return {
            "continuity": u_x + v_y,
            "momentum_x": (u * u_x + v * u_y + p_x / self.rho +
                           self._diffusion(fields, "u", nu_eff)),
            "momentum_y": (u * v_x + v * v_y + p_y / self.rho +
                           self._diffusion(fields, "v", nu_eff)),
        }
