"""PDE interface: map a field bundle to named residual tensors (eq. 3)."""

from __future__ import annotations

__all__ = ["PDE"]


class PDE:
    """Base class for PDE residual definitions.

    Subclasses implement :meth:`residuals`, returning a ``dict`` mapping
    residual names to ``(n, 1)`` tensors that should be driven to zero.
    The trainer squares, weights, and averages them into the loss (eq. 4).
    """

    #: Names of the network output fields this PDE consumes.
    output_names = ()

    def residuals(self, fields):
        """Compute named residual tensors from a :class:`Fields` bundle."""
        raise NotImplementedError

    def residual_names(self):
        """Names of the residuals produced (defaults to one evaluation)."""
        raise NotImplementedError

    def replay_arrays(self, columns):
        """Per-batch constant arrays :meth:`residuals` wraps as tensors.

        ``columns`` maps coordinate names to the batch's ``(n, 1)`` feature
        columns.  PDEs that materialize batch-dependent constants inside
        :meth:`residuals` (e.g. an evaluated source term) override this to
        rebuild the same arrays, in creation order, so the replay engine can
        feed a compiled tape without re-running the graph code.
        """
        return ()
