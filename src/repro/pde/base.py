"""PDE interface: map a field bundle to named residual tensors (eq. 3)."""

from __future__ import annotations

__all__ = ["PDE"]


class PDE:
    """Base class for PDE residual definitions.

    Subclasses implement :meth:`residuals`, returning a ``dict`` mapping
    residual names to ``(n, 1)`` tensors that should be driven to zero.
    The trainer squares, weights, and averages them into the loss (eq. 4).
    """

    #: Names of the network output fields this PDE consumes.
    output_names = ()

    def residuals(self, fields):
        """Compute named residual tensors from a :class:`Fields` bundle."""
        raise NotImplementedError

    def residual_names(self):
        """Names of the residuals produced (defaults to one evaluation)."""
        raise NotImplementedError
