"""Viscous Burgers equation in one space + one time dimension.

The classic PINN benchmark with a self-sharpening front — an ideal showcase
for importance sampling, since most of the residual mass concentrates on the
moving shock.  Coordinates are named ``("x", "t")``.

An exact travelling-wave solution is provided for validation:

    u(x, t) = c - a * tanh(a (x - c t) / (2 nu))

solves ``u_t + u u_x = nu u_xx`` for any amplitude ``a`` and speed ``c``.
"""

from __future__ import annotations

import numpy as np

from .base import PDE

__all__ = ["Burgers1D", "burgers_travelling_wave"]


def burgers_travelling_wave(x, t, nu, amplitude=0.5, speed=0.5):
    """Exact travelling-wave solution of viscous Burgers."""
    xi = (np.asarray(x) - speed * np.asarray(t)) * amplitude / (2.0 * nu)
    return speed - amplitude * np.tanh(xi)


class Burgers1D(PDE):
    """``u_t + u u_x - nu u_xx = 0`` over coordinates ``(x, t)``."""

    output_names = ("u",)

    def __init__(self, nu):
        self.nu = nu if hasattr(nu, "tensor") else float(nu)

    def residual_names(self):
        return ("burgers",)

    def _molecular_nu(self):
        return self.nu.tensor() if hasattr(self.nu, "tensor") else self.nu

    def residuals(self, fields):
        u = fields.get("u")
        u_t = fields.d("u", "t")
        u_x = fields.d("u", "x")
        u_xx = fields.d2("u", "x", "x")
        return {"burgers": u_t + u * u_x - self._molecular_nu() * u_xx}
