"""Inverse-problem support: trainable PDE coefficients.

The paper's introduction motivates PINNs partly through "inverse or data
assimilation problems" — recovering unknown physical coefficients from
measurements.  :class:`TrainableCoefficient` is a scalar PDE parameter that
participates in the autodiff graph; pass it wherever a PDE accepts a
coefficient (e.g. ``NavierStokes2D(nu=coeff)``) and hand
``coeff.parameters()`` to the trainer alongside the network weights.
"""

from __future__ import annotations

import numpy as np

from .. import autodiff as ad
from ..nn import Module, Parameter

__all__ = ["TrainableCoefficient"]


class TrainableCoefficient(Module):
    """A scalar coefficient learned jointly with the network.

    Parameters
    ----------
    initial:
        Starting value.
    positive:
        Constrain the coefficient to stay positive through a softplus
        reparameterization (viscosities, diffusivities, densities).
    name:
        Label for diagnostics.
    dtype:
        Parameter dtype.  Pass the network's working precision so the
        coefficient does not upcast a float32 loss graph to float64.
    """

    def __init__(self, initial, positive=True, name="coefficient",
                 dtype=np.float64):
        initial = float(initial)
        self.positive = bool(positive)
        self.coeff_name = name
        if self.positive:
            if initial <= 0:
                raise ValueError("positive coefficient needs initial > 0")
            # softplus^{-1}(x) = log(expm1(x))
            raw = np.log(np.expm1(initial))
        else:
            raw = initial
        self.raw = Parameter(np.array([[raw]], dtype=dtype), name=name)

    def tensor(self):
        """The coefficient as a (1, 1) tensor in the autodiff graph."""
        if self.positive:
            return ad.softplus(self.raw)
        return self.raw * 1.0

    def value(self):
        """Current float value."""
        return float(self.tensor().item())

    # PDE code multiplies/divides by the coefficient directly:
    def __mul__(self, other):
        return self.tensor() * other

    def __rmul__(self, other):
        return other * self.tensor()

    def __truediv__(self, other):
        return self.tensor() / other

    def __rtruediv__(self, other):
        return other / self.tensor()
