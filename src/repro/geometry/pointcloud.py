"""Point-cloud container shared by geometry sampling, training, and graphs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PointCloud"]


@dataclass
class PointCloud:
    """A batch of sampled points with optional per-point attributes.

    Attributes
    ----------
    coords:
        ``(n, d)`` spatial coordinates.
    params:
        ``(n, p)`` geometry-parameter values for parameterized problems
        (empty ``(n, 0)`` array when the problem has no parameters).
    normals:
        ``(n, d)`` outward unit normals (boundary clouds only, else ``None``).
    sdf:
        ``(n, 1)`` signed distance to the wall, positive inside (interior
        clouds only; the zero-equation turbulence model consumes this).
    weights:
        ``(n, 1)`` quadrature weights (geometry measure / n) so that loss
        terms approximate the integrals in eq. 4.
    param_names:
        Names of the parameter columns, in order.
    """

    coords: np.ndarray
    params: np.ndarray | None = None
    normals: np.ndarray | None = None
    sdf: np.ndarray | None = None
    weights: np.ndarray | None = None
    param_names: tuple = field(default_factory=tuple)

    def __post_init__(self):
        self.coords = np.atleast_2d(np.asarray(self.coords, dtype=np.float64))
        if self.params is None:
            self.params = np.zeros((len(self.coords), 0))
        self.params = np.asarray(self.params, dtype=np.float64)
        if self.params.ndim == 1:
            self.params = self.params.reshape(-1, 1)
        for name in ("normals", "sdf", "weights"):
            value = getattr(self, name)
            if value is not None:
                value = np.asarray(value, dtype=np.float64)
                if value.ndim == 1:
                    value = value.reshape(-1, 1)
                setattr(self, name, value)
        self.param_names = tuple(self.param_names)

    def __len__(self):
        return len(self.coords)

    @property
    def dim(self):
        """Spatial dimensionality."""
        return self.coords.shape[1]

    def features(self):
        """``(n, d + p)`` network-input features: coordinates then parameters."""
        if self.params.shape[1]:
            return np.concatenate([self.coords, self.params], axis=1)
        return self.coords

    def subset(self, index):
        """Return a new cloud containing rows selected by ``index``."""
        def take(value):
            return None if value is None else value[index]

        return PointCloud(coords=self.coords[index], params=take(self.params),
                          normals=take(self.normals), sdf=take(self.sdf),
                          weights=take(self.weights), param_names=self.param_names)

    def filter(self, predicate):
        """Keep rows where ``predicate(coords) -> bool array`` holds."""
        mask = np.asarray(predicate(self.coords), dtype=bool)
        return self.subset(mask)

    @staticmethod
    def concatenate(clouds):
        """Stack clouds; optional fields must be consistently present."""
        clouds = list(clouds)
        if not clouds:
            raise ValueError("cannot concatenate zero clouds")
        names = clouds[0].param_names
        if any(c.param_names != names for c in clouds):
            raise ValueError("parameter columns differ between clouds")

        def cat(getter):
            values = [getter(c) for c in clouds]
            if all(v is None for v in values):
                return None
            if any(v is None for v in values):
                raise ValueError("optional field present in only some clouds")
            return np.concatenate(values, axis=0)

        return PointCloud(
            coords=np.concatenate([c.coords for c in clouds], axis=0),
            params=cat(lambda c: c.params),
            normals=cat(lambda c: c.normals),
            sdf=cat(lambda c: c.sdf),
            weights=cat(lambda c: c.weights),
            param_names=names)
