"""2-D constructive geometry with SDFs, sampling, and parameterization."""

from .pointcloud import PointCloud
from .base import Geometry
from .primitives import Rectangle, Channel2D, Circle, Annulus, Line2D
from .primitives3d import Box, Sphere
from .csg import Union, Intersection, Difference
from .parameterization import ParamSpace, ParameterizedGeometry

__all__ = [
    "PointCloud", "Geometry",
    "Rectangle", "Channel2D", "Circle", "Annulus", "Line2D",
    "Box", "Sphere",
    "Union", "Intersection", "Difference",
    "ParamSpace", "ParameterizedGeometry",
]
