"""Constructive solid geometry on signed distance functions.

SDF combinations use the standard min/max rules (positive-inside convention):
union = max, intersection = min, difference = min(a, -b).  The combined SDF is
a lower bound on the true distance, which is the same approximation Modulus
makes — sufficient for rejection sampling and wall-distance estimates.

Boundary sampling draws candidates from the children's boundaries and keeps
those that lie on the boundary of the combined solid, rescaling quadrature
weights by the acceptance ratio so the total measure stays consistent.
"""

from __future__ import annotations

import numpy as np

from .base import Geometry
from .pointcloud import PointCloud

__all__ = ["Union", "Intersection", "Difference"]

_EPS = 1e-9


class _Binary(Geometry):
    """Shared machinery for binary CSG nodes."""

    def __init__(self, a, b):
        self.a = a
        self.b = b

    @property
    def bounds(self):
        a_lo, a_hi = self.a.bounds
        b_lo, b_hi = self.b.bounds
        return (tuple(np.minimum(a_lo, b_lo)), tuple(np.maximum(a_hi, b_hi)))

    def _keep_on_boundary(self, which, points):
        """Mask of candidate points (from child ``which``) that remain on the
        boundary of the combined geometry."""
        raise NotImplementedError

    def sample_boundary(self, n, rng=None, max_rounds=200):
        rng = rng if rng is not None else np.random.default_rng()
        children = (self.a, self.b)
        collected = {0: [], 1: []}
        drawn = {0: 0, 1: 0}
        kept = {0: 0, 1: 0}
        lengths = [getattr(c, "boundary_length", 1.0) for c in children]
        total_length = sum(lengths)
        targets = [int(round(n * lengths[0] / total_length))]
        targets.append(n - targets[0])
        for which in (0, 1):
            target = targets[which]
            remaining = target
            for _ in range(max_rounds):
                if remaining <= 0:
                    break
                batch = max(int(remaining * 2), 64)
                cloud = children[which].sample_boundary(batch, rng)
                mask = self._keep_on_boundary(which, cloud.coords)
                drawn[which] += batch
                kept[which] += int(mask.sum())
                if mask.any():
                    collected[which].append(cloud.subset(mask))
                    remaining = target - sum(len(c) for c in collected[which])
            if remaining > 0 and kept[which] == 0 and target > 0:
                # this child contributes nothing to the combined boundary
                targets[1 - which] += remaining
        # trim each child to its own target so over-collection by one child
        # never crowds out the other's boundary contribution
        clouds = []
        for which in (0, 1):
            if not collected[which]:
                continue
            merged = PointCloud.concatenate(collected[which])
            if len(merged) > targets[which]:
                merged = merged.subset(slice(0, targets[which]))
            clouds.append(merged)
        if not clouds:
            raise RuntimeError("CSG boundary sampling produced no points")
        cloud = PointCloud.concatenate(clouds)
        if len(cloud) > n:
            cloud = cloud.subset(slice(0, n))
        # effective perimeter of each child = child length * acceptance rate
        effective = sum(lengths[w] * (kept[w] / drawn[w])
                        for w in (0, 1) if drawn[w])
        cloud.weights = np.full((len(cloud), 1), effective / len(cloud))
        return cloud


class Union(_Binary):
    """Points inside either geometry."""

    def sdf(self, points):
        return np.maximum(self.a.sdf(points), self.b.sdf(points))

    def _keep_on_boundary(self, which, points):
        other = self.b if which == 0 else self.a
        return other.sdf(points) <= _EPS


class Intersection(_Binary):
    """Points inside both geometries."""

    def sdf(self, points):
        return np.minimum(self.a.sdf(points), self.b.sdf(points))

    def _keep_on_boundary(self, which, points):
        other = self.b if which == 0 else self.a
        return other.sdf(points) >= -_EPS


class Difference(_Binary):
    """Points inside ``a`` but not ``b``."""

    def sdf(self, points):
        return np.minimum(self.a.sdf(points), -self.b.sdf(points))

    def _keep_on_boundary(self, which, points):
        if which == 0:
            return self.b.sdf(points) <= _EPS
        return self.a.sdf(points) >= -_EPS
