"""2-D geometric primitives: rectangle, channel, circle, annulus, line."""

from __future__ import annotations

import numpy as np

from .base import Geometry
from .pointcloud import PointCloud

__all__ = ["Rectangle", "Channel2D", "Circle", "Annulus", "Line2D"]


class Rectangle(Geometry):
    """Axis-aligned rectangle with all four sides as boundary."""

    def __init__(self, corner_min, corner_max):
        self.lo = np.asarray(corner_min, dtype=np.float64)
        self.hi = np.asarray(corner_max, dtype=np.float64)
        if np.any(self.hi <= self.lo):
            raise ValueError("corner_max must exceed corner_min componentwise")

    @property
    def bounds(self):
        return tuple(self.lo), tuple(self.hi)

    @property
    def area(self):
        """Exact area."""
        return float(np.prod(self.hi - self.lo))

    @property
    def boundary_length(self):
        """Exact perimeter."""
        w, h = self.hi - self.lo
        return 2.0 * float(w + h)

    def sdf(self, points):
        points = np.atleast_2d(points)
        # distance to box: negative of the standard outside-positive box SDF
        center = 0.5 * (self.lo + self.hi)
        half = 0.5 * (self.hi - self.lo)
        q = np.abs(points - center) - half
        outside = np.linalg.norm(np.maximum(q, 0.0), axis=1)
        inside = np.minimum(np.max(q, axis=1), 0.0)
        return -(outside + inside)

    def sample_boundary(self, n, rng=None):
        rng = rng if rng is not None else np.random.default_rng()
        w, h = self.hi - self.lo
        perimeter = 2.0 * (w + h)
        t = rng.uniform(0.0, perimeter, size=n)
        coords = np.empty((n, 2))
        normals = np.empty((n, 2))
        # walk the perimeter counter-clockwise: bottom, right, top, left
        edges = np.array([w, h, w, h])
        starts = np.concatenate([[0.0], np.cumsum(edges)[:-1]])
        side = np.searchsorted(np.cumsum(edges), t, side="right")
        local = t - starts[side]
        for s, (axis_coords, normal) in enumerate([
                (lambda u: np.stack([self.lo[0] + u, np.full_like(u, self.lo[1])], 1), [0.0, -1.0]),
                (lambda u: np.stack([np.full_like(u, self.hi[0]), self.lo[1] + u], 1), [1.0, 0.0]),
                (lambda u: np.stack([self.hi[0] - u, np.full_like(u, self.hi[1])], 1), [0.0, 1.0]),
                (lambda u: np.stack([np.full_like(u, self.lo[0]), self.hi[1] - u], 1), [-1.0, 0.0])]):
            mask = side == s
            coords[mask] = axis_coords(local[mask])
            normals[mask] = normal
        weights = np.full((n, 1), perimeter / n)
        return PointCloud(coords=coords, normals=normals, weights=weights)


class Channel2D(Rectangle):
    """Rectangle whose only walls are the top and bottom sides.

    Matches Modulus' ``Channel2D``: the open ends do not contribute to the
    boundary, and the SDF measures distance to the walls only (so the
    zero-equation wall distance ignores the inlet/outlet planes).
    """

    @property
    def boundary_length(self):
        w, _ = self.hi - self.lo
        return 2.0 * float(w)

    def sdf(self, points):
        points = np.atleast_2d(points)
        below = points[:, 1] - self.lo[1]
        above = self.hi[1] - points[:, 1]
        return np.minimum(below, above)

    def sample_boundary(self, n, rng=None):
        rng = rng if rng is not None else np.random.default_rng()
        xs = rng.uniform(self.lo[0], self.hi[0], size=n)
        top = rng.random(n) < 0.5
        ys = np.where(top, self.hi[1], self.lo[1])
        normals = np.stack([np.zeros(n), np.where(top, 1.0, -1.0)], axis=1)
        coords = np.stack([xs, ys], axis=1)
        weights = np.full((n, 1), self.boundary_length / n)
        return PointCloud(coords=coords, normals=normals, weights=weights)


class Circle(Geometry):
    """Disk of given center and radius (boundary = full circle)."""

    def __init__(self, center, radius):
        self.center = np.asarray(center, dtype=np.float64)
        self.radius = float(radius)
        if self.radius <= 0:
            raise ValueError("radius must be positive")

    @property
    def bounds(self):
        r = self.radius
        return tuple(self.center - r), tuple(self.center + r)

    @property
    def area(self):
        """Exact area."""
        return float(np.pi * self.radius ** 2)

    @property
    def boundary_length(self):
        """Exact circumference."""
        return float(2.0 * np.pi * self.radius)

    def sdf(self, points):
        points = np.atleast_2d(points)
        return self.radius - np.linalg.norm(points - self.center, axis=1)

    def sample_boundary(self, n, rng=None):
        rng = rng if rng is not None else np.random.default_rng()
        theta = rng.uniform(0.0, 2.0 * np.pi, size=n)
        normals = np.stack([np.cos(theta), np.sin(theta)], axis=1)
        coords = self.center + self.radius * normals
        weights = np.full((n, 1), self.boundary_length / n)
        return PointCloud(coords=coords, normals=normals, weights=weights)


class Annulus(Geometry):
    """Ring between two concentric circles (outer minus inner)."""

    def __init__(self, center, inner_radius, outer_radius):
        if not 0 < inner_radius < outer_radius:
            raise ValueError("need 0 < inner_radius < outer_radius")
        self.center = np.asarray(center, dtype=np.float64)
        self.inner = Circle(center, inner_radius)
        self.outer = Circle(center, outer_radius)

    @property
    def bounds(self):
        return self.outer.bounds

    @property
    def area(self):
        """Exact area."""
        return self.outer.area - self.inner.area

    @property
    def boundary_length(self):
        """Exact total perimeter (both circles)."""
        return self.outer.boundary_length + self.inner.boundary_length

    def sdf(self, points):
        return np.minimum(self.outer.sdf(points), -self.inner.sdf(points))

    def sample_boundary(self, n, rng=None):
        rng = rng if rng is not None else np.random.default_rng()
        frac_outer = self.outer.boundary_length / self.boundary_length
        n_outer = int(round(n * frac_outer))
        clouds = []
        if n_outer:
            clouds.append(self.outer.sample_boundary(n_outer, rng))
        if n - n_outer:
            inner = self.inner.sample_boundary(n - n_outer, rng)
            inner.normals = -inner.normals  # outward from the ring
            clouds.append(inner)
        cloud = PointCloud.concatenate(clouds)
        cloud.weights = np.full((len(cloud), 1), self.boundary_length / n)
        return cloud


class Line2D(Geometry):
    """Straight segment used for inlets/outlets (boundary-only geometry)."""

    def __init__(self, start, end, normal_side="left"):
        self.start = np.asarray(start, dtype=np.float64)
        self.end = np.asarray(end, dtype=np.float64)
        direction = self.end - self.start
        self.length = float(np.linalg.norm(direction))
        if self.length == 0:
            raise ValueError("degenerate segment")
        tangent = direction / self.length
        normal = np.array([-tangent[1], tangent[0]])
        if normal_side == "right":
            normal = -normal
        self.normal = normal

    @property
    def bounds(self):
        lo = np.minimum(self.start, self.end)
        hi = np.maximum(self.start, self.end)
        return tuple(lo), tuple(hi)

    @property
    def boundary_length(self):
        """Segment length."""
        return self.length

    def sdf(self, points):
        """Unsigned distance, negated (a segment has no interior)."""
        points = np.atleast_2d(points)
        direction = (self.end - self.start) / self.length
        rel = points - self.start
        t = np.clip(rel @ direction, 0.0, self.length)
        nearest = self.start + t[:, None] * direction
        return -np.linalg.norm(points - nearest, axis=1)

    def sample_interior(self, n, rng=None):
        raise TypeError("Line2D has no interior; use sample_boundary")

    def sample_boundary(self, n, rng=None):
        rng = rng if rng is not None else np.random.default_rng()
        t = rng.uniform(0.0, 1.0, size=(n, 1))
        coords = self.start + t * (self.end - self.start)
        normals = np.tile(self.normal, (n, 1))
        weights = np.full((n, 1), self.length / n)
        return PointCloud(coords=coords, normals=normals, weights=weights)
