"""Parameterized geometry support for parameterized PINNs (paper §4.2).

A :class:`ParamSpace` declares named scalar parameters with ranges (e.g.
the annular ring's inner radius ``r_i ∈ [0.75, 1.1]``); a
:class:`ParameterizedGeometry` samples parameter values, instantiates the
underlying geometry per value via a builder callable, and emits point clouds
whose ``params`` columns become extra network inputs.
"""

from __future__ import annotations

import numpy as np

from .pointcloud import PointCloud

__all__ = ["ParamSpace", "ParameterizedGeometry"]


class ParamSpace:
    """Named scalar parameters with uniform ranges.

    Parameters
    ----------
    ranges:
        Mapping ``name -> (low, high)``; iteration order fixes the column
        order of sampled parameter matrices.
    """

    def __init__(self, ranges):
        self.names = tuple(ranges)
        self.lows = np.array([ranges[k][0] for k in self.names], dtype=np.float64)
        self.highs = np.array([ranges[k][1] for k in self.names], dtype=np.float64)
        if np.any(self.highs < self.lows):
            raise ValueError("parameter range has high < low")

    def __len__(self):
        return len(self.names)

    def sample(self, n, rng=None):
        """Draw ``(n, p)`` parameter values uniformly."""
        rng = rng if rng is not None else np.random.default_rng()
        return rng.uniform(self.lows, self.highs, size=(n, len(self.names)))

    def as_dict(self, row):
        """Convert one sampled row to a ``name -> float`` mapping."""
        return {name: float(value) for name, value in zip(self.names, row)}

    def grid(self, values_per_dim):
        """Cartesian grid of parameter combinations (for validation sweeps)."""
        axes = [np.linspace(lo, hi, values_per_dim)
                for lo, hi in zip(self.lows, self.highs)]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.stack([m.ravel() for m in mesh], axis=1)


class ParameterizedGeometry:
    """A geometry family indexed by a :class:`ParamSpace`.

    Parameters
    ----------
    builder:
        Callable ``dict -> Geometry`` constructing the geometry for one
        parameter assignment.
    param_space:
        The parameter ranges to sample from.
    draws:
        Number of distinct parameter assignments used per sampling call;
        points are split evenly between them (Modulus samples geometry
        parameters per batch the same way).
    """

    def __init__(self, builder, param_space, draws=16):
        self.builder = builder
        self.param_space = param_space
        self.draws = int(draws)
        if self.draws < 1:
            raise ValueError("draws must be >= 1")

    def geometry_at(self, **values):
        """Instantiate the concrete geometry for explicit parameter values."""
        return self.builder(values)

    def _split(self, n):
        draws = min(self.draws, n)
        base = n // draws
        counts = np.full(draws, base)
        counts[: n - base * draws] += 1
        return counts

    def sample_interior(self, n, rng=None):
        """Sample interior points across parameter draws."""
        rng = rng if rng is not None else np.random.default_rng()
        return self._sample(n, rng, lambda g, m: g.sample_interior(m, rng))

    def sample_boundary(self, n, rng=None):
        """Sample boundary points across parameter draws."""
        rng = rng if rng is not None else np.random.default_rng()
        return self._sample(n, rng, lambda g, m: g.sample_boundary(m, rng))

    def _sample(self, n, rng, sampler):
        counts = self._split(n)
        values = self.param_space.sample(len(counts), rng)
        clouds = []
        for row, count in zip(values, counts):
            if count == 0:
                continue
            geometry = self.builder(self.param_space.as_dict(row))
            cloud = sampler(geometry, int(count))
            cloud.params = np.tile(row, (len(cloud), 1))
            cloud.param_names = self.param_space.names
            clouds.append(cloud)
        return PointCloud.concatenate(clouds)
