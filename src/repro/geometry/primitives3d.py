"""3-D geometric primitives.

The paper's S1 builds kNN graphs over "the low-dimensional spatial
coordinates (x, y, z)"; these primitives provide the 3-D point clouds for
that path (the SGM sampler itself is dimension-agnostic).
"""

from __future__ import annotations

import numpy as np

from .base import Geometry
from .pointcloud import PointCloud

__all__ = ["Box", "Sphere"]


class Box(Geometry):
    """Axis-aligned box with all six faces as boundary."""

    def __init__(self, corner_min, corner_max):
        self.lo = np.asarray(corner_min, dtype=np.float64)
        self.hi = np.asarray(corner_max, dtype=np.float64)
        if self.lo.shape != (3,) or self.hi.shape != (3,):
            raise ValueError("Box corners must be 3-D points")
        if np.any(self.hi <= self.lo):
            raise ValueError("corner_max must exceed corner_min componentwise")

    @property
    def bounds(self):
        return tuple(self.lo), tuple(self.hi)

    @property
    def volume(self):
        """Exact volume."""
        return float(np.prod(self.hi - self.lo))

    @property
    def surface_area(self):
        """Exact surface area."""
        w, h, d = self.hi - self.lo
        return 2.0 * float(w * h + h * d + w * d)

    def sdf(self, points):
        points = np.atleast_2d(points)
        center = 0.5 * (self.lo + self.hi)
        half = 0.5 * (self.hi - self.lo)
        q = np.abs(points - center) - half
        outside = np.linalg.norm(np.maximum(q, 0.0), axis=1)
        inside = np.minimum(np.max(q, axis=1), 0.0)
        return -(outside + inside)

    def sample_boundary(self, n, rng=None):
        rng = rng if rng is not None else np.random.default_rng()
        extents = self.hi - self.lo
        # pick faces proportionally to their area
        areas = np.array([extents[1] * extents[2], extents[1] * extents[2],
                          extents[0] * extents[2], extents[0] * extents[2],
                          extents[0] * extents[1], extents[0] * extents[1]])
        faces = rng.choice(6, size=n, p=areas / areas.sum())
        coords = rng.uniform(self.lo, self.hi, size=(n, 3))
        normals = np.zeros((n, 3))
        for face in range(6):
            axis, side = divmod(face, 2)
            mask = faces == face
            coords[mask, axis] = self.hi[axis] if side else self.lo[axis]
            normals[mask, axis] = 1.0 if side else -1.0
        weights = np.full((n, 1), self.surface_area / n)
        return PointCloud(coords=coords, normals=normals, weights=weights)


class Sphere(Geometry):
    """Solid ball with the sphere surface as boundary."""

    def __init__(self, center, radius):
        self.center = np.asarray(center, dtype=np.float64)
        if self.center.shape != (3,):
            raise ValueError("Sphere center must be a 3-D point")
        self.radius = float(radius)
        if self.radius <= 0:
            raise ValueError("radius must be positive")

    @property
    def bounds(self):
        return tuple(self.center - self.radius), tuple(self.center + self.radius)

    @property
    def volume(self):
        """Exact volume."""
        return float(4.0 / 3.0 * np.pi * self.radius ** 3)

    @property
    def surface_area(self):
        """Exact surface area."""
        return float(4.0 * np.pi * self.radius ** 2)

    def sdf(self, points):
        points = np.atleast_2d(points)
        return self.radius - np.linalg.norm(points - self.center, axis=1)

    def sample_boundary(self, n, rng=None):
        rng = rng if rng is not None else np.random.default_rng()
        directions = rng.normal(size=(n, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        coords = self.center + self.radius * directions
        weights = np.full((n, 1), self.surface_area / n)
        return PointCloud(coords=coords, normals=directions, weights=weights)
