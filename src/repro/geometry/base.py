"""Geometry abstraction: signed distance, containment, and sampling.

Conventions follow Modulus: ``sdf > 0`` inside the geometry, ``< 0`` outside,
with magnitude equal (or a CSG lower bound) to the distance from the wall.
The zero-equation turbulence model reuses the interior SDF as wall distance.
"""

from __future__ import annotations

import numpy as np

from .pointcloud import PointCloud

__all__ = ["Geometry"]


class Geometry:
    """Base class for 2-D geometries.

    Subclasses implement :meth:`sdf`, :meth:`sample_boundary`, the
    :attr:`bounds` property, and :attr:`boundary_length`/:attr:`area`
    estimates.  Interior sampling is provided here via rejection sampling
    against the SDF, which works for arbitrary CSG combinations.
    """

    #: Acceptance batches for rejection sampling are this factor larger than
    #: the number of points still required.
    _OVERSAMPLE = 2.0
    #: Hard cap on rejection rounds; prevents infinite loops on degenerate
    #: (measure-zero) geometries.
    _MAX_ROUNDS = 200

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def sdf(self, points):
        """Signed distance of ``(n, d)`` points (positive inside)."""
        raise NotImplementedError

    def sample_boundary(self, n, rng=None):
        """Sample ``n`` points on the boundary; returns a :class:`PointCloud`
        with outward ``normals`` and perimeter-based ``weights``."""
        raise NotImplementedError

    @property
    def bounds(self):
        """Axis-aligned bounding box as ``((x0, y0, ...), (x1, y1, ...))``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared behaviour
    # ------------------------------------------------------------------
    def contains(self, points):
        """Boolean containment test via the SDF."""
        return self.sdf(points) > 0.0

    def sample_interior(self, n, rng=None):
        """Rejection-sample ``n`` interior points.

        Returns a :class:`PointCloud` with ``sdf`` filled in and uniform
        quadrature ``weights`` equal to (estimated area) / n.
        """
        rng = rng if rng is not None else np.random.default_rng()
        lo, hi = (np.asarray(b, dtype=np.float64) for b in self.bounds)
        box_volume = float(np.prod(hi - lo))
        accepted = []
        total_drawn = 0
        total_kept = 0
        remaining = n
        for _ in range(self._MAX_ROUNDS):
            batch = max(int(remaining * self._OVERSAMPLE), 128)
            candidates = rng.uniform(lo, hi, size=(batch, len(lo)))
            values = self.sdf(candidates)
            keep = values > 0.0
            total_drawn += batch
            total_kept += int(keep.sum())
            if keep.any():
                accepted.append((candidates[keep], values[keep]))
                remaining = n - sum(len(a) for a, _ in accepted)
            if remaining <= 0:
                break
        if remaining > 0:
            raise RuntimeError(
                f"rejection sampling failed: kept {n - remaining}/{n} points; "
                "geometry may have (near) zero area")
        coords = np.concatenate([a for a, _ in accepted], axis=0)[:n]
        sdf_values = np.concatenate([v for _, v in accepted], axis=0)[:n]
        area = box_volume * total_kept / total_drawn
        weights = np.full((n, 1), area / n)
        return PointCloud(coords=coords, sdf=sdf_values.reshape(-1, 1),
                          weights=weights)

    def approx_area(self, rng=None, samples=20000):
        """Monte-Carlo estimate of the geometry's area."""
        rng = rng if rng is not None else np.random.default_rng()
        lo, hi = (np.asarray(b, dtype=np.float64) for b in self.bounds)
        pts = rng.uniform(lo, hi, size=(samples, len(lo)))
        frac = float(np.mean(self.sdf(pts) > 0.0))
        return float(np.prod(hi - lo)) * frac

    # ------------------------------------------------------------------
    # CSG sugar
    # ------------------------------------------------------------------
    def __add__(self, other):
        from .csg import Union
        return Union(self, other)

    def __sub__(self, other):
        from .csg import Difference
        return Difference(self, other)

    def __and__(self, other):
        from .csg import Intersection
        return Intersection(self, other)
