"""Spectral stability scoring (SPADE / ISR, paper step S3)."""

from .spade import SpadeResult, spade_scores

__all__ = ["SpadeResult", "spade_scores"]
