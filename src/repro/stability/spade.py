"""SPADE / Inverse Stability Rating (paper step S3, after Cheng et al. ICML'21).

Given matched input samples ``X`` and model outputs ``Y = F(X)``, SPADE builds
kNN graphs over both, forms the generalized eigenproblem

    L_X v = lambda (L_Y + eps I) v,

and reads off:

* ``ISR = lambda_max`` — an upper bound on the best Lipschitz constant of
  ``F`` over the data manifold (Lemma 2);
* per-edge scores ``||V_r^T e_pq||^2`` with ``V_r = [v_1 sqrt(l_1), ...]``
  (Lemma 3), a surrogate for the directional derivative of ``F`` between the
  two samples;
* per-node scores — the mean edge score over each node's input-graph
  neighbourhood (eq. 11), which upper-bounds ``||grad_x L||`` (eq. 12).

High node scores mark samples whose loss changes quickly under input
perturbations — exactly the clusters whose loss probes the SGM sampler should
distrust and over-sample (paper §3.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..graph import knn_adjacency, laplacian

__all__ = ["SpadeResult", "spade_scores"]


@dataclass
class SpadeResult:
    """SPADE/ISR analysis of one (inputs, outputs) snapshot.

    Attributes
    ----------
    isr:
        ``lambda_max(L_Y^+ L_X)`` — the model-wide stability rating.
    node_scores:
        ``(n,)`` per-sample ISR scores (higher = less stable).
    edge_scores:
        ``(m,)`` scores for the input-graph edges in ``edges``.
    edges:
        ``(m, 2)`` input-graph edge list.
    eigenvalues:
        The ``r`` largest generalized eigenvalues, descending.
    """

    isr: float
    node_scores: np.ndarray
    edge_scores: np.ndarray
    edges: np.ndarray
    eigenvalues: np.ndarray


def _generalized_eigs(l_x, l_y, rank, regularization):
    """Top-``rank`` eigenpairs of ``L_Y^+ L_X`` via the symmetric-definite
    pencil ``(L_X, L_Y + eps I)``."""
    n = l_x.shape[0]
    l_y_reg = l_y + regularization * sp.eye(n)
    rank = min(rank, n - 1)
    if n <= 400:
        vals, vecs = scipy.linalg.eigh(l_x.toarray(), l_y_reg.toarray())
        vals, vecs = vals[::-1], vecs[:, ::-1]
        return vals[:rank], vecs[:, :rank]
    vals, vecs = spla.eigsh(l_x.tocsc(), k=rank, M=l_y_reg.tocsc(),
                            which="LM")
    order = np.argsort(vals)[::-1]
    return vals[order], vecs[:, order]


def spade_scores(inputs, outputs, k=10, rank=8, regularization=1e-6,
                 backend="kdtree", input_adjacency=None):
    """Compute SPADE/ISR node and edge scores.

    Parameters
    ----------
    inputs:
        ``(n, d)`` input features (coordinates + geometry parameters).
    outputs:
        ``(n, q)`` model outputs at the same samples (velocities/pressure, or
        per-sample losses — the paper uses the NN losses).
    k:
        kNN size for both graphs.
    rank:
        Number of dominant eigenpairs ``r`` used in the edge scores.
    regularization:
        Diagonal shift making ``L_Y`` positive definite.
    backend:
        kNN backend (see :func:`repro.graph.knn_search`).
    input_adjacency:
        Optional precomputed input-graph adjacency (skips one kNN build when
        the caller already has the PGM of S1).

    Returns
    -------
    SpadeResult
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    outputs = np.asarray(outputs, dtype=np.float64)
    if outputs.ndim == 1:
        outputs = outputs.reshape(-1, 1)
    if len(inputs) != len(outputs):
        raise ValueError("inputs and outputs must have matching rows")
    if len(inputs) <= k + 1:
        raise ValueError(f"need more than k+1={k + 1} samples, "
                         f"got {len(inputs)}")

    adj_x = (input_adjacency if input_adjacency is not None
             else knn_adjacency(inputs, k, backend=backend))
    adj_y = knn_adjacency(outputs, k, backend=backend)
    l_x = laplacian(adj_x)
    l_y = laplacian(adj_y)

    vals, vecs = _generalized_eigs(l_x, l_y, rank, regularization)
    vals = np.maximum(vals, 0.0)
    # V_r = [v_i * sqrt(lambda_i)]; edge score = ||V_r^T e_pq||^2
    v_r = vecs * np.sqrt(vals)[None, :]

    coo = sp.triu(adj_x, k=1).tocoo()
    edges = np.stack([coo.row, coo.col], axis=1)
    diff = v_r[edges[:, 0], :] - v_r[edges[:, 1], :]
    edge_scores = np.sum(diff * diff, axis=1)

    # node score: mean score over incident input-graph edges (eq. 11)
    n = len(inputs)
    sums = np.zeros(n)
    counts = np.zeros(n)
    np.add.at(sums, edges[:, 0], edge_scores)
    np.add.at(sums, edges[:, 1], edge_scores)
    np.add.at(counts, edges[:, 0], 1.0)
    np.add.at(counts, edges[:, 1], 1.0)
    node_scores = sums / np.maximum(counts, 1.0)

    return SpadeResult(isr=float(vals[0]) if len(vals) else 0.0,
                       node_scores=node_scores, edge_scores=edge_scores,
                       edges=edges, eigenvalues=vals)
