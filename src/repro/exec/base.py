"""The execution-backend interface and registry.

A backend answers one question for the sweep layer: *where does each
task run?*  :meth:`ExecutionBackend.submit` takes a module-level worker
function plus a list of picklable task tuples and returns results in
submission order, cancelling pending siblings on the first failure.
Everything else — task construction, seeding, result assembly — stays in
:mod:`repro.experiments`, which is what keeps per-cell trajectories
bit-identical across backends: the backend only decides placement, never
numerics.

Backends self-register under a short name via :func:`register_backend`,
so ``run_suite(..., backend="queue")`` and custom schedulers resolve
through the same :func:`resolve_backend` lookup.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = [
    "ExecutionBackend", "backend_names", "register_backend",
    "resolve_backend",
]

#: name -> backend class, populated by :func:`register_backend`
BACKENDS = {}


def register_backend(name):
    """Class decorator: register an :class:`ExecutionBackend` by name."""
    def decorate(cls):
        cls.name = name
        BACKENDS[name] = cls
        return cls
    return decorate


def backend_names():
    """Registered backend names, sorted for stable error messages."""
    return tuple(sorted(BACKENDS))


def resolve_backend(backend, *, max_workers=None, store=None,
                    workers_external=False):
    """Normalise ``backend`` into a ready :class:`ExecutionBackend`.

    Accepts a backend instance (passed through untouched, so callers can
    hand in a pre-configured or custom backend) or a registry name, which
    is instantiated via the class's :meth:`~ExecutionBackend.from_options`
    hook with the sweep-level options.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    cls = BACKENDS.get(backend)
    if cls is None:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"choose from {backend_names()}")
    return cls.from_options(max_workers=max_workers, store=store,
                            workers_external=workers_external)


def _with_cell_label(exc, label):
    """Best-effort clone of ``exc`` with the failing cell's label attached.

    Falls back to the original exception for types whose constructor does
    not accept a single message (the label is still visible via the
    ``__cause__`` chain the caller raises from).
    """
    try:
        labelled = type(exc)(f"[{label}] {exc}")
    except Exception:
        return exc
    return labelled


class ExecutionBackend(ABC):
    """Placement strategy for a batch of independent, picklable tasks.

    Subclasses implement :meth:`submit`; the sweep layer relies on three
    contracts it must uphold:

    * results come back **in submission order**, regardless of completion
      order;
    * the **first failure cancels** every task that has not started and
      re-raises with the failing cell's label attached (``raise
      _with_cell_label(exc, labels[i]) from exc``);
    * each result's ``obs_data`` (when present) is plain picklable data, so
      :meth:`adopt_into` can graft worker spans into the sweep's tracer
      identically for every backend.
    """

    #: registry name, set by :func:`register_backend`
    name = None
    #: True when tasks run in the submitting process (the sweep layer
    #: enables per-task verbose printing only for inline backends, since a
    #: remote worker's stdout does not reach the submitter)
    inline = False

    @classmethod
    def from_options(cls, *, max_workers=None, store=None,
                     workers_external=False):
        """Build an instance from the sweep-level options.

        The default covers backends configured by ``max_workers`` alone;
        backends needing more (a store, a fleet flag) override this.
        """
        return cls(max_workers=max_workers)

    @abstractmethod
    def submit(self, fn, tasks, labels, verbose=False):
        """Run ``fn`` over ``tasks``; return results in submission order.

        ``labels`` parallels ``tasks`` and names each cell for progress
        lines and failure messages.
        """

    def adopt_into(self, tracer, parent_id, labels, results):
        """Graft each result's exported spans under a ``suite.cell`` span.

        One code path for every backend: inline cells traced in-process,
        pool/queue cells shipped their export back with the result —
        either way each result carries a plain ``obs_data`` dict for
        :meth:`repro.obs.Tracer.adopt`.
        """
        for label, result in zip(labels, results):
            obs_data = getattr(result, "obs_data", None)
            if obs_data:
                tracer.adopt(obs_data, name="suite.cell", label=label,
                             parent=parent_id)
