"""Store-backed job queue: durable task records + atomic lease files.

The :class:`QueueBackend` decouples *submitting* a sweep from *executing*
it.  The submitter enqueues each picklable task as a durable job record
under ``<store>/queue/``; any number of ``repro worker <store>`` daemons
(on this machine or any machine sharing the filesystem) claim jobs via
atomic lease files, execute them through the exact same worker function
the serial and process backends call, and write the pickled result back.
The submitter polls for completion and assembles results in submission
order — identically to the other backends.

Queue layout::

    <store>/queue/
        journal.jsonl            append-only event log (claims, renewals,
                                 reclaims, completions; torn-tail tolerant)
        jobs/<job_id>/
            job.json             status, label, attempts, worker (atomic
                                 tmp + os.replace updates)
            spec.pkl             pickled (function ref, task tuple)
            lease.json           live claim: worker, nonce, expiry
            result.pkl           pickled result on success
            error.pkl            pickled exception on failure

Lease protocol — the crash-recovery story:

* a **fresh claim** materialises the lease via ``os.link`` of a fully
  written temp file onto ``lease.json`` — creation is atomic and
  all-or-nothing, so exactly one worker wins and no reader ever sees a
  half-written lease;
* the winner's heartbeat thread **renews** the expiry every third of the
  lease period;
* a worker that dies (even ``SIGKILL``) stops renewing; once the expiry
  passes, any other worker **re-claims** by atomically replacing the
  lease and reading back its own nonce to confirm it won the race.

Because every task seeds itself from its spec and results are written
atomically, the rare benign race — two workers finishing the same job
after a lease takeover — produces bit-identical results either way.
"""

from __future__ import annotations

import importlib
import json
import os
import pickle
import time
import uuid
from pathlib import Path

from .. import obs
from .base import ExecutionBackend, _with_cell_label, register_backend

__all__ = ["QueueBackend", "TaskQueue", "function_ref", "resolve_ref"]

#: job statuses a worker may still pick up
_CLAIMABLE = ("queued", "running")
#: terminal job statuses
_FINISHED = ("done", "failed", "cancelled")


def function_ref(fn):
    """``"module:qualname"`` reference to a module-level callable.

    Queue workers import the function by reference (the task tuples are
    pickled, the function is not), so anything submitted to the queue
    backend must be importable — no lambdas, closures, or methods.  The
    re-import is verified up front so a bad callable fails at submit time
    with a clear message instead of inside a worker.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname or "." in qualname:
        raise ValueError(
            f"queue backend needs a module-level function, got {fn!r}; "
            f"lambdas, closures, and methods cannot be imported by a "
            f"worker process")
    if getattr(importlib.import_module(module), qualname, None) is not fn:
        raise ValueError(
            f"{module}:{qualname} does not re-import to the submitted "
            f"function; queue workers import tasks by reference")
    return f"{module}:{qualname}"


def resolve_ref(ref):
    """Import the callable a :func:`function_ref` string names."""
    module, _, qualname = ref.partition(":")
    return getattr(importlib.import_module(module), qualname)


def _atomic_write_text(path, text):
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _atomic_write_bytes(path, data):
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def _read_json(path):
    """Parse a JSON file; ``None`` when missing or torn mid-replace."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError):
        return None


class Lease:
    """A worker's live claim on one job (see the module docstring)."""

    def __init__(self, queue, job_id, worker, nonce, expires):
        self.queue = queue
        self.job_id = job_id
        self.worker = worker
        self.nonce = nonce
        self.expires = expires

    def renew(self, lease_seconds):
        """Extend the expiry; returns ``False`` when the lease was lost."""
        return self.queue.renew(self, lease_seconds)


class TaskQueue:
    """Durable job records + lease files under ``<store>/queue``.

    ``clock`` is the time source for every lease decision (enqueue stamps,
    expiries, renewals, the journal): a zero-argument callable returning
    epoch seconds, defaulting to :func:`time.time`.  Tests inject a fake
    clock so lease expiry and crash reclamation are exercised without
    real-time sleeps.
    """

    def __init__(self, root, clock=None):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.journal_path = self.root / "journal.jsonl"
        self.clock = clock if clock is not None else time.time

    @classmethod
    def for_store(cls, store_root, clock=None):
        """The queue living inside a run store's root directory."""
        return cls(Path(store_root) / "queue", clock=clock)

    # -- journal --------------------------------------------------------
    def _journal(self, event, **fields):
        line = json.dumps({"event": event, "time": self.clock(), **fields})
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def journal(self):
        """All complete journal events; a torn trailing line ends the read
        (same tolerance as the store's ``history.jsonl``)."""
        events = []
        if not self.journal_path.exists():
            return events
        with open(self.journal_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    break
        return events

    # -- submit side ----------------------------------------------------
    def enqueue(self, ref, tasks, labels):
        """Persist one job per task; returns job ids in submission order."""
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        batch = uuid.uuid4().hex[:8]
        job_ids = []
        for index, (task, label) in enumerate(zip(tasks, labels)):
            job_id = f"{batch}-{index:04d}"
            job_dir = self.jobs_dir / job_id
            job_dir.mkdir(parents=True)
            (job_dir / "spec.pkl").write_bytes(
                pickle.dumps((ref, task), protocol=pickle.HIGHEST_PROTOCOL))
            # job.json lands last (atomically): a job is only visible to
            # workers once its spec is fully on disk
            _atomic_write_text(job_dir / "job.json", json.dumps({
                "id": job_id, "label": label, "status": "queued",
                "attempts": 0, "worker": None, "created_at": self.clock(),
            }, indent=2) + "\n")
            self._journal("enqueue", job=job_id, label=label)
            job_ids.append(job_id)
        return job_ids

    def job_meta(self, job_id):
        """The job's current ``job.json`` dict (``None`` when missing)."""
        return _read_json(self.jobs_dir / job_id / "job.json")

    def load_result(self, job_id):
        return pickle.loads((self.jobs_dir / job_id / "result.pkl")
                            .read_bytes())

    def load_error(self, job_id):
        return pickle.loads((self.jobs_dir / job_id / "error.pkl")
                            .read_bytes())

    def cancel_queued(self, job_ids):
        """Cancel every listed job no worker has claimed yet."""
        cancelled = []
        for job_id in job_ids:
            meta = self.job_meta(job_id)
            if meta is None or meta["status"] != "queued":
                continue
            if self._live_lease(self.jobs_dir / job_id) is not None:
                continue
            meta["status"] = "cancelled"
            self._write_job(job_id, meta)
            self._journal("cancel", job=job_id)
            cancelled.append(job_id)
        return cancelled

    def pending(self, job_ids=None):
        """Job ids not yet in a terminal status (submission order kept)."""
        if job_ids is None:
            if not self.jobs_dir.is_dir():
                return []
            job_ids = sorted(p.name for p in self.jobs_dir.iterdir()
                             if p.is_dir())
        out = []
        for job_id in job_ids:
            meta = self.job_meta(job_id)
            if meta is not None and meta["status"] not in _FINISHED:
                out.append(job_id)
        return out

    # -- worker side ----------------------------------------------------
    def _write_job(self, job_id, meta):
        _atomic_write_text(self.jobs_dir / job_id / "job.json",
                           json.dumps(meta, indent=2) + "\n")

    def _live_lease(self, job_dir):
        """The current lease dict when held and unexpired, else ``None``.

        A torn or unparseable lease counts as dead: the takeover path
        resolves any race via the nonce read-back.
        """
        lease = _read_json(job_dir / "lease.json")
        if lease is None or "expires" not in lease:
            return None
        if float(lease["expires"]) <= self.clock():
            return None
        return lease

    def claim(self, worker, lease_seconds):
        """Claim one eligible job; returns a :class:`Lease` or ``None``.

        Eligible = status ``queued`` (never started) or ``running`` with a
        dead lease (the previous worker crashed).  Jobs are scanned in
        sorted order so two idle workers converge on the same frontier.
        """
        if not self.jobs_dir.is_dir():
            return None
        for job_dir in sorted(self.jobs_dir.iterdir()):
            if not job_dir.is_dir():
                continue
            meta = _read_json(job_dir / "job.json")
            if meta is None or meta["status"] not in _CLAIMABLE:
                continue
            if self._live_lease(job_dir) is not None:
                continue
            lease = self._try_claim(job_dir, meta, worker, lease_seconds)
            if lease is not None:
                return lease
        return None

    def _try_claim(self, job_dir, meta, worker, lease_seconds):
        nonce = uuid.uuid4().hex
        expires = self.clock() + float(lease_seconds)
        payload = json.dumps({"worker": worker, "nonce": nonce,
                              "expires": expires})
        lease_path = job_dir / "lease.json"
        tmp = lease_path.with_name(f".lease-{worker}-{os.getpid()}.tmp")
        tmp.write_text(payload, encoding="utf-8")
        reclaim = meta["status"] == "running" or meta["attempts"] > 0
        try:
            if lease_path.exists():
                # dead-lease takeover, stage 1: atomically rename the dead
                # lease aside — exactly one renamer wins.  The caller's
                # eligibility read may be stale (a sibling can have
                # freshly claimed between the scan and here), so verify
                # the renamed lease really was dead and restore it if not;
                # blindly replacing would steal a sibling's live claim.
                grave = lease_path.with_name(
                    f".dead-{worker}-{os.getpid()}-{nonce[:8]}")
                try:
                    os.rename(lease_path, grave)
                except FileNotFoundError:
                    return None         # a sibling's takeover won
                renamed = _read_json(grave)
                if (renamed is not None and "expires" in renamed
                        and float(renamed["expires"]) > self.clock()):
                    try:
                        os.link(grave, lease_path)
                    except FileExistsError:
                        pass
                    os.unlink(grave)
                    return None
                os.unlink(grave)
            # fresh claim / takeover stage 2: hard-link the fully written
            # temp file onto the lease path — atomic create, exactly one
            # winner
            try:
                os.link(tmp, lease_path)
            except FileExistsError:
                return None
        finally:
            if tmp.exists():
                tmp.unlink()
        with obs.span("exec.claim", job=meta["id"], worker=worker,
                      reclaim=reclaim):
            meta["status"] = "running"
            meta["attempts"] = int(meta["attempts"]) + 1
            meta["worker"] = worker
            self._write_job(meta["id"], meta)
        if reclaim:
            obs.inc("exec.reclaims")
            self._journal("reclaim", job=meta["id"], worker=worker,
                          attempt=meta["attempts"])
        else:
            self._journal("claim", job=meta["id"], worker=worker)
        return Lease(self, meta["id"], worker, nonce, expires)

    def force_expire(self, job_id):
        """Atomically rewrite a job's lease as already expired.

        Preserves the worker/nonce (the holder's heartbeat keeps failing
        the nonce check only if someone re-claims; until then a renewal
        would legally revive the lease, exactly as with a real timeout).
        Returns ``True`` when a lease file existed.  This is the test
        hook for crash-recovery scenarios: it compresses the "stopped
        renewing, expiry passed" wait to zero without touching any clock.
        """
        lease_path = self.jobs_dir / job_id / "lease.json"
        current = _read_json(lease_path)
        if current is None:
            return False
        current["expires"] = 0.0
        _atomic_write_text(lease_path, json.dumps(current))
        self._journal("force_expire", job=job_id,
                      worker=current.get("worker"))
        return True

    def renew(self, lease, lease_seconds):
        """Heartbeat: push the lease expiry out by ``lease_seconds``.

        Returns ``False`` when the lease was lost (nonce replaced by a
        reclaiming worker) — the renewal is then a no-op.
        """
        lease_path = self.jobs_dir / lease.job_id / "lease.json"
        with obs.span("exec.lease_renew", job=lease.job_id,
                      worker=lease.worker):
            current = _read_json(lease_path)
            if current is None or current.get("nonce") != lease.nonce:
                return False
            lease.expires = self.clock() + float(lease_seconds)
            _atomic_write_text(lease_path, json.dumps(
                {"worker": lease.worker, "nonce": lease.nonce,
                 "expires": lease.expires}))
        obs.inc("exec.lease_renewals")
        self._journal("renew", job=lease.job_id, worker=lease.worker)
        return True

    def load_task(self, job_id):
        """``(callable, task)`` for one claimed job."""
        ref, task = pickle.loads(
            (self.jobs_dir / job_id / "spec.pkl").read_bytes())
        return resolve_ref(ref), task

    def complete(self, lease, result):
        """Persist the result and mark the job done (result lands first,
        atomically, so a ``done`` status always has a readable result)."""
        job_dir = self.jobs_dir / lease.job_id
        _atomic_write_bytes(job_dir / "result.pkl",
                            pickle.dumps(result,
                                         protocol=pickle.HIGHEST_PROTOCOL))
        meta = self.job_meta(lease.job_id)
        meta["status"] = "done"
        meta["worker"] = lease.worker
        self._write_job(lease.job_id, meta)
        self._release(lease)
        self._journal("done", job=lease.job_id, worker=lease.worker)

    def fail(self, lease, exc):
        """Persist the failure (exception pickled best-effort)."""
        job_dir = self.jobs_dir / lease.job_id
        try:
            payload = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            payload = pickle.dumps(
                RuntimeError(f"{type(exc).__name__}: {exc}"))
        _atomic_write_bytes(job_dir / "error.pkl", payload)
        meta = self.job_meta(lease.job_id)
        meta["status"] = "failed"
        meta["worker"] = lease.worker
        self._write_job(lease.job_id, meta)
        self._release(lease)
        self._journal("failed", job=lease.job_id, worker=lease.worker,
                      error=f"{type(exc).__name__}: {exc}")

    def _release(self, lease):
        lease_path = self.jobs_dir / lease.job_id / "lease.json"
        current = _read_json(lease_path)
        if current is not None and current.get("nonce") == lease.nonce:
            try:
                lease_path.unlink()
            except FileNotFoundError:
                pass


@register_backend("queue")
class QueueBackend(ExecutionBackend):
    """Execute tasks through the durable store-backed queue.

    By default the backend spawns its own local worker fleet (so
    ``backend="queue"`` works out of the box and parity-tests against the
    other backends); with ``workers_external=True`` it only enqueues and
    polls, and separately launched ``repro worker <store>`` daemons — on
    any machine sharing the store — do the training.
    """

    def __init__(self, store, max_workers=None, workers_external=False,
                 lease_seconds=30.0, poll=0.2, wait_timeout=None):
        from ..store import RunStore
        self.store_root = str(RunStore.coerce(store).root)
        self.queue = TaskQueue.for_store(self.store_root)
        self.max_workers = max_workers
        self.workers_external = workers_external
        self.lease_seconds = float(lease_seconds)
        self.poll = float(poll)
        self.wait_timeout = wait_timeout

    @classmethod
    def from_options(cls, *, max_workers=None, store=None,
                     workers_external=False):
        if store is None:
            raise ValueError(
                "the queue backend needs a run store for its durable job "
                "records; pass store= (or --store on the CLI)")
        return cls(store, max_workers=max_workers,
                   workers_external=workers_external)

    def _spawn_workers(self, n_tasks):
        import multiprocessing
        from .worker import run_worker
        n = self.max_workers
        if n is None:
            n = min(n_tasks, os.cpu_count() or 1)
        context = multiprocessing.get_context("fork")
        workers = []
        for index in range(n):
            proc = context.Process(
                target=run_worker, args=(self.store_root,),
                kwargs={"worker_id": f"local-{os.getpid()}-{index}",
                        "lease_seconds": self.lease_seconds,
                        "poll": self.poll, "exit_when_idle": True},
                daemon=True)
            proc.start()
            workers.append(proc)
        return workers

    def submit(self, fn, tasks, labels, verbose=False):
        ref = function_ref(fn)
        with obs.span("exec.enqueue", jobs=len(tasks)):
            job_ids = self.queue.enqueue(ref, tasks, labels)
        obs.inc("exec.tasks_enqueued", len(tasks))
        workers = [] if self.workers_external else self._spawn_workers(
            len(tasks))
        try:
            self._wait(job_ids, labels, workers, verbose)
        finally:
            for proc in workers:
                proc.join(timeout=10.0)
                if proc.is_alive():
                    proc.terminate()
        return [self.queue.load_result(job_id) for job_id in job_ids]

    def _wait(self, job_ids, labels, workers, verbose):
        deadline = (None if self.wait_timeout is None
                    else time.time() + float(self.wait_timeout))
        reported = set()
        while True:
            pending = 0
            for index, job_id in enumerate(job_ids):
                meta = self.queue.job_meta(job_id) or {}
                status = meta.get("status")
                if status == "failed":
                    self.queue.cancel_queued(job_ids)
                    exc = self.queue.load_error(job_id)
                    raise _with_cell_label(exc, labels[index]) from exc
                if status == "done":
                    if verbose and job_id not in reported:
                        reported.add(job_id)
                        result = self.queue.load_result(job_id)
                        print(f"[{labels[index]}] finished in "
                              f"{result.wall_seconds:.1f}s")
                else:
                    pending += 1
            obs.gauge("exec.queue_depth", pending)
            if pending == 0:
                return
            if workers and not any(p.is_alive() for p in workers):
                if not self.queue.pending(job_ids):
                    # the fleet drained the queue between the status read
                    # and the liveness check; pick the results up next pass
                    continue
                raise RuntimeError(
                    f"all {len(workers)} queue workers exited with "
                    f"{pending} task(s) unfinished; see "
                    f"{self.queue.journal_path}")
            if deadline is not None and time.time() > deadline:
                self.queue.cancel_queued(job_ids)
                raise TimeoutError(
                    f"queue backend timed out after {self.wait_timeout}s "
                    f"with {pending} task(s) pending; is a "
                    f"`repro worker {self.store_root}` process running?")
            time.sleep(self.poll)
