"""The queue worker loop behind ``repro worker <store>``.

A worker is a small daemon: claim one job from the store's task queue,
execute it through the exact function the serial backend would call
in-process, write the result back, repeat.  While a job runs, a
heartbeat thread renews the lease every third of the lease period;
a worker that dies — even via ``SIGKILL`` — simply stops renewing, and
once the lease expires any surviving worker re-claims the job.  Task
determinism (every task seeds itself from its spec) makes the re-run
bit-identical, so a crash costs wall-clock, never correctness.
"""

from __future__ import annotations

import os
import threading
import time
import uuid

from .queue import TaskQueue

__all__ = ["run_worker"]


class _Heartbeat:
    """Daemon thread renewing one lease until stopped (or lost)."""

    def __init__(self, lease, lease_seconds):
        self.lease = lease
        self.lease_seconds = float(lease_seconds)
        self.lost = False
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        # renew at a third of the lease period: two missed beats of slack
        # before any sibling may legally take the job over
        while not self._stop.wait(self.lease_seconds / 3.0):
            if not self.lease.renew(self.lease_seconds):
                self.lost = True
                return

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        self._stop.set()
        self._thread.join(timeout=self.lease_seconds)


def run_worker(store_root, *, worker_id=None, lease_seconds=30.0, poll=0.5,
               max_tasks=None, exit_when_idle=False, max_idle_seconds=None,
               verbose=False, clock=None):
    """Claim-and-execute loop over a store's task queue.

    Parameters
    ----------
    store_root:
        Run-store root (the queue lives under ``<store_root>/queue``).
    worker_id:
        Name recorded on claims/leases (default: ``worker-<pid>-<rand>``).
    lease_seconds:
        Claim lifetime between heartbeats.  A crashed worker's job is
        re-claimable this long after its last renewal.
    poll:
        Idle sleep between claim attempts.
    max_tasks:
        Exit after executing this many tasks (``None`` = unlimited).
    exit_when_idle:
        Exit once the queue holds no unfinished jobs at all (used by the
        queue backend's self-spawned fleet).  A job still leased by a
        sibling counts as unfinished, so workers never abandon a sweep a
        crashed sibling could hand back.
    max_idle_seconds:
        Exit after this long without claiming anything (``None`` = wait
        forever).
    clock:
        Time source for lease decisions and idle accounting (default
        :func:`time.time`); tests inject a fake clock to drive expiry
        without sleeping.

    Returns the number of tasks executed.
    """
    queue = TaskQueue.for_store(store_root, clock=clock)
    clock = queue.clock
    if worker_id is None:
        worker_id = f"worker-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    executed = 0
    idle_since = None
    while True:
        if max_tasks is not None and executed >= max_tasks:
            return executed
        lease = queue.claim(worker_id, lease_seconds)
        if lease is None:
            if exit_when_idle and not queue.pending():
                return executed
            now = clock()
            idle_since = idle_since if idle_since is not None else now
            if (max_idle_seconds is not None
                    and now - idle_since >= float(max_idle_seconds)):
                return executed
            time.sleep(poll)
            continue
        idle_since = None
        if verbose:
            meta = queue.job_meta(lease.job_id) or {}
            print(f"[{worker_id}] claimed {lease.job_id} "
                  f"({meta.get('label', '?')}, attempt "
                  f"{meta.get('attempts', '?')})")
        with _Heartbeat(lease, lease_seconds):
            try:
                fn, task = queue.load_task(lease.job_id)
                result = fn(task)
            except Exception as exc:
                # the job failed, not the worker: record it and move on
                queue.fail(lease, exc)
            else:
                queue.complete(lease, result)
        executed += 1
        if verbose:
            meta = queue.job_meta(lease.job_id) or {}
            print(f"[{worker_id}] {meta.get('status', '?')} {lease.job_id}")
