"""Single-machine backends: in-process serial and local process pool."""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed

from .base import ExecutionBackend, _with_cell_label, register_backend

__all__ = ["ProcessPoolBackend", "SerialBackend"]


@register_backend("serial")
class SerialBackend(ExecutionBackend):
    """Run every task in the submitting process, one after another.

    The reference backend: no pickling, no placement — every other
    backend's trajectories are pinned bit-identical to this one.
    """

    inline = True

    def __init__(self, max_workers=None):
        # accepted for interface uniformity; a serial loop has one worker
        self.max_workers = 1

    def submit(self, fn, tasks, labels, verbose=False):
        results = []
        for task, label in zip(tasks, labels):
            try:
                results.append(fn(task))
            except Exception as exc:
                raise _with_cell_label(exc, label) from exc
        return results


@register_backend("process")
class ProcessPoolBackend(ExecutionBackend):
    """Shard tasks over one local ``ProcessPoolExecutor``.

    All tasks — whatever problem they belong to — share a single pool,
    and results come back in submission order regardless of completion
    order.  The first worker failure cancels every pending sibling (no
    wasted training of doomed cells) and re-raises with the failing
    cell's label attached.
    """

    def __init__(self, max_workers=None):
        self.max_workers = max_workers

    def submit(self, fn, tasks, labels, verbose=False):
        max_workers = self.max_workers
        if max_workers is None:
            max_workers = min(len(tasks), os.cpu_count() or 1)
        results = [None] * len(tasks)
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {pool.submit(fn, task): i
                       for i, task in enumerate(tasks)}
            # collect as workers finish, but place by submission index so
            # the result order is deterministic
            for future in as_completed(futures):
                index = futures[future]
                try:
                    results[index] = future.result()
                except Exception as exc:
                    for pending in futures:
                        pending.cancel()
                    raise _with_cell_label(exc, labels[index]) from exc
                if verbose:
                    done = results[index]
                    print(f"[{labels[index]}] finished in "
                          f"{done.wall_seconds:.1f}s")
        return results
