"""Pluggable execution backends for sweep placement (``repro.exec``).

Method sweeps are embarrassingly parallel — each cell trains an
independent, self-seeding network — so *where* cells run is a pure
placement decision.  This package owns that decision behind one
interface:

* :class:`SerialBackend` — in-process reference loop;
* :class:`ProcessPoolBackend` — one shared local process pool;
* :class:`QueueBackend` — durable store-backed job queue consumed by
  ``repro worker`` daemons (crash-safe via lease expiry + re-claim).

All three uphold the same contract — results in submission order,
first-failure cancellation, obs adoption — and all three produce
bit-identical per-cell trajectories, because backends never touch
numerics.  Custom schedulers plug in via :func:`register_backend` and
resolve by name through :func:`resolve_backend`.
"""

from .base import (ExecutionBackend, backend_names, register_backend,
                   resolve_backend)
from .local import ProcessPoolBackend, SerialBackend
from .queue import QueueBackend, TaskQueue, function_ref
from .worker import run_worker

__all__ = [
    "ExecutionBackend", "ProcessPoolBackend", "QueueBackend",
    "SerialBackend", "TaskQueue", "backend_names", "function_ref",
    "register_backend", "resolve_backend", "run_worker",
]
