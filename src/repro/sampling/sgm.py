"""The SGM-PINN sampler (paper §3, Algorithm 1).

Pipeline per the paper:

* **S1** build a kNN PGM over the point cloud (``repro.graph.knn``);
* **S2** LRD-decompose it into clusters of bounded effective-resistance
  diameter (``repro.graph.lrd``) — members of a cluster are strongly
  conditionally dependent, so a few loss probes represent the whole cluster;
* **S3** (parameterized problems) fuse SPADE/ISR stability scores so that
  clusters whose loss estimates are unreliable receive extra samples;
* **S4** every ``tau_e`` iterations, probe the loss on a fraction ``r`` of
  each cluster, rank clusters, map scores to per-cluster sampling ratios
  ``P``, and emit an epoch with ``P_i * S_i`` samples per cluster (with a
  floor of one sample per cluster so no region is forgotten).  Every
  ``tau_G`` iterations rebuild the graph and clusters.

Overhead accounting matches §3.6: each refresh probes ``r * N`` points, and
each rebuild's wall time is recorded so the experiment runner can either
charge it (synchronous) or hide it (the paper's background thread).
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..graph import knn_adjacency, lrd_decompose, parallel_lrd
from ..stability import spade_scores
from .base import Sampler, _scalar

__all__ = ["SGMSampler"]


def _minmax(values):
    """Normalise to [0, 1]; constant vectors map to 0.5."""
    values = np.asarray(values, dtype=np.float64)
    lo, hi = values.min(), values.max()
    if hi - lo < 1e-300:
        return np.full_like(values, 0.5)
    return (values - lo) / (hi - lo)


class SGMSampler(Sampler):
    """Cluster-level importance sampling via sampling graphical models."""

    name = "sgm"

    def __init__(self, features, k=30, level=10, tau_e=7000, tau_G=25000,
                 probe_ratio=0.15, use_isr=False, isr_weight=1.0, isr_k=10,
                 isr_rank=6, ratio_range=(0.05, 0.9), num_vectors=16,
                 cells_per_dim=1, knn_backend="kdtree",
                 append_output_features=False, output_feature_weight=1.0,
                 seed=0):
        """
        Parameters
        ----------
        features:
            ``(n, d+p)`` sample matrix ``X`` — spatial coordinates plus any
            geometry parameters (the PGM is built over these features).
        k:
            kNN size for the PGM (paper: 30 for LDC, 7 for the annular ring).
        level:
            LRD coarsening level ``L`` (paper: 10 for LDC, 6 for AR).
        tau_e:
            Score-refresh cadence in iterations (paper: 7k).
        tau_G:
            Graph/cluster rebuild cadence (paper: 25k LDC, 60k AR).
        probe_ratio:
            Fraction ``r`` of each cluster probed per refresh (paper: 15%).
        use_isr:
            Enable the S3 stability term (the paper's SGM-S variant).
        isr_weight:
            Relative weight of the normalised ISR term in the cluster score.
        ratio_range:
            ``(p_min, p_max)`` sampling-ratio range the cluster scores are
            mapped onto (Algorithm 1, line 9).
        num_vectors:
            Sketch depth for the effective-resistance estimator.
        cells_per_dim:
            Grid partitioning for the (re)build, §3.3 (1 = no partitioning).
        append_output_features:
            §3.2: at every ``tau_G`` rebuild after the first, append the
            network's current outputs (e.g. flow velocities) to the graph
            features, so later PGMs encode output-space similarity too.
            Costs one forward pass per dataset point per rebuild, counted in
            :attr:`probe_points`.
        output_feature_weight:
            Scale of the appended (standardised) output columns relative to
            the standardised input features.
        """
        features = np.asarray(features, dtype=np.float64)
        super().__init__(len(features), seed=seed)
        self.features = features
        self.k = int(k)
        self.level = int(level)
        self.tau_e = int(tau_e)
        self.tau_g = int(tau_G)
        self.probe_ratio = float(probe_ratio)
        if not 0.0 < self.probe_ratio <= 1.0:
            raise ValueError("probe_ratio must lie in (0, 1]")
        self.use_isr = bool(use_isr)
        self.isr_weight = float(isr_weight)
        self.isr_k = int(isr_k)
        self.isr_rank = int(isr_rank)
        self.ratio_min, self.ratio_max = map(float, ratio_range)
        if not 0.0 < self.ratio_min <= self.ratio_max <= 1.0:
            raise ValueError("need 0 < p_min <= p_max <= 1")
        self.num_vectors = int(num_vectors)
        self.cells_per_dim = int(cells_per_dim)
        self.knn_backend = knn_backend
        self.append_output_features = bool(append_output_features)
        self.output_feature_weight = float(output_feature_weight)

        self.labels = None
        self.clusters = []
        self.cluster_scores = None
        self.sampling_ratios = None
        self._epoch = None
        self._cursor = 0
        self.refresh_count = 0
        self.rebuild_count = 0

    # ------------------------------------------------------------------
    # S1 + S2: graph construction and LRD clustering
    # ------------------------------------------------------------------
    def _standardise(self, matrix):
        std = matrix.std(axis=0)
        std[std < 1e-12] = 1.0
        return (matrix - matrix.mean(axis=0)) / std

    def _graph_features(self):
        """Features the PGM is built over; §3.2 optionally appends the
        network's current outputs after the first rebuild."""
        if (not self.append_output_features or self.rebuild_count == 0
                or self.probe_outputs is None):
            return self.features
        outputs = np.asarray(self.probe_outputs(np.arange(self.n_points)),
                             dtype=np.float64)
        self.probe_points += self.n_points
        return np.concatenate(
            [self._standardise(self.features),
             self.output_feature_weight * self._standardise(outputs)],
            axis=1)

    def build_clusters(self):
        """(Re)build the PGM and its LRD decomposition.

        The wall time is measured through :class:`repro.obs.timed_span` so
        it both feeds :attr:`rebuild_seconds` (TrainingClock's background
        credit — functional, always on) and shows up as a
        ``sampler.rebuild`` span when tracing is enabled.
        """
        with obs.timed_span("sampler.rebuild") as rebuild_timer:
            graph_features = self._graph_features()
            if self.cells_per_dim > 1:
                # the partitioned path fuses kNN + LRD per grid cell, so a
                # single cluster-update span covers both stages
                with obs.span("sampler.cluster_update"):
                    labels, _ = parallel_lrd(
                        graph_features, k=self.k, level=self.level,
                        cells_per_dim=self.cells_per_dim,
                        num_vectors=self.num_vectors,
                        seed=int(self.rng.integers(2 ** 31)))
            else:
                with obs.span("sampler.knn_build"):
                    adjacency = knn_adjacency(graph_features, self.k,
                                              backend=self.knn_backend)
                with obs.span("sampler.cluster_update"):
                    result = lrd_decompose(
                        adjacency, level=self.level,
                        num_vectors=self.num_vectors,
                        seed=int(self.rng.integers(2 ** 31)))
                    labels = result.labels
            self._set_labels(labels)
        self.rebuild_seconds += rebuild_timer.seconds
        self.rebuild_count += 1
        obs.inc("sampler.rebuild_count")
        obs.inc("sampler.rebuild_seconds", rebuild_timer.seconds)

    def _set_labels(self, labels):
        """Adopt cluster labels and derive the member lists (deterministic,
        so checkpoints only need to persist the labels themselves)."""
        self.labels = labels
        order = np.argsort(labels, kind="stable")
        boundaries = np.flatnonzero(np.diff(labels[order])) + 1
        # derived deterministically from labels above, which state_dict
        # persists; re-deriving on load keeps checkpoints small
        self.clusters = np.split(order, boundaries)  # repro: noqa RPR007

    # ------------------------------------------------------------------
    # S3 + S4: scoring and epoch assembly
    # ------------------------------------------------------------------
    def _probe_subset(self):
        """Pick ``ceil(r * |C_i|)`` members of every cluster."""
        chosen = []
        for members in self.clusters:
            count = max(1, int(np.ceil(self.probe_ratio * len(members))))
            if count >= len(members):
                chosen.append(members)
            else:
                chosen.append(self.rng.choice(members, size=count,
                                              replace=False))
        return chosen

    def refresh_scores(self):
        """Probe cluster losses (and ISR) and assemble a new epoch."""
        if self.probe_loss is None:
            raise RuntimeError("SGM sampler needs probe callbacks bound "
                               "before training starts")
        with obs.timed_span("sampler.refresh") as refresh_timer:
            subsets = self._probe_subset()
            flat = np.concatenate(subsets)
            losses = np.asarray(self.probe_loss(flat),
                                dtype=np.float64).ravel()
            self.probe_points += len(flat)

            sizes = np.array([len(s) for s in subsets])
            offsets = np.concatenate([[0], np.cumsum(sizes)])
            cluster_loss = np.array([
                losses[offsets[i]:offsets[i + 1]].mean()
                for i in range(len(subsets))])
            score = _minmax(cluster_loss)

            if self.use_isr:
                score = score + self.isr_weight * self._isr_scores(flat,
                                                                   offsets)

            self.cluster_scores = score
            self.sampling_ratios = (self.ratio_min +
                                    (self.ratio_max - self.ratio_min) *
                                    _minmax(score))
            self._build_epoch()
        self.refresh_count += 1
        obs.inc("sampler.refresh_count")
        obs.inc("sampler.refresh_seconds", refresh_timer.seconds)

    def _isr_scores(self, flat, offsets):
        """Normalised per-cluster ISR from a SPADE pass on the probe subset."""
        if self.probe_outputs is None:
            raise RuntimeError("use_isr=True requires a probe_outputs "
                               "callback")
        outputs = np.asarray(self.probe_outputs(flat), dtype=np.float64)
        k_eff = min(self.isr_k, len(flat) - 2)
        if k_eff < 2:
            return np.zeros(len(offsets) - 1)
        result = spade_scores(self.features[flat], outputs, k=k_eff,
                              rank=min(self.isr_rank, k_eff),
                              backend="kdtree")
        per_cluster = np.array([
            result.node_scores[offsets[i]:offsets[i + 1]].mean()
            for i in range(len(offsets) - 1)])
        return _minmax(per_cluster)

    def _build_epoch(self):
        """Epoch with ``max(1, round(P_i * S_i))`` samples per cluster."""
        parts = []
        for ratio, members in zip(self.sampling_ratios, self.clusters):
            count = max(1, int(round(ratio * len(members))))
            if count >= len(members):
                parts.append(members)
            else:
                parts.append(self.rng.choice(members, size=count,
                                             replace=False))
        epoch = np.concatenate(parts)
        self.rng.shuffle(epoch)
        self._epoch = epoch
        self._cursor = 0

    # ------------------------------------------------------------------
    # Sampler interface
    # ------------------------------------------------------------------
    def start(self):
        self.build_clusters()

    def batch_indices(self, step, batch_size):
        if self.labels is None:
            self.start()
        if step > 0 and self.tau_g > 0 and step % self.tau_g == 0:
            self.build_clusters()
            self.refresh_scores()
        elif self._epoch is None or (step > 0 and step % self.tau_e == 0):
            self.refresh_scores()

        batch = np.empty(batch_size, dtype=int)
        filled = 0
        while filled < batch_size:
            take = min(batch_size - filled, len(self._epoch) - self._cursor)
            batch[filled:filled + take] = \
                self._epoch[self._cursor:self._cursor + take]
            filled += take
            self._cursor += take
            if self._cursor >= len(self._epoch):
                self.rng.shuffle(self._epoch)   # Algorithm 1, line 12
                self._cursor = 0
        return batch

    # ------------------------------------------------------------------
    def state_dict(self):
        """Everything mutable: RNG, clusters, scores, epoch, counters.

        Clusters are persisted as labels only (:meth:`_set_labels` rebuilds
        the member lists deterministically), so restoring mid-run skips the
        graph rebuild entirely — exactly what bit-identical resume needs.
        """
        state = super().state_dict()
        state["refresh_count"] = self.refresh_count
        state["rebuild_count"] = self.rebuild_count
        if self.labels is not None:
            state["labels"] = np.asarray(self.labels).copy()
        if self.cluster_scores is not None:
            state["cluster_scores"] = np.asarray(self.cluster_scores).copy()
            state["sampling_ratios"] = np.asarray(self.sampling_ratios).copy()
        if self._epoch is not None:
            state["epoch"] = np.asarray(self._epoch).copy()
            state["cursor"] = self._cursor
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self.refresh_count = int(_scalar(state["refresh_count"]))
        self.rebuild_count = int(_scalar(state["rebuild_count"]))
        if "labels" in state:
            self._set_labels(np.asarray(state["labels"], dtype=int).copy())
        if "cluster_scores" in state:
            self.cluster_scores = np.asarray(state["cluster_scores"],
                                             dtype=np.float64).copy()
            self.sampling_ratios = np.asarray(state["sampling_ratios"],
                                              dtype=np.float64).copy()
        if "epoch" in state:
            self._epoch = np.asarray(state["epoch"], dtype=int).copy()
            self._cursor = int(_scalar(state["cursor"]))

    # ------------------------------------------------------------------
    def epoch_composition(self):
        """Current per-cluster sample counts (diagnostics / tests)."""
        if self._epoch is None:
            raise RuntimeError("no epoch built yet")
        return np.bincount(self.labels[self._epoch],
                           minlength=len(self.clusters))
