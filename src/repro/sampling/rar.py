"""Residual-based adaptive refinement (RAR, Lu et al. 2021 / DeepXDE).

Included as the third family of adaptive strategies the paper discusses
(§1): instead of re-weighting a fixed cloud, RAR *grows* the active set by
adding the highest-residual candidates every refresh.  Useful as an ablation
against SGM-PINN's fixed-budget cluster sampling.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from .base import Sampler

__all__ = ["RARSampler"]


class RARSampler(Sampler):
    """Uniform batches over an active set that grows toward high residuals."""

    name = "rar"

    def __init__(self, n_points, initial_fraction=0.25, add_per_refresh=512,
                 candidate_pool=4096, tau_e=7000, seed=0):
        """
        Parameters
        ----------
        n_points:
            Size of the dense candidate cloud.
        initial_fraction:
            Fraction of points active at the start.
        add_per_refresh:
            How many of the worst candidates join the active set per refresh.
        candidate_pool:
            Number of inactive candidates whose residuals are probed each
            refresh (probing all of them would be the expensive variant the
            paper criticises).
        tau_e:
            Refresh cadence.
        """
        super().__init__(n_points, seed=seed)
        self.tau_e = int(tau_e)
        self.add_per_refresh = int(add_per_refresh)
        self.candidate_pool = int(candidate_pool)
        initial = max(1, int(initial_fraction * n_points))
        self.active = self.rng.choice(n_points, size=initial, replace=False)
        self._active_set = set(self.active.tolist())

    def _refresh(self):
        if self.probe_loss is None:
            raise RuntimeError("RAR sampler needs probe callbacks bound")
        with obs.timed_span("sampler.refresh") as refresh_timer:
            inactive = np.setdiff1d(np.arange(self.n_points), self.active,
                                    assume_unique=False)
            if len(inactive) == 0:
                return
            pool = inactive if len(inactive) <= self.candidate_pool else \
                self.rng.choice(inactive, size=self.candidate_pool,
                                replace=False)
            losses = np.asarray(self.probe_loss(pool),
                                dtype=np.float64).ravel()
            self.probe_points += len(pool)
            worst = pool[np.argsort(losses)[::-1][:self.add_per_refresh]]
            self.active = np.concatenate([self.active, worst])
            self._active_set.update(worst.tolist())
        obs.inc("sampler.refresh_count")
        obs.inc("sampler.refresh_seconds", refresh_timer.seconds)

    def batch_indices(self, step, batch_size):
        if step > 0 and step % self.tau_e == 0:
            self._refresh()
        replace = batch_size > len(self.active)
        return self.rng.choice(self.active, size=batch_size, replace=replace)

    def state_dict(self):
        state = super().state_dict()
        state["active"] = self.active.copy()
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self.active = np.asarray(state["active"], dtype=np.int64).copy()
        self._active_set = set(self.active.tolist())
