"""Mini-batch samplers: SGM-PINN (the contribution) and its baselines."""

from .base import Sampler
from .uniform import UniformSampler
from .mis import MISSampler
from .sgm import SGMSampler
from .rar import RARSampler

__all__ = ["Sampler", "UniformSampler", "MISSampler", "SGMSampler",
           "RARSampler"]
