"""Modulus-style pointwise importance sampling (the paper's MIS baseline).

Follows Nabian, Gladstone & Meidani (2021) as implemented in Modulus:
sampling probability proportional to an importance measure — the 2-norm of
the velocity derivatives — evaluated over the *entire* dense point cloud.
Mini-batch losses are re-weighted by ``1 / (N p_i)`` to keep the integral
estimate unbiased.

The paper reduces how often MIS refreshes its measure to the same ``tau_e``
cadence SGM-PINN uses ("for an even comparison we reduce how often the
dataset is updated to match tau_e"); the refresh costs one probe per dataset
point, which is exactly the overhead §3.6 attributes to prior IS methods.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from .base import Sampler, _scalar

__all__ = ["MISSampler"]


class MISSampler(Sampler):
    """Loss/gradient-proportional importance sampling over all points."""

    name = "mis"

    def __init__(self, n_points, tau_e=7000, measure="grad_norm",
                 floor_fraction=0.1, seed=0):
        """
        Parameters
        ----------
        n_points:
            Dataset size ``N``.
        tau_e:
            Refresh cadence in iterations.
        measure:
            ``"grad_norm"`` (Modulus' velocity-derivative norm) or
            ``"loss"`` (Nabian's loss-proportional variant, eq. 7).
        floor_fraction:
            Mixes a uniform floor into the distribution
            (``p = (1-f) p_importance + f / N``) so no region is starved —
            Modulus does the same to keep the estimator well conditioned.
        """
        super().__init__(n_points, seed=seed)
        self.tau_e = int(tau_e)
        self.measure = measure
        if measure not in ("grad_norm", "loss"):
            raise ValueError(f"unknown measure {measure!r}")
        self.floor_fraction = float(floor_fraction)
        self.probabilities = np.full(n_points, 1.0 / n_points)
        self._refreshed_once = False

    # ------------------------------------------------------------------
    def _refresh(self):
        probe = (self.probe_grad_norm if self.measure == "grad_norm"
                 else self.probe_loss)
        if probe is None:
            raise RuntimeError("MIS sampler needs probe callbacks bound "
                               "before training starts")
        with obs.timed_span("sampler.refresh") as refresh_timer:
            all_points = np.arange(self.n_points)
            values = np.asarray(probe(all_points), dtype=np.float64).ravel()
            self.probe_points += self.n_points
            values = np.maximum(values, 0.0)
            total = values.sum()
            if total <= 0.0:
                importance = np.full(self.n_points, 1.0 / self.n_points)
            else:
                importance = values / total
            floor = self.floor_fraction / self.n_points
            self.probabilities = ((1.0 - self.floor_fraction) * importance
                                  + floor)
            self.probabilities /= self.probabilities.sum()
            self._refreshed_once = True
        obs.inc("sampler.refresh_count")
        obs.inc("sampler.refresh_seconds", refresh_timer.seconds)

    def batch_indices(self, step, batch_size):
        batch_size = int(batch_size)
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if not self._refreshed_once or (step > 0 and step % self.tau_e == 0):
            self._refresh()
        # without-replacement draws need at least batch_size admissible
        # (p > 0) points; small-scale configs can ask for more than the
        # dataset holds, so only that degenerate path switches to
        # with-replacement (the common path's RNG stream is untouched)
        admissible = int(np.count_nonzero(self.probabilities))
        replace = batch_size > admissible
        return self.rng.choice(self.n_points, size=batch_size,
                               replace=replace, p=self.probabilities)

    def batch_weights(self, indices):
        """Unbiased importance weights ``1 / (N p_i)``, mean-normalised."""
        w = 1.0 / (self.n_points * self.probabilities[indices])
        return w / w.mean()

    # ------------------------------------------------------------------
    def state_dict(self):
        state = super().state_dict()
        state["probabilities"] = self.probabilities.copy()
        state["refreshed_once"] = int(self._refreshed_once)
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self.probabilities = np.asarray(state["probabilities"],
                                        dtype=np.float64).copy()
        self._refreshed_once = bool(int(_scalar(state["refreshed_once"])))
