"""Sampler interface shared by SGM-PINN and the baselines.

The trainer owns the dataset and the network; samplers own *which indices go
into each mini-batch*.  Probing (extra forward passes used to refresh
importance scores) happens through callbacks the trainer registers, so every
sampler's overhead is charged to the same wall clock the paper measures:

* ``probe_loss(indices) -> (n,)``   per-sample total loss (Algorithm 1 line 6)
* ``probe_outputs(indices) -> (n, q)`` network outputs (for ISR / S3)
* ``probe_grad_norm(indices) -> (n,)`` 2-norm of velocity derivatives (the
  quantity Modulus' built-in importance sampling uses)

Samplers count every probed point in :attr:`probe_points` so experiments can
report overhead in "extra forward passes", matching §3.6.
"""

from __future__ import annotations

import json

import numpy as np

__all__ = ["Sampler"]


def _scalar(value):
    """Coerce a checkpoint leaf (possibly a 0-d numpy array) to a scalar."""
    return value.item() if isinstance(value, np.ndarray) else value


class Sampler:
    """Base class: uniform-iid batches, no probing, no overhead."""

    name = "base"

    def __init__(self, n_points, seed=0):
        self.n_points = int(n_points)
        if self.n_points < 1:
            raise ValueError("sampler needs at least one point")
        self.rng = np.random.default_rng(seed)
        self.probe_loss = None
        self.probe_outputs = None
        self.probe_grad_norm = None
        #: total number of points probed so far (overhead accounting)
        self.probe_points = 0
        #: wall seconds spent in graph/cluster (re)builds, for the
        #: background-thread accounting mode
        self.rebuild_seconds = 0.0

    # ------------------------------------------------------------------
    def bind_probes(self, probe_loss=None, probe_outputs=None,
                    probe_grad_norm=None):
        """Attach the trainer's probe callbacks."""
        self.probe_loss = probe_loss
        self.probe_outputs = probe_outputs
        self.probe_grad_norm = probe_grad_norm

    def batch_indices(self, step, batch_size):
        """Indices of the mini-batch for iteration ``step`` (0-based)."""
        raise NotImplementedError

    def batch_weights(self, indices):
        """Optional per-sample loss weights for the batch (None = uniform)."""
        return None

    def start(self):
        """One-time initialisation before training (build graphs etc.)."""

    # ------------------------------------------------------------------
    # Resumable state (checkpointing)
    # ------------------------------------------------------------------
    def state_dict(self):
        """Snapshot of the sampler's mutable state.

        The RNG state is JSON-encoded (PCG64 carries 128-bit integers that
        ``.npz`` archives cannot hold natively), so the whole dict flattens
        cleanly into a checkpoint.  Restoring it with :meth:`load_state_dict`
        makes every subsequent batch bit-identical to an uninterrupted run.
        """
        return {
            "rng": json.dumps(self.rng.bit_generator.state),
            "probe_points": self.probe_points,
            "rebuild_seconds": self.rebuild_seconds,
        }

    def load_state_dict(self, state):
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.rng.bit_generator.state = json.loads(str(_scalar(state["rng"])))
        self.probe_points = int(_scalar(state["probe_points"]))
        self.rebuild_seconds = float(_scalar(state["rebuild_seconds"]))
