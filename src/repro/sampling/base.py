"""Sampler interface shared by SGM-PINN and the baselines.

The trainer owns the dataset and the network; samplers own *which indices go
into each mini-batch*.  Probing (extra forward passes used to refresh
importance scores) happens through callbacks the trainer registers, so every
sampler's overhead is charged to the same wall clock the paper measures:

* ``probe_loss(indices) -> (n,)``   per-sample total loss (Algorithm 1 line 6)
* ``probe_outputs(indices) -> (n, q)`` network outputs (for ISR / S3)
* ``probe_grad_norm(indices) -> (n,)`` 2-norm of velocity derivatives (the
  quantity Modulus' built-in importance sampling uses)

Samplers count every probed point in :attr:`probe_points` so experiments can
report overhead in "extra forward passes", matching §3.6.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Sampler"]


class Sampler:
    """Base class: uniform-iid batches, no probing, no overhead."""

    name = "base"

    def __init__(self, n_points, seed=0):
        self.n_points = int(n_points)
        if self.n_points < 1:
            raise ValueError("sampler needs at least one point")
        self.rng = np.random.default_rng(seed)
        self.probe_loss = None
        self.probe_outputs = None
        self.probe_grad_norm = None
        #: total number of points probed so far (overhead accounting)
        self.probe_points = 0
        #: wall seconds spent in graph/cluster (re)builds, for the
        #: background-thread accounting mode
        self.rebuild_seconds = 0.0

    # ------------------------------------------------------------------
    def bind_probes(self, probe_loss=None, probe_outputs=None,
                    probe_grad_norm=None):
        """Attach the trainer's probe callbacks."""
        self.probe_loss = probe_loss
        self.probe_outputs = probe_outputs
        self.probe_grad_norm = probe_grad_norm

    def batch_indices(self, step, batch_size):
        """Indices of the mini-batch for iteration ``step`` (0-based)."""
        raise NotImplementedError

    def batch_weights(self, indices):
        """Optional per-sample loss weights for the batch (None = uniform)."""
        return None

    def start(self):
        """One-time initialisation before training (build graphs etc.)."""
