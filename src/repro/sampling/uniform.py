"""Uniform random sampling — the paper's baseline (U500/U4000 etc.)."""

from __future__ import annotations

from .base import Sampler

__all__ = ["UniformSampler"]


class UniformSampler(Sampler):
    """IID uniform mini-batches over the full point cloud.

    Matches Modulus' default behaviour: every batch is drawn independently
    with replacement across batches (without replacement within a batch).
    """

    name = "uniform"

    def batch_indices(self, step, batch_size):
        replace = batch_size > self.n_points
        return self.rng.choice(self.n_points, size=batch_size,
                               replace=replace)
