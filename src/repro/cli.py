"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the library version and subsystem inventory.
``run``
    Train any registered problem with any registered sampler via the
    :class:`repro.api.Session` API (problems/samplers are discovered from
    the registries, so plugins appear here automatically).
``suite``
    Method sweep: train any registered problem under several registered
    samplers (``--samplers a,b,c``), optionally sharded over a process
    pool (``--parallel``), and print the suite table.
``problems``
    List the problem and sampler registries.
``table1`` / ``table2``
    Regenerate the paper's tables (wraps the ``examples/reproduce_*``
    pipelines) at a chosen scale.
``ldc`` / ``ar``
    Train a single method on one of the two benchmark problems
    (legacy spellings of ``run ldc`` / ``run annular_ring``).
``solve-ldc`` / ``solve-ar``
    Run only the classical reference solver and report convergence.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def _cmd_info(args):
    import repro
    print(f"repro {repro.__version__} — SGM-PINN reproduction (DAC 2024)")
    subsystems = [
        ("api", "Problem/Session API + problem & sampler registries"),
        ("autodiff", "higher-order reverse-mode AD"),
        ("nn", "MLPs, optimizers (Adam/L-BFGS), schedules"),
        ("geometry", "2-D/3-D CSG with SDF sampling"),
        ("pde", "NS2D, zero-eq turbulence, Poisson 2D/3D, Burgers"),
        ("graph", "kNN/HNSW, effective resistance, LRD decomposition"),
        ("stability", "SPADE/ISR scores"),
        ("sampling", "SGM sampler + uniform/MIS/RAR baselines"),
        ("solvers", "reference CFD (LDC, annular ring), Ghia tables"),
        ("training", "constraints, trainer, validators"),
        ("experiments", "Table 1/2 + Figures 2-4 harness"),
    ]
    for name, description in subsystems:
        print(f"  repro.{name:<12} {description}")
    return 0


def _cmd_table(args, which):
    executor = "process" if args.parallel else "serial"
    if which == 1:
        from repro.experiments import (
            format_table, ldc_config, run_ldc_suite, table1_rows)
        config = ldc_config(args.scale)
        results = run_ldc_suite(config, executor=executor)
        histories = {k: r.history for k, r in results.items()}
        columns, rows = table1_rows(histories)
        print(format_table(f"Table 1 (scale={args.scale})", columns, rows))
    else:
        from repro.experiments import (
            annular_ring_config, format_table, run_ar_suite, table2_rows)
        config = annular_ring_config(args.scale)
        results = run_ar_suite(config, executor=executor)
        histories = {k: r.history for k, r in results.items()}
        columns, rows = table2_rows(histories)
        print(format_table(f"Table 2 (scale={args.scale})", columns, rows))
    return 0


def _print_run_summary(result):
    history = result.history
    if not history.losses:
        print(f"{result.label}: no steps recorded (ran with --steps 0?)")
        return
    print(f"{result.label}: wall {history.wall_times[-1]:.0f}s, "
          f"final loss {history.losses[-1]:.4g}")
    for var in sorted(history.errors):
        print(f"  min err({var}) = {history.min_error(var):.4f}")


def _cmd_run(args):
    import repro
    try:
        session = repro.problem(args.problem, scale=args.scale)
        session.sampler(args.sampler)
    except KeyError as exc:
        # registry lookup failures already name the alternatives
        print(f"error: {exc.args[0]}")
        return 2
    if args.seed is not None:
        session.seed(args.seed)
    if args.n_interior is not None:
        session.n_interior(args.n_interior)
    if args.batch_size is not None:
        session.batch_size(args.batch_size)
    result = session.train(steps=args.steps)
    _print_run_summary(result)
    return 0


def _cmd_suite(args):
    from repro.experiments import run_suite, suite_table
    samplers = (None if args.samplers is None
                else [s.strip() for s in args.samplers.split(",") if s.strip()])
    executor = "process" if args.parallel else "serial"
    try:
        suite = run_suite(args.problem, samplers, executor=executor,
                          max_workers=args.max_workers, seed=args.seed,
                          steps=args.steps, scale=args.scale, verbose=True)
    except (KeyError, ValueError) as exc:
        # registry lookups and method resolution name the problem themselves
        print(f"error: {exc.args[0]}")
        return 2
    print()
    print(suite_table(suite))
    print(f"\nsweep total: {suite.total_seconds:.1f}s "
          f"({suite.executor} executor, {len(suite)} methods)")
    return 0


def _cmd_problems(args):
    from repro.api import problem_registry, sampler_registry
    for registry in (problem_registry, sampler_registry):
        print(f"{registry.kind}s:")
        for name, entry in registry.items():
            print(f"  {name:<14} {entry.description}")
    return 0


def _cmd_train(args, problem):
    from repro.experiments.runner import _run_method
    if problem == "ldc":
        from repro.experiments import ldc_config, ldc_methods
        config = ldc_config(args.scale)
        methods = {m.kind: m for m in ldc_methods(config)}
        name = "ldc"
    else:
        from repro.experiments import annular_ring_config, ar_methods
        config = annular_ring_config(args.scale)
        methods = {m.kind: m for m in
                   ar_methods(config, include_plain_sgm=True)}
        name = "annular_ring"
    method = methods.get(args.method)
    if method is None:
        print(f"unknown method {args.method!r}; have {sorted(methods)}")
        return 2
    result = _run_method(name, config, method, steps=args.steps)
    _print_run_summary(result)
    return 0


def _cmd_solve(args, problem):
    if problem == "ldc":
        from repro.solvers import solve_ldc
        result = solve_ldc(reynolds=args.reynolds,
                           resolution=args.resolution)
        print(f"LDC Re={args.reynolds:g} on {args.resolution}^2: "
              f"{result.steps} steps, residual {result.final_residual:.2e}")
    else:
        from repro.solvers import solve_annulus
        result = solve_annulus(inner_radius=args.radius)
        print(f"annular ring r_i={args.radius:g}: {result.steps} steps, "
              f"residual {result.final_residual:.2e}")
    return 0


def build_parser():
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro", description="SGM-PINN reproduction toolbox")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library inventory")
    sub.add_parser("problems", help="list registered problems and samplers")

    # problem/sampler names are validated against the registries at run
    # time (see _cmd_run), keeping parser construction import-light and
    # letting plugin registrations appear without argparse changes
    p = sub.add_parser("run", help="train any registered problem with any "
                       "registered sampler (see `repro problems`)")
    p.add_argument("problem", metavar="problem",
                   help="a registered problem, e.g. ldc, annular_ring, "
                        "burgers, poisson3d")
    p.add_argument("--sampler", default="sgm",
                   help="a registered sampler (default: sgm)")
    p.add_argument("--scale", default="smoke", choices=("smoke", "repro"))
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--n-interior", type=int, default=None)
    p.add_argument("--batch-size", type=int, default=None)

    p = sub.add_parser("suite", help="train a method sweep on any "
                       "registered problem (serial or process-parallel)")
    p.add_argument("problem", metavar="problem",
                   help="a registered problem, e.g. ldc, annular_ring")
    p.add_argument("--samplers", default=None,
                   help="comma-separated registered samplers "
                        "(default: all registered)")
    p.add_argument("--parallel", action="store_true",
                   help="shard methods over a process pool")
    p.add_argument("--max-workers", type=int, default=None)
    p.add_argument("--scale", default="smoke", choices=("smoke", "repro"))
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--seed", type=int, default=None)

    for n in (1, 2):
        p = sub.add_parser(f"table{n}", help=f"regenerate Table {n}")
        p.add_argument("--scale", default="smoke",
                       choices=("smoke", "repro"))
        p.add_argument("--parallel", action="store_true",
                       help="shard the method sweep over a process pool")

    for problem in ("ldc", "ar"):
        p = sub.add_parser(problem, help=f"train one method on {problem}")
        p.add_argument("--method", default="sgm",
                       choices=("uniform", "mis", "sgm", "sgm_s"))
        p.add_argument("--scale", default="smoke",
                       choices=("smoke", "repro"))
        p.add_argument("--steps", type=int, default=None)

    p = sub.add_parser("solve-ldc", help="run the reference LDC solver")
    p.add_argument("--reynolds", type=float, default=100.0)
    p.add_argument("--resolution", type=int, default=65)
    p = sub.add_parser("solve-ar", help="run the reference annulus solver")
    p.add_argument("--radius", type=float, default=1.0)
    return parser


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "suite":
        return _cmd_suite(args)
    if args.command == "problems":
        return _cmd_problems(args)
    if args.command in ("table1", "table2"):
        return _cmd_table(args, int(args.command[-1]))
    if args.command in ("ldc", "ar"):
        return _cmd_train(args, args.command)
    if args.command == "solve-ldc":
        return _cmd_solve(args, "ldc")
    if args.command == "solve-ar":
        return _cmd_solve(args, "ar")
    return 2


if __name__ == "__main__":
    sys.exit(main())
