"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the library version and subsystem inventory.
``run``
    Train any registered problem with any registered sampler via the
    :class:`repro.api.Session` API — either by name (``run burgers``) or
    from a TOML/JSON experiment file (``run --config exp.toml``).  With a
    config file (or ``--store``) the run records into the persistent run
    store: resolved config, streamed history, periodic checkpoints.
``runs``
    Inspect the run store: ``list``, ``show``, ``compare`` (Table-1-style
    speedup rows from stored records, grouped per problem), ``plot``
    (convergence-vs-time figures rendered from stored records alone),
    ``profile`` (span tree + per-step phase table + sampler-overhead
    ratio from a traced run's ``spans.jsonl``; ``--format chrome``
    exports a Perfetto-loadable trace), ``resume`` (continue a killed
    run bit-identically from its newest checkpoint), ``gc``.
``suite``
    Method sweep: train any registered problem under several registered
    samplers (``--samplers a,b,c``) on any execution backend
    (``--backend serial|process|queue``, ``--parallel`` as the process
    shorthand); ``--store`` records every method.
``matrix``
    Cross-problem benchmark matrix: ``--problems all`` × ``--samplers``
    cells submitted to one shared execution backend (``--backend``,
    ``--parallel``), every cell recording into a single store
    (``--store``).
``worker``
    Queue-backend worker daemon: claim jobs a ``--backend queue`` sweep
    enqueued in a run store (atomic lease files with heartbeat renewal;
    a crashed worker's job is re-claimed by a surviving one after its
    lease expires) and train them through the standard cell code path.
``problems``
    List the problem and sampler registries.
``lint``
    Run the project linter (``repro.analysis``) over the repro source tree
    (or given paths): seeded-RNG-only, no wall-clock in hot paths,
    deterministic iteration, picklable pool tasks, registry-mediated
    experiment wiring, complete ``state_dict`` round-trips.  Exits nonzero
    on findings; ``--rules`` prints the rule catalog.
``analyze``
    Static analyses that need a built problem: ``analyze tape`` traces one
    training step per registered problem into the autodiff graph and
    verifies shape/dtype consistency, reporting dead nodes, re-materialized
    constants, and duplicate subgraphs (the compile-readiness artifact).
``table1`` / ``table2``
    Regenerate the paper's tables (wraps the ``examples/reproduce_*``
    pipelines) at a chosen scale.
``ldc`` / ``ar``
    Train a single method on one of the two benchmark problems
    (legacy spellings of ``run ldc`` / ``run annular_ring``).
``solve-ldc`` / ``solve-ar``
    Run only the classical reference solver and report convergence.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def _cmd_info(args):
    import repro
    print(f"repro {repro.__version__} — SGM-PINN reproduction (DAC 2024)")
    subsystems = [
        ("api", "Problem/Session API + problem & sampler registries"),
        ("autodiff", "higher-order reverse-mode AD"),
        ("nn", "MLPs, optimizers (Adam/L-BFGS), schedules"),
        ("geometry", "2-D/3-D CSG with SDF sampling"),
        ("pde", "NS 2D/3D, zero-eq turbulence, Poisson 2D/3D, Burgers, "
                "trainable coefficients"),
        ("graph", "kNN/HNSW, effective resistance, LRD decomposition"),
        ("stability", "SPADE/ISR scores"),
        ("sampling", "SGM sampler + uniform/MIS/RAR baselines"),
        ("solvers", "reference CFD (LDC, annular ring), Ghia tables"),
        ("training", "constraints, trainer, validators"),
        ("experiments", "Table 1/2 + Figures 2-4 harness, suites + "
                        "cross-problem benchmark matrix"),
        ("exec", "pluggable sweep placement: serial, process pool, "
                 "store-backed job queue + `repro worker` daemons"),
        ("dp", "data-parallel single-method training: sharded "
               "collocation clouds, deterministic tree allreduce"),
        ("store", "persistent run store: TOML configs, resumable "
                  "checkpointed runs, figures from records"),
        ("analysis", "project lint rules + autodiff tape analyzer "
                     "(repro lint / repro analyze tape)"),
    ]
    for name, description in subsystems:
        print(f"  repro.{name:<12} {description}")
    return 0


def _cmd_table(args, which):
    backend = "process" if args.parallel else "serial"
    if which == 1:
        from repro.experiments import (
            format_table, ldc_config, run_ldc_suite, table1_rows)
        config = ldc_config(args.scale)
        results = run_ldc_suite(config, backend=backend)
        histories = {k: r.history for k, r in results.items()}
        columns, rows = table1_rows(histories)
        print(format_table(f"Table 1 (scale={args.scale})", columns, rows))
    else:
        from repro.experiments import (
            annular_ring_config, format_table, run_ar_suite, table2_rows)
        config = annular_ring_config(args.scale)
        results = run_ar_suite(config, backend=backend)
        histories = {k: r.history for k, r in results.items()}
        columns, rows = table2_rows(histories)
        print(format_table(f"Table 2 (scale={args.scale})", columns, rows))
    return 0


def _print_run_summary(result):
    history = result.history
    if not history.losses:
        print(f"{result.label}: no steps recorded (ran with --steps 0?)")
        return
    print(f"{result.label}: wall {history.wall_times[-1]:.0f}s, "
          f"final loss {history.losses[-1]:.4g}")
    for var in sorted(history.errors):
        print(f"  min err({var}) = {history.min_error(var):.4f}")
    for name, value in sorted(getattr(result, "coefficients", {}).items()):
        print(f"  recovered {name} = {value:.4g}")


def _cmd_run(args):
    import repro
    from repro.store import RunStore, load_run_config, resume_run

    run_config = None
    if args.config is not None:
        if args.problem is not None:
            print("error: give either a problem name or --config, not both")
            return 2
        try:
            run_config = load_run_config(args.config)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: {exc}")
            return 2
    elif args.problem is None and args.resume is None:
        print("error: need a problem name, --config, or --resume "
              "(see `repro problems`)")
        return 2

    # store resolution: explicit flag > config file > recording implied by
    # --config/--resume (default root); a bare `repro run <problem>` stays
    # store-less unless --store is given
    store = None
    if args.store is not None:
        store = RunStore(args.store)
    elif run_config is not None and run_config.store_root is not None:
        store = RunStore(run_config.store_root)
    elif args.config is not None or args.resume is not None:
        store = RunStore()
    checkpoint_every = args.checkpoint_every
    if checkpoint_every is None and run_config is not None:
        checkpoint_every = run_config.checkpoint_every

    try:
        if args.resume is not None:
            # a resumed run's wiring is fixed by its record; flags that
            # would change it are rejected rather than silently ignored
            frozen = [flag for flag, value in
                      (("--sampler", args.sampler), ("--scale", args.scale),
                       ("--seed", args.seed),
                       ("--n-interior", args.n_interior),
                       ("--batch-size", args.batch_size),
                       ("--world-size", args.world_size),
                       ("--dp-shards", args.dp_shards))
                      if value is not None]
            if frozen:
                print(f"error: {', '.join(frozen)} cannot change on "
                      f"--resume (the stored record fixes them); "
                      f"--steps and --checkpoint-every may")
                return 2
            result = resume_run(store, args.resume, steps=args.steps,
                                checkpoint_every=checkpoint_every,
                                trace=args.trace)
        else:
            if run_config is not None:
                # CLI flags override the experiment file's [run] values
                if args.sampler is not None:
                    run_config.sampler = args.sampler
                if args.scale is not None:
                    run_config.scale = args.scale
                session = run_config.session()
                steps = (args.steps if args.steps is not None
                         else run_config.steps)
            else:
                session = repro.problem(args.problem,
                                        scale=args.scale or "smoke")
                steps = args.steps
                session.sampler(args.sampler or "sgm")
            if args.seed is not None:
                session.seed(args.seed)
            if args.n_interior is not None:
                session.n_interior(args.n_interior)
            if args.batch_size is not None:
                session.batch_size(args.batch_size)
            if args.compile:
                session.compile()
            if args.trace:
                session.trace()
            if args.world_size is not None:
                result = session.train(
                    steps=steps, store=store,
                    world_size=args.world_size, dp_shards=args.dp_shards,
                    backend=args.backend or "process")
            else:
                if args.dp_shards is not None or args.backend is not None:
                    print("error: --dp-shards/--backend need --world-size")
                    return 2
                result = session.train(steps=steps, store=store,
                                       checkpoint_every=checkpoint_every)
    except (KeyError, ValueError) as exc:
        # registry/store lookup failures already name the alternatives
        print(f"error: {exc.args[0]}")
        return 2
    _print_run_summary(result)
    if result.run_id is not None:
        print(f"recorded as {result.run_id} in {store.root}")
        if args.trace:
            print(f"profile with: repro runs --store {store.root} "
                  f"profile {result.run_id}")
    return 0


def _print_cell_utilization(obs_data, total_seconds):
    """Per-cell wall time vs sweep wall, from adopted ``suite.cell`` spans."""
    cells = [s for s in (obs_data or {}).get("spans", [])
             if s.get("name") == "suite.cell" and s.get("end") is not None]
    if not cells:
        return
    print("\nper-cell utilization (traced):")
    for cell in sorted(cells, key=lambda s: s["start"]):
        label = (cell.get("attrs") or {}).get("label", "?")
        seconds = cell["end"] - cell["start"]
        share = seconds / total_seconds if total_seconds else 0.0
        print(f"  {label:<44} {seconds:>8.2f}s  {share * 100:>5.1f}% of "
              f"sweep wall")


def _cmd_suite(args):
    from repro.experiments import resolve_methods, run_suite, suite_table
    samplers = (None if args.samplers is None
                else [s.strip() for s in args.samplers.split(",") if s.strip()])

    problem, config, methods, store = args.problem, None, samplers, args.store
    # precedence: --backend > --parallel shorthand > config file > serial
    backend = args.backend
    if backend is None and args.parallel:
        backend = "process"
    seed, steps = args.seed, args.steps
    max_workers = args.max_workers
    if args.config is not None:
        from repro.store import load_run_config
        if args.problem is not None:
            print("error: give either a problem name or --config, not both")
            return 2
        try:
            rc = load_run_config(args.config)
            config = rc.build_config()
            methods = resolve_methods(config, samplers or rc.samplers,
                                      n_interior=rc.n_interior,
                                      batch_size=rc.batch_size)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: {exc}")
            return 2
        problem = rc.problem
        # flags override the file's [run]/[suite] values
        if backend is None:
            backend = rc.backend
        if max_workers is None:
            max_workers = rc.max_workers
        if seed is None:
            seed = rc.seed
        if steps is None:
            steps = rc.steps
        if store is None:
            store = rc.store_root
    elif args.problem is None:
        print("error: need a problem name or --config "
              "(see `repro problems`)")
        return 2
    if backend is None:
        backend = "serial"

    try:
        suite = run_suite(problem, methods, backend=backend,
                          max_workers=max_workers,
                          workers_external=args.workers_external, seed=seed,
                          steps=steps, scale=args.scale, config=config,
                          verbose=True, store=store, compile=args.compile,
                          trace=args.trace)
    except (KeyError, ValueError) as exc:
        # registry lookups and method resolution name the problem themselves
        print(f"error: {exc.args[0]}")
        return 2
    print()
    print(suite_table(suite))
    print(f"\nsweep total: {suite.total_seconds:.1f}s "
          f"({suite.backend} backend, {len(suite)} methods)")
    if args.trace:
        _print_cell_utilization(suite.obs, suite.total_seconds)
    if store is not None:
        recorded = [m.run_id for m in suite if m.run_id]
        print(f"recorded {len(recorded)} runs in {store}")
    return 0


def _cmd_matrix(args):
    from repro.experiments import matrix_table, run_matrix
    samplers = (None if args.samplers is None
                else [s.strip() for s in args.samplers.split(",")
                      if s.strip()])
    backend = args.backend
    if backend is None:
        backend = "process" if args.parallel else "serial"
    try:
        matrix = run_matrix(
            args.problems, samplers, backend=backend,
            max_workers=args.max_workers,
            workers_external=args.workers_external,
            seed=args.seed, steps=args.steps,
            scale=args.scale, verbose=True, store=args.store,
            checkpoint_every=args.checkpoint_every, compile=args.compile,
            trace=args.trace)
    except (KeyError, ValueError) as exc:
        # registry lookups and grid resolution name the problem themselves
        print(f"error: {exc.args[0]}")
        return 2
    print()
    print(matrix_table(matrix))
    print(f"\nmatrix total: {matrix.total_seconds:.1f}s "
          f"({matrix.backend} backend, {len(matrix.problems)} problems, "
          f"{matrix.n_cells} cells)")
    if args.trace:
        _print_cell_utilization(matrix.obs, matrix.total_seconds)
    if args.store is not None:
        recorded = matrix.run_ids()
        print(f"recorded {len(recorded)} runs in {args.store}")
        print(f"render figures with: repro runs --store {args.store} plot")
    return 0


# ----------------------------------------------------------------------
# `repro runs` family: the run store's read side
# ----------------------------------------------------------------------
def _cmd_runs_list(store, args):
    records = store.runs(problem=args.problem, status=args.status)
    if not records:
        print(f"no runs in {store.root}")
        return 0
    header = (f"{'run id':<44} {'problem':<20} {'label':<12} "
              f"{'status':<12} {'steps':>7} {'wall[s]':>9} {'loss':>11}")
    print(header)
    print("-" * len(header))
    for record in records:
        meta = record.meta
        last = meta.get("last_step")
        wall = meta.get("wall_seconds")
        loss = meta.get("final_loss")
        print(f"{record.run_id:<44} {meta.get('problem', '?'):<20} "
              f"{record.label:<12} {record.status:<12} "
              f"{'-' if last is None else last + 1:>7} "
              f"{'-' if wall is None else format(wall, '.1f'):>9} "
              f"{'-' if loss is None else format(loss, '.4g'):>11}")
    return 0


def _cmd_runs_show(store, args):
    record = store.open(args.run_id)
    for key in ("run_id", "problem", "sampler", "label", "scale", "status",
                "seed", "steps", "n_interior", "batch_size", "validators",
                "checkpoint_every", "repro_version", "numpy_version",
                "python_version", "git_commit", "error"):
        if key in record.meta:
            print(f"{key:<18} {record.meta[key]}")
    history = record.history()
    print(f"{'records':<18} {len(history.steps)}")
    if history.steps:
        print(f"{'last step':<18} {history.steps[-1]}")
        print(f"{'wall seconds':<18} {history.wall_times[-1]:.2f}")
        print(f"{'final loss':<18} {history.losses[-1]:.6g}")
        for var in sorted(history.errors):
            err = history.min_error(var)
            if err == err:   # skip all-NaN series
                print(f"{'min err(' + var + ')':<18} {err:.4f}")
    checkpoints = record.checkpoints()
    print(f"{'checkpoints':<18} {[step for step, _ in checkpoints]}")
    stats = record.sampler_stats()
    if stats:
        print(f"{'sampler':<18} {stats.get('name')} "
              f"(probes={stats.get('probe_points')}, "
              f"refreshes={stats.get('refresh_count')}, "
              f"rebuilds={stats.get('rebuild_count')})")
    from repro.obs import format_metrics_summary, metrics_summary
    summary = format_metrics_summary(
        metrics_summary(record.metrics_snapshots()))
    if summary is not None:
        print(f"{'metrics':<18} {summary}")
    return 0


def _cmd_runs_profile(store, args):
    import json as _json

    from repro import obs
    if args.run_id == "latest":
        records = store.runs()
        if not records:
            print(f"no runs in {store.root}")
            return 2
        record = records[0]
    else:
        record = store.open(args.run_id)
    spans = record.spans()
    if not spans:
        print(f"error: run {record.run_id} recorded no spans; train it "
              f"with --trace (or Session.trace()) to profile it")
        return 2
    snapshots = record.metrics_snapshots()

    if args.format == "chrome":
        text = _json.dumps(obs.chrome_trace(spans))
        if args.out is not None:
            from pathlib import Path
            Path(args.out).write_text(text, encoding="utf-8")
            print(f"chrome trace for {record.run_id} written to "
                  f"{args.out} (open in Perfetto / chrome://tracing)")
        else:
            print(text)
        return 0

    lines = [f"profile of {record.run_id} ({record.label})", "",
             obs.render_tree(spans)]
    table = obs.phase_table(spans)
    if table["steps"]:
        lines += ["", "per-step phase breakdown:",
                  obs.render_phase_table(table)]
    overhead = obs.sampler_overhead(spans, snapshots)
    lines += ["",
              f"sampler overhead: {overhead['overhead_seconds']:.3f}s "
              f"(rebuild {overhead['rebuild_seconds']:.3f}s + refresh "
              f"{overhead['refresh_seconds']:.3f}s) vs "
              f"{overhead['train_seconds']:.3f}s training -> "
              f"{overhead['ratio'] * 100:.1f}%"]
    if overhead["probe_points"] is not None:
        lines.append(f"probe points: {overhead['probe_points']:.0f}")
    summary = obs.format_metrics_summary(obs.metrics_summary(snapshots))
    if summary is not None:
        lines.append(f"metrics: {summary}")
    text = "\n".join(lines)
    if args.out is not None:
        from pathlib import Path
        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"profile written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_runs_compare(store, args):
    from repro.store import compare_table
    if args.run_ids:
        records = [store.open(run_id) for run_id in args.run_ids]
    else:
        records = store.runs(problem=args.problem, status="completed")
        records = list(reversed(records))       # oldest first = baseline
    if not records:
        print("no runs to compare (give run ids or --problem)")
        return 2
    variables = (None if args.variables is None else
                 [v.strip() for v in args.variables.split(",") if v.strip()])
    print(compare_table(records, baseline=args.baseline,
                        variables=variables))
    return 0


def _cmd_runs_plot(store, args):
    from repro.store import curves_by_problem, render_curves, write_curves_csv
    if args.run_ids:
        records = [store.open(run_id) for run_id in args.run_ids]
    else:
        records = store.runs(problem=args.problem, status="completed")
        records = list(reversed(records))       # oldest first
    if not records:
        print("no runs to plot (give run ids or --problem)")
        return 2
    # error scales are only comparable within one workload: one chart
    # per problem, like `runs compare` (histories parse once and feed
    # both the charts and the CSV export)
    what = "training loss" if args.var == "loss" else f"err({args.var})"
    grouped = curves_by_problem(records, var=args.var)
    for problem, curves in grouped.items():
        print(render_curves(curves, var=args.var,
                            title=f"Convergence vs wall time ({problem}): "
                                  f"{what}",
                            width=args.width, height=args.height))
        print()
    if args.csv is not None:
        write_curves_csv(grouped, args.csv, var=args.var)
        print(f"series written to {args.csv}")
    return 0


def _cmd_runs_resume(store, args):
    from repro.store import resume_run
    result = resume_run(store, args.run_id, steps=args.steps,
                        trace=args.trace)
    _print_run_summary(result)
    print(f"resumed {args.run_id} to completion in {store.root}")
    return 0


def _cmd_runs_gc(store, args):
    removed = freed = 0
    if args.keep_best is not None:
        if args.all or args.status is not None:
            print("error: --keep-best replaces the status-based policies; "
                  "drop --all/--status")
            return 2
        from repro.store import keep_best_victims, run_score
        for record in keep_best_victims(store, args.keep_best):
            freed += record.size_bytes()
            cell = f"{record.meta.get('problem', '?')}:{record.label}"
            store.delete(record.run_id)
            print(f"removed {record.run_id} ({cell}, "
                  f"score {run_score(record):.4g})")
            removed += 1
        print(f"gc: kept the {args.keep_best} best completed run(s) per "
              f"problem x label cell; removed {removed} run(s), freed "
              f"{freed / 1024:.1f} KiB")
        return 0
    for record in store.runs():
        if args.all:
            doomed = True
        elif args.status is not None:
            doomed = record.status == args.status
        else:
            # default: dead runs with nothing to resume from.  Status
            # "running" is never gc'd by default — it may be a live
            # process that simply has not reached its first checkpoint
            # (use --status running for stores known to hold stale runs)
            doomed = (record.status in ("failed", "interrupted")
                      and record.latest_checkpoint() is None)
        if doomed:
            freed += record.size_bytes()
            store.delete(record.run_id)
            print(f"removed {record.run_id} ({record.status})")
            removed += 1
    print(f"gc: removed {removed} run(s), freed {freed / 1024:.1f} KiB")
    return 0


def _cmd_runs(args):
    from repro.store import RunStore
    store = RunStore(args.store)
    handlers = {"list": _cmd_runs_list, "show": _cmd_runs_show,
                "compare": _cmd_runs_compare, "plot": _cmd_runs_plot,
                "profile": _cmd_runs_profile,
                "resume": _cmd_runs_resume, "gc": _cmd_runs_gc}
    try:
        return handlers[args.runs_command](store, args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0]}")
        return 2


def _cmd_worker(args):
    from repro.exec import run_worker
    print(f"worker polling {args.store}/queue "
          f"(lease {args.lease_seconds:g}s, poll {args.poll:g}s; "
          f"ctrl-c to stop)")
    try:
        executed = run_worker(
            args.store, worker_id=args.worker_id,
            lease_seconds=args.lease_seconds, poll=args.poll,
            max_tasks=args.max_tasks, exit_when_idle=args.exit_when_idle,
            max_idle_seconds=args.max_idle_seconds, verbose=True)
    except KeyboardInterrupt:
        print("worker stopped (any leased job will be re-claimed after "
              "its lease expires)")
        return 130
    print(f"worker exit: executed {executed} task(s)")
    return 0


def _cmd_problems(args):
    # each entry's description is pulled from its registered builder's
    # docstring at registration time (see repro.api.register_problem), so
    # the listing always names what every problem/sampler actually is
    from repro.api import problem_registry, sampler_registry
    for registry in (problem_registry, sampler_registry):
        print(f"{registry.kind}s:")
        width = max(len(name) for name in registry.names()) + 2
        for name, entry in registry.items():
            print(f"  {name:<{width}} {entry.description}")
    return 0


def _cmd_lint(args):
    import json

    from repro.analysis import lint_paths, lint_project, rule_catalog

    if args.rules:
        if args.format == "json":
            print(json.dumps({"rules": rule_catalog()}, indent=2))
        else:
            for rule in rule_catalog():
                print(f"{rule['id']} [{rule['severity']}] {rule['title']}")
                print(f"    {rule['rationale']}")
                print(f"    fix: {rule['hint']}")
        return 0

    select = (None if args.select is None else
              [s.strip() for s in args.select.split(",") if s.strip()])
    if args.paths:
        violations = lint_paths(args.paths, select=select)
    else:
        violations = lint_project(select=select)

    if args.format == "json":
        print(json.dumps({
            "violations": [v.to_dict() for v in violations],
            "count": len(violations),
            "errors": sum(v.severity == "error" for v in violations),
            "warnings": sum(v.severity == "warning" for v in violations),
        }, indent=2))
    else:
        for violation in violations:
            print(violation.format())
        target = ", ".join(args.paths) if args.paths else "repro source tree"
        print(f"{len(violations)} finding(s) in {target}")
    return 1 if violations else 0


def _cmd_analyze(args):
    import json

    from repro.analysis import analyze_tape

    if args.problem == "all":
        from repro.api.registry import list_problems
        import repro.api.problems  # noqa: F401  (populate the registry)
        problems = list_problems()
    else:
        problems = [args.problem]

    reports = []
    for problem in problems:
        try:
            reports.append(analyze_tape(problem, sampler=args.sampler,
                                        scale=args.scale))
        except KeyError as exc:
            print(f"error: {exc.args[0]}")
            return 2
    if args.format == "json":
        print(json.dumps({"reports": [r.to_dict() for r in reports]},
                         indent=2))
    else:
        for report in reports:
            print(report.format())
            print()
        consistent = sum(r.shape_consistent for r in reports)
        print(f"{consistent}/{len(reports)} problem(s) shape-consistent")
    return 0 if all(r.shape_consistent for r in reports) else 1


def _cmd_train(args, problem):
    from repro.experiments.runner import _run_method
    if problem == "ldc":
        from repro.experiments import ldc_config, ldc_methods
        config = ldc_config(args.scale)
        methods = {m.kind: m for m in ldc_methods(config)}
        name = "ldc"
    else:
        from repro.experiments import annular_ring_config, ar_methods
        config = annular_ring_config(args.scale)
        methods = {m.kind: m for m in
                   ar_methods(config, include_plain_sgm=True)}
        name = "annular_ring"
    method = methods.get(args.method)
    if method is None:
        print(f"unknown method {args.method!r}; have {sorted(methods)}")
        return 2
    result = _run_method(name, config, method, steps=args.steps)
    _print_run_summary(result)
    return 0


def _cmd_solve(args, problem):
    if problem == "ldc":
        from repro.solvers import solve_ldc
        result = solve_ldc(reynolds=args.reynolds,
                           resolution=args.resolution)
        print(f"LDC Re={args.reynolds:g} on {args.resolution}^2: "
              f"{result.steps} steps, residual {result.final_residual:.2e}")
    else:
        from repro.solvers import solve_annulus
        result = solve_annulus(inner_radius=args.radius)
        print(f"annular ring r_i={args.radius:g}: {result.steps} steps, "
              f"residual {result.final_residual:.2e}")
    return 0


def build_parser():
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro", description="SGM-PINN reproduction toolbox")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library inventory")
    sub.add_parser("problems", help="list registered problems and samplers")

    # problem/sampler names are validated against the registries at run
    # time (see _cmd_run), keeping parser construction import-light and
    # letting plugin registrations appear without argparse changes
    p = sub.add_parser("run", help="train any registered problem with any "
                       "registered sampler (see `repro problems`), by name "
                       "or from a TOML/JSON experiment file")
    p.add_argument("problem", metavar="problem", nargs="?", default=None,
                   help="a registered problem, e.g. ldc, annular_ring, "
                        "burgers, poisson3d, inverse_burgers, ns3d "
                        "(or use --config)")
    p.add_argument("--config", default=None, metavar="FILE",
                   help="TOML/JSON experiment file ([run]/[config]/[store] "
                        "tables); implies recording into the run store")
    p.add_argument("--sampler", default=None,
                   help="a registered sampler (default: sgm, or the "
                        "experiment file's choice)")
    p.add_argument("--scale", default=None, choices=("smoke", "repro"),
                   help="config scale preset (default: smoke, or the "
                        "experiment file's choice)")
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--n-interior", type=int, default=None)
    p.add_argument("--batch-size", type=int, default=None)
    p.add_argument("--store", default=None, metavar="DIR",
                   help="record the run into this run store "
                        "(default with --config: [store].root or ./runs)")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   help="full-state checkpoint cadence in steps")
    p.add_argument("--resume", default=None, metavar="RUN_ID",
                   help="continue a stored run from its newest checkpoint")
    p.add_argument("--compile", action="store_true",
                   help="replay a compiled autodiff tape after tracing the "
                        "first steps (bit-identical; falls back to eager "
                        "if the graph refuses to compile)")
    p.add_argument("--trace", action="store_true",
                   help="record repro.obs spans/metrics; with a store the "
                        "record gains spans.jsonl + metrics.jsonl for "
                        "`repro runs profile`")
    p.add_argument("--world-size", type=int, default=None, metavar="N",
                   help="train data-parallel over N worker ranks hosting "
                        "--dp-shards logical shards; the trajectory is "
                        "bit-identical for every N (see docs/execution.md)")
    p.add_argument("--dp-shards", type=int, default=None, metavar="S",
                   help="logical shard count for --world-size runs "
                        "(default 4; must be >= the world size)")
    p.add_argument("--backend", default=None,
                   choices=("process", "queue", "thread"),
                   help="execution backend hosting --world-size ranks "
                        "(default process; queue needs a store)")

    p = sub.add_parser("runs", help="inspect the persistent run store")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="store root (default: $REPRO_RUNS_DIR or ./runs)")
    runs_sub = p.add_subparsers(dest="runs_command", required=True)
    q = runs_sub.add_parser("list", help="list stored runs")
    q.add_argument("--problem", default=None)
    q.add_argument("--status", default=None,
                   choices=("running", "completed", "interrupted", "failed"))
    q = runs_sub.add_parser("show", help="one run's metadata and summary")
    q.add_argument("run_id")
    q = runs_sub.add_parser("compare", help="Table-1-style speedup rows "
                            "from stored records")
    q.add_argument("run_ids", nargs="*",
                   help="runs to compare (default: all completed runs of "
                        "--problem)")
    q.add_argument("--problem", default=None)
    q.add_argument("--baseline", default=None,
                   help="run id or label whose best errors set the "
                        "thresholds (default: first run)")
    q.add_argument("--variables", default=None,
                   help="comma-separated error variables (default: all)")
    q = runs_sub.add_parser("plot", help="convergence-vs-time figure "
                            "rendered from stored records alone")
    q.add_argument("run_ids", nargs="*",
                   help="runs to plot (default: all completed runs of "
                        "--problem, one chart per problem)")
    q.add_argument("--problem", default=None)
    q.add_argument("--var", default="loss",
                   help="series to plot: 'loss' (default) or a validated "
                        "error variable like u, v, p")
    q.add_argument("--csv", default=None, metavar="FILE",
                   help="also write the series as long-format CSV")
    q.add_argument("--width", type=int, default=72)
    q.add_argument("--height", type=int, default=18)
    q = runs_sub.add_parser("profile", help="span tree, per-step phase "
                            "table, and sampler-overhead ratio of a traced "
                            "run")
    q.add_argument("run_id",
                   help="a stored run id, or 'latest' for the newest run")
    q.add_argument("--format", default="text", choices=("text", "chrome"),
                   help="'text' (default) or 'chrome' trace-event JSON "
                        "loadable in Perfetto")
    q.add_argument("--out", default=None, metavar="FILE",
                   help="write the report/trace to FILE instead of stdout")
    q = runs_sub.add_parser("resume", help="continue a run from its newest "
                            "checkpoint (bit-identical trajectory)")
    q.add_argument("run_id")
    q.add_argument("--steps", type=int, default=None,
                   help="new total step count (default: as launched)")
    q.add_argument("--trace", action="store_true",
                   help="trace the continued stretch (appends to the "
                   "record's spans.jsonl/metrics.jsonl)")
    q = runs_sub.add_parser("gc", help="delete failed/interrupted runs "
                            "that have no checkpoint to resume from")
    q.add_argument("--status", default=None,
                   choices=("running", "completed", "interrupted", "failed"),
                   help="instead delete every run with this status "
                        "(running runs may belong to a live process)")
    q.add_argument("--all", action="store_true",
                   help="delete every run in the store")
    q.add_argument("--keep-best", type=int, default=None, metavar="N",
                   help="retention for long sweeps: keep only the N "
                        "best-error completed runs per problem x label "
                        "cell, delete the other completed runs")

    p = sub.add_parser("suite", help="train a method sweep on any "
                       "registered problem on any execution backend")
    p.add_argument("problem", metavar="problem", nargs="?", default=None,
                   help="a registered problem, e.g. ldc, annular_ring "
                        "(or use --config)")
    p.add_argument("--config", default=None, metavar="FILE",
                   help="TOML/JSON experiment file; its [suite] table sets "
                        "samplers/backend/max_workers")
    p.add_argument("--samplers", default=None,
                   help="comma-separated registered samplers "
                        "(default: all registered)")
    p.add_argument("--backend", default=None,
                   help="execution backend: serial (default), process, or "
                        "queue (durable jobs in --store consumed by "
                        "`repro worker` daemons)")
    p.add_argument("--parallel", action="store_true",
                   help="shorthand for --backend process")
    p.add_argument("--workers-external", action="store_true",
                   help="queue backend: don't spawn a local worker fleet; "
                        "wait for separately launched `repro worker` "
                        "processes")
    p.add_argument("--max-workers", type=int, default=None)
    p.add_argument("--scale", default="smoke", choices=("smoke", "repro"))
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--store", default=None, metavar="DIR",
                   help="record every method into this run store")
    p.add_argument("--compile", action="store_true",
                   help="train every method with compiled-tape replay "
                        "(bit-identical; per-cell eager fallback)")
    p.add_argument("--trace", action="store_true",
                   help="trace every cell (per-cell utilization; workers "
                        "ship spans back across the pool)")

    p = sub.add_parser("matrix", help="cross-problem benchmark matrix: "
                       "problems x samplers cells on one shared backend")
    p.add_argument("--problems", default="all",
                   help="comma-separated registered problems, or 'all' "
                        "(default)")
    p.add_argument("--samplers", default=None,
                   help="comma-separated registered samplers "
                        "(default: all registered)")
    p.add_argument("--backend", default=None,
                   help="execution backend: serial (default), process, or "
                        "queue (durable jobs in --store consumed by "
                        "`repro worker` daemons)")
    p.add_argument("--parallel", action="store_true",
                   help="shorthand for --backend process")
    p.add_argument("--workers-external", action="store_true",
                   help="queue backend: don't spawn a local worker fleet; "
                        "wait for separately launched `repro worker` "
                        "processes")
    p.add_argument("--max-workers", type=int, default=None)
    p.add_argument("--scale", default="smoke", choices=("smoke", "repro"))
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--store", default=None, metavar="DIR",
                   help="record every cell into this single run store")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   help="full-state checkpoint cadence in steps")
    p.add_argument("--compile", action="store_true",
                   help="train every cell with compiled-tape replay "
                        "(bit-identical; per-cell eager fallback)")
    p.add_argument("--trace", action="store_true",
                   help="trace every cell (per-cell utilization; workers "
                        "ship spans back across the pool)")

    p = sub.add_parser("worker", help="queue-backend worker daemon: claim "
                       "and train jobs a `--backend queue` sweep enqueued "
                       "in a run store")
    p.add_argument("store", metavar="STORE",
                   help="run-store root whose queue/ directory holds the "
                        "job records")
    p.add_argument("--worker-id", default=None,
                   help="name recorded on claims and leases "
                        "(default: worker-<pid>-<random>)")
    p.add_argument("--lease-seconds", type=float, default=30.0,
                   help="claim lifetime between heartbeats; a crashed "
                        "worker's job is re-claimable this long after its "
                        "last renewal (default: 30)")
    p.add_argument("--poll", type=float, default=0.5,
                   help="idle sleep between claim attempts (default: 0.5)")
    p.add_argument("--max-tasks", type=int, default=None,
                   help="exit after executing this many tasks "
                        "(default: unlimited)")
    p.add_argument("--exit-when-idle", action="store_true",
                   help="exit once the queue holds no unfinished jobs")
    p.add_argument("--max-idle-seconds", type=float, default=None,
                   help="exit after this long without claiming anything "
                        "(default: wait forever)")

    for n in (1, 2):
        p = sub.add_parser(f"table{n}", help=f"regenerate Table {n}")
        p.add_argument("--scale", default="smoke",
                       choices=("smoke", "repro"))
        p.add_argument("--parallel", action="store_true",
                       help="shard the method sweep over a process pool")

    for problem in ("ldc", "ar"):
        p = sub.add_parser(problem, help=f"train one method on {problem}")
        p.add_argument("--method", default="sgm",
                       choices=("uniform", "mis", "sgm", "sgm_s"))
        p.add_argument("--scale", default="smoke",
                       choices=("smoke", "repro"))
        p.add_argument("--steps", type=int, default=None)

    p = sub.add_parser("lint", help="run the project linter over the repro "
                       "source tree (or given paths)")
    p.add_argument("paths", nargs="*", metavar="path",
                   help="files or directories to lint (default: the "
                        "installed repro package)")
    p.add_argument("--format", default="text", choices=("text", "json"))
    p.add_argument("--select", default=None, metavar="IDS",
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--rules", action="store_true",
                   help="print the rule catalog instead of linting")

    p = sub.add_parser("analyze", help="static analyses over built problems")
    analyze_sub = p.add_subparsers(dest="analyze_command", required=True)
    q = analyze_sub.add_parser("tape", help="trace one training step into "
                               "the autodiff graph and verify shape/dtype "
                               "consistency, dead nodes, re-materialized "
                               "constants, duplicate subgraphs")
    q.add_argument("--problem", default="all",
                   help="a registered problem, or 'all' (default)")
    q.add_argument("--sampler", default="uniform",
                   help="registered sampler to trace under "
                        "(default: uniform)")
    q.add_argument("--scale", default="smoke",
                   choices=("smoke", "repro", "paper"))
    q.add_argument("--format", default="text", choices=("text", "json"))

    p = sub.add_parser("solve-ldc", help="run the reference LDC solver")
    p.add_argument("--reynolds", type=float, default=100.0)
    p.add_argument("--resolution", type=int, default=65)
    p = sub.add_parser("solve-ar", help="run the reference annulus solver")
    p.add_argument("--radius", type=float, default=1.0)
    return parser


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "runs":
        return _cmd_runs(args)
    if args.command == "suite":
        return _cmd_suite(args)
    if args.command == "matrix":
        return _cmd_matrix(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "problems":
        return _cmd_problems(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command in ("table1", "table2"):
        return _cmd_table(args, int(args.command[-1]))
    if args.command in ("ldc", "ar"):
        return _cmd_train(args, args.command)
    if args.command == "solve-ldc":
        return _cmd_solve(args, "ldc")
    if args.command == "solve-ar":
        return _cmd_solve(args, "ar")
    return 2


if __name__ == "__main__":
    sys.exit(main())
