"""TOML reading/writing with no dependencies beyond the standard library.

``tomllib`` ships with Python 3.11+; on older interpreters a minimal
fallback parser covers the subset experiment configs actually use (dotted
tables, strings, booleans, integers, floats, and possibly multi-line
arrays).  Writing always goes through the local emitter — the standard
library has no TOML writer on any version.
"""

from __future__ import annotations

try:
    import tomllib as _tomllib
except ModuleNotFoundError:          # Python < 3.11
    _tomllib = None

__all__ = ["loads", "load", "dumps", "dump"]


def loads(text):
    """Parse a TOML document into nested dicts."""
    if _tomllib is not None:
        return _tomllib.loads(text)
    return _loads_fallback(text)


def load(path):
    """Parse the TOML file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


def dump(data, path):
    """Write nested dicts as a TOML file at ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(data))


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
def _format_scalar(value):
    if isinstance(value, bool):          # before int: bool is an int subclass
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        if "inf" in text or "nan" in text:
            raise ValueError(f"cannot serialise non-finite float {value!r}")
        return text
    if isinstance(value, str):
        escaped = (value.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\t", "\\t"))
        return f'"{escaped}"'
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_scalar(v) for v in value) + "]"
    raise TypeError(f"cannot serialise {type(value).__name__} to TOML")


def _emit_table(table, path, lines):
    scalars = {k: v for k, v in table.items() if not isinstance(v, dict)}
    subtables = {k: v for k, v in table.items() if isinstance(v, dict)}
    if path and (scalars or not subtables):
        if lines:
            lines.append("")
        lines.append("[" + ".".join(path) + "]")
    for key, value in scalars.items():
        if value is None:
            continue                     # TOML has no null; omit the key
        lines.append(f"{key} = {_format_scalar(value)}")
    for key, value in subtables.items():
        _emit_table(value, path + [key], lines)


def dumps(data):
    """Serialise nested dicts (str/bool/int/float/list leaves) to TOML."""
    lines = []
    _emit_table(dict(data), [], lines)
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Fallback parser (Python 3.9/3.10)
# ----------------------------------------------------------------------
def _strip_comment(line):
    in_basic = in_literal = False
    i = 0
    while i < len(line):
        char = line[i]
        if in_basic:
            if char == "\\":
                i += 1
            elif char == '"':
                in_basic = False
        elif in_literal:
            if char == "'":
                in_literal = False
        elif char == '"':
            in_basic = True
        elif char == "'":
            in_literal = True
        elif char == "#":
            return line[:i]
        i += 1
    return line


def _split_key(dotted):
    parts = [p.strip() for p in dotted.split(".")]
    if any(not p for p in parts):
        raise ValueError(f"malformed TOML key {dotted!r}")
    return [p.strip('"').strip("'") for p in parts]


def _parse_basic_string(text):
    out, i = [], 1
    escapes = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\",
               "b": "\b", "f": "\f"}
    while i < len(text):
        char = text[i]
        if char == "\\":
            i += 1
            if i >= len(text):
                raise ValueError("unterminated escape in TOML string")
            code = text[i]
            if code == "u":
                out.append(chr(int(text[i + 1:i + 5], 16)))
                i += 4
            elif code in escapes:
                out.append(escapes[code])
            else:
                raise ValueError(f"unsupported escape \\{code}")
        elif char == '"':
            return "".join(out), i + 1
        else:
            out.append(char)
        i += 1
    raise ValueError("unterminated TOML string")


def _parse_value(text):
    """Parse one TOML value at the start of ``text``; returns (value, end)."""
    text = text.lstrip()
    if not text:
        raise ValueError("empty TOML value")
    if text[0] == '"':
        return _parse_basic_string(text)
    if text[0] == "'":
        end = text.index("'", 1)
        return text[1:end], end + 1
    if text[0] == "[":
        values, i = [], 1
        while True:
            while i < len(text) and text[i] in " \t,":
                i += 1
            if i >= len(text):
                raise ValueError("unterminated TOML array")
            if text[i] == "]":
                return values, i + 1
            value, used = _parse_value(text[i:])
            values.append(value)
            i += used
    # bare scalar: read to the next delimiter
    end = len(text)
    for stop in (",", "]"):
        pos = text.find(stop)
        if pos != -1:
            end = min(end, pos)
    token, rest = text[:end].strip(), end
    if token == "true":
        return True, rest
    if token == "false":
        return False, rest
    try:
        return int(token.replace("_", ""), 0), rest
    except ValueError:
        pass
    try:
        return float(token.replace("_", "")), rest
    except ValueError:
        raise ValueError(
            f"unsupported TOML value {token!r} (the fallback parser for "
            f"Python < 3.11 handles strings, booleans, numbers, and arrays; "
            f"use Python 3.11+ for full TOML)") from None


def _loads_fallback(text):
    root, current = {}, None
    current = root
    pending = None                       # continuation for multi-line arrays
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if pending is not None:
            pending += " " + line
            if pending.count("[") > pending.count("]"):
                continue
            line = pending
            pending = None
        if not line:
            continue
        try:
            if line.startswith("["):
                if line.startswith("[["):
                    raise ValueError("arrays of tables are not supported")
                name = line[1:line.index("]")]
                current = root
                for part in _split_key(name):
                    current = current.setdefault(part, {})
                    if not isinstance(current, dict):
                        raise ValueError(f"table {name!r} clashes with a key")
            else:
                key, sep, rest = line.partition("=")
                if not sep:
                    raise ValueError(f"expected `key = value`, got {line!r}")
                rest = rest.strip()
                if rest.count("[") > rest.count("]"):
                    pending = line   # array continues on the next line(s)
                    continue
                value, _ = _parse_value(rest)
                target = current
                parts = _split_key(key.strip())
                for part in parts[:-1]:
                    target = target.setdefault(part, {})
                target[parts[-1]] = value
        except ValueError as exc:
            raise ValueError(f"TOML parse error on line {lineno}: {exc}") \
                from None
    if pending is not None:
        raise ValueError("unterminated multi-line array at end of document")
    return root
