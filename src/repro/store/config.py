"""Experiment files: TOML/JSON documents that resolve into registered runs.

Two layers share this module:

* :class:`RunConfig` — the *user-facing* experiment file (``repro run
  --config exp.toml``): names a registered problem/sampler, a scale preset,
  run sizes, and field-level overrides onto the problem's config dataclass.
* :func:`config_to_tables` / :func:`config_from_tables` — the *resolved*
  config round-trip the run store uses: every dataclass field is dumped into
  a run's ``config.toml`` so a resume rebuilds the exact configuration
  without re-reading the experiment file (which may have changed since).

Example experiment file::

    [run]
    problem = "burgers"
    sampler = "sgm"
    scale = "smoke"
    steps = 50
    seed = 0

    [config]            # overrides onto the problem's config dataclass
    record_every = 5

    [config.network]
    width = 32

    [store]
    root = "runs"
    checkpoint_every = 10

    [suite]             # optional: `repro suite --config`
    samplers = ["uniform", "sgm"]
    backend = "process"
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from . import toml_compat

__all__ = ["RunConfig", "load_run_config",
           "config_to_tables", "config_from_tables"]

_RUN_KEYS = {"problem", "sampler", "scale", "steps", "seed", "n_interior",
             "batch_size", "label"}
_STORE_KEYS = {"root", "checkpoint_every"}
_SUITE_KEYS = {"samplers", "backend", "executor", "max_workers"}


def _replace_validated(config, overrides, where):
    """``dataclasses.replace`` with unknown-field errors naming the file."""
    valid = {f.name for f in dataclasses.fields(config)}
    unknown = sorted(set(overrides) - valid)
    if unknown:
        raise ValueError(f"unknown {where} field(s) {unknown}; "
                         f"valid fields: {sorted(valid)}")
    coerced = {}
    for key, value in overrides.items():
        current = getattr(config, key)
        if isinstance(current, tuple) and isinstance(value, list):
            value = tuple(value)
        coerced[key] = value
    return dataclasses.replace(config, **coerced)


@dataclasses.dataclass
class RunConfig:
    """One parsed experiment file, ready to open a :class:`repro.Session`."""

    problem: str
    sampler: str = "sgm"
    scale: str = "repro"
    steps: int = None
    seed: int = None
    n_interior: int = None
    batch_size: int = None
    label: str = None
    overrides: dict = dataclasses.field(default_factory=dict)
    network: dict = dataclasses.field(default_factory=dict)
    store_root: str = None
    checkpoint_every: int = None
    samplers: list = None
    backend: str = "serial"
    max_workers: int = None
    path: str = None

    @property
    def executor(self):
        """Alias for :attr:`backend` (the field's pre-``repro.exec`` name)."""
        return self.backend

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data, path=None):
        """Build from the parsed ``[run]/[config]/[store]/[suite]`` tables."""
        run = dict(data.get("run") or {})
        if "problem" not in run:
            raise ValueError("experiment file needs `problem = ...` in its "
                             "[run] table")
        unknown = sorted(set(run) - _RUN_KEYS)
        if unknown:
            raise ValueError(f"unknown [run] key(s) {unknown}; "
                             f"valid keys: {sorted(_RUN_KEYS)}")
        config = dict(data.get("config") or {})
        network = config.pop("network", {})
        store = dict(data.get("store") or {})
        unknown = sorted(set(store) - _STORE_KEYS)
        if unknown:
            raise ValueError(f"unknown [store] key(s) {unknown}; "
                             f"valid keys: {sorted(_STORE_KEYS)}")
        suite = dict(data.get("suite") or {})
        unknown = sorted(set(suite) - _SUITE_KEYS)
        if unknown:
            raise ValueError(f"unknown [suite] key(s) {unknown}; "
                             f"valid keys: {sorted(_SUITE_KEYS)}")
        if "executor" in suite:
            # legacy spelling of [suite] backend; files may carry either,
            # but not both with different values
            legacy = suite.pop("executor")
            if suite.setdefault("backend", legacy) != legacy:
                raise ValueError(
                    f"[suite] sets backend={suite['backend']!r} and the "
                    f"legacy executor={legacy!r}; keep only backend")
        extra = sorted(set(data) - {"run", "config", "store", "suite"})
        if extra:
            raise ValueError(f"unknown top-level table(s) {extra}; "
                             f"expected [run], [config], [store], [suite]")
        return cls(problem=run["problem"],
                   sampler=run.get("sampler", "sgm"),
                   scale=run.get("scale", "repro"),
                   steps=run.get("steps"), seed=run.get("seed"),
                   n_interior=run.get("n_interior"),
                   batch_size=run.get("batch_size"),
                   label=run.get("label"),
                   overrides=config, network=dict(network),
                   store_root=store.get("root"),
                   checkpoint_every=store.get("checkpoint_every"),
                   samplers=suite.get("samplers"),
                   backend=suite.get("backend", "serial"),
                   max_workers=suite.get("max_workers"),
                   path=str(path) if path is not None else None)

    # ------------------------------------------------------------------
    def build_config(self):
        """The problem's config dataclass at ``scale`` with overrides applied.

        Problem and sampler names are validated against the registries here,
        so a bad experiment file fails before any training starts.
        """
        from ..api.registry import problem_registry, sampler_registry
        entry = problem_registry.get(self.problem)
        sampler_registry.get(self.sampler)
        config = entry.config_factory(self.scale)
        where = self.path or "experiment"
        if self.overrides:
            config = _replace_validated(config, self.overrides,
                                        f"{where} [config]")
        if self.network:
            net = _replace_validated(config.network, self.network,
                                     f"{where} [config.network]")
            config = dataclasses.replace(config, network=net)
        return config

    def session(self):
        """Open a configured :class:`repro.Session` for this experiment."""
        from ..api.session import Session
        session = Session(self.problem, scale=self.scale,
                          config=self.build_config())
        session.sampler(self.sampler)
        if self.seed is not None:
            session.seed(self.seed)
        if self.n_interior is not None:
            session.n_interior(self.n_interior)
        if self.batch_size is not None:
            session.batch_size(self.batch_size)
        if self.steps is not None:
            session.steps(self.steps)
        return session


def load_run_config(path):
    """Parse a TOML (or ``.json``) experiment file into a :class:`RunConfig`.

    Parameters
    ----------
    path : str or Path
        Experiment file with ``[run]`` / ``[config]`` / ``[store]`` /
        ``[suite]`` tables (``.json`` files carry the same structure as
        nested objects).  Unknown tables, keys, and config fields are
        rejected with the valid alternatives named.

    Returns
    -------
    :class:`RunConfig`
        Ready to open a configured session via :meth:`RunConfig.session`,
        or to resolve the problem's config via
        :meth:`RunConfig.build_config`.

    Examples
    --------
    >>> import pathlib, tempfile
    >>> from repro.store import load_run_config
    >>> path = pathlib.Path(tempfile.mkdtemp()) / "exp.toml"
    >>> _ = path.write_text('''
    ... [run]
    ... problem = "burgers"
    ... sampler = "sgm"
    ... scale = "smoke"
    ... steps = 5
    ... ''')
    >>> rc = load_run_config(path)
    >>> (rc.problem, rc.sampler, rc.steps)
    ('burgers', 'sgm', 5)
    """
    path = Path(path)
    if path.suffix.lower() == ".json":
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        data = toml_compat.load(path)
    return RunConfig.from_dict(data, path=path)


# ----------------------------------------------------------------------
# Resolved-config round-trip (the run store's config.toml)
# ----------------------------------------------------------------------
def config_to_tables(problem, config):
    """Dump a problem-config dataclass into TOML-ready nested dicts."""
    fields = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if dataclasses.is_dataclass(value):
            value = dataclasses.asdict(value)
        elif isinstance(value, tuple):
            value = list(value)
        fields[f.name] = value
    return {"problem": {"name": problem}, "config": fields}


def config_from_tables(data):
    """Rebuild the exact config dataclass from :func:`config_to_tables`."""
    from ..api.registry import problem_registry
    name = data["problem"]["name"]
    stored = dict(data["config"])
    network = stored.pop("network", {})
    entry = problem_registry.get(name)
    config = entry.config_factory(stored.get("scale", "repro"))
    config = _replace_validated(config, stored, f"stored config for {name}")
    if network:
        net = _replace_validated(config.network, network,
                                 f"stored network config for {name}")
        config = dataclasses.replace(config, network=net)
    return config
