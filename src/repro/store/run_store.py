"""The persistent run store: durable, resumable training-run records.

Each run owns one directory under the store root::

    runs/<run_id>/
        meta.json               identity, sizes, status, summary statistics
        config.toml             every field of the resolved config dataclass
        history.jsonl           append-only loss/error stream (one record per
                                line, flushed per record, so a killed run
                                loses at most the line being written)
        sampler.json            final sampler statistics (probe overhead etc.)
        checkpoints/
            step_00000039.npz   full training state after iteration 39

A checkpoint holds the network and optimizer state (via
:mod:`repro.training.checkpoint`), the LR-schedule state, and the state of
*every* sampler in the trainer (interior importance sampler and boundary
uniform samplers alike — each owns an RNG whose stream must continue
exactly), plus the step counter, elapsed wall seconds, and the validation
errors in effect.  Restoring all of it makes a resumed run's loss/error
trajectory bit-identical to an uninterrupted one.

Workers never share file handles: every run writes only inside its own
directory and ``meta.json`` updates are atomic (tmp + ``os.replace``), so a
process pool can record many runs into one store concurrently.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import uuid
from pathlib import Path

import numpy as np

from ..training.checkpoint import (apply_checkpoint, load_checkpoint_tree,
                                   save_checkpoint)
from ..training.history import History
from . import toml_compat
from .config import config_from_tables, config_to_tables

__all__ = ["RunStore", "RunRecord", "RunRecorder", "STORE_ROOT_ENV",
           "history_from_jsonl", "save_training_checkpoint",
           "load_training_checkpoint"]

#: environment variable overriding the default store root (``./runs``)
STORE_ROOT_ENV = "REPRO_RUNS_DIR"

_CKPT_PREFIX = "step_"


def _scalar(value):
    return value.item() if isinstance(value, np.ndarray) else value


def _atomic_write(path, text):
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _history_line(step, wall_time, loss, errors, probe_points):
    return json.dumps({
        "step": int(step), "wall_time": float(wall_time),
        "loss": float(loss), "probe_points": int(probe_points),
        "errors": {k: float(v) for k, v in (errors or {}).items()},
    })


def history_from_jsonl(path, label="run", max_step=None):
    """Reload a :class:`History` from a run's ``history.jsonl``.

    A torn trailing line (the process was killed mid-write) ends the read;
    ``max_step`` drops records past a checkpoint for resume truncation.
    """
    history = History(label=label)
    path = Path(path)
    if not path.exists():
        return history
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                break
            if max_step is not None and rec["step"] > max_step:
                continue
            history.record(rec["step"], rec["wall_time"], rec["loss"],
                           errors=rec.get("errors") or {},
                           probe_points=rec.get("probe_points", 0))
    return history


class _StreamingHistory(History):
    """History that mirrors every record onto an append-only JSONL file."""

    def __init__(self, label, path):
        super().__init__(label=label)
        self._path = Path(path)

    def record(self, step, wall_time, loss, errors=None, probe_points=0):
        super().record(step, wall_time, loss, errors=errors,
                       probe_points=probe_points)
        line = _history_line(step, wall_time, loss, errors, probe_points)
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def preload(self, history):
        """Adopt already-persisted records (no re-writing) before resuming."""
        for i in range(len(history.steps)):
            errors = {var: history.errors[var][i] for var in history.errors}
            History.record(self, history.steps[i], history.wall_times[i],
                           history.losses[i], errors=errors,
                           probe_points=history.probe_points[i])


# ----------------------------------------------------------------------
# Full-training-state checkpoints
# ----------------------------------------------------------------------
def save_training_checkpoint(path, trainer, step, elapsed, errors):
    """Persist everything a bit-identical resume needs after ``step``."""
    extra = {
        "step": int(step),
        "elapsed": float(elapsed),
        "errors_json": json.dumps({k: float(v)
                                   for k, v in (errors or {}).items()}),
        "samplers": {name: sampler.state_dict()
                     for name, sampler in trainer.samplers.items()},
    }
    if trainer.scheduler is not None and hasattr(trainer.scheduler,
                                                 "state_dict"):
        extra["scheduler"] = trainer.scheduler.state_dict()
    modules = getattr(trainer, "extra_modules", None)
    if modules:
        # inverse problems: the trainable PDE coefficients' state rides
        # along, keyed by module name (their optimizer moments are already
        # inside the Adam state, in net-then-extras parameter order)
        extra["modules"] = {name: module.state_dict()
                            for name, module in modules.items()}
    save_checkpoint(path, trainer.net, trainer.optimizer, extra=extra)


def load_training_checkpoint(path, trainer):
    """Restore a :func:`save_training_checkpoint`; returns
    ``(step, elapsed_seconds, last_errors)``."""
    tree = load_checkpoint_tree(path)
    extra = tree.get("extra", {})
    # validate BEFORE applying anything: a rejected checkpoint must not
    # leave the trainer half-restored (net overwritten, modules stale)
    modules = getattr(trainer, "extra_modules", {}) or {}
    stored_modules = extra.get("modules", {})
    if sorted(modules) != sorted(stored_modules):
        raise KeyError(f"checkpoint extra-module mismatch: trainer has "
                       f"{sorted(modules)}, checkpoint holds "
                       f"{sorted(stored_modules)}")
    apply_checkpoint(tree, trainer.net, trainer.optimizer)
    for name, state in stored_modules.items():
        modules[name].load_state_dict(state)
    for name, state in extra["samplers"].items():
        if name not in trainer.samplers:
            raise KeyError(f"checkpoint has sampler state for unknown "
                           f"constraint {name!r}")
        trainer.samplers[name].load_state_dict(state)
    if "scheduler" in extra and trainer.scheduler is not None:
        trainer.scheduler.load_state_dict(
            {k: _scalar(v) for k, v in extra["scheduler"].items()})
    step = int(_scalar(extra["step"]))
    elapsed = float(_scalar(extra["elapsed"]))
    errors = json.loads(str(_scalar(extra["errors_json"])))
    return step, elapsed, errors


# ----------------------------------------------------------------------
# Records and recorders
# ----------------------------------------------------------------------
class RunRecord:
    """Read-only view of one persisted run directory."""

    def __init__(self, path):
        self.path = Path(path)
        meta_path = self.path / "meta.json"
        if not meta_path.exists():
            raise KeyError(f"no run record at {self.path}")
        self.meta = json.loads(meta_path.read_text(encoding="utf-8"))

    @property
    def run_id(self):
        return self.meta["run_id"]

    @property
    def status(self):
        return self.meta.get("status", "unknown")

    @property
    def label(self):
        return self.meta.get("label", self.run_id)

    def history(self):
        """The run's full recorded :class:`History`."""
        return history_from_jsonl(self.path / "history.jsonl",
                                  label=self.label)

    def checkpoints(self):
        """``[(step, path)]`` sorted by step."""
        directory = self.path / "checkpoints"
        if not directory.is_dir():
            return []
        found = []
        for entry in sorted(directory.iterdir()):
            name = entry.name
            if name.startswith(_CKPT_PREFIX) and name.endswith(".npz"):
                found.append((int(name[len(_CKPT_PREFIX):-4]), entry))
        return sorted(found)

    def latest_checkpoint(self):
        """``(step, path)`` of the newest checkpoint, or ``None``."""
        checkpoints = self.checkpoints()
        return checkpoints[-1] if checkpoints else None

    def load_config(self):
        """Rebuild the run's exact config dataclass from ``config.toml``."""
        return config_from_tables(toml_compat.load(self.path / "config.toml"))

    def sampler_stats(self):
        path = self.path / "sampler.json"
        if not path.exists():
            return {}
        return json.loads(path.read_text(encoding="utf-8"))

    def spans(self):
        """Recorded ``spans.jsonl`` span dicts (``[]`` when not traced).

        Torn-tail tolerant like :meth:`history`: a run killed mid-flush
        still yields every complete line.
        """
        from ..obs import read_jsonl
        return read_jsonl(self.path / "spans.jsonl")

    def metrics_snapshots(self):
        """Recorded ``metrics.jsonl`` snapshots (``[]`` when not traced)."""
        from ..obs import read_jsonl
        return read_jsonl(self.path / "metrics.jsonl")

    def last_metrics(self):
        """The final metrics snapshot, or ``None`` when not traced."""
        snapshots = self.metrics_snapshots()
        return snapshots[-1] if snapshots else None

    def size_bytes(self):
        return sum(f.stat().st_size for f in self.path.rglob("*")
                   if f.is_file())

    def __repr__(self):
        return (f"RunRecord({self.run_id!r}, problem="
                f"{self.meta.get('problem')!r}, status={self.status!r})")


class RunRecorder:
    """Write-side companion: streams history, checkpoints, and status."""

    def __init__(self, store, path, meta, checkpoint_every):
        self.store = store
        self.path = Path(path)
        self.meta = meta
        self.checkpoint_every = max(1, int(checkpoint_every))

    @property
    def run_id(self):
        return self.meta["run_id"]

    def _write_meta(self):
        self.meta["updated_at"] = time.time()
        _atomic_write(self.path / "meta.json",
                      json.dumps(self.meta, indent=2) + "\n")

    # -- history -------------------------------------------------------
    def streaming_history(self, label, resume_from_step=None):
        """A :class:`History` that also appends every record to disk.

        On resume, records up to ``resume_from_step`` (exclusive) are kept:
        the JSONL file is truncated past the checkpoint (a killed run may
        have recorded steps newer than its last checkpoint, which the
        resumed run will replay) and the survivors are preloaded.
        """
        jsonl = self.path / "history.jsonl"
        history = _StreamingHistory(label, jsonl)
        if resume_from_step is not None:
            prior = history_from_jsonl(jsonl, label=label,
                                       max_step=resume_from_step - 1)
            lines = [_history_line(prior.steps[i], prior.wall_times[i],
                                   prior.losses[i],
                                   {v: prior.errors[v][i]
                                    for v in prior.errors},
                                   prior.probe_points[i])
                     for i in range(len(prior.steps))]
            _atomic_write(jsonl, "".join(line + "\n" for line in lines))
            history.preload(prior)
        return history

    # -- checkpoints ----------------------------------------------------
    def save_checkpoint(self, trainer, step, elapsed, errors):
        directory = self.path / "checkpoints"
        directory.mkdir(exist_ok=True)
        final = directory / f"{_CKPT_PREFIX}{step:08d}.npz"
        tmp = directory / f".tmp-{os.getpid()}.npz"
        save_training_checkpoint(tmp, trainer, step, elapsed, errors)
        os.replace(tmp, final)
        self.meta["last_checkpoint_step"] = int(step)
        self._write_meta()

    def checkpoint_hook(self, trainer):
        """A trainer ``step_hook`` writing a checkpoint every N steps."""
        def hook(step, trainer=trainer, clock=None, errors=None, **_):
            if (step + 1) % self.checkpoint_every == 0:
                elapsed = clock.elapsed() if clock is not None else 0.0
                self.save_checkpoint(trainer, step, elapsed, errors)
        return hook

    def load_latest_checkpoint(self, trainer):
        """Restore the newest checkpoint into ``trainer``; returns
        ``(step, elapsed, errors)`` or ``None`` when no checkpoint exists."""
        record = RunRecord(self.path)
        latest = record.latest_checkpoint()
        if latest is None:
            return None
        return load_training_checkpoint(latest[1], trainer)

    # -- lifecycle ------------------------------------------------------
    def finish(self, history, sampler):
        """Mark completed and persist summary statistics + sampler stats."""
        self.meta["status"] = "completed"
        if history.steps:
            self.meta["last_step"] = int(history.steps[-1])
            self.meta["wall_seconds"] = float(history.wall_times[-1])
            self.meta["final_loss"] = float(history.losses[-1])
            self.meta["min_errors"] = {
                var: history.min_error(var) for var in sorted(history.errors)
                if np.isfinite(history.min_error(var))}
        self._write_meta()
        labels = getattr(sampler, "labels", None)
        stats = {
            "name": getattr(sampler, "name", type(sampler).__name__),
            "probe_points": int(getattr(sampler, "probe_points", 0)),
            "refresh_count": int(getattr(sampler, "refresh_count", 0)),
            "rebuild_count": int(getattr(sampler, "rebuild_count", 0)),
            "n_clusters": (None if labels is None
                           else int(len(np.unique(np.asarray(labels))))),
        }
        _atomic_write(self.path / "sampler.json",
                      json.dumps(stats, indent=2) + "\n")

    def mark_stopped(self, exc):
        """Record why training ended early (resume stays possible)."""
        self.meta["status"] = ("interrupted"
                               if isinstance(exc, KeyboardInterrupt)
                               else "failed")
        self.meta["error"] = f"{type(exc).__name__}: {exc}"
        self._write_meta()


class RunStore:
    """A directory of persistent run records.

    Every run trained with ``store=`` persists a self-describing directory
    (``meta.json``, ``config.toml``, ``history.jsonl``, ``sampler.json``,
    ``checkpoints/``) under this root; the ``repro runs`` CLI family and
    :func:`repro.store.resume_run` read them back.

    Parameters
    ----------
    root : str or Path, optional
        Store root directory.  Defaults to ``$REPRO_RUNS_DIR`` when set,
        else ``./runs``.  Created lazily on the first recorded run.

    See Also
    --------
    repro.store.resume_run : continue a stored run from its newest
        checkpoint, bit-identically.
    RunRecord : the read-only view of one stored run.

    Examples
    --------
    >>> import tempfile
    >>> import repro
    >>> from repro.store import RunStore
    >>> store = RunStore(tempfile.mkdtemp())
    >>> result = (repro.problem("burgers", scale="smoke")
    ...           .sampler("uniform").n_interior(200).validators([])
    ...           .train(steps=2, store=store))
    >>> store.open(result.run_id).status
    'completed'
    >>> len(store)
    1
    """

    def __init__(self, root=None):
        if root is None:
            root = os.environ.get(STORE_ROOT_ENV, "runs")
        self.root = Path(root)

    @classmethod
    def coerce(cls, store):
        """Accept a :class:`RunStore`, a path, or ``None`` (default root)."""
        if isinstance(store, cls):
            return store
        return cls(store)

    # ------------------------------------------------------------------
    def _new_run_id(self, problem, sampler):
        stamp = time.strftime("%Y%m%d-%H%M%S")
        return f"{problem}-{sampler}-{stamp}-{uuid.uuid4().hex[:8]}"

    def begin_run(self, *, problem, config, sampler, seed, steps, label,
                  n_interior, batch_size, validators="default", run_id=None,
                  checkpoint_every=None):
        """Create a run directory and return its :class:`RunRecorder`."""
        run_id = run_id or self._new_run_id(problem, sampler)
        path = self.root / run_id
        if path.exists():
            raise FileExistsError(f"run {run_id!r} already exists in "
                                  f"{self.root}")
        (path / "checkpoints").mkdir(parents=True)
        if checkpoint_every is None:
            checkpoint_every = max(config.record_every, config.validate_every)
        meta = {
            "run_id": run_id,
            "problem": problem,
            "sampler": sampler,
            "label": label,
            "scale": getattr(config, "scale", None),
            "seed": int(seed),
            "steps": int(steps),
            "n_interior": int(n_interior),
            "batch_size": int(batch_size),
            "validators": validators,
            "checkpoint_every": int(checkpoint_every),
            "status": "running",
            "created_at": time.time(),
            **_environment_meta(),
        }
        recorder = RunRecorder(self, path, meta, checkpoint_every)
        toml_compat.dump(config_to_tables(problem, config),
                         path / "config.toml")
        recorder._write_meta()
        return recorder

    def resume_recorder(self, run_id, steps=None, checkpoint_every=None):
        """Re-open an existing run for continued recording.

        A ``completed`` run only re-opens when ``steps`` extends past its
        recorded total (continue a finished run further); interrupted /
        failed / stale-running runs always re-open.  ``checkpoint_every``
        overrides the cadence recorded at launch.
        """
        record = self.open(run_id)
        meta = dict(record.meta)
        if meta.get("status") == "completed":
            if steps is None or int(steps) <= int(meta.get("steps", 0)):
                raise ValueError(
                    f"run {run_id!r} already completed its "
                    f"{meta.get('steps')} steps; pass a larger step count "
                    f"to extend it")
        if steps is not None:
            meta["steps"] = int(steps)
        if checkpoint_every is not None:
            meta["checkpoint_every"] = int(checkpoint_every)
        meta["status"] = "running"
        meta.pop("error", None)
        recorder = RunRecorder(self, record.path, meta,
                               meta.get("checkpoint_every", 1))
        recorder._write_meta()
        return recorder

    # ------------------------------------------------------------------
    def open(self, run_id):
        """Open one record; raises ``KeyError`` naming known runs."""
        path = self.root / run_id
        if not (path / "meta.json").exists():
            known = [r.run_id for r in self.runs()]
            raise KeyError(f"unknown run {run_id!r} in {self.root}; "
                           f"known runs: {known}")
        return RunRecord(path)

    def runs(self, problem=None, status=None):
        """All records (newest first), optionally filtered."""
        if not self.root.is_dir():
            return []
        records = []
        for entry in sorted(self.root.iterdir()):
            if not (entry / "meta.json").exists():
                continue
            try:
                record = RunRecord(entry)
            except (KeyError, json.JSONDecodeError):
                continue
            if problem is not None and record.meta.get("problem") != problem:
                continue
            if status is not None and record.status != status:
                continue
            records.append(record)
        records.sort(key=lambda r: r.meta.get("created_at", 0.0),
                     reverse=True)
        return records

    def delete(self, run_id):
        """Remove one run directory entirely."""
        record = self.open(run_id)
        shutil.rmtree(record.path)

    def __contains__(self, run_id):
        return (self.root / run_id / "meta.json").exists()

    def __len__(self):
        return len(self.runs())

    def __repr__(self):
        return f"RunStore({str(self.root)!r})"


def _environment_meta():
    """Provenance: versions + git commit (best effort, never fatal)."""
    import platform

    import repro
    meta = {
        "repro_version": repro.__version__,
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
    }
    try:
        import subprocess
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__))).stdout.strip()
        if commit:
            meta["git_commit"] = commit
    except Exception:
        pass
    return meta
