"""Convergence-vs-time figures rendered from stored records alone.

The paper's Figures 2/3 plot validation error against training wall time
per method.  Every run record persists exactly that series — the
:class:`~repro.utils.TrainingClock` wall times streamed into
``history.jsonl`` — so the figures can be regenerated long after the
training processes exited, across runs from different days or machines::

    from repro.store import RunStore, render_convergence

    records = RunStore("runs").runs(problem="burgers", status="completed")
    print(render_convergence(records, var="u"))

``var="loss"`` (the default) plots the training loss; any validated
variable name plots its error series.  ``repro runs plot`` is the CLI
face of this module.
"""

from __future__ import annotations

import csv

from ..utils import ascii_plot
from .compare import _column_label, group_by_problem

__all__ = ["convergence_curves", "curves_by_problem", "render_curves",
           "render_convergence", "save_convergence_csv", "write_curves_csv"]

#: pseudo-variable selecting the training-loss series instead of an error
LOSS_VAR = "loss"


def _series_name(var):
    return LOSS_VAR if var == LOSS_VAR else f"err({var})"


def convergence_curves(records, var=LOSS_VAR):
    """``{label: (wall_times, values)}`` from stored histories alone.

    Parameters
    ----------
    records:
        Iterable of :class:`~repro.store.RunRecord` (no live trainer,
        network, or sampler objects are needed — only ``history.jsonl``).
    var:
        ``"loss"`` for the training-loss series, or a validated variable
        name (``"u"``, ``"v"``, ...) for its error series.
    """
    records = list(records)
    if not records:
        raise ValueError("no runs to plot")
    taken = set()
    curves = {}
    for record in records:
        label = _column_label(record, taken)
        history = record.history()
        if var == LOSS_VAR:
            curves[label] = (list(history.wall_times), list(history.losses))
        else:
            times, values = history.error_series(var)
            curves[label] = (list(times), list(values))
    return curves


def curves_by_problem(records, var=LOSS_VAR):
    """``{problem: {label: (wall_times, values)}}`` — each record's
    history is parsed exactly once; error scales only compare within one
    workload, so figures and CSV exports group the same way
    ``runs compare`` does."""
    return {problem: convergence_curves(group, var=var)
            for problem, group in group_by_problem(records).items()}


def render_curves(curves, var=LOSS_VAR, title="", logy=True, width=72,
                  height=18):
    """ASCII chart of prepared ``{label: (times, values)}`` curves."""
    series = [(times, values, label)
              for label, (times, values) in curves.items() if len(times)]
    if not series:
        return f"{title}\n(no data)"
    return ascii_plot(series, width=width, height=height, logy=logy,
                      title=title, ylabel=_series_name(var))


def render_convergence(records, var=LOSS_VAR, title=None, logy=True,
                       width=72, height=18):
    """ASCII convergence-vs-time chart for stored runs.

    Mirrors the paper's error-vs-wall-time figures; returns the rendered
    chart as text (also what ``repro runs plot`` prints).
    """
    records = list(records)
    curves = convergence_curves(records, var=var)
    if title is None:
        problems = sorted({r.meta.get("problem", "?") for r in records})
        title = (f"Convergence vs wall time ({', '.join(problems)}): "
                 f"{_series_name(var)}")
    return render_curves(curves, var=var, title=title, logy=logy,
                         width=width, height=height)


def write_curves_csv(grouped_curves, path, var=LOSS_VAR):
    """Write ``{problem: {label: (times, values)}}`` in long format
    (problem, label, wall_time, value); returns ``path``."""
    value_name = LOSS_VAR if var == LOSS_VAR else f"err_{var}"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["problem", "label", "wall_time", value_name])
        for problem, curves in grouped_curves.items():
            for label, (times, values) in curves.items():
                for t, v in zip(times, values):
                    writer.writerow([problem, label, t, v])
    return path


def save_convergence_csv(records, path, var=LOSS_VAR):
    """Persist the figure series of stored runs as CSV; returns the path.

    Rows carry the problem name, so a benchmark-matrix store exports with
    every series attributable to its workload.
    """
    return write_curves_csv(curves_by_problem(records, var=var), path,
                            var=var)
