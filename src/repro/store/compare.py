"""Cross-run comparison tables from stored records alone.

The paper's Table 1/2 compare methods by best validation error and by the
wall time each method needs to reach a reference method's best error.  All
of that derives from :class:`~repro.training.History`, which every run
record persists — so speedup tables can be regenerated long after the
training processes exited, across runs from different days or machines.
"""

from __future__ import annotations

from ..experiments.tables import format_table, suite_rows

__all__ = ["compare_by_problem", "compare_rows", "compare_table",
           "group_by_problem"]


def _column_label(record, taken):
    """Prefer the run label; disambiguate duplicates with the id tail."""
    label = record.label
    if label in taken:
        label = f"{label}#{record.run_id[-6:]}"
    taken.add(label)
    return label


def compare_rows(records, baseline=None, variables=None):
    """Table-1-style rows for stored runs.

    Parameters
    ----------
    records:
        Iterable of :class:`~repro.store.RunRecord`.
    baseline:
        A run id (or label) whose best errors set the time-to-reach
        thresholds and the speedup denominators; defaults to the first
        record.
    variables:
        Error variables to report (default: every validated variable).

    Returns
    -------
    ``(columns, rows)`` for :func:`~repro.experiments.format_table`:
    ``Min(var)`` rows, the time-to-threshold block against the baseline,
    per-run total wall seconds, and ``speedup(var)`` = baseline's
    time-to-its-own-best over each run's time-to-that-error.
    """
    records = list(records)
    if not records:
        raise ValueError("no runs to compare")
    taken = set()
    labelled = [(_column_label(r, taken), r) for r in records]
    histories = {label: r.history() for label, r in labelled}

    base_label = labelled[0][0]
    if baseline is not None:
        matches = [label for label, r in labelled
                   if baseline in (r.run_id, r.label, label)]
        if not matches:
            raise KeyError(f"baseline {baseline!r} is not among the compared "
                           f"runs: {[l for l, _ in labelled]}")
        base_label = matches[0]

    columns, rows = suite_rows(histories, variables=variables,
                               reference_labels=[base_label])
    if variables is None:
        variables = sorted({var for history in histories.values()
                            for var in history.errors
                            if len(history.error_series(var)[1])})

    wall = {label: (history.wall_times[-1] if history.wall_times else None)
            for label, history in histories.items()}
    rows.append(("train wall [s]", wall))

    base = histories[base_label]
    for var in variables:
        threshold = base.min_error(var)
        base_time = base.time_to_reach(var, threshold)
        speedups = {}
        for label, history in histories.items():
            reached = history.time_to_reach(var, threshold)
            speedups[label] = (None if reached is None or base_time is None
                               or reached <= 0.0
                               else base_time / reached)
        rows.append((f"speedup({var}) vs {base_label}", speedups))
    return columns, rows


def group_by_problem(records):
    """``{problem: [records]}`` preserving each group's record order."""
    grouped = {}
    for record in records:
        grouped.setdefault(record.meta.get("problem", "?"),
                           []).append(record)
    return grouped


def compare_by_problem(records, baseline=None, variables=None):
    """Cross-problem grouping of :func:`compare_rows`.

    Error thresholds and speedup denominators are only meaningful within
    one workload, so a record set spanning several problems (a benchmark
    matrix store) is split per problem first.  ``baseline`` — a run id or
    label — is matched within each group; groups it does not name fall
    back to their first record.

    Returns
    -------
    ``{problem: (columns, rows)}`` in first-seen problem order.
    """
    tables = {}
    for problem, group in group_by_problem(records).items():
        base = baseline
        if base is not None and not any(
                base in (r.run_id, r.label) for r in group):
            base = None
        tables[problem] = compare_rows(group, baseline=base,
                                       variables=variables)
    return tables


def compare_table(records, baseline=None, variables=None, title=None):
    """Render stored-run comparisons as aligned text.

    Records spanning several problems render one table per problem (via
    :func:`compare_by_problem`) — speedups never compare across
    workloads.
    """
    records = list(records)
    grouped = compare_by_problem(records, baseline=baseline,
                                 variables=variables)
    blocks = []
    for problem, (columns, rows) in grouped.items():
        block_title = (f"Stored runs ({problem}): min errors, "
                       f"time-to-threshold [s], speedups")
        blocks.append(format_table(block_title, columns, rows))
    text = "\n\n".join(blocks)
    if title is not None:
        text = f"{title}\n{text}"
    return text
