"""Resume a stored run from its latest checkpoint.

The record carries everything a reconstruction needs — the resolved config
(``config.toml``), the run seed, dataset/batch sizes, and the sampler kind —
so :func:`resume_run` rebuilds the problem exactly as the original process
did, restores the full training state from the newest checkpoint, and
continues the loop.  The combined loss/error trajectory is bit-identical to
an uninterrupted run (wall times continue approximately, via the elapsed
seconds stored in the checkpoint).
"""

from __future__ import annotations

import numpy as np

__all__ = ["resume_run"]


def resume_run(store, run_id, steps=None, checkpoint_every=None,
               trace=False):
    """Continue ``run_id`` to its configured step count.

    Parameters
    ----------
    store:
        A :class:`~repro.store.RunStore` (or store root path).
    run_id:
        The run to continue.  Runs in any non-``completed`` status resume;
        a ``completed`` run re-opens only when ``steps`` extends past its
        recorded total.  Without a checkpoint the run restarts from step 0
        (nothing was persisted to continue from, but the record is reused).
    steps:
        Optional new total step count (e.g. extend a finished run);
        defaults to the step count recorded at launch.
    checkpoint_every:
        Optional new checkpoint cadence for the continued stretch
        (default: the cadence recorded at launch).
    trace:
        Record :mod:`repro.obs` spans/metrics for the continued stretch;
        appended to the record's existing ``spans.jsonl``/``metrics.jsonl``
        (if any), so a run profiled across interruptions accumulates one
        stream.

    Returns
    -------
    :class:`~repro.api.RunResult` with the *full* history (pre-interruption
    records plus the resumed tail).
    """
    from ..api.problems import build_problem
    from ..api.session import run_problem
    from .run_store import RunStore

    store = RunStore.coerce(store)
    record = store.open(run_id)
    meta = record.meta
    if meta.get("validators") == "custom":
        raise ValueError(
            f"run {run_id!r} trained with caller-supplied validators, which "
            f"are not persisted; re-run instead of resuming")
    config = record.load_config()
    validators = [] if meta.get("validators") == "none" else None
    prob = build_problem(meta["problem"], config, meta["n_interior"],
                         np.random.default_rng(meta["seed"]))
    return run_problem(
        prob, config, sampler=meta["sampler"],
        batch_size=meta["batch_size"], seed=meta["seed"],
        steps=int(steps) if steps is not None else meta["steps"],
        label=meta.get("label"), validators=validators,
        store=store, run_id=run_id, resume=True,
        checkpoint_every=checkpoint_every, trace=trace)
