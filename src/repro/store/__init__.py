"""Persistent run store: durable, resumable, comparable training runs.

The paper's headline claim is wall-clock speedup measured over runs that
span days; credible reproduction needs run records that survive the
process.  This package provides:

* :class:`RunStore` / :class:`RunRecord` — a directory-backed store where
  every training run persists its resolved config (TOML), seed and
  provenance metadata, an append-only JSONL loss/error stream, final
  sampler statistics, and periodic full-state checkpoints;
* :class:`RunConfig` / :func:`load_run_config` — TOML/JSON experiment files
  that resolve into the registered problem/sampler machinery
  (``repro run --config exp.toml``);
* :func:`resume_run` — continue a stored run from its newest checkpoint
  with a bit-identical loss trajectory;
* :func:`compare_rows` / :func:`compare_table` — Table-1-style cross-run
  speedup tables computed from stored records alone, grouped per problem
  when the store spans a benchmark matrix (``repro runs compare``);
* :func:`render_convergence` / :func:`save_convergence_csv` —
  convergence-vs-time figures (loss or validation error against the
  recorded wall clock) regenerated from ``history.jsonl`` alone
  (``repro runs plot``).

Typical use::

    import repro
    from repro.store import RunStore, resume_run

    store = RunStore("runs")
    result = (repro.problem("burgers", scale="smoke")
              .sampler("sgm")
              .train(steps=200, store=store))
    # later — possibly from another process entirely
    resumed = resume_run(store, result.run_id, steps=400)
"""

from .compare import (compare_by_problem, compare_rows, compare_table,
                      group_by_problem)
from .config import (RunConfig, config_from_tables, config_to_tables,
                     load_run_config)
from .figures import (convergence_curves, curves_by_problem, render_curves,
                      render_convergence, save_convergence_csv,
                      write_curves_csv)
from .resume import resume_run
from .retention import keep_best_victims, run_score
from .run_store import (STORE_ROOT_ENV, RunRecord, RunRecorder, RunStore,
                        history_from_jsonl, load_training_checkpoint,
                        save_training_checkpoint)

__all__ = [
    "RunStore", "RunRecord", "RunRecorder", "STORE_ROOT_ENV",
    "RunConfig", "load_run_config", "config_to_tables", "config_from_tables",
    "resume_run", "keep_best_victims", "run_score",
    "compare_rows", "compare_table", "compare_by_problem",
    "group_by_problem", "history_from_jsonl",
    "convergence_curves", "curves_by_problem", "render_curves",
    "render_convergence", "save_convergence_csv", "write_curves_csv",
    "save_training_checkpoint", "load_training_checkpoint",
]
