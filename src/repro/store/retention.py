"""Retention policies for long sweeps (``repro runs gc --keep-best``).

A benchmark matrix re-run nightly fills a store with hundreds of
completed records, most of them strictly worse than an earlier run of
the same cell.  :func:`keep_best_victims` implements the retention rule
the ROADMAP carries for training-as-a-service: group completed runs by
their (problem, label) cell and keep only the N best per group, where
"best" is the smallest recorded minimum validation error (falling back
to final loss for runs trained without validators).  Non-completed runs
— running, interrupted, failed — are never victims: they are either
alive or the default gc's business.
"""

from __future__ import annotations

import math

__all__ = ["keep_best_victims", "run_score"]


def run_score(record):
    """The smaller-is-better quality score used to rank a cell's runs.

    The minimum over the run's ``min_errors`` (each validator's best
    error); runs without validation fall back to ``final_loss``; runs
    with neither sort last (pure-infinite score — first to delete).
    """
    errors = record.meta.get("min_errors") or {}
    finite = [float(v) for v in errors.values() if math.isfinite(float(v))]
    if finite:
        return min(finite)
    loss = record.meta.get("final_loss")
    return float(loss) if loss is not None else math.inf


def keep_best_victims(store, keep):
    """Completed runs beyond the ``keep`` best of their (problem, label).

    Returns records to delete, in the store's newest-first order.  Within
    a cell, runs rank by :func:`run_score` ascending with ``run_id`` as
    the deterministic tie-break; the first ``keep`` survive.
    """
    keep = int(keep)
    if keep < 1:
        raise ValueError(f"--keep-best needs at least 1, got {keep}")
    cells = {}
    for record in store.runs(status="completed"):
        key = (record.meta.get("problem"), record.label)
        cells.setdefault(key, []).append(record)
    survivors = set()
    for records in cells.values():
        ranked = sorted(records, key=lambda r: (run_score(r), r.run_id))
        survivors.update(r.run_id for r in ranked[:keep])
    return [record for record in store.runs(status="completed")
            if record.run_id not in survivors]
