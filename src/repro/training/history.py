"""Training history records and the paper's summary statistics.

Table 1/2 of the paper report, per method: the minimum validation error per
variable (``Min(u)`` etc.) and the wall time needed to reach reference
thresholds (``T(U4000_u)`` = time to reach U4000's best u-error).
:class:`History` captures the raw series and computes both statistics.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field

import numpy as np

__all__ = ["History"]


@dataclass
class History:
    """Time series of one training run."""

    label: str = "run"
    steps: list = field(default_factory=list)
    wall_times: list = field(default_factory=list)
    losses: list = field(default_factory=list)
    errors: dict = field(default_factory=dict)      # var -> list (NaN-padded)
    probe_points: list = field(default_factory=list)

    def record(self, step, wall_time, loss, errors=None, probe_points=0):
        """Append one record; ``errors`` maps variable -> relative L2."""
        self.steps.append(int(step))
        self.wall_times.append(float(wall_time))
        self.losses.append(float(loss))
        self.probe_points.append(int(probe_points))
        errors = errors or {}
        known = set(self.errors) | set(errors)
        for var in known:
            series = self.errors.setdefault(var, [np.nan] * (len(self.steps) - 1))
            series.append(float(errors.get(var, np.nan)))

    # ------------------------------------------------------------------
    # Summary statistics (Table 1 / Table 2 semantics)
    # ------------------------------------------------------------------
    def error_series(self, var):
        """``(wall_times, errors)`` with NaN records dropped."""
        values = np.asarray(self.errors.get(var, []), dtype=np.float64)
        times = np.asarray(self.wall_times[: len(values)], dtype=np.float64)
        keep = np.isfinite(values)
        return times[keep], values[keep]

    def min_error(self, var):
        """Best (minimum) validation error achieved for ``var``."""
        _, values = self.error_series(var)
        return float(values.min()) if len(values) else float("nan")

    def value_at_min(self, var, other):
        """Value of ``other``'s error at the record where ``var`` is minimal
        (Table 2 reports ``p`` at ``Min(v)``)."""
        times_v, values_v = self.error_series(var)
        if not len(values_v):
            return float("nan")
        t_star = times_v[np.argmin(values_v)]
        times_o, values_o = self.error_series(other)
        if not len(values_o):
            return float("nan")
        idx = np.argmin(np.abs(times_o - t_star))
        return float(values_o[idx])

    def time_to_reach(self, var, threshold):
        """First wall time at which the error drops to ``threshold`` or
        below; ``None`` when never reached (a blank in the paper's tables)."""
        times, values = self.error_series(var)
        hit = np.flatnonzero(values <= threshold)
        return float(times[hit[0]]) if len(hit) else None

    # ------------------------------------------------------------------
    def to_csv(self, path):
        """Write the full series to ``path``."""
        variables = sorted(self.errors)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["step", "wall_time", "loss", "probe_points"]
                            + [f"err_{v}" for v in variables])
            for i in range(len(self.steps)):
                row = [self.steps[i], self.wall_times[i], self.losses[i],
                       self.probe_points[i]]
                row += [self.errors[v][i] if i < len(self.errors[v])
                        else np.nan for v in variables]
                writer.writerow(row)

    @classmethod
    def from_csv(cls, path, label="run"):
        """Load a history previously written by :meth:`to_csv`."""
        history = cls(label=label)
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            variables = [h[4:] for h in header[4:]]
            for row in reader:
                errors = {v: float(e) for v, e in zip(variables, row[4:])}
                history.record(int(row[0]), float(row[1]), float(row[2]),
                               errors=errors, probe_points=int(row[3]))
        return history
