"""PINN training: constraints, trainer, validators, history records."""

from .constraints import (Constraint, InteriorConstraint,
                          BoundaryConstraint, DataConstraint)
from .history import History
from .validators import CoefficientValidator, PointwiseValidator, relative_l2
from .trainer import Trainer
from .checkpoint import save_checkpoint, load_checkpoint

__all__ = [
    "Constraint", "InteriorConstraint", "BoundaryConstraint",
    "DataConstraint",
    "History", "CoefficientValidator", "PointwiseValidator", "relative_l2",
    "Trainer",
    "save_checkpoint", "load_checkpoint",
]
