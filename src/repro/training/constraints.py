"""Training constraints: interior PDE residuals and boundary conditions.

A constraint owns a point cloud, knows how to evaluate its residuals on a
batch of indices, and carries the loss weight used in the aggregate (eq. 4).
Interior constraints support Modulus-style SDF weighting (residuals near
walls are down-weighted by the wall distance, as in the LDC example the
paper benchmarks).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..pde import Fields

__all__ = ["Constraint", "InteriorConstraint", "BoundaryConstraint",
           "DataConstraint"]


class Constraint:
    """Base: point cloud + batch size + residual evaluation.

    ``field_sources`` maps extra field names to callables
    ``(coords, params) -> (n,)`` evaluated per batch and registered as
    constant (non-trainable) fields — e.g. a prescribed advecting velocity
    the PDE reads alongside the network outputs.
    """

    def __init__(self, name, cloud, output_names, batch_size, weight=1.0,
                 spatial_names=("x", "y"), dtype=np.float64,
                 field_sources=None):
        self.name = name
        self.cloud = cloud
        self.output_names = tuple(output_names)
        self.batch_size = int(batch_size)
        self.weight = float(weight)
        self.spatial_names = tuple(spatial_names)
        self.dtype = np.dtype(dtype)
        self.field_sources = dict(field_sources or {})
        overlap = set(self.field_sources) & set(self.output_names)
        if overlap:
            raise KeyError(f"field_sources shadow network outputs: "
                           f"{sorted(overlap)}")
        self._features = cloud.features().astype(self.dtype)

    def set_dtype(self, dtype):
        """Switch the working precision of this constraint's features."""
        self.dtype = np.dtype(dtype)
        self._features = self.cloud.features().astype(self.dtype)

    @property
    def n_points(self):
        """Dataset size this constraint samples from."""
        return len(self.cloud)

    def build_fields(self, net, indices):
        """Forward the network on a batch and register outputs as fields."""
        fields = Fields.from_features(self._features[indices],
                                      spatial_names=self.spatial_names,
                                      param_names=self.cloud.param_names)
        outputs = net(fields.input_tensor())
        for i, name in enumerate(self.output_names):
            fields.register(name, outputs[:, i:i + 1])
        for name, source in self.field_sources.items():
            value = np.asarray(source(self.cloud.coords[indices],
                                      self.cloud.params[indices]),
                               dtype=self.dtype).reshape(-1, 1)
            fields.register(name, Tensor(value))
        if self.cloud.sdf is not None:
            fields.register("sdf",
                            Tensor(self.cloud.sdf[indices].astype(self.dtype)))
        return fields

    def residuals(self, net, indices):
        """Return ``(dict name -> (n,1) residual tensor, per-sample weight)``."""
        raise NotImplementedError

    def sample_weight_for(self, indices):
        """Per-sample loss weight array for a batch (``None`` = uniform).

        The single source of truth for both the eager loss assembly and the
        replay engine's per-step weight inputs; subclasses with weighting
        (SDF-weighted interiors) override it and :meth:`residuals` calls it.
        """
        return None

    def replay_inputs(self, indices):
        """Per-step input arrays, in the order :meth:`residuals` wraps them.

        The replay compiler binds each array created while tracing a step —
        batch coordinate columns, source fields, SDF batches, targets — to
        an input slot; this method rebuilds the same arrays for a new batch
        so a compiled tape can be re-run without touching the graph code.
        Order and bitwise content must mirror :meth:`build_fields` (and the
        subclass's :meth:`residuals`) exactly; the trainer verifies that at
        trace time and refuses to compile on any mismatch.
        """
        batch = self._features[indices]
        names = tuple(self.spatial_names) + tuple(self.cloud.param_names)
        arrays = [batch[:, i:i + 1].copy() for i in range(len(names))]
        for name, source in self.field_sources.items():
            arrays.append(np.asarray(source(self.cloud.coords[indices],
                                            self.cloud.params[indices]),
                                     dtype=self.dtype).reshape(-1, 1))
        if self.cloud.sdf is not None:
            arrays.append(self.cloud.sdf[indices].astype(self.dtype))
        return arrays


class InteriorConstraint(Constraint):
    """PDE residuals on interior collocation points.

    Parameters
    ----------
    pde:
        A :class:`repro.pde.PDE` instance.
    sdf_weighting:
        Weight each sample's residual by its wall distance (Modulus default
        for the paper's examples).
    residual_weights:
        Optional per-residual-name scale factors.
    """

    def __init__(self, name, cloud, pde, batch_size, weight=1.0,
                 sdf_weighting=True, residual_weights=None,
                 spatial_names=("x", "y"), field_sources=None):
        super().__init__(name, cloud, pde.output_names, batch_size,
                         weight=weight, spatial_names=spatial_names,
                         field_sources=field_sources)
        self.pde = pde
        self.sdf_weighting = bool(sdf_weighting) and cloud.sdf is not None
        self.residual_weights = dict(residual_weights or {})

    def residuals(self, net, indices):
        fields = self.build_fields(net, indices)
        raw = self.pde.residuals(fields)
        scaled = {}
        for name, tensor in raw.items():
            factor = self.residual_weights.get(name, 1.0)
            scaled[name] = tensor if factor == 1.0 else tensor * factor
        return scaled, self.sample_weight_for(indices)

    def sample_weight_for(self, indices):
        if not self.sdf_weighting:
            return None
        # cast to the constraint's working precision: the raw sdf is
        # float64 and would silently upcast a float32 loss graph
        return np.maximum(self.cloud.sdf[indices],
                          0.0).astype(self.dtype, copy=False)

    def replay_inputs(self, indices):
        arrays = super().replay_inputs(indices)
        batch = self._features[indices]
        names = tuple(self.spatial_names) + tuple(self.cloud.param_names)
        columns = {name: batch[:, i:i + 1] for i, name in enumerate(names)}
        arrays.extend(self.pde.replay_arrays(columns))
        return arrays


class BoundaryConstraint(Constraint):
    """Dirichlet-type boundary conditions ``out[var] = target``.

    Parameters
    ----------
    targets:
        Mapping variable name -> constant or callable
        ``(coords, params) -> (n,) array``.
    """

    def __init__(self, name, cloud, output_names, targets, batch_size,
                 weight=1.0, spatial_names=("x", "y")):
        super().__init__(name, cloud, output_names, batch_size,
                         weight=weight, spatial_names=spatial_names)
        unknown = set(targets) - set(self.output_names)
        if unknown:
            raise KeyError(f"targets reference unknown outputs: {unknown}")
        self.targets = dict(targets)

    def residuals(self, net, indices):
        fields = self.build_fields(net, indices)
        coords = self.cloud.coords[indices]
        params = self.cloud.params[indices]
        out = {}
        for var, target in self.targets.items():
            if callable(target):
                value = np.asarray(target(coords, params),
                                   dtype=self.dtype).reshape(-1, 1)
            else:
                value = np.full((len(coords), 1), float(target),
                                dtype=self.dtype)
            out[f"{self.name}_{var}"] = fields.get(var) - Tensor(value)
        return out, None

    def replay_inputs(self, indices):
        arrays = super().replay_inputs(indices)
        coords = self.cloud.coords[indices]
        params = self.cloud.params[indices]
        for target in self.targets.values():
            if callable(target):
                arrays.append(np.asarray(target(coords, params),
                                         dtype=self.dtype).reshape(-1, 1))
            else:
                arrays.append(np.full((len(coords), 1), float(target),
                                      dtype=self.dtype))
        return arrays


class DataConstraint(Constraint):
    """Measurement-data fitting: ``out[var] = measured value`` per point.

    Covers the "measurement data" term of the loss in eq. 4 and the inverse
    / data-assimilation use case from the paper's introduction: sparse
    sensor readings pin the solution while the PDE residual fills the rest
    of the domain.

    Parameters
    ----------
    values:
        Mapping variable name -> ``(n,)`` measured values aligned with the
        cloud's rows.
    """

    def __init__(self, name, cloud, output_names, values, batch_size,
                 weight=1.0, spatial_names=("x", "y")):
        super().__init__(name, cloud, output_names, batch_size,
                         weight=weight, spatial_names=spatial_names)
        self.values = {}
        for var, array in values.items():
            if var not in self.output_names:
                raise KeyError(f"measured variable {var!r} is not a "
                               f"network output")
            array = np.asarray(array, dtype=np.float64).reshape(-1, 1)
            if len(array) != len(cloud):
                raise ValueError(f"{var}: {len(array)} values for "
                                 f"{len(cloud)} points")
            self.values[var] = array

    def residuals(self, net, indices):
        fields = self.build_fields(net, indices)
        out = {}
        for var, array in self.values.items():
            target = Tensor(array[indices].astype(self.dtype))
            out[f"{self.name}_{var}"] = fields.get(var) - target
        return out, None

    def replay_inputs(self, indices):
        arrays = super().replay_inputs(indices)
        for array in self.values.values():
            arrays.append(array[indices].astype(self.dtype))
        return arrays
