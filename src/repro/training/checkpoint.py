"""Training checkpoints: persist network + optimizer state to one ``.npz``.

Long PINN runs (the paper's span days) need resumable state; this module
flattens the nested ``state_dict`` structures into the flat namespace an
``.npz`` archive requires and restores them loss-free.
"""

from __future__ import annotations

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint", "load_checkpoint_tree",
           "apply_checkpoint"]


#: separator for flattened paths — parameter names contain dots
#: ("layers.0.weight"), so a slash keeps each name a single path segment
_SEP = "/"


def _flatten(prefix, value, out):
    if isinstance(value, dict):
        for key, item in value.items():
            _flatten(f"{prefix}{_SEP}{key}" if prefix else str(key), item, out)
    elif isinstance(value, (list, tuple)):
        out[f"{prefix}{_SEP}__len__"] = np.asarray(len(value))
        for i, item in enumerate(value):
            _flatten(f"{prefix}{_SEP}{i}", item, out)
    else:
        out[prefix] = np.asarray(value)


def _unflatten(arrays):
    root = {}
    suffix = f"{_SEP}__len__"
    lengths = {key[: -len(suffix)]: int(arrays[key])
               for key in arrays if key.endswith(suffix)}
    for key, value in arrays.items():
        if key.endswith(suffix):
            continue
        parts = key.split(_SEP)
        node = root
        for i, part in enumerate(parts[:-1]):
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    def listify(node, path=""):
        if not isinstance(node, dict):
            return node
        resolved = {k: listify(v, f"{path}{_SEP}{k}" if path else k)
                    for k, v in node.items()}
        if path in lengths:
            return [resolved[str(i)] for i in range(lengths[path])]
        return resolved
    return listify(root)


def save_checkpoint(path, net, optimizer=None, extra=None):
    """Write a resumable checkpoint.

    Parameters
    ----------
    path:
        Destination ``.npz`` path.
    net:
        Module whose ``state_dict`` to persist.
    optimizer:
        Optional optimizer with ``state_dict()`` (Adam/SGD).
    extra:
        Optional dict of additional arrays/scalars (e.g. step counters).
    """
    flat = {}
    _flatten("net", net.state_dict(), flat)
    if optimizer is not None:
        _flatten("optim", optimizer.state_dict(), flat)
    if extra:
        _flatten("extra", dict(extra), flat)
    np.savez_compressed(path, **flat)


def load_checkpoint_tree(path):
    """Read a checkpoint into its nested state tree *without* applying it.

    Callers that must validate a checkpoint against the live trainer (e.g.
    matching extra-module sets) read the tree first, reject cleanly, and
    only then :func:`apply_checkpoint` — so a rejected checkpoint never
    leaves the network or optimizer half-restored.
    """
    with np.load(path) as data:
        arrays = {key: data[key] for key in data.files}
    return _unflatten(arrays)


def apply_checkpoint(tree, net, optimizer=None):
    """Apply a tree from :func:`load_checkpoint_tree`; returns ``extra``."""
    net.load_state_dict(tree["net"])
    if optimizer is not None:
        if "optim" not in tree:
            raise KeyError("checkpoint holds no optimizer state")
        optimizer.load_state_dict(tree["optim"])
    return tree.get("extra", {})


def load_checkpoint(path, net, optimizer=None):
    """Restore a checkpoint written by :func:`save_checkpoint`.

    Returns the ``extra`` dict (empty when none was stored).
    """
    return apply_checkpoint(load_checkpoint_tree(path), net, optimizer)
