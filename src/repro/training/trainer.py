"""The PINN training loop with sampler integration and honest accounting.

The trainer wires together:

* constraints (interior PDE + boundary conditions) with their samplers;
* probe callbacks the samplers use for importance refreshes (extra forward
  passes are executed here, so their cost lands on the same wall clock the
  figures plot);
* validators evaluated every ``validate_every`` iterations;
* the background-rebuild accounting mode: when ``background_rebuild=True``
  the sampler's graph-rebuild seconds are credited back to the clock,
  emulating the paper's background thread (§3.3/§3.5).
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..autodiff import gradients
from ..autodiff.introspect import record_tape
from ..autodiff.replay import (
    ReplayRefused, ReplayStale, StepTrace, compile_step,
)
from ..dp.reduce import payload_nbytes, tree_reduce
from ..sampling import UniformSampler
from ..utils import TrainingClock
from .history import History
from .validators import merge_partial_l2

__all__ = ["Trainer"]


class _ReplayState:
    """Compile-mode bookkeeping: traced steps, compiled program, fallback."""

    __slots__ = ("traces", "program", "disabled", "refusal")

    def __init__(self):
        self.traces = []
        self.program = None
        self.disabled = False
        self.refusal = None


class Trainer:
    """Train a PINN under a set of constraints.

    Parameters
    ----------
    net:
        A :class:`repro.nn.Module` mapping features to output fields.
    constraints:
        Iterable of :class:`repro.training.Constraint`.
    optimizer:
        A :class:`repro.nn.Optimizer` over ``net.parameters()``.
    scheduler:
        Optional LR scheduler with a ``step()`` method.
    samplers:
        Mapping constraint name -> sampler; constraints without an entry use
        a fresh :class:`UniformSampler` (the paper applies importance
        sampling to interior points only).
    validators:
        Iterable of :class:`PointwiseValidator`; their per-variable errors
        are averaged across validators, matching the paper's
        'averaged at r_i = 1.0, 0.88, 0.75'.
    background_rebuild:
        Credit sampler rebuild time back to the wall clock.
    extra_parameters:
        Extra trainable tensors (e.g. a raw coefficient parameter) trained
        jointly with the network; the optimizer must have been constructed
        over ``net.parameters() + extra_parameters`` in the same order.
    extra_modules:
        Mapping name -> :class:`repro.nn.Module` of the extra trainable
        pieces as *modules* (inverse-problem coefficients).  When given and
        ``extra_parameters`` is not, the parameter list is derived from the
        modules; checkpoints persist each module's ``state_dict`` under its
        name so resumed inverse runs restore the coefficient exactly.
    dp:
        A :class:`repro.dp.DataParallelContext` switching the trainer into
        the lockstep shard-replica step: every owned shard's ``1/S``-scaled
        loss/gradient is computed locally, all ``S`` contributions are
        gathered through ``dp.exchange``, tree-reduced in ascending shard
        order, and the identical reduced gradient drives the optimizer on
        every rank.  Mutually exclusive with ``samplers`` (the shard
        samplers live on the context).
    """

    def __init__(self, net, constraints, optimizer, scheduler=None,
                 samplers=None, validators=(), background_rebuild=True,
                 extra_parameters=(), extra_modules=None, seed=0, dp=None):
        self.net = net
        self.constraints = list(constraints)
        if not self.constraints:
            raise ValueError("need at least one constraint")
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.validators = list(validators)
        self.background_rebuild = bool(background_rebuild)
        self.extra_modules = dict(extra_modules or {})
        extra = list(extra_parameters)
        if not extra and self.extra_modules:
            extra = [param for module in self.extra_modules.values()
                     for param in module.parameters()]
        self.params = net.parameters() + extra

        self.dp = dp
        if dp is not None:
            if samplers:
                raise ValueError("pass shard samplers on the dp context, "
                                 "not through samplers=")
            by_name = {c.name: c for c in self.constraints}
            self.samplers = {}
            for (cname, shard), sampler in sorted(dp.shard_samplers.items()):
                self.samplers[f"{cname}@shard{shard}"] = sampler
                self._bind_probes(by_name[cname], sampler)
            # global totals from the allreduce; the baseline keeps the
            # start()-time builds charged (only mid-training rebuilds are
            # credited back to the clock, same as serial training)
            self._dp_probe_total = 0
            self._dp_rebuild_total = 0.0
            self._dp_rebuild_baseline = None
            self._dp_replay = None
            return

        samplers = dict(samplers or {})
        self.samplers = {}
        for i, constraint in enumerate(self.constraints):
            sampler = samplers.get(constraint.name)
            if sampler is None:
                sampler = UniformSampler(constraint.n_points, seed=seed + i)
            self.samplers[constraint.name] = sampler
            self._bind_probes(constraint, sampler)

    #: probes evaluate at most this many points per autodiff graph, keeping
    #: peak memory bounded when a sampler probes a large index set at once
    PROBE_CHUNK = 1024

    # ------------------------------------------------------------------
    # Probe callbacks (extra forward passes for importance refreshes)
    # ------------------------------------------------------------------
    def _chunked(self, fn, indices):
        indices = np.asarray(indices)
        if len(indices) <= self.PROBE_CHUNK:
            return fn(indices)
        parts = [fn(indices[i:i + self.PROBE_CHUNK])
                 for i in range(0, len(indices), self.PROBE_CHUNK)]
        return np.concatenate(parts, axis=0)

    def _bind_probes(self, constraint, sampler):
        def loss_chunk(indices):
            residuals, weight = constraint.residuals(self.net, indices)
            total = np.zeros((len(indices), 1))
            for tensor in residuals.values():
                total += tensor.numpy().astype(np.float64) ** 2
            if weight is not None:
                total *= weight
            return total.ravel()

        def outputs_chunk(indices):
            fields = constraint.build_fields(self.net, indices)
            cols = [fields.get(name).numpy() for name in
                    constraint.output_names]
            return np.concatenate(cols, axis=1)

        def grad_norm_chunk(indices):
            fields = constraint.build_fields(self.net, indices)
            total = np.zeros((len(indices), 1))
            velocity = [v for v in ("u", "v", "w")
                        if v in constraint.output_names]
            if not velocity:   # scalar problems: use the first output
                velocity = [constraint.output_names[0]]
            # derivatives follow the problem's coordinates, so 1-D/3-D and
            # space-time workloads probe the right gradient components
            for var in velocity:
                for coord in constraint.spatial_names:
                    total += fields.d(var, coord).numpy().astype(np.float64) ** 2
            return np.sqrt(total).ravel()

        sampler.bind_probes(
            probe_loss=lambda idx: self._chunked(loss_chunk, idx),
            probe_outputs=lambda idx: self._chunked(outputs_chunk, idx),
            probe_grad_norm=lambda idx: self._chunked(grad_norm_chunk, idx))

    # ------------------------------------------------------------------
    # One optimizer step, split into the batch/weight phase (samplers,
    # probe refreshes, raw numpy — everything the replay engine re-runs
    # eagerly) and the pure graph-building phase (the recorded region).
    # ------------------------------------------------------------------
    def _step_batches(self, step):
        """Draw every constraint's batch and combined per-sample weights.

        Importance refreshes (probe forward passes) fire inside
        ``batch_indices``, so they stay *outside* the recorded/replayed
        region; ``batch_weights`` is a pure lookup on every sampler.
        Returns ``(batches, weights)`` dicts keyed by constraint name, the
        weight being the final sample×importance product multiplied into
        the loss (or ``None``).
        """
        batches, weights = {}, {}
        for constraint in self.constraints:
            sampler = self.samplers[constraint.name]
            indices = sampler.batch_indices(step, constraint.batch_size)
            batches[constraint.name] = indices
            weight = constraint.sample_weight_for(indices)
            importance = sampler.batch_weights(indices)
            if importance is not None:
                imp = importance.reshape(-1, 1)
                weight = imp if weight is None else weight * imp
            weights[constraint.name] = weight
        return batches, weights

    def _assemble_loss(self, batches, weights):
        """Build the aggregate loss graph for pre-drawn batches (eq. 4)."""
        total = None
        for constraint in self.constraints:
            residuals, _ = constraint.residuals(self.net,
                                                batches[constraint.name])
            weight = weights[constraint.name]
            for tensor in residuals.values():
                squared = tensor * tensor
                if weight is not None:
                    squared = squared * weight
                term = squared.mean() * constraint.weight
                total = term if total is None else total + term
        return total

    def _step_loss(self, step):
        batches, weights = self._step_batches(step)
        return self._assemble_loss(batches, weights)

    # ------------------------------------------------------------------
    # Record-once/replay-many execution (``train(compile=True)``)
    # ------------------------------------------------------------------
    #: consecutive training steps traced before compiling a replay program
    TRACE_STEPS = 2

    def _replay_externals(self, batches):
        """Flat per-step input-array list, in recorded creation order."""
        arrays = []
        for constraint in self.constraints:
            arrays.extend(constraint.replay_inputs(batches[constraint.name]))
        return arrays

    def _weight_list(self, weights):
        return [weights[c.name] for c in self.constraints]

    def _run_step(self, step, replay):
        """Execute one optimizer step eagerly, traced, or replayed."""
        with obs.span("train.sample"):
            batches, weights = self._step_batches(step)
        if replay is not None and replay.program is not None:
            try:
                with obs.span("train.replay"):
                    loss_value, grads = replay.program.run(
                        self._replay_externals(batches),
                        self._weight_list(weights))
            except ReplayStale as exc:
                # a retrace-invalidating change (batch size, dtype, weight
                # layout) — permanently fall back to eager execution rather
                # than replaying a wrong graph
                replay.program = None
                replay.disabled = True
                replay.refusal = f"stale tape: {exc}"
                obs.inc("replay.fallback_stale")
            else:
                with obs.span("train.optimizer"):
                    self.optimizer.step(grads)
                return float(np.asarray(loss_value).item())
        if replay is not None and not replay.disabled:
            return self._traced_step(step, replay, batches, weights)
        with obs.span("train.forward"):
            loss = self._assemble_loss(batches, weights)
        with obs.span("train.backward"):
            grads = gradients(loss, self.params)
        with obs.span("train.optimizer"):
            self.optimizer.step(grads)
        return loss.item()

    def _traced_step(self, step, replay, batches, weights):
        """One eager step recorded with provenance; compile after two."""
        param_data = [p.data.copy() for p in self.params]
        with record_tape(provenance=True) as tape:
            with obs.span("train.forward"):
                loss = self._assemble_loss(batches, weights)
            with obs.span("train.backward"):
                grads = gradients(loss, self.params)
        mismatch = self._verify_replay_externals(tape, batches)
        if mismatch is not None:
            replay.disabled = True
            replay.refusal = mismatch
            replay.traces = []
        else:
            replay.traces.append(StepTrace(tape, loss, grads, param_data,
                                           self._weight_list(weights)))
            if len(replay.traces) == self.TRACE_STEPS:
                try:
                    with obs.timed_span("replay.compile") as compile_timer:
                        replay.program = compile_step(replay.traces[0],
                                                      replay.traces[1],
                                                      self.params)
                except ReplayRefused as exc:
                    replay.disabled = True
                    replay.refusal = str(exc)
                    obs.inc("replay.fallback_refused")
                else:
                    obs.inc("replay.compile_count")
                    obs.inc("replay.compile_seconds", compile_timer.seconds)
                    if obs.enabled():
                        stats = replay.program.stats
                        obs.gauge("replay.instructions",
                                  stats["instructions"])
                        obs.gauge("replay.cse_hits", stats["cse_hits"])
                        obs.gauge("replay.dead_pruned", stats["dead"])
                        obs.gauge("replay.baked_constants", stats["baked"])
                replay.traces = []
        with obs.span("train.optimizer"):
            self.optimizer.step(grads)
        return loss.item()

    def _verify_replay_externals(self, tape, batches):
        """Check ``replay_inputs`` mirrors the recorded externals bitwise.

        The per-step input arrays the constraints rebuild for replay must
        match — in count, order, and bytes — the tensors the traced step
        actually wrapped; any drift between the two code paths disables
        compilation instead of feeding a compiled tape wrong inputs.
        """
        arrays = self._replay_externals(batches)
        if len(arrays) != len(tape.externals):
            return (f"replay_inputs rebuilt {len(arrays)} arrays but the "
                    f"traced step created {len(tape.externals)} input "
                    f"tensors")
        for position, (array, tensor) in enumerate(zip(arrays,
                                                       tape.externals)):
            array = np.asarray(array)
            if (array.shape != tensor.data.shape
                    or array.dtype != tensor.data.dtype
                    or array.tobytes() != tensor.data.tobytes()):
                return (f"replay input {position} diverges from the traced "
                        f"step's tensor (shape {array.shape} vs "
                        f"{tensor.data.shape})")
        return None

    # ------------------------------------------------------------------
    # Data-parallel step: shard losses/gradients, deterministic allreduce
    # ------------------------------------------------------------------
    def _dp_shard_batches(self, step, shard):
        """Per-constraint batches/weights for one owned shard (indices are
        global, drawn by the shard's own samplers)."""
        dp = self.dp
        batches, weights = {}, {}
        for constraint in self.constraints:
            sampler = dp.shard_samplers[(constraint.name, shard)]
            indices = sampler.batch_indices(
                step, dp.shard_batch[constraint.name][shard])
            batches[constraint.name] = indices
            weight = constraint.sample_weight_for(indices)
            importance = sampler.batch_weights(indices)
            if importance is not None:
                imp = importance.reshape(-1, 1)
                weight = imp if weight is None else weight * imp
            weights[constraint.name] = weight
        return batches, weights

    def _dp_assemble_loss(self, batches, weights):
        """One shard's loss, ``1/S``-scaled *inside* the graph so the
        allreduce is a pure fixed-order sum (compile tapes carry the
        scale)."""
        return self._assemble_loss(batches, weights) * self.dp.loss_scale

    def _dp_payload(self, shard, loss, grads):
        """This shard's allreduce contribution: scaled loss, float gradient
        arrays in params order, and cumulative bookkeeping counters."""
        dp = self.dp
        arrays = [np.asarray(g.numpy() if hasattr(g, "numpy") else g)
                  for g in grads]
        probe = sum(dp.shard_samplers[(c.name, shard)].probe_points
                    for c in self.constraints)
        rebuild = sum(dp.shard_samplers[(c.name, shard)].rebuild_seconds
                      for c in self.constraints)
        return {
            "loss": np.asarray(loss.numpy() if hasattr(loss, "numpy")
                               else loss),
            "grads": arrays,
            "probe_points": int(probe),
            "rebuild_seconds": float(rebuild),
        }

    def _dp_shard_step(self, step, shard, replay):
        """One shard's eager / traced / replayed contribution."""
        with obs.span("dp.shard", shard=shard):
            with obs.span("train.sample"):
                batches, weights = self._dp_shard_batches(step, shard)
            if replay is not None and replay.program is not None:
                try:
                    with obs.span("train.replay"):
                        loss_value, grads = replay.program.run(
                            self._replay_externals(batches),
                            self._weight_list(weights))
                except ReplayStale as exc:
                    replay.program = None
                    replay.disabled = True
                    replay.refusal = f"stale tape: {exc}"
                    obs.inc("replay.fallback_stale")
                else:
                    return self._dp_payload(shard, loss_value, grads)
            if replay is not None and not replay.disabled:
                loss, grads = self._dp_traced_shard(step, shard, replay,
                                                    batches, weights)
                return self._dp_payload(shard, loss, grads)
            with obs.span("train.forward"):
                loss = self._dp_assemble_loss(batches, weights)
            with obs.span("train.backward"):
                grads = gradients(loss, self.params)
            return self._dp_payload(shard, loss, grads)

    def _dp_traced_shard(self, step, shard, replay, batches, weights):
        """Mirror of :meth:`_traced_step` for one shard (no optimizer
        step — that happens once, on the reduced gradient)."""
        param_data = [p.data.copy() for p in self.params]
        with record_tape(provenance=True) as tape:
            with obs.span("train.forward"):
                loss = self._dp_assemble_loss(batches, weights)
            with obs.span("train.backward"):
                grads = gradients(loss, self.params)
        mismatch = self._verify_replay_externals(tape, batches)
        if mismatch is not None:
            replay.disabled = True
            replay.refusal = mismatch
            replay.traces = []
            return loss, grads
        replay.traces.append(StepTrace(tape, loss, grads, param_data,
                                       self._weight_list(weights)))
        if len(replay.traces) == self.TRACE_STEPS:
            try:
                with obs.timed_span("replay.compile") as compile_timer:
                    replay.program = compile_step(replay.traces[0],
                                                  replay.traces[1],
                                                  self.params)
            except ReplayRefused as exc:
                replay.disabled = True
                replay.refusal = str(exc)
                obs.inc("replay.fallback_refused")
            else:
                obs.inc("replay.compile_count")
                obs.inc("replay.compile_seconds", compile_timer.seconds)
            replay.traces = []
        return loss, grads

    def _dp_reduce(self, step, phase, local):
        """Gather all shard contributions and tree-reduce them in ascending
        shard order — the fixed schedule making the sum bit-identical for
        every worker count, backend, and arrival order."""
        dp = self.dp
        with obs.span("dp.allreduce", step=step, phase=phase):
            gathered = dp.exchange.exchange(step, phase, local)
            contributions = [gathered[s] for s in range(dp.n_shards)]
            reduced = tree_reduce(contributions)
            obs.inc("dp.bytes_reduced",
                    sum(payload_nbytes(p) for p in contributions))
            obs.inc("dp.allreduce_rounds")
        return reduced

    def _dp_step(self, step):
        """One lockstep data-parallel optimizer step."""
        dp = self.dp
        local = {}
        for shard in dp.owned:
            replay = (None if self._dp_replay is None
                      else self._dp_replay[shard])
            local[shard] = self._dp_shard_step(step, shard, replay)
        reduced = self._dp_reduce(step, "grad", local)

        # exact global totals come out of the reduction itself; the first
        # round's rebuild total becomes the charged baseline (start()-time
        # builds), later growth is credited like serial background rebuilds
        self._dp_probe_total = int(reduced["probe_points"])
        total_rebuild = float(reduced["rebuild_seconds"])
        if self._dp_rebuild_baseline is None:
            self._dp_rebuild_baseline = total_rebuild
        self._dp_rebuild_total = total_rebuild - self._dp_rebuild_baseline

        with obs.span("train.optimizer"):
            self.optimizer.step(reduced["grads"])
        return float(np.asarray(reduced["loss"]).item())

    def _dp_validate(self, step):
        """Validation with pointwise sums sharded over the same shards.

        Validators without ``evaluate_partial`` are evaluated fully on every
        rank — replicas are in lockstep, so all ranks get identical values
        without an exchange.  When no validator shards, the whole pass is
        local and no rendezvous round is issued.
        """
        dp = self.dp
        if not self.validators:
            return {}
        partial = {}
        if dp.validator_rows:
            local = {}
            for shard in dp.owned:
                per_val = {
                    vi: self.validators[vi].evaluate_partial(
                        self.net, rows[shard])
                    for vi, rows in dp.validator_rows.items()}
                local[shard] = {"validators": per_val}
            partial = self._dp_reduce(step, "val", local).get(
                "validators", {})
        merged = {}
        for vi, validator in enumerate(self.validators):
            if vi in partial:
                errs = {var: merge_partial_l2(num, den)
                        for var, (num, den) in partial[vi].items()}
            else:
                errs = validator.evaluate(self.net)
            for var, err in errs.items():
                merged.setdefault(var, []).append(err)
        return {var: float(np.mean(vals)) for var, vals in merged.items()}

    def compile_info(self):
        """Execution-mode summary of the last ``train`` call (diagnostics).

        One of ``"eager"``, ``"tracing"``, ``"replay"`` or
        ``"eager (refused: ...)"`` / ``"eager (stale: ...)"`` when the
        compile attempt fell back.  Under data-parallel training the modes
        of this rank's shard replays are reported per shard when they
        disagree.
        """
        if self.dp is not None:
            if self._dp_replay is None:
                return "eager"
            modes = {shard: self._replay_mode(self._dp_replay[shard])
                     for shard in sorted(self._dp_replay)}
            if len(set(modes.values())) == 1:
                return next(iter(modes.values()))
            return "; ".join(f"shard{s}: {m}" for s, m in modes.items())
        return self._replay_mode(getattr(self, "replay_state", None))

    @staticmethod
    def _replay_mode(replay):
        if replay is None:
            return "eager"
        if replay.program is not None:
            return "replay"
        if replay.disabled:
            return f"eager (refused: {replay.refusal})"
        return "tracing"

    def validate(self):
        """Average each variable's relative L2 across validators."""
        if not self.validators:
            return {}
        merged = {}
        for validator in self.validators:
            for var, err in validator.evaluate(self.net).items():
                merged.setdefault(var, []).append(err)
        return {var: float(np.mean(vals)) for var, vals in merged.items()}

    def total_probe_points(self):
        """Probed points across all samplers (overhead metric of §3.6).

        Under data-parallel training this is the *global* total from the
        last allreduce — identical on every rank — not just this rank's
        hosted shards."""
        if self.dp is not None:
            return self._dp_probe_total
        return sum(s.probe_points for s in self.samplers.values())

    def _total_rebuild_seconds(self):
        """Rebuild seconds eligible for clock credit.

        Serial: the samplers' cumulative total.  Data-parallel: the global
        baseline-subtracted total carried by the allreduce — identical on
        every rank, so all replicas credit their clocks by the same
        amount."""
        if self.dp is not None:
            return self._dp_rebuild_total
        return sum(s.rebuild_seconds for s in self.samplers.values())

    # ------------------------------------------------------------------
    def train(self, steps, validate_every=200, record_every=50, label="run",
              clock=None, start_step=0, history=None, last_errors=None,
              step_hooks=(), compile=False):
        """Run optimizer iterations ``start_step .. steps-1``; return history.

        Parameters beyond the recording cadence support resumable runs:

        start_step:
            First iteration to execute.  When non-zero the samplers are NOT
            ``start()``-ed (their graphs/epochs are expected to have been
            restored from a checkpoint), so the loop continues bit-identically
            to an uninterrupted run.
        history:
            A :class:`History` to append to (e.g. one reloaded from a run
            store, or a streaming subclass); a fresh one is created when
            omitted.
        last_errors:
            The validation errors in effect at ``start_step`` (restored from
            the checkpoint), recorded until the next validation boundary.
        step_hooks:
            Callables invoked as ``hook(step=, trainer=, clock=, errors=)``
            after each completed iteration (and its recording) — the run
            store uses this to write periodic checkpoints.
        compile:
            Record the first :attr:`TRACE_STEPS` iterations' autodiff tapes
            and compile them into a
            :class:`~repro.autodiff.replay.ReplayProgram`; every later step
            replays the compiled tape bit-identically.  Falls back to eager
            execution — permanently, with the reason kept on
            :meth:`compile_info` — if the graph refuses to compile or a
            retrace-invalidating change (batch size, dtype, weight layout)
            is detected mid-run.  Ignored for closure-driven optimizers
            (L-BFGS re-evaluates the graph inside the closure).
        """
        history = history if history is not None else History(label=label)
        clock = clock if clock is not None else TrainingClock()
        use_closure = hasattr(self.optimizer, "step_closure")
        if self.dp is not None:
            if start_step != 0:
                raise ValueError("data-parallel training does not support "
                                 "checkpoint resume (start_step must be 0)")
            if use_closure:
                raise ValueError("data-parallel training needs a gradient "
                                 "optimizer; closure-driven optimizers "
                                 "(L-BFGS) re-evaluate the loss internally "
                                 "and cannot fold an allreduced gradient")
            if obs.enabled():
                obs.gauge("dp.shards", self.dp.n_shards)
        if start_step == 0:
            for sampler in self.samplers.values():
                sampler.start()
        # the initial S1/S2 build is charged (it happens before training);
        # only mid-training rebuilds run on the paper's background thread
        credited = self._total_rebuild_seconds()

        self.replay_state = (_ReplayState()
                             if compile and not use_closure
                             and self.dp is None else None)
        if self.dp is not None:
            self._dp_replay = ({shard: _ReplayState()
                                for shard in self.dp.owned}
                               if compile else None)
        last_errors = dict(last_errors or {})
        with obs.span("train.run", label=label):
            for step in range(start_step, steps):
                with obs.span("train.step", step=step) as step_span:
                    if self.dp is not None:
                        loss_value = self._dp_step(step)
                    elif use_closure:
                        loss_value = self._closure_step(step)
                    else:
                        loss_value = self._run_step(step, self.replay_state)
                    if self.scheduler is not None:
                        self.scheduler.step()

                    if self.background_rebuild:
                        rebuilt = self._total_rebuild_seconds()
                        if rebuilt > credited:
                            clock.credit(rebuilt - credited)
                            credited = rebuilt

                    is_last = step == steps - 1
                    if step % validate_every == 0 or is_last:
                        with obs.span("train.validate"):
                            last_errors = (self._dp_validate(step)
                                           if self.dp is not None
                                           else self.validate())
                        obs.inc("train.validations")
                    step_span.set(mode="closure" if use_closure
                                  else self.compile_info())
                obs.inc("train.steps")
                if step % record_every == 0 or is_last:
                    history.record(step, clock.elapsed(), loss_value,
                                   errors=last_errors,
                                   probe_points=self.total_probe_points())
                    if obs.enabled():
                        obs.gauge("train.loss", loss_value)
                        obs.gauge("clock.raw_seconds", clock.raw_elapsed())
                        obs.gauge("clock.credited_seconds", clock.credited)
                        obs.gauge("clock.train_seconds", clock.elapsed())
                        obs.gauge("sampler.probe_points",
                                  self.total_probe_points())
                        obs.snapshot_metrics(step=step,
                                             wall_time=clock.elapsed())
                for hook in step_hooks:
                    hook(step=step, trainer=self, clock=clock,
                         errors=last_errors)
        return history

    def _closure_step(self, step):
        """Drive a closure-based optimizer (L-BFGS) on one fixed batch."""
        with obs.span("train.sample"):
            batches = {c.name: self.samplers[c.name].batch_indices(
                step, c.batch_size) for c in self.constraints}

        def closure():
            total = None
            with obs.span("train.forward"):
                for constraint in self.constraints:
                    residuals, weight = constraint.residuals(
                        self.net, batches[constraint.name])
                    for tensor in residuals.values():
                        squared = tensor * tensor
                        if weight is not None:
                            squared = squared * weight
                        term = squared.mean() * constraint.weight
                        total = term if total is None else total + term
            with obs.span("train.backward"):
                grads = gradients(total, self.params)
            return total.item(), [g.numpy() for g in grads]

        with obs.span("train.optimizer"):
            return self.optimizer.step_closure(closure)
