"""The PINN training loop with sampler integration and honest accounting.

The trainer wires together:

* constraints (interior PDE + boundary conditions) with their samplers;
* probe callbacks the samplers use for importance refreshes (extra forward
  passes are executed here, so their cost lands on the same wall clock the
  figures plot);
* validators evaluated every ``validate_every`` iterations;
* the background-rebuild accounting mode: when ``background_rebuild=True``
  the sampler's graph-rebuild seconds are credited back to the clock,
  emulating the paper's background thread (§3.3/§3.5).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import gradients
from ..sampling import UniformSampler
from ..utils import TrainingClock
from .history import History

__all__ = ["Trainer"]


class Trainer:
    """Train a PINN under a set of constraints.

    Parameters
    ----------
    net:
        A :class:`repro.nn.Module` mapping features to output fields.
    constraints:
        Iterable of :class:`repro.training.Constraint`.
    optimizer:
        A :class:`repro.nn.Optimizer` over ``net.parameters()``.
    scheduler:
        Optional LR scheduler with a ``step()`` method.
    samplers:
        Mapping constraint name -> sampler; constraints without an entry use
        a fresh :class:`UniformSampler` (the paper applies importance
        sampling to interior points only).
    validators:
        Iterable of :class:`PointwiseValidator`; their per-variable errors
        are averaged across validators, matching the paper's
        'averaged at r_i = 1.0, 0.88, 0.75'.
    background_rebuild:
        Credit sampler rebuild time back to the wall clock.
    extra_parameters:
        Extra trainable tensors (e.g. a raw coefficient parameter) trained
        jointly with the network; the optimizer must have been constructed
        over ``net.parameters() + extra_parameters`` in the same order.
    extra_modules:
        Mapping name -> :class:`repro.nn.Module` of the extra trainable
        pieces as *modules* (inverse-problem coefficients).  When given and
        ``extra_parameters`` is not, the parameter list is derived from the
        modules; checkpoints persist each module's ``state_dict`` under its
        name so resumed inverse runs restore the coefficient exactly.
    """

    def __init__(self, net, constraints, optimizer, scheduler=None,
                 samplers=None, validators=(), background_rebuild=True,
                 extra_parameters=(), extra_modules=None, seed=0):
        self.net = net
        self.constraints = list(constraints)
        if not self.constraints:
            raise ValueError("need at least one constraint")
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.validators = list(validators)
        self.background_rebuild = bool(background_rebuild)
        self.extra_modules = dict(extra_modules or {})
        extra = list(extra_parameters)
        if not extra and self.extra_modules:
            extra = [param for module in self.extra_modules.values()
                     for param in module.parameters()]
        self.params = net.parameters() + extra

        samplers = dict(samplers or {})
        self.samplers = {}
        for i, constraint in enumerate(self.constraints):
            sampler = samplers.get(constraint.name)
            if sampler is None:
                sampler = UniformSampler(constraint.n_points, seed=seed + i)
            self.samplers[constraint.name] = sampler
            self._bind_probes(constraint, sampler)

    #: probes evaluate at most this many points per autodiff graph, keeping
    #: peak memory bounded when a sampler probes a large index set at once
    PROBE_CHUNK = 1024

    # ------------------------------------------------------------------
    # Probe callbacks (extra forward passes for importance refreshes)
    # ------------------------------------------------------------------
    def _chunked(self, fn, indices):
        indices = np.asarray(indices)
        if len(indices) <= self.PROBE_CHUNK:
            return fn(indices)
        parts = [fn(indices[i:i + self.PROBE_CHUNK])
                 for i in range(0, len(indices), self.PROBE_CHUNK)]
        return np.concatenate(parts, axis=0)

    def _bind_probes(self, constraint, sampler):
        def loss_chunk(indices):
            residuals, weight = constraint.residuals(self.net, indices)
            total = np.zeros((len(indices), 1))
            for tensor in residuals.values():
                total += tensor.numpy().astype(np.float64) ** 2
            if weight is not None:
                total *= weight
            return total.ravel()

        def outputs_chunk(indices):
            fields = constraint.build_fields(self.net, indices)
            cols = [fields.get(name).numpy() for name in
                    constraint.output_names]
            return np.concatenate(cols, axis=1)

        def grad_norm_chunk(indices):
            fields = constraint.build_fields(self.net, indices)
            total = np.zeros((len(indices), 1))
            velocity = [v for v in ("u", "v", "w")
                        if v in constraint.output_names]
            if not velocity:   # scalar problems: use the first output
                velocity = [constraint.output_names[0]]
            # derivatives follow the problem's coordinates, so 1-D/3-D and
            # space-time workloads probe the right gradient components
            for var in velocity:
                for coord in constraint.spatial_names:
                    total += fields.d(var, coord).numpy().astype(np.float64) ** 2
            return np.sqrt(total).ravel()

        sampler.bind_probes(
            probe_loss=lambda idx: self._chunked(loss_chunk, idx),
            probe_outputs=lambda idx: self._chunked(outputs_chunk, idx),
            probe_grad_norm=lambda idx: self._chunked(grad_norm_chunk, idx))

    # ------------------------------------------------------------------
    def _step_loss(self, step):
        total = None
        for constraint in self.constraints:
            sampler = self.samplers[constraint.name]
            indices = sampler.batch_indices(step, constraint.batch_size)
            residuals, sample_weight = constraint.residuals(self.net, indices)
            importance = sampler.batch_weights(indices)
            weight = None
            if sample_weight is not None:
                weight = sample_weight
            if importance is not None:
                imp = importance.reshape(-1, 1)
                weight = imp if weight is None else weight * imp
            for tensor in residuals.values():
                squared = tensor * tensor
                if weight is not None:
                    squared = squared * weight
                term = squared.mean() * constraint.weight
                total = term if total is None else total + term
        return total

    def validate(self):
        """Average each variable's relative L2 across validators."""
        if not self.validators:
            return {}
        merged = {}
        for validator in self.validators:
            for var, err in validator.evaluate(self.net).items():
                merged.setdefault(var, []).append(err)
        return {var: float(np.mean(vals)) for var, vals in merged.items()}

    def total_probe_points(self):
        """Probed points across all samplers (overhead metric of §3.6)."""
        return sum(s.probe_points for s in self.samplers.values())

    # ------------------------------------------------------------------
    def train(self, steps, validate_every=200, record_every=50, label="run",
              clock=None, start_step=0, history=None, last_errors=None,
              step_hooks=()):
        """Run optimizer iterations ``start_step .. steps-1``; return history.

        Parameters beyond the recording cadence support resumable runs:

        start_step:
            First iteration to execute.  When non-zero the samplers are NOT
            ``start()``-ed (their graphs/epochs are expected to have been
            restored from a checkpoint), so the loop continues bit-identically
            to an uninterrupted run.
        history:
            A :class:`History` to append to (e.g. one reloaded from a run
            store, or a streaming subclass); a fresh one is created when
            omitted.
        last_errors:
            The validation errors in effect at ``start_step`` (restored from
            the checkpoint), recorded until the next validation boundary.
        step_hooks:
            Callables invoked as ``hook(step=, trainer=, clock=, errors=)``
            after each completed iteration (and its recording) — the run
            store uses this to write periodic checkpoints.
        """
        history = history if history is not None else History(label=label)
        clock = clock if clock is not None else TrainingClock()
        if start_step == 0:
            for sampler in self.samplers.values():
                sampler.start()
        # the initial S1/S2 build is charged (it happens before training);
        # only mid-training rebuilds run on the paper's background thread
        credited = sum(s.rebuild_seconds for s in self.samplers.values())

        use_closure = hasattr(self.optimizer, "step_closure")
        last_errors = dict(last_errors or {})
        for step in range(start_step, steps):
            if use_closure:
                loss_value = self._closure_step(step)
            else:
                loss = self._step_loss(step)
                grads = gradients(loss, self.params)
                self.optimizer.step(grads)
                loss_value = loss.item()
            if self.scheduler is not None:
                self.scheduler.step()

            if self.background_rebuild:
                rebuilt = sum(s.rebuild_seconds
                              for s in self.samplers.values())
                if rebuilt > credited:
                    clock.credit(rebuilt - credited)
                    credited = rebuilt

            is_last = step == steps - 1
            if step % validate_every == 0 or is_last:
                last_errors = self.validate()
            if step % record_every == 0 or is_last:
                history.record(step, clock.elapsed(), loss_value,
                               errors=last_errors,
                               probe_points=self.total_probe_points())
            for hook in step_hooks:
                hook(step=step, trainer=self, clock=clock,
                     errors=last_errors)
        return history

    def _closure_step(self, step):
        """Drive a closure-based optimizer (L-BFGS) on one fixed batch."""
        batches = {c.name: self.samplers[c.name].batch_indices(
            step, c.batch_size) for c in self.constraints}

        def closure():
            total = None
            for constraint in self.constraints:
                residuals, weight = constraint.residuals(
                    self.net, batches[constraint.name])
                for tensor in residuals.values():
                    squared = tensor * tensor
                    if weight is not None:
                        squared = squared * weight
                    term = squared.mean() * constraint.weight
                    total = term if total is None else total + term
            grads = gradients(total, self.params)
            return total.item(), [g.numpy() for g in grads]

        return self.optimizer.step_closure(closure)
