"""Validation against reference solutions (the role of Modulus validators).

A :class:`PointwiseValidator` holds validation points with reference values
(interpolated from a :mod:`repro.solvers` field) and reports the relative L2
error per variable — the metric the paper's tables and figures plot.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..pde import Fields

__all__ = ["CoefficientValidator", "PointwiseValidator", "merge_partial_l2",
           "relative_l2"]


def relative_l2(predicted, reference):
    """``||pred - ref||_2 / ||ref||_2`` (falls back to absolute when the
    reference is identically zero)."""
    predicted = np.asarray(predicted, dtype=np.float64).ravel()
    reference = np.asarray(reference, dtype=np.float64).ravel()
    denom = np.linalg.norm(reference)
    if denom == 0.0:
        return float(np.linalg.norm(predicted))
    return float(np.linalg.norm(predicted - reference) / denom)


def merge_partial_l2(num, den):
    """Relative L2 from allreduced partial sums.

    ``num`` is the summed ``Σ (pred - ref)²`` and ``den`` the summed
    ``Σ ref²`` across shards (see
    :meth:`PointwiseValidator.evaluate_partial`); a zero reference falls
    back to the absolute norm, mirroring :func:`relative_l2`.
    """
    num, den = float(num), float(den)
    if den == 0.0:
        return float(np.sqrt(num))
    return float(np.sqrt(num) / np.sqrt(den))


class CoefficientValidator:
    """Report a trainable PDE coefficient's recovery error.

    Inverse problems recover a physical coefficient (a viscosity, a
    diffusivity) jointly with the network; this validator folds the
    relative recovery error ``|recovered - true| / |true|`` into the same
    error stream the trainer records for field errors, so ``repro runs``
    tables and convergence figures show the coefficient converging.

    Parameters
    ----------
    coefficient:
        A :class:`repro.pde.TrainableCoefficient` (anything with a
        ``value()`` method).
    true_value:
        The ground-truth coefficient the data was generated with.
    name:
        Error-variable name (default: the coefficient's own name).
    """

    def __init__(self, coefficient, true_value, name=None):
        self.coefficient = coefficient
        self.true_value = float(true_value)
        self.name = (name if name is not None
                     else getattr(coefficient, "coeff_name", "coefficient"))

    def evaluate(self, net):
        """Return ``{name: relative recovery error}`` (``net`` unused)."""
        denominator = abs(self.true_value)
        if denominator == 0.0:
            denominator = 1.0
        error = abs(self.coefficient.value() - self.true_value) / denominator
        return {self.name: error}


class PointwiseValidator:
    """Compare network outputs (and derived fields) to reference values.

    Parameters
    ----------
    name:
        Label (e.g. ``"ldc"`` or ``"ar_r1.0"``).
    features:
        ``(n, d+p)`` validation inputs.
    references:
        Mapping variable -> ``(n,)`` reference values.  Variables matching
        network outputs are read directly; others must appear in
        ``derived``.
    output_names:
        The network's output variables, in column order.
    derived:
        Mapping variable -> callable ``(fields) -> Tensor`` for quantities
        computed from network outputs (e.g. zero-equation ``nu``).
    spatial_names, param_names:
        Column naming for the feature matrix.
    sdf:
        Optional ``(n, 1)`` wall distances registered on the field bundle
        (needed by derived turbulence closures).
    """

    def __init__(self, name, features, references, output_names,
                 derived=None, spatial_names=("x", "y"), param_names=(),
                 sdf=None):
        self.name = name
        self.features = np.asarray(features, dtype=np.float64)
        self.references = {k: np.asarray(v, dtype=np.float64).ravel()
                           for k, v in references.items()}
        self.output_names = tuple(output_names)
        self.derived = dict(derived or {})
        self.spatial_names = tuple(spatial_names)
        self.param_names = tuple(param_names)
        self.sdf = None if sdf is None else np.asarray(sdf, dtype=np.float64)
        for var in self.references:
            if var not in self.output_names and var not in self.derived:
                raise KeyError(f"no way to compute validated variable {var!r}")

    def evaluate(self, net):
        """Return ``{var: relative_l2}`` for every referenced variable."""
        fields = Fields.from_features(self.features,
                                      spatial_names=self.spatial_names,
                                      param_names=self.param_names)
        outputs = net(fields.input_tensor())
        for i, var in enumerate(self.output_names):
            fields.register(var, outputs[:, i:i + 1])
        if self.sdf is not None:
            fields.register("sdf", Tensor(self.sdf.reshape(-1, 1)))
        results = {}
        for var, reference in self.references.items():
            if var in self.derived:
                predicted = self.derived[var](fields).numpy()
            else:
                predicted = fields.get(var).numpy()
            results[var] = relative_l2(predicted, reference)
        return results

    def evaluate_partial(self, net, rows):
        """Partial squared sums over a row subset, for sharded validation.

        Returns ``{var: (Σ (pred - ref)², Σ ref²)}`` as float64 scalars;
        shards' tuples sum elementwise, and :func:`merge_partial_l2` turns
        the totals into the relative L2.  An empty row set contributes
        exact zeros without evaluating the network.
        """
        rows = np.asarray(rows, dtype=int)
        if rows.size == 0:
            return {var: (0.0, 0.0) for var in self.references}
        fields = Fields.from_features(self.features[rows],
                                      spatial_names=self.spatial_names,
                                      param_names=self.param_names)
        outputs = net(fields.input_tensor())
        for i, var in enumerate(self.output_names):
            fields.register(var, outputs[:, i:i + 1])
        if self.sdf is not None:
            fields.register("sdf", Tensor(self.sdf[rows].reshape(-1, 1)))
        results = {}
        for var, reference in self.references.items():
            if var in self.derived:
                predicted = self.derived[var](fields).numpy()
            else:
                predicted = fields.get(var).numpy()
            predicted = np.asarray(predicted, dtype=np.float64).ravel()
            reference = reference[rows]
            results[var] = (float(((predicted - reference) ** 2).sum()),
                            float((reference ** 2).sum()))
        return results
