"""Graph conductance diagnostics (paper §3.3).

Alev et al.'s LRD theorem guarantees the decomposition removes only a
constant fraction of edges "without significantly impacting the graph
conductance (keeping the global structure of the graph intact)".  These
helpers measure exactly that: per-cluster conductance and the fraction of
edge weight cut by a partition.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["cut_fraction", "cluster_conductance", "partition_summary"]


def cut_fraction(adjacency, labels):
    """Fraction of total edge weight crossing cluster boundaries."""
    coo = sp.triu(adjacency, k=1).tocoo()
    labels = np.asarray(labels)
    total = coo.data.sum()
    if total == 0:
        return 0.0
    crossing = coo.data[labels[coo.row] != labels[coo.col]].sum()
    return float(crossing / total)


def cluster_conductance(adjacency, labels):
    """Conductance ``phi(S) = cut(S) / min(vol(S), vol(V\\S))`` per cluster.

    Returns an array indexed by cluster id; singleton universe partitions
    (one cluster) yield an empty array.
    """
    labels = np.asarray(labels)
    n_clusters = labels.max() + 1 if len(labels) else 0
    if n_clusters <= 1:
        return np.zeros(0)
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    total_volume = degrees.sum()
    coo = sp.triu(adjacency, k=1).tocoo()
    crossing = labels[coo.row] != labels[coo.col]

    cut = np.zeros(n_clusters)
    np.add.at(cut, labels[coo.row[crossing]], coo.data[crossing])
    np.add.at(cut, labels[coo.col[crossing]], coo.data[crossing])
    volume = np.zeros(n_clusters)
    np.add.at(volume, labels, degrees)
    denom = np.minimum(volume, total_volume - volume)
    with np.errstate(invalid="ignore", divide="ignore"):
        phi = np.where(denom > 0, cut / denom, 0.0)
    return phi


def partition_summary(adjacency, labels):
    """Dict of the partition-quality statistics the paper's S2 cares about."""
    phi = cluster_conductance(adjacency, labels)
    sizes = np.bincount(np.asarray(labels))
    return {
        "n_clusters": int(sizes.size),
        "cut_fraction": cut_fraction(adjacency, labels),
        "mean_conductance": float(phi.mean()) if phi.size else 0.0,
        "max_conductance": float(phi.max()) if phi.size else 0.0,
        "min_size": int(sizes.min()),
        "max_size": int(sizes.max()),
    }
