"""Low-resistance-diameter (LRD) decomposition (paper step S2).

Partitions a PGM into node clusters whose *effective-resistance diameter* is
bounded, following the scheme of Alev et al. (ITCS 2018) as engineered in
HyperEF (Aghdaei & Feng, ICCAD 2022): estimate edge effective resistances
with a scalable sketch, then contract low-resistance edges level by level,
never letting a cluster's internal resistance diameter exceed the budget.

The diameter bookkeeping uses the standard spanning-tree upper bound: when
clusters ``A`` and ``B`` merge across an edge of resistance ``r``, the merged
diameter is at most ``diam(A) + r + diam(B)`` (resistance distances satisfy
the triangle inequality).  Clusters therefore provably satisfy the budget.

``level`` mirrors the paper's ``L`` hyper-parameter: each level halves the
target cluster count, so higher levels give coarser decompositions
(``n_clusters ≈ n / 2^level``) unless the resistance budget stops the
contraction first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .resistance import approx_edge_resistance

__all__ = ["LRDResult", "lrd_decompose", "cluster_sizes"]


class _UnionFind:
    """Union-find with per-root cluster size and resistance-diameter."""

    def __init__(self, n):
        self.parent = np.arange(n)
        self.size = np.ones(n, dtype=np.int64)
        self.diameter = np.zeros(n)

    def find(self, node):
        root = node
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[node] != root:       # path compression
            self.parent[node], node = root, self.parent[node]
        return root

    def union(self, a, b, edge_resistance, budget):
        """Merge the clusters of ``a``/``b`` if the merged resistance
        diameter stays within ``budget``.  Returns True on merge."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        merged_diameter = self.diameter[ra] + edge_resistance + self.diameter[rb]
        if merged_diameter > budget:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.diameter[ra] = merged_diameter
        return True


@dataclass
class LRDResult:
    """Outcome of an LRD decomposition.

    Attributes
    ----------
    labels:
        ``(n,)`` cluster id per node, compacted to ``0..n_clusters-1``.
    n_clusters:
        Number of clusters.
    diameters:
        Upper bound on the internal resistance diameter of each cluster.
    edge_resistance:
        The per-edge ER estimates used (aligned with ``edges``).
    edges:
        ``(m, 2)`` edge list the decomposition saw.
    budget:
        The resistance-diameter budget actually applied.
    """

    labels: np.ndarray
    n_clusters: int
    diameters: np.ndarray
    edge_resistance: np.ndarray
    edges: np.ndarray
    budget: float


def lrd_decompose(adjacency, level=6, budget=None, num_vectors=16, seed=0,
                  min_clusters=2, edge_resistance=None):
    """Decompose a graph into low-resistance-diameter clusters.

    Parameters
    ----------
    adjacency:
        Symmetric CSR adjacency of the PGM.
    level:
        Coarsening level ``L``; the target cluster count is ``n / 2^L``.
    budget:
        Resistance-diameter budget per cluster.  Default: scaled from the
        mean edge resistance so that a ``level``-deep merge chain fits
        (``mean_er * 2^level``), mirroring HyperEF's per-level growth.
    num_vectors:
        Sketch depth for the ER estimator.
    min_clusters:
        Never contract below this many clusters.
    edge_resistance:
        Optional pre-computed per-edge ER (aligned with the upper-triangle
        COO ordering), e.g. to share one sketch across ablation runs.

    Returns
    -------
    LRDResult
    """
    n = adjacency.shape[0]
    coo = sp.triu(adjacency, k=1).tocoo()
    edges = np.stack([coo.row, coo.col], axis=1)
    if len(edges) == 0:
        return LRDResult(labels=np.arange(n), n_clusters=n,
                         diameters=np.zeros(n), edge_resistance=np.zeros(0),
                         edges=edges, budget=0.0)
    if edge_resistance is None:
        edge_resistance = approx_edge_resistance(
            adjacency, edges, num_vectors=num_vectors, seed=seed)
    edge_resistance = np.asarray(edge_resistance, dtype=np.float64)
    if budget is None:
        budget = float(edge_resistance.mean()) * (2.0 ** level)

    order = np.argsort(edge_resistance, kind="stable")
    uf = _UnionFind(n)
    clusters = n
    target = max(int(np.ceil(n / 2.0 ** level)), min_clusters)
    for idx in order:
        if clusters <= target:
            break
        a, b = edges[idx]
        if uf.union(int(a), int(b), float(edge_resistance[idx]), budget):
            clusters -= 1

    roots = np.array([uf.find(i) for i in range(n)])
    unique_roots, labels = np.unique(roots, return_inverse=True)
    diameters = uf.diameter[unique_roots]
    return LRDResult(labels=labels, n_clusters=len(unique_roots),
                     diameters=diameters, edge_resistance=edge_resistance,
                     edges=edges, budget=float(budget))


def cluster_sizes(labels):
    """Sizes of each cluster id in a label vector."""
    return np.bincount(labels)
