"""PGM construction and spectral clustering substrates (paper S1 + S2)."""

from .knn import knn_search, knn_graph_edges
from .hnsw import HNSWIndex
from .laplacian import (
    adjacency_from_edges, knn_adjacency, laplacian, largest_component,
    degree_vector,
)
from .resistance import (
    exact_effective_resistance, approx_edge_resistance,
    spectral_embedding_resistance, resistance_embedding,
)
from .lrd import LRDResult, lrd_decompose, cluster_sizes
from .partition import grid_partition, parallel_lrd
from .conductance import cut_fraction, cluster_conductance, partition_summary

__all__ = [
    "cut_fraction", "cluster_conductance", "partition_summary",
    "knn_search", "knn_graph_edges", "HNSWIndex",
    "adjacency_from_edges", "knn_adjacency", "laplacian",
    "largest_component", "degree_vector",
    "exact_effective_resistance", "approx_edge_resistance",
    "spectral_embedding_resistance", "resistance_embedding",
    "LRDResult", "lrd_decompose", "cluster_sizes",
    "grid_partition", "parallel_lrd",
]
