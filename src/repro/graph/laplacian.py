"""Weighted graph construction and Laplacians for the PGM (paper S1).

Edge weights encode conditional dependence between nearby collocation points,
inversely proportional to distance (paper §3.2).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

__all__ = [
    "adjacency_from_edges", "knn_adjacency", "laplacian",
    "largest_component", "degree_vector",
]


def adjacency_from_edges(n, edges, weights):
    """Symmetric CSR adjacency from an undirected edge list."""
    edges = np.asarray(edges)
    weights = np.asarray(weights, dtype=np.float64)
    if edges.shape[0] != weights.shape[0]:
        raise ValueError("edges and weights length mismatch")
    rows = np.concatenate([edges[:, 0], edges[:, 1]])
    cols = np.concatenate([edges[:, 1], edges[:, 0]])
    vals = np.concatenate([weights, weights])
    adj = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    adj.sum_duplicates()
    return adj


def knn_adjacency(points, k, backend="kdtree", weighting="inverse", sigma=None,
                  rng=None):
    """Build the kNN PGM adjacency of a point cloud.

    Parameters
    ----------
    points:
        ``(n, d)`` coordinates (the paper uses the low-dimensional spatial
        coordinates; output features can be appended by the caller).
    k:
        Neighbours per node.
    weighting:
        ``"inverse"`` — w = 1/(d + eps) (dependence inversely proportional to
        distance, §3.2); ``"gaussian"`` — w = exp(-d² / 2σ²);
        ``"unit"`` — all ones.
    sigma:
        Gaussian bandwidth (defaults to the mean kNN distance).
    """
    from .knn import knn_graph_edges, knn_search
    indices, distances = knn_search(points, k, backend=backend, rng=rng)
    edges, lengths = knn_graph_edges(indices, distances)
    if weighting == "inverse":
        eps = max(float(lengths.mean()) * 1e-3, 1e-12)
        weights = 1.0 / (lengths + eps)
    elif weighting == "gaussian":
        bandwidth = float(sigma) if sigma is not None else float(lengths.mean())
        weights = np.exp(-0.5 * (lengths / bandwidth) ** 2)
    elif weighting == "unit":
        weights = np.ones(len(lengths))
    else:
        raise ValueError(f"unknown weighting {weighting!r}")
    return adjacency_from_edges(len(points), edges, weights)


def degree_vector(adjacency):
    """Weighted degree of each node."""
    return np.asarray(adjacency.sum(axis=1)).ravel()


def laplacian(adjacency):
    """Combinatorial Laplacian ``L = D - W`` (CSR)."""
    deg = degree_vector(adjacency)
    return sp.diags(deg) - adjacency


def largest_component(adjacency):
    """Indices of the largest connected component (PGMs from kNN graphs are
    usually connected, but rejection-sampled clouds can have stragglers)."""
    count, labels = connected_components(adjacency, directed=False)
    if count == 1:
        return np.arange(adjacency.shape[0])
    sizes = np.bincount(labels)
    return np.flatnonzero(labels == np.argmax(sizes))
