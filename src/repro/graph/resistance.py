"""Effective-resistance computation and estimation (paper §3.3, Def. 3.1).

Three estimators with a common interface:

* :func:`exact_effective_resistance` — dense pseudo-inverse, O(n^3); ground
  truth for tests and small graphs.
* :func:`approx_edge_resistance` — Spielman–Srivastava style Johnson-
  Lindenstrauss sketch: ``R(u,v) ≈ ||Z e_uv||²`` where the rows of ``Z`` are
  Laplacian solves against random signed edge combinations.  Near-linear
  when the grounded Laplacian factorizes sparsely (kNN graphs do).  This
  plays the role of the paper's linear-time Krylov-subspace estimator [1].
* :func:`spectral_embedding_resistance` — truncated eigen expansion of
  Def. 3.1 (the first ``r`` non-trivial eigenpairs), the HyperEF-flavoured
  low-pass approximation; a lower bound that preserves edge ordering well.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .laplacian import laplacian

__all__ = [
    "exact_effective_resistance",
    "approx_edge_resistance",
    "spectral_embedding_resistance",
    "resistance_embedding",
]


def _pair_array(pairs):
    pairs = np.asarray(pairs, dtype=int)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError("pairs must be (m, 2)")
    return pairs


def exact_effective_resistance(adjacency, pairs):
    """Exact ER via the Moore-Penrose pseudo-inverse (small graphs only)."""
    pairs = _pair_array(pairs)
    lap = laplacian(adjacency).toarray()
    pinv = np.linalg.pinv(lap)
    p, q = pairs[:, 0], pairs[:, 1]
    return pinv[p, p] + pinv[q, q] - 2.0 * pinv[p, q]


def resistance_embedding(adjacency, num_vectors=24, seed=0, solver="auto"):
    """JL sketch ``Z`` with ``R(u,v) ≈ ||Z[:, u] - Z[:, v]||²``.

    Each of the ``num_vectors`` rows solves one grounded-Laplacian system
    against a random ±1 combination of weighted incidence rows, following
    Spielman & Srivastava (2008).

    Parameters
    ----------
    adjacency:
        Symmetric CSR adjacency.
    num_vectors:
        Sketch depth ``t``; relative error concentrates like O(1/sqrt(t)).
    solver:
        ``"splu"`` (sparse LU of the grounded Laplacian), ``"cg"``
        (conjugate gradients, for very large graphs), or ``"auto"``.

    Returns
    -------
    ``(t, n)`` embedding matrix.
    """
    rng = np.random.default_rng(seed)
    n = adjacency.shape[0]
    coo = sp.triu(adjacency, k=1).tocoo()
    weights = coo.data
    m = len(weights)
    lap = laplacian(adjacency).tocsc()
    grounded = lap[1:, 1:]

    if solver == "auto":
        solver = "splu" if n <= 200_000 else "cg"
    if solver == "splu":
        try:
            factor = spla.splu(grounded.tocsc())
        except RuntimeError:
            # a disconnected graph grounds only node 0's component, leaving
            # the other components' blocks exactly singular; a tiny diagonal
            # shift (taken only on this degenerate path, so well-posed
            # graphs keep bit-identical results) makes the solve proceed
            shift = 1e-8 * (1.0 + abs(grounded.diagonal()).mean())
            regularised = grounded + shift * sp.eye(grounded.shape[0],
                                                    format="csc")
            factor = spla.splu(regularised.tocsc())
        solve = factor.solve
    elif solver == "cg":
        ilu = spla.spilu(grounded.tocsc(), drop_tol=1e-4)
        precond = spla.LinearOperator(grounded.shape, ilu.solve)

        def solve(rhs):
            result, info = spla.cg(grounded, rhs, M=precond, rtol=1e-8,
                                   maxiter=2000)
            if info != 0:
                raise RuntimeError(f"CG failed to converge (info={info})")
            return result
    else:
        raise ValueError(f"unknown solver {solver!r}")

    embedding = np.zeros((num_vectors, n))
    sqrt_w = np.sqrt(weights)
    for t in range(num_vectors):
        signs = rng.choice([-1.0, 1.0], size=m) / np.sqrt(num_vectors)
        # y = B^T W^{1/2} q  accumulated sparsely
        y = np.zeros(n)
        contrib = signs * sqrt_w
        np.add.at(y, coo.row, contrib)
        np.add.at(y, coo.col, -contrib)
        embedding[t, 1:] = solve(y[1:])
    # fix the gauge so distances are meaningful (node 0 grounded)
    return embedding


def approx_edge_resistance(adjacency, pairs=None, num_vectors=24, seed=0,
                           solver="auto"):
    """Approximate ER of ``pairs`` (default: every graph edge)."""
    if pairs is None:
        coo = sp.triu(adjacency, k=1).tocoo()
        pairs = np.stack([coo.row, coo.col], axis=1)
    pairs = _pair_array(pairs)
    z = resistance_embedding(adjacency, num_vectors=num_vectors, seed=seed,
                             solver=solver)
    diff = z[:, pairs[:, 0]] - z[:, pairs[:, 1]]
    return np.sum(diff * diff, axis=0)


def spectral_embedding_resistance(adjacency, pairs=None, rank=16, seed=0):
    """Truncated eigen-expansion of Def. 3.1 using the ``rank`` smallest
    non-trivial Laplacian eigenpairs (low-pass / HyperEF-style estimate)."""
    if pairs is None:
        coo = sp.triu(adjacency, k=1).tocoo()
        pairs = np.stack([coo.row, coo.col], axis=1)
    pairs = _pair_array(pairs)
    n = adjacency.shape[0]
    lap = laplacian(adjacency).tocsc()
    rank = min(rank, n - 1)
    if n <= 400 or rank + 1 >= n - 1:
        # dense path: accurate across the whole spectrum
        vals, vecs = np.linalg.eigh(lap.toarray())
    else:
        # shift-invert around 0 finds the smallest eigenpairs quickly
        rank = min(rank, n - 2)  # ARPACK needs k < n
        vals, vecs = spla.eigsh(lap + 1e-10 * sp.eye(n), k=rank + 1, sigma=0,
                                which="LM")
        order = np.argsort(vals)
        vals, vecs = vals[order], vecs[:, order]
    vals, vecs = vals[1:rank + 1], vecs[:, 1:rank + 1]  # drop constant vector
    diff = vecs[pairs[:, 0], :] - vecs[pairs[:, 1], :]
    return np.sum(diff * diff / vals[None, :], axis=1)
