"""Spatial grid partitioning for parallel S1/S2 (paper §3.3).

The paper decomposes the dataset into grids and runs PGM construction and
LRD decomposition in independent sub-processes.  :func:`grid_partition`
produces the per-cell index sets; :func:`parallel_lrd` runs the kNN + LRD
pipeline per cell (optionally in a process pool) and stitches the cluster
labels back together with globally unique ids.
"""

from __future__ import annotations

import numpy as np

__all__ = ["grid_partition", "parallel_lrd"]


def grid_partition(points, cells_per_dim):
    """Split points into a regular grid of cells.

    Returns a list of index arrays, one per non-empty cell.
    """
    points = np.asarray(points)
    if cells_per_dim < 1:
        raise ValueError("cells_per_dim must be >= 1")
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    scaled = (points - lo) / span
    cell_ids = np.minimum((scaled * cells_per_dim).astype(int),
                          cells_per_dim - 1)
    flat = cell_ids[:, 0]
    for d in range(1, points.shape[1]):
        flat = flat * cells_per_dim + cell_ids[:, d]
    order = np.argsort(flat, kind="stable")
    sorted_ids = flat[order]
    boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
    return [chunk for chunk in np.split(order, boundaries)]


def _cell_lrd(args):
    """Worker: kNN graph + LRD on one cell (top-level for picklability)."""
    points, k, level, num_vectors, seed = args
    from .laplacian import knn_adjacency
    from .lrd import lrd_decompose
    if len(points) <= max(k, 2):
        return np.zeros(len(points), dtype=int), max(len(points) and 1, 0)
    adjacency = knn_adjacency(points, min(k, len(points) - 1))
    result = lrd_decompose(adjacency, level=level, num_vectors=num_vectors,
                           seed=seed)
    return result.labels, result.n_clusters


def parallel_lrd(points, k, level, cells_per_dim=2, num_vectors=16, seed=0,
                 pool=None):
    """Grid-partitioned LRD clustering of a point cloud.

    Parameters
    ----------
    points:
        ``(n, d)`` coordinates.
    k, level, num_vectors, seed:
        Forwarded to the per-cell pipeline.
    cells_per_dim:
        Grid resolution (1 disables partitioning).
    pool:
        Optional ``multiprocessing.Pool``-like object with a ``map`` method;
        when ``None`` the cells run sequentially (deterministic and
        dependency-free — the paper's speedup claim is about wall time, not
        labels).

    Returns
    -------
    ``(labels, n_clusters)`` with cluster ids unique across cells.
    """
    points = np.asarray(points)
    cells = grid_partition(points, cells_per_dim)
    jobs = [(points[idx], k, level, num_vectors, seed + i)
            for i, idx in enumerate(cells)]
    mapper = pool.map if pool is not None else map
    results = list(mapper(_cell_lrd, jobs))
    labels = np.zeros(len(points), dtype=int)
    offset = 0
    for idx, (cell_labels, count) in zip(cells, results):
        labels[idx] = cell_labels + offset
        offset += count
    return labels, offset
