"""k-nearest-neighbour graph construction (paper step S1).

The default backend is an exact KD-tree (scipy); a pure-python HNSW backend
(:mod:`repro.graph.hnsw`) mirrors the approximate O(N log N) algorithm the
paper cites [Malkov & Yashunin 2018] and is validated against the exact
result in the test suite.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["knn_search", "knn_graph_edges"]


def knn_search(points, k, backend="kdtree", rng=None, **hnsw_kwargs):
    """Find the ``k`` nearest neighbours of every point.

    Parameters
    ----------
    points:
        ``(n, d)`` array.
    k:
        Number of neighbours (excluding the point itself).
    backend:
        ``"kdtree"`` (exact, default), ``"hnsw"`` (approximate, pure python),
        or ``"brute"`` (exact, O(n^2), for tests).
    rng:
        Generator for the HNSW level draws.

    Returns
    -------
    (indices, distances):
        Both ``(n, k)``; row ``i`` lists the neighbours of point ``i``.
    """
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if k < 1 or k >= n:
        raise ValueError(f"need 1 <= k < n, got k={k}, n={n}")
    if backend == "kdtree":
        tree = cKDTree(points)
        distances, indices = tree.query(points, k=k + 1)
        return indices[:, 1:], distances[:, 1:]
    if backend == "brute":
        deltas = points[:, None, :] - points[None, :, :]
        dist = np.linalg.norm(deltas, axis=2)
        np.fill_diagonal(dist, np.inf)
        indices = np.argsort(dist, axis=1)[:, :k]
        return indices, np.take_along_axis(dist, indices, axis=1)
    if backend == "hnsw":
        from .hnsw import HNSWIndex
        index = HNSWIndex(dim=points.shape[1], rng=rng, **hnsw_kwargs)
        index.build(points)
        return index.knn(points, k, exclude_self=True)
    raise ValueError(f"unknown backend {backend!r}")


def knn_graph_edges(indices, distances):
    """Convert kNN query results to a unique undirected edge list.

    Returns
    -------
    (edges, lengths):
        ``edges`` is ``(m, 2)`` with ``edges[:, 0] < edges[:, 1]``;
        ``lengths`` the corresponding euclidean distances.
    """
    n, k = indices.shape
    src = np.repeat(np.arange(n), k)
    dst = indices.ravel()
    length = distances.ravel()
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keyed = lo.astype(np.int64) * n + hi
    order = np.argsort(keyed, kind="stable")
    keyed, lo, hi, length = keyed[order], lo[order], hi[order], length[order]
    keep = np.ones(len(keyed), dtype=bool)
    keep[1:] = keyed[1:] != keyed[:-1]
    return np.stack([lo[keep], hi[keep]], axis=1), length[keep]
