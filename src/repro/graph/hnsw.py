"""Hierarchical Navigable Small World (HNSW) approximate nearest neighbours.

A pure-python implementation of Malkov & Yashunin (2018), the algorithm the
paper uses for kNN graph construction (S1).  It follows the published
algorithm: exponentially distributed layer assignment, greedy descent through
the upper layers, and beam search (``ef``) at each level, with the simple
closest-first neighbour selection heuristic.

It is intended for algorithmic fidelity and moderate sizes; the exact KD-tree
backend remains the default for large point clouds.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["HNSWIndex"]


class HNSWIndex:
    """An HNSW index over euclidean points.

    Parameters
    ----------
    dim:
        Point dimensionality.
    m:
        Maximum connections per node per layer (layer 0 allows ``2 m``).
    ef_construction:
        Beam width during insertion.
    ef_search:
        Default beam width during queries.
    rng:
        Generator for random level assignment.
    """

    def __init__(self, dim, m=12, ef_construction=64, ef_search=48, rng=None):
        self.dim = int(dim)
        self.m = int(m)
        self.ef_construction = int(ef_construction)
        self.ef_search = int(ef_search)
        self.rng = rng if rng is not None else np.random.default_rng()
        self._level_mult = 1.0 / np.log(self.m)
        # amortized doubling buffer: `points` is a view of the filled
        # prefix, so inserts append in O(1) instead of copying the whole
        # matrix per add (the old np.vstack made index builds quadratic)
        self._buffer = np.empty((0, dim))
        self._count = 0
        self.levels = []
        # neighbours[node][level] -> list of node ids
        self.neighbours = []
        self.entry_point = None
        self.max_level = -1

    @property
    def points(self):
        return self._buffer[:self._count]

    # ------------------------------------------------------------------
    def __len__(self):
        return self._count

    def reserve(self, n):
        """Grow the point buffer to hold at least ``n`` points."""
        if n > len(self._buffer):
            grown = np.empty((int(n), self.dim))
            grown[:self._count] = self._buffer[:self._count]
            self._buffer = grown
        return self

    def _distance(self, query, ids):
        return np.linalg.norm(self.points[ids] - query, axis=1)

    def _search_layer(self, query, entry_points, ef, level):
        """Beam search returning up to ``ef`` closest (dist, id) pairs."""
        visited = set(entry_points)
        dists = self._distance(query, np.fromiter(entry_points, dtype=int))
        candidates = [(d, p) for d, p in zip(dists, entry_points)]
        heapq.heapify(candidates)                      # min-heap by distance
        best = [(-d, p) for d, p in zip(dists, entry_points)]
        heapq.heapify(best)                            # max-heap of the beam
        while candidates:
            dist, node = heapq.heappop(candidates)
            if dist > -best[0][0]:
                break
            for neighbour in self.neighbours[node][level]:
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                d = float(np.linalg.norm(self.points[neighbour] - query))
                if len(best) < ef or d < -best[0][0]:
                    heapq.heappush(candidates, (d, neighbour))
                    heapq.heappush(best, (-d, neighbour))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-d, p) for d, p in best)

    def _select_neighbours(self, candidates, m):
        """Closest-first selection (the paper's 'simple' heuristic)."""
        return [p for _, p in candidates[:m]]

    # ------------------------------------------------------------------
    def add(self, point):
        """Insert a single point."""
        point = np.asarray(point, dtype=np.float64)
        node = self._count
        if self._count == len(self._buffer):
            self.reserve(max(8, 2 * len(self._buffer)))
        self._buffer[node] = point
        self._count += 1
        level = int(-np.log(self.rng.uniform(1e-12, 1.0)) * self._level_mult)
        self.levels.append(level)
        self.neighbours.append({l: [] for l in range(level + 1)})

        if self.entry_point is None:
            self.entry_point = node
            self.max_level = level
            return

        entry = self.entry_point
        # greedy descent through layers above the new node's level
        for l in range(self.max_level, level, -1):
            improved = True
            while improved:
                improved = False
                for neighbour in self.neighbours[entry].get(l, []):
                    if (np.linalg.norm(self.points[neighbour] - point) <
                            np.linalg.norm(self.points[entry] - point)):
                        entry = neighbour
                        improved = True
        # beam search + connect on each layer at or below the node's level
        entry_points = [entry]
        for l in range(min(level, self.max_level), -1, -1):
            found = self._search_layer(point, entry_points, self.ef_construction, l)
            limit = self.m * 2 if l == 0 else self.m
            chosen = self._select_neighbours(found, limit)
            self.neighbours[node][l] = list(chosen)
            for other in chosen:
                links = self.neighbours[other][l]
                links.append(node)
                if len(links) > limit:
                    dists = self._distance(self.points[other], np.array(links))
                    order = np.argsort(dists)[:limit]
                    self.neighbours[other][l] = [links[i] for i in order]
            entry_points = [p for _, p in found] or entry_points
        if level > self.max_level:
            self.max_level = level
            self.entry_point = node

    def build(self, points):
        """Insert ``points`` one by one."""
        points = np.asarray(points, dtype=np.float64)
        self.reserve(self._count + len(points))
        for point in points:
            self.add(point)
        return self

    # ------------------------------------------------------------------
    def query(self, point, k, ef=None):
        """Return ``(ids, distances)`` of the ``k`` approximate neighbours."""
        if self.entry_point is None:
            raise RuntimeError("index is empty")
        point = np.asarray(point, dtype=np.float64)
        ef = max(ef or self.ef_search, k)
        entry = self.entry_point
        for l in range(self.max_level, 0, -1):
            improved = True
            while improved:
                improved = False
                for neighbour in self.neighbours[entry].get(l, []):
                    if (np.linalg.norm(self.points[neighbour] - point) <
                            np.linalg.norm(self.points[entry] - point)):
                        entry = neighbour
                        improved = True
        found = self._search_layer(point, [entry], ef, 0)[:k]
        ids = np.array([p for _, p in found], dtype=int)
        dists = np.array([d for d, _ in found])
        return ids, dists

    def knn(self, queries, k, exclude_self=False):
        """Batch query; optionally drop each query's own id from its result.

        Always returns ``(len(queries), k)`` arrays.  When the index holds
        fewer than ``k`` eligible points the effective ``k`` is clamped to
        what exists and each row is padded deterministically by cycling
        through its found neighbours (closest first); only an index that
        cannot supply a single neighbour raises.
        """
        n = self._count
        available = n - 1 if exclude_self else n
        if available < 1:
            raise ValueError(
                f"index holds {n} point(s) — too small to return even one "
                f"{'non-self ' if exclude_self else ''}neighbour")
        effective_k = min(k, available)
        take = effective_k + 1 if exclude_self else effective_k
        all_ids = np.empty((len(queries), k), dtype=int)
        all_dists = np.empty((len(queries), k))
        for i, q in enumerate(np.asarray(queries, dtype=np.float64)):
            ids, dists = self.query(q, take)
            if exclude_self:
                keep = ids != i
                ids, dists = ids[keep][:effective_k], dists[keep][:effective_k]
            if len(ids) < effective_k:  # top up from a wider beam if needed
                ids2, dists2 = self.query(q, min(take * 4, n),
                                          ef=min(take * 8, 4 * n))
                keep = ids2 != i if exclude_self else slice(None)
                ids = ids2[keep][:effective_k]
                dists = dists2[keep][:effective_k]
            if len(ids) < effective_k:
                # degenerate connectivity: fall back to exact distances
                # for this row rather than returning a short beam
                others = np.delete(np.arange(n), i) if exclude_self \
                    else np.arange(n)
                exact = self._distance(q, others)
                order = np.argsort(exact, kind="stable")[:effective_k]
                ids, dists = others[order], exact[order]
            if len(ids) < k:
                pad = np.arange(k - len(ids)) % len(ids)
                ids = np.concatenate([ids, ids[pad]])
                dists = np.concatenate([dists, dists[pad]])
            all_ids[i], all_dists[i] = ids, dists
        return all_ids, all_dists
