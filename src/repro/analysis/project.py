"""Project-level lint driving: file discovery, pre-scan, repo defaults.

Two of the shipped rules need facts no single file can establish — which
modules are *problem modules* (RPR005) and which class names define
``state_dict`` (RPR007, for subclasses persisting through an inherited
round-trip).  :func:`prescan` gathers those facts in one cheap AST pass over
the whole file set and hands them to every rule through
``FileContext.project``; single-file linting (no pre-scan) leaves the dict
empty and those rules stay quiet rather than guessing.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from .core import lint_file

__all__ = ["lint_paths", "lint_project", "prescan", "repo_source_root"]


def repo_source_root():
    """Directory of the installed ``repro`` package (the default lint target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def _python_files(paths):
    """All ``.py`` files under ``paths``, deduplicated, in sorted order."""
    seen = set()
    files = []
    for path in paths:
        path = Path(path)
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def _relpath(path, roots):
    """Posix path of ``path`` relative to the innermost containing root."""
    resolved = Path(path).resolve()
    best = None
    for root in roots:
        try:
            relative = resolved.relative_to(Path(root).resolve())
        except ValueError:
            continue
        if best is None or len(relative.parts) < len(best.parts):
            best = relative
    return best.as_posix() if best is not None else Path(path).as_posix()


def prescan(files):
    """One AST pass over ``files`` collecting cross-file facts for rules.

    Returns a dict with:

    ``problem_modules``
        Stems of modules defining a top-level ``build_*_problem`` function —
        the experiment problem modules RPR005 fences off from one another.
    ``state_dict_classes``
        Names of classes defining a ``state_dict`` method; RPR007 treats
        subclasses of these as checkpointable even when the subclass itself
        only inherits the round-trip.
    """
    problem_modules = set()
    state_dict_classes = set()
    for path in files:
        path = Path(path)
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"),
                             filename=str(path))
        except (SyntaxError, OSError):
            continue
        for node in tree.body:
            # nonempty middle: build_ldc_problem yes, api's build_problem no
            if (isinstance(node, ast.FunctionDef)
                    and re.fullmatch(r"build_\w+_problem", node.name)):
                problem_modules.add(path.stem)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if (isinstance(item, ast.FunctionDef)
                            and item.name == "state_dict"):
                        state_dict_classes.add(node.name)
                        break
    return {"problem_modules": frozenset(problem_modules),
            "state_dict_classes": frozenset(state_dict_classes)}


def lint_paths(paths, *, select=None):
    """Lint every ``.py`` file under ``paths`` with full project context."""
    roots = [Path(p) for p in paths]
    files = _python_files(roots)
    project = prescan(files)
    violations = []
    for path in files:
        violations.extend(lint_file(
            path, relpath=_relpath(path, roots), project=project,
            select=select))
    return violations


def lint_project(root=None, *, select=None):
    """Lint the repro source tree (or ``root``); the ``repro lint`` default."""
    root = repo_source_root() if root is None else Path(root)
    return lint_paths([root], select=select)
