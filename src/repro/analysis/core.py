"""The AST lint framework: rules, violations, suppressions, file driver.

A rule is a small :class:`ast.NodeVisitor` subclass with an id (``RPR001``),
a severity, and a one-line fix hint.  Rules are registered by subclassing
:class:`Rule` (registration is automatic via ``__init_subclass__``), get a
fresh instance per file, and report through :meth:`Rule.report`.

Suppression is line-scoped and explicit::

    labels = set(names)
    for name in labels:      # repro: noqa RPR003
        ...

A bare ``# repro: noqa`` silences every rule on that line.  Suppressions
apply to the physical line a violation is attached to, so the comment sits
next to the code it excuses — greppable and reviewable.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path

__all__ = [
    "FileContext", "Rule", "Violation",
    "available_rules", "lint_file", "lint_source", "rule_catalog",
]

#: ``# repro: noqa`` or ``# repro: noqa RPR001,RPR003`` (comma/space split)
_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\s+(?P<ids>[A-Z0-9 ,]+))?")


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, what, and how to fix it."""

    rule_id: str
    severity: str
    message: str
    path: str
    line: int
    col: int
    hint: str = ""

    def format(self):
        """``path:line:col: RPRxxx message`` (the classic lint shape)."""
        location = f"{self.path}:{self.line}:{self.col}"
        text = f"{location}: {self.rule_id} [{self.severity}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self):
        return {"rule": self.rule_id, "severity": self.severity,
                "message": self.message, "path": self.path,
                "line": self.line, "col": self.col, "hint": self.hint}


@dataclass
class FileContext:
    """Everything a rule may know about the file under analysis."""

    path: str
    source: str
    module: str = ""
    #: package-relative posix path ("repro/training/trainer.py") used by
    #: path-scoped rules; falls back to ``path`` when unknown
    relpath: str = ""
    #: project-wide facts gathered by a pre-scan (see analysis.project);
    #: single-file linting leaves this empty and project rules stay quiet
    project: dict = field(default_factory=dict)

    def scope_path(self):
        return self.relpath or self.path


_RULE_REGISTRY = []


class Rule(ast.NodeVisitor):
    """Base class: one instance analyses one file.

    Subclasses set ``id``, ``title``, ``severity`` (``"error"`` |
    ``"warning"``), ``hint``, and ``rationale`` (the docs catalog is built
    from these), override visitor methods, and call :meth:`report`.
    Subclassing registers the rule; abstract intermediates can opt out with
    ``register = False``.
    """

    id = ""
    title = ""
    severity = "error"
    hint = ""
    rationale = ""
    register = True

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if cls.register and cls.id:
            _RULE_REGISTRY.append(cls)

    def __init__(self, context):
        self.context = context
        self.violations = []

    # ------------------------------------------------------------------
    def applies_to(self, context):
        """Path predicate; rules scoped to subsystems override this."""
        return True

    def report(self, node, message, hint=None):
        """Record a violation anchored at ``node``."""
        self.violations.append(Violation(
            rule_id=self.id, severity=self.severity, message=message,
            path=self.context.path, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            hint=self.hint if hint is None else hint))

    def run(self, tree):
        """Visit ``tree`` and return this file's violations."""
        self.visit(tree)
        return self.violations


def available_rules():
    """All registered rule classes, sorted by id."""
    # rules.py populates the registry as an import side effect
    from . import rules  # noqa: F401  (registration import)
    return sorted(_RULE_REGISTRY, key=lambda rule: rule.id)


def rule_catalog():
    """``[{id, title, severity, hint, rationale}]`` for docs and --format json."""
    return [{"id": rule.id, "title": rule.title, "severity": rule.severity,
             "hint": rule.hint, "rationale": rule.rationale}
            for rule in available_rules()]


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def _suppressions(source):
    """Map line number -> set of suppressed rule ids (``None`` = all).

    Comments are located with :mod:`tokenize` rather than substring search,
    so a ``# repro: noqa`` inside a string literal does not suppress
    anything.
    """
    suppressed = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA.search(token.string)
            if match is None:
                continue
            ids = match.group("ids")
            line = token.start[0]
            if ids is None:
                suppressed[line] = None
            else:
                names = {part for part in re.split(r"[,\s]+", ids.strip())
                         if part}
                if suppressed.get(line, set()) is not None:
                    suppressed.setdefault(line, set()).update(names)
    except tokenize.TokenError:
        pass
    return suppressed


def _apply_suppressions(violations, suppressed):
    kept = []
    for violation in violations:
        ids = suppressed.get(violation.line, set())
        if ids is None or violation.rule_id in (ids or ()):
            continue
        kept.append(violation)
    return kept


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def lint_source(source, path="<string>", *, relpath="", project=None,
                select=None):
    """Lint one source string; returns a list of :class:`Violation`.

    Parameters
    ----------
    select:
        Optional iterable of rule ids to run (default: every registered
        rule).
    project:
        Project-context dict from :func:`repro.analysis.project.prescan`;
        omit for single-file linting (project-scoped rules stay quiet).
    """
    context = FileContext(path=str(path), source=source, relpath=relpath,
                          project=dict(project or {}))
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation(rule_id="RPR000", severity="error",
                          message=f"syntax error: {exc.msg}",
                          path=str(path), line=exc.lineno or 1,
                          col=exc.offset or 0,
                          hint="fix the syntax error so analysis can run")]
    wanted = None if select is None else set(select)
    violations = []
    for rule_cls in available_rules():
        if wanted is not None and rule_cls.id not in wanted:
            continue
        rule = rule_cls(context)
        if not rule.applies_to(context):
            continue
        violations.extend(rule.run(tree))
    violations = _apply_suppressions(violations, _suppressions(source))
    return sorted(violations, key=lambda v: (v.line, v.col, v.rule_id))


def lint_file(path, *, relpath="", project=None, select=None):
    """Lint one file on disk."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), relpath=relpath,
                       project=project, select=select)
