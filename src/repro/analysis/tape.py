"""Tape-graph static analyzer: shape/dtype checking + compile-readiness.

This engine traces **one real training step** of a registered problem —
exactly the graph :meth:`Trainer._step_loss` builds, through the same wiring
``Session.run`` uses — and then analyses the recorded tape statically:

* **shape/dtype verification**: every recorded op is re-checked against a
  per-primitive inference rule (broadcast semantics for elementwise ops,
  ``(n, m) @ (m, k)`` for matmul, size preservation for reshape, ...); a
  node whose actual array disagrees with the rule, or whose dtype drifts
  from its parents', is a latent bug the dynamic run silently absorbs;
* **dead nodes**: tensors built during the step but unreachable from the
  loss — work a recorded tape would simply not replay;
* **re-materialized constants**: constant leaves with identical contents in
  two consecutive steps' tapes (scalar coercions, re-built masks); a
  compiled tape hoists these out of the step loop;
* **duplicate subgraphs**: structurally identical computations performed
  more than once within one step (same op, same inputs), i.e. common
  subexpressions a record-once/replay-many representation would share.

The per-problem report is the gating artifact for the record-once/
replay-many engine in :mod:`repro.autodiff.replay`: it quantifies, per
problem, exactly the waste a compiled tape eliminates, its empty
``shape_issues`` list is the invariant the compiler's shape gate enforces
(a shape-inconsistent graph is refused, not compiled), and the
``replay_ready`` field reports whether an actual compile of the problem's
step succeeds — including the compiler's own bit-identical
self-verification against two recorded traces.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..autodiff import gradients
from ..autodiff.introspect import iter_graph, op_name, record_tape

__all__ = ["TapeReport", "analyze_tape", "trace_training_step"]


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
def trace_training_step(problem, *, sampler="uniform", scale="smoke",
                        n_interior=64, batch_size=16, seed=0, step=0,
                        _wired=None):
    """Record the autodiff tape of one training step of ``problem``.

    Builds the registered problem at the ``smoke`` scale preset, wires the
    exact trainer ``Session.run`` would use (validators skipped — reference
    solvers are irrelevant to graph structure), and records every tensor
    created while building the step-``step`` loss.

    Returns ``(tape, loss, trainer)``.  The tape covers the **forward**
    graph only; gradients are taken afterwards by the analyzer so forward
    structure and backward correctness are reported separately.
    """
    if _wired is None:
        _wired = _wire_problem(problem, sampler=sampler, scale=scale,
                               n_interior=n_interior, batch_size=batch_size,
                               seed=seed)
    trainer, _ = _wired
    with record_tape() as tape:
        loss = trainer._step_loss(step)
    return tape, loss, trainer


def _wire_problem(problem, *, sampler, scale, n_interior, batch_size, seed):
    """Problem name -> ``(trainer, sampler_obj)`` with started samplers."""
    # imported lazily: analysis of source files must not drag in the full
    # experiment stack, only tape tracing needs it
    from ..api.problems import build_problem
    from ..api.registry import problem_registry
    from ..api.session import _wire_training

    entry = problem_registry.get(problem)
    config = entry.config_factory(scale)
    prob = build_problem(problem, config, n_interior,
                         np.random.default_rng(config.seed))
    trainer, sampler_obj = _wire_training(prob, config, sampler, batch_size,
                                          seed, validators=[])
    for obj in trainer.samplers.values():
        obj.start()
    return trainer, sampler_obj


# ----------------------------------------------------------------------
# Shape/dtype inference rules
# ----------------------------------------------------------------------
_ELEMENTWISE_BINARY = frozenset({
    "add", "sub", "mul", "div", "power", "maximum", "minimum",
})
_ELEMENTWISE_UNARY = frozenset({
    "neg", "exp", "log", "sqrt", "square", "sin", "cos", "tanh", "sigmoid",
    "silu", "relu", "softplus", "absolute",
})
#: ops whose output shape depends on closure-captured arguments (axis,
#: index, target shape) we cannot see statically; they get the weaker
#: size/dtype checks below instead of an exact shape rule
_DATA_DEPENDENT = frozenset({"getitem", "_scatter"})


def _broadcast_shapes(shapes):
    try:
        return np.broadcast_shapes(*shapes)
    except ValueError:
        return None


def _expected_shape(name, node, parent_shapes):
    """Inferred output shape, or ``None`` when the rule cannot decide."""
    actual = node.data.shape
    if name in _ELEMENTWISE_BINARY or name == "where":
        return _broadcast_shapes(parent_shapes)
    if name in _ELEMENTWISE_UNARY or name in ("zeros_like", "ones_like"):
        return parent_shapes[0]
    if name == "matmul":
        (n, m), (m2, k) = parent_shapes
        return (n, k) if m == m2 else None
    if name == "reshape":
        size = int(np.prod(parent_shapes[0], dtype=np.int64))
        return actual if int(np.prod(actual, dtype=np.int64)) == size else None
    if name == "transpose":
        return actual if sorted(actual) == sorted(parent_shapes[0]) else None
    if name == "broadcast_to":
        merged = _broadcast_shapes([parent_shapes[0], actual])
        return actual if merged == actual else None
    if name == "concat":
        total = sum(int(np.prod(s, dtype=np.int64)) for s in parent_shapes)
        same_rank = all(len(s) == len(actual) for s in parent_shapes)
        ok = same_rank and int(np.prod(actual, dtype=np.int64)) == total
        return actual if ok else None
    if name == "sum_":
        in_size = int(np.prod(parent_shapes[0], dtype=np.int64))
        out_size = int(np.prod(actual, dtype=np.int64))
        divides = out_size != 0 and in_size % out_size == 0
        return actual if divides and out_size <= max(in_size, 1) else None
    return actual   # data-dependent ops: shape accepted, dtype still checked


def _expected_dtype(name, node, parents):
    if not parents:
        return node.data.dtype
    if name in ("zeros_like", "ones_like", "_scatter", "getitem", "reshape",
                "transpose", "broadcast_to", "sum_"):
        return parents[0].data.dtype
    return np.result_type(*[p.data for p in parents])


def _verify_node(node, issues):
    name = op_name(node)
    parents = node._parents
    if not parents:
        return
    parent_shapes = [p.data.shape for p in parents]
    expected = _expected_shape(name, node, parent_shapes)
    if expected is None or tuple(expected) != tuple(node.data.shape):
        issues.append({
            "kind": "shape", "op": name,
            "parents": [list(s) for s in parent_shapes],
            "expected": None if expected is None else list(expected),
            "actual": list(node.data.shape)})
        return
    if name not in _DATA_DEPENDENT:
        want = _expected_dtype(name, node, parents)
        if np.dtype(want) != node.data.dtype:
            issues.append({
                "kind": "dtype", "op": name,
                "parents": [str(p.data.dtype) for p in parents],
                "expected": str(np.dtype(want)),
                "actual": str(node.data.dtype)})


# ----------------------------------------------------------------------
# Graph analyses
# ----------------------------------------------------------------------
def _fingerprint(tensor):
    """Content hash of a constant: (shape, dtype, sha1 of the bytes)."""
    data = np.ascontiguousarray(tensor.data)
    digest = hashlib.sha1(data.tobytes()).hexdigest()[:16]
    return (data.shape, str(data.dtype), digest)


def _structural_hashes(tape, loss):
    """Map structural key -> nodes computing it, within one step's tape.

    Leaves created *before* the step (parameters, input features) hash by
    identity; constants materialized *during* the step hash by content, so
    two re-coercions of the same scalar count as the same input.  Two tape
    nodes sharing a key perform identical work twice.
    """
    created = tape.created_ids()
    tracked = {id(node) for node in tape.nodes}
    keys = {}
    groups = {}
    for node in iter_graph(loss):
        parents = node._parents
        if not parents:
            if id(node) in created:
                key = ("const",) + _fingerprint(node)
            else:
                key = ("leaf", id(node))
        else:
            key = (op_name(node), node.data.shape,
                   tuple(keys[id(p)] for p in parents))
            # keys recurse structurally; collapse to a digest to keep them
            # fixed-size however deep the graph gets
            key = hashlib.sha1(repr(key).encode()).hexdigest()
        keys[id(node)] = key
        if parents and id(node) in tracked:
            groups.setdefault(key, []).append(node)
    return {key: nodes for key, nodes in groups.items() if len(nodes) > 1}


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class TapeReport:
    """Static analysis of one problem's per-step autodiff tape."""

    problem: str
    sampler: str
    n_nodes: int = 0
    n_constants: int = 0
    loss_shape: tuple = ()
    loss_dtype: str = ""
    op_counts: dict = field(default_factory=dict)
    shape_issues: list = field(default_factory=list)
    dead_nodes: int = 0
    dead_by_op: dict = field(default_factory=dict)
    rematerialized_constants: int = 0
    rematerialized_bytes: int = 0
    duplicate_subgraphs: int = 0
    duplicate_nodes: int = 0
    duplicate_ops: dict = field(default_factory=dict)
    gradient_issues: list = field(default_factory=list)
    #: parameters whose gradient arrives wider than the parameter dtype.
    #: Historically the backward masks of ``maximum``/``minimum``/``where``
    #: hardcoded float64 and upcast whole float32 backward passes; the masks
    #: now adopt the operand dtype, so this should be 0 for every problem —
    #: a nonzero count flags a new upcast leaking into the backward pass
    upcast_gradients: int = 0
    n_params: int = 0
    #: whether :func:`repro.autodiff.replay.compile_step` accepts this
    #: problem's training step (including bit-identical self-verification)
    replay_ready: bool = False
    #: the compiler's refusal message when ``replay_ready`` is False
    replay_refusal: str = None
    #: the compiled program's optimisation counters when ready
    replay_stats: dict = field(default_factory=dict)

    @property
    def shape_consistent(self):
        """True when every op and every gradient passed verification."""
        return not self.shape_issues and not self.gradient_issues

    def to_dict(self):
        return {
            "problem": self.problem, "sampler": self.sampler,
            "nodes": self.n_nodes, "constants": self.n_constants,
            "loss_shape": list(self.loss_shape),
            "loss_dtype": self.loss_dtype,
            "op_counts": dict(sorted(self.op_counts.items())),
            "shape_consistent": self.shape_consistent,
            "shape_issues": self.shape_issues,
            "gradient_issues": self.gradient_issues,
            "dead_nodes": self.dead_nodes,
            "dead_by_op": dict(sorted(self.dead_by_op.items())),
            "rematerialized_constants": self.rematerialized_constants,
            "rematerialized_bytes": self.rematerialized_bytes,
            "duplicate_subgraphs": self.duplicate_subgraphs,
            "duplicate_nodes": self.duplicate_nodes,
            "duplicate_ops": dict(sorted(self.duplicate_ops.items())),
            "upcast_gradients": self.upcast_gradients,
            "params": self.n_params,
            "replay_ready": self.replay_ready,
            "replay_refusal": self.replay_refusal,
            "replay_stats": dict(self.replay_stats),
        }

    def format(self):
        lines = [f"tape report: {self.problem} (sampler={self.sampler})",
                 f"  nodes: {self.n_nodes}  in-step constants: "
                 f"{self.n_constants}  params: {self.n_params}",
                 f"  loss: shape={list(self.loss_shape)} "
                 f"dtype={self.loss_dtype}"]
        top = sorted(self.op_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        ops = ", ".join(f"{name}×{count}" for name, count in top[:8])
        lines.append(f"  ops: {ops}" + (" ..." if len(top) > 8 else ""))
        status = "OK" if self.shape_consistent else "FAILED"
        lines.append(f"  shape/dtype check: {status} "
                     f"({len(self.shape_issues)} op issues, "
                     f"{len(self.gradient_issues)} gradient issues)")
        for issue in self.shape_issues[:5]:
            lines.append(f"    {issue['kind']} mismatch in {issue['op']}: "
                         f"{issue['parents']} -> {issue['actual']} "
                         f"(expected {issue['expected']})")
        for issue in self.gradient_issues[:5]:
            lines.append(f"    gradient {issue['param']}: {issue['detail']}")
        lines.append(f"  compile-readiness: {self.dead_nodes} dead nodes, "
                     f"{self.rematerialized_constants} re-materialized "
                     f"constants ({self.rematerialized_bytes} bytes/step), "
                     f"{self.duplicate_subgraphs} duplicate subgraphs "
                     f"({self.duplicate_nodes} redundant nodes)")
        if self.upcast_gradients:
            lines.append(f"  precision: {self.upcast_gradients}/"
                         f"{self.n_params} gradients arrive wider than "
                         f"their parameter dtype")
        if self.replay_ready:
            stats = self.replay_stats
            lines.append(f"  replay: READY "
                         f"({stats.get('instructions', 0)} instructions "
                         f"from {stats.get('recorded', 0)} recorded "
                         f"tensors, {stats.get('cse_hits', 0)} shared)")
        else:
            lines.append(f"  replay: REFUSED — {self.replay_refusal}")
        return "\n".join(lines)


def analyze_tape(problem, *, sampler="uniform", scale="smoke", n_interior=64,
                 batch_size=16, seed=0):
    """Trace and statically analyse one training step of ``problem``.

    Traces steps 0 and 1 through the same wired trainer (the second trace
    exists solely to identify constants re-materialized every step) and
    verifies the step-0 graph: per-op shape/dtype rules, gradient/parameter
    agreement, dead nodes, and duplicate subgraphs.
    """
    wired = _wire_problem(problem, sampler=sampler, scale=scale,
                          n_interior=n_interior, batch_size=batch_size,
                          seed=seed)
    tape0, loss, trainer = trace_training_step(problem, _wired=wired, step=0)
    tape1, _, _ = trace_training_step(problem, _wired=wired, step=1)

    report = TapeReport(problem=problem, sampler=sampler,
                        n_nodes=len(tape0.nodes),
                        n_constants=len(tape0.constants),
                        loss_shape=tuple(loss.data.shape),
                        loss_dtype=str(loss.data.dtype),
                        n_params=len(trainer.params))

    # per-op verification + counts over everything the step created
    for node in tape0.nodes:
        name = op_name(node)
        report.op_counts[name] = report.op_counts.get(name, 0) + 1
        _verify_node(node, report.shape_issues)

    # gradients must exist for every parameter and mirror its shape/dtype
    grads = gradients(loss, trainer.params)
    for index, (param, grad) in enumerate(zip(trainer.params, grads)):
        label = getattr(param, "name", "") or f"param[{index}]"
        if grad is None:
            report.gradient_issues.append(
                {"param": label, "detail": "no gradient reaches this "
                                           "parameter from the loss"})
        elif grad.data.shape != param.data.shape:
            report.gradient_issues.append(
                {"param": label,
                 "detail": f"gradient shape {list(grad.data.shape)} != "
                           f"parameter shape {list(param.data.shape)}"})
        elif grad.data.dtype != param.data.dtype:
            # widening (float32 param, float64 grad) is numerically safe but
            # counted: since the backward masks adopt operand dtypes it
            # indicates a fresh upcast leak; narrowing loses precision
            if (np.result_type(grad.data.dtype, param.data.dtype)
                    == param.data.dtype):
                report.gradient_issues.append(
                    {"param": label,
                     "detail": f"gradient dtype {grad.data.dtype} is "
                               f"narrower than parameter dtype "
                               f"{param.data.dtype}"})
            else:
                report.upcast_gradients += 1

    # dead nodes: created during the step, unreachable from the loss
    live = {id(node) for node in iter_graph(loss)}
    for node in tape0.nodes:
        if id(node) not in live:
            report.dead_nodes += 1
            name = op_name(node)
            report.dead_by_op[name] = report.dead_by_op.get(name, 0) + 1

    # constants whose exact contents reappear in the next step's tape are
    # re-materialized per step — a compiled tape hoists them
    step1_prints = {_fingerprint(t) for t in tape1.constants}
    for tensor in tape0.constants:
        if _fingerprint(tensor) in step1_prints:
            report.rematerialized_constants += 1
            report.rematerialized_bytes += int(tensor.data.nbytes)

    duplicates = _structural_hashes(tape0, loss)
    report.duplicate_subgraphs = len(duplicates)
    for nodes in duplicates.values():
        report.duplicate_nodes += len(nodes) - 1
        name = op_name(nodes[0])
        report.duplicate_ops[name] = (
            report.duplicate_ops.get(name, 0) + len(nodes) - 1)

    (report.replay_ready, report.replay_refusal,
     report.replay_stats) = _replay_readiness(trainer)
    return report


def _replay_readiness(trainer, steps=(2, 3)):
    """Attempt an actual replay compile of the trainer's step.

    Traces two fresh steps with provenance (steps 2/3 — the analyzer's own
    traces consumed the samplers' step-0/1 draws), verifies the constraints'
    ``replay_inputs`` mirror the recorded externals, and runs
    :func:`repro.autodiff.replay.compile_step` including its bit-identical
    self-verification.  Parameters are left untouched (no optimizer step),
    which the compiler accepts — both traces just see identical weights.

    Returns ``(ready, refusal_message, program_stats)``.
    """
    from ..autodiff.replay import ReplayRefused, StepTrace, compile_step

    traces = []
    for step in steps:
        batches, weights = trainer._step_batches(step)
        param_data = [p.data.copy() for p in trainer.params]
        with record_tape(provenance=True) as tape:
            loss = trainer._assemble_loss(batches, weights)
            grads = gradients(loss, trainer.params)
        mismatch = trainer._verify_replay_externals(tape, batches)
        if mismatch is not None:
            return False, mismatch, {}
        traces.append(StepTrace(tape, loss, grads, param_data,
                                trainer._weight_list(weights)))
    try:
        program = compile_step(traces[0], traces[1], trainer.params)
    except ReplayRefused as exc:
        return False, str(exc), {}
    return True, None, dict(program.stats)
