"""Static analysis: project lint rules + autodiff tape analyzer.

Two engines share this subpackage:

* the **project linter** (:mod:`repro.analysis.core`,
  :mod:`repro.analysis.rules`, :mod:`repro.analysis.project`): an AST rule
  framework with repo-specific rules machine-enforcing the invariants the
  whole reproduction rests on — seeded RNG only, no wall-clock reads in hot
  paths, no nondeterministic iteration feeding RNG/placement/serialization,
  picklable process-pool tasks, registry-mediated experiment wiring, and
  ``state_dict``-complete checkpointable classes;
* the **tape analyzer** (:mod:`repro.analysis.tape`): traces one training
  step per registered problem into the autodiff graph and statically checks
  shape/dtype consistency of every op, dead (never-consumed) nodes,
  constants re-materialized each step, and duplicate subgraphs.  Its
  per-problem report is the gating artifact for the record-once/replay-many
  compile refactor on the ROADMAP.

Both are wired into the CLI (``repro lint`` / ``repro analyze tape``) and a
tier-1 test keeps the repo itself clean.  Suppress a finding in place with
``# repro: noqa`` (whole line) or ``# repro: noqa RPR001,RPR007``.
"""

from .core import (
    Rule, Violation, available_rules, lint_file, lint_source, rule_catalog,
)
from .project import lint_paths, lint_project, repo_source_root
from .tape import TapeReport, analyze_tape, trace_training_step

__all__ = [
    "Rule", "TapeReport", "Violation", "analyze_tape", "available_rules",
    "lint_file", "lint_paths", "lint_project", "lint_source", "repo_source_root",
    "rule_catalog", "trace_training_step",
]
