"""The shipped lint rules (``RPR001`` .. ``RPR010``).

Each rule machine-enforces one invariant the reproduction's guarantees rest
on — serial/process bit-identical runs, resumable bit-identical checkpoints,
picklable pool tasks — i.e. the bug classes that have already cost edge-case
fixes in earlier PRs.  Rules are deliberately small visitors; the framework
(:mod:`repro.analysis.core`) handles registration, suppression, and driving.

The catalog in ``docs/analysis.md`` is generated from these classes'
``id``/``title``/``severity``/``hint``/``rationale`` attributes and
``tools/check_docs.py`` fails CI when a shipped rule id is undocumented.
"""

from __future__ import annotations

import ast

from .core import Rule

__all__ = [
    "GlobalNumpyRandom", "WallClockInHotPath", "SetIteration",
    "UnpicklablePoolTask", "ExperimentCrossImport", "MutableDefaultArg",
    "StateDictCompleteness", "UnsortedFsIteration", "RawTimerInHotPath",
    "UnimportableBackendTask",
]


def _trailing_name(node):
    """The last identifier of a ``Name``/``Attribute`` chain (or None)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_np(node):
    return isinstance(node, ast.Name) and node.id in ("np", "numpy")


# ----------------------------------------------------------------------
class GlobalNumpyRandom(Rule):
    """RPR001 — only seeded ``Generator`` randomness is reproducible."""

    id = "RPR001"
    title = "global numpy/stdlib RNG call"
    severity = "error"
    hint = ("draw from an explicitly seeded np.random.Generator "
            "(np.random.default_rng(seed)) threaded through the call chain")
    rationale = ("Legacy np.random.* and stdlib random.* calls mutate hidden "
                 "global state, so any import-order or concurrency change "
                 "silently shifts every downstream draw — the exact failure "
                 "mode the golden-trajectory harness exists to prevent.")

    #: numpy.random attributes that construct (not consume) generators
    ALLOWED = frozenset({
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64", "RandomState",
    })
    STDLIB = frozenset({
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "normalvariate", "paretovariate", "randint", "random",
        "randrange", "sample", "seed", "shuffle", "triangular", "uniform",
        "vonmisesvariate",
    })

    def visit_Call(self, node):
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            # np.random.<legacy>(...)
            if (isinstance(value, ast.Attribute) and value.attr == "random"
                    and _is_np(value.value)
                    and func.attr not in self.ALLOWED):
                self.report(node, f"np.random.{func.attr}() uses the hidden "
                                  f"global RNG state")
            # random.<fn>(...) on the stdlib module
            elif (isinstance(value, ast.Name) and value.id == "random"
                    and func.attr in self.STDLIB):
                self.report(node, f"random.{func.attr}() uses the hidden "
                                  f"global RNG state")
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        if node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in self.ALLOWED:
                    self.report(node, f"importing numpy.random.{alias.name} "
                                      f"binds the hidden global RNG state")
        self.generic_visit(node)


# ----------------------------------------------------------------------
class WallClockInHotPath(Rule):
    """RPR002 — no wall-clock timestamps inside the deterministic core."""

    id = "RPR002"
    title = "wall-clock read in a deterministic hot path"
    severity = "error"
    hint = ("use time.perf_counter() through repro.utils.TrainingClock for "
            "duration accounting, or move the timestamp out of "
            "training/sampling/autodiff")
    rationale = ("training/, sampling/, and autodiff/ must be pure functions "
                 "of (config, seed): a time.time()/datetime.now() read there "
                 "leaks nondeterminism into trajectories, labels, or cache "
                 "keys and breaks serial/process and resume bit-parity.")

    #: subsystems whose behaviour must be a pure function of (config, seed)
    HOT_PATHS = ("training/", "sampling/", "autodiff/")
    BANNED_TIME = frozenset({"time", "time_ns", "ctime", "localtime",
                             "gmtime"})
    BANNED_DATETIME = frozenset({"now", "utcnow", "today"})

    def applies_to(self, context):
        path = context.scope_path().replace("\\", "/")
        return any(part in path for part in self.HOT_PATHS)

    def visit_Call(self, node):
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if (isinstance(value, ast.Name) and value.id == "time"
                    and func.attr in self.BANNED_TIME):
                self.report(node, f"time.{func.attr}() reads the wall clock "
                                  f"in a deterministic hot path")
            elif func.attr in self.BANNED_DATETIME and (
                    _trailing_name(value) in ("datetime", "date")):
                self.report(node,
                            f"{_trailing_name(value)}.{func.attr}() reads "
                            f"the wall clock in a deterministic hot path")
        self.generic_visit(node)


# ----------------------------------------------------------------------
class SetIteration(Rule):
    """RPR003 — set iteration order must never escape into results."""

    id = "RPR003"
    title = "iteration over an unordered set"
    severity = "error"
    hint = "wrap the set in sorted(...) before iterating"
    rationale = ("Set iteration order depends on insertion history and hash "
                 "seeding; when it feeds RNG draws, task placement, or "
                 "serialized output, two identical runs diverge.  sorted() "
                 "restores a canonical order at negligible cost.")

    #: constructors whose iteration order would leak out of the expression
    ORDERED_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter"})

    def _is_set_expr(self, node):
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Name)
                    and node.func.id in ("set", "frozenset")):
                return True
            if (isinstance(node.func, ast.Attribute) and node.func.attr in
                    ("union", "intersection", "difference",
                     "symmetric_difference")
                    and self._is_set_expr(node.func.value)):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return (self._is_set_expr(node.left)
                    or self._is_set_expr(node.right))
        return False

    def _check_iterable(self, node, where):
        if self._is_set_expr(node):
            self.report(node, f"{where} iterates a set in nondeterministic "
                              f"order")

    def visit_For(self, node):
        self._check_iterable(node.iter, "for loop")
        self.generic_visit(node)

    def _check_comprehension(self, node):
        for generator in node.generators:
            self._check_iterable(generator.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    def visit_Call(self, node):
        if (isinstance(node.func, ast.Name)
                and node.func.id in self.ORDERED_CONSUMERS and node.args):
            self._check_iterable(node.args[0], f"{node.func.id}()")
        self.generic_visit(node)


# ----------------------------------------------------------------------
class UnpicklablePoolTask(Rule):
    """RPR004 — process-pool tasks must be importable module-level callables."""

    id = "RPR004"
    title = "unpicklable callable submitted to a process pool"
    severity = "error"
    hint = ("submit a module-level function and pass its inputs as plain "
            "picklable arguments (the pattern _execute_tasks uses)")
    rationale = ("pickle serializes functions by qualified name: lambdas and "
                 "closures defined inside another function cannot cross the "
                 "process boundary, so the pool raises PicklingError at "
                 "runtime — on the worker, long after submission.")

    def __init__(self, context):
        super().__init__(context)
        self._scopes = []   # per enclosing function: locally-defined names

    def _enter_scope(self, node):
        self._scopes.append(set())
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node):
        if self._scopes:
            self._scopes[-1].add(node.name)
        self._enter_scope(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node):
        self._enter_scope(node)

    def visit_Assign(self, node):
        # `fn = lambda ...:` inside a function is just as unpicklable
        if self._scopes and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._scopes[-1].add(target.id)
        self.generic_visit(node)

    def _is_local_def(self, name):
        return any(name in scope for scope in self._scopes)

    def visit_Call(self, node):
        func = node.func
        if isinstance(func, ast.Attribute) and node.args:
            receiver = (_trailing_name(func.value) or "").lower()
            is_pool = "pool" in receiver or "executor" in receiver
            if func.attr == "submit" or (func.attr == "map" and is_pool):
                task = node.args[0]
                if isinstance(task, ast.Lambda):
                    self.report(task, f"lambda passed to .{func.attr}() "
                                      f"cannot be pickled to a worker")
                elif (isinstance(task, ast.Name)
                        and self._is_local_def(task.id)):
                    self.report(task, f"locally-defined function "
                                      f"{task.id!r} passed to "
                                      f".{func.attr}() cannot be pickled "
                                      f"to a worker")
        self.generic_visit(node)


# ----------------------------------------------------------------------
class UnimportableBackendTask(UnpicklablePoolTask):
    """RPR010 — backend tasks must carry an importable module-level name."""

    id = "RPR010"
    title = "unimportable callable submitted to an execution backend"
    severity = "error"
    hint = ("submit a module-level function (the pattern _train_method "
            "uses); backends ship the callable to other processes — the "
            "queue backend by module:qualname re-import, the pool by pickle")
    rationale = ("Execution backends serialize the task callable by "
                 "qualified name: the process pool pickles it, and the "
                 "queue backend records a module:qualname ref that a "
                 "`repro worker` in a different process re-imports.  "
                 "Lambdas, nested functions, and bound methods have no "
                 "importable name, so submission fails at runtime — "
                 "possibly on a worker, long after enqueue.")

    #: receiver name fragments that mark an execution-backend object
    RECEIVERS = ("backend", "queue")
    METHODS = frozenset({"submit", "enqueue"})

    def visit_Call(self, node):
        func = node.func
        if (isinstance(func, ast.Attribute) and node.args
                and func.attr in self.METHODS):
            receiver = (_trailing_name(func.value) or "").lower()
            if any(part in receiver for part in self.RECEIVERS):
                task = node.args[0]
                if isinstance(task, ast.Lambda):
                    self.report(task, f"lambda passed to .{func.attr}() has "
                                      f"no importable name a worker could "
                                      f"resolve")
                elif (isinstance(task, ast.Name)
                        and self._is_local_def(task.id)):
                    self.report(task, f"locally-defined function "
                                      f"{task.id!r} passed to "
                                      f".{func.attr}() has no importable "
                                      f"name a worker could resolve")
                elif (isinstance(task, ast.Attribute)
                        and isinstance(task.value, ast.Name)
                        and task.value.id == "self"):
                    self.report(task, f"bound method self.{task.attr} "
                                      f"passed to .{func.attr}() drags its "
                                      f"instance across the process "
                                      f"boundary")
        self.generic_visit(node)


# ----------------------------------------------------------------------
class ExperimentCrossImport(Rule):
    """RPR005 — problem modules talk through the registry, not each other."""

    id = "RPR005"
    title = "experiment problem module imports a sibling problem module"
    severity = "warning"
    hint = ("move the shared piece into pde/, geometry/, or training/, or "
            "resolve the other problem through repro.api.problem_registry")
    rationale = ("Direct imports between problem modules create hidden "
                 "registration-order coupling and defeat the registry as "
                 "the single extension seam — a new problem must be "
                 "reachable by name alone from every surface.")

    def _problem_modules(self):
        """Module stems of problem modules, from the project pre-scan."""
        return self.context.project.get("problem_modules", frozenset())

    def _own_stem(self):
        path = self.context.scope_path().replace("\\", "/")
        stem = path.rsplit("/", 1)[-1]
        return stem[:-3] if stem.endswith(".py") else stem

    def _is_problem_module(self, tree=None):
        return self._own_stem() in self._problem_modules()

    def _check_target(self, node, dotted):
        if not dotted:
            return
        stem = dotted.rsplit(".", 1)[-1]
        if stem != self._own_stem() and stem in self._problem_modules():
            self.report(node, f"problem module {self._own_stem()!r} imports "
                              f"sibling problem module {stem!r} directly")

    def visit_Module(self, node):
        if self._is_problem_module():
            self.generic_visit(node)

    def visit_ImportFrom(self, node):
        self._check_target(node, node.module or "")
        # `from . import ldc` spells the sibling in the alias list
        if not node.module and node.level:
            for alias in node.names:
                self._check_target(node, alias.name)
        self.generic_visit(node)

    def visit_Import(self, node):
        for alias in node.names:
            self._check_target(node, alias.name)
        self.generic_visit(node)


# ----------------------------------------------------------------------
class MutableDefaultArg(Rule):
    """RPR006 — mutable default arguments alias state across calls."""

    id = "RPR006"
    title = "mutable default argument"
    severity = "warning"
    hint = "default to None and materialise the container inside the body"
    rationale = ("A list/dict/set default is evaluated once at definition "
                 "time and shared by every call; mutation in one call leaks "
                 "into the next — stateful behaviour masquerading as a pure "
                 "signature.")

    MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray",
                               "defaultdict", "Counter", "OrderedDict"})

    def _is_mutable(self, node):
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and _trailing_name(node.func) in self.MUTABLE_CALLS)

    def _check_function(self, node):
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if self._is_mutable(default):
                self.report(default, f"mutable default argument in "
                                     f"{node.name}()")
        self.generic_visit(node)

    visit_FunctionDef = _check_function
    visit_AsyncFunctionDef = _check_function


# ----------------------------------------------------------------------
class StateDictCompleteness(Rule):
    """RPR007 — checkpointable classes must round-trip all array state."""

    id = "RPR007"
    title = "array state missing from state_dict round-trip"
    severity = "warning"
    hint = ("persist the attribute in state_dict()/load_state_dict() (or "
            "suppress with a comment explaining why it is derived state)")
    rationale = ("A Module/Sampler/Optimizer attribute holding arrays that "
                 "state_dict does not cover silently resets on resume: the "
                 "run keeps training but from perturbed state — the "
                 "silent-resume-drift bug class PR 3's checkpoints exist to "
                 "rule out.")

    #: numpy constructors whose result is fresh array state worth persisting
    ARRAY_CTORS = frozenset({
        "array", "asarray", "arange", "linspace", "zeros", "ones", "full",
        "empty", "zeros_like", "ones_like", "full_like", "empty_like",
        "concatenate", "stack", "split", "tile", "repeat",
    })
    ROUND_TRIP = ("state_dict", "load_state_dict")
    MUTATORS = frozenset({"append", "extend", "insert", "update", "add"})

    def _base_names(self, node):
        return {_trailing_name(base) for base in node.bases} - {None}

    def _is_checkpointable(self, node, methods):
        if any(name in methods for name in self.ROUND_TRIP):
            return True
        bases = self.context.project.get("state_dict_classes", frozenset())
        return bool(self._base_names(node) & bases)

    def _np_array_value(self, value):
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and _is_np(value.func.value)
                and value.func.attr in self.ARRAY_CTORS):
            return True
        # [np.zeros_like(p) for p in ...] — per-parameter state lists
        if isinstance(value, ast.ListComp):
            return self._np_array_value(value.elt)
        return False

    def _self_attr(self, target):
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return target.attr
        return None

    def _mentions(self, methods):
        """Attribute names + string keys referenced in the round-trip pair."""
        mentioned = set()
        for name in self.ROUND_TRIP:
            method = methods.get(name)
            if method is None:
                continue
            for sub in ast.walk(method):
                attr = None
                if isinstance(sub, ast.Attribute):
                    attr = self._self_attr(sub) or sub.attr
                elif isinstance(sub, ast.Constant) and isinstance(
                        sub.value, str):
                    attr = sub.value
                if attr:
                    mentioned.add(attr)
                    mentioned.add("_" + attr)
        return mentioned

    def visit_ClassDef(self, node):
        methods = {item.name: item for item in node.body
                   if isinstance(item, ast.FunctionDef)}
        if not self._is_checkpointable(node, methods):
            self.generic_visit(node)
            return

        init = methods.get("__init__")
        stateful = {}          # attr -> first assignment node
        accumulators = {}      # attrs starting as [] / {} in __init__
        for name, method in methods.items():
            if name in self.ROUND_TRIP:
                continue
            for sub in ast.walk(method):
                if not isinstance(sub, ast.Assign):
                    continue
                for target in sub.targets:
                    attr = self._self_attr(target)
                    if attr is None:
                        continue
                    if self._np_array_value(sub.value):
                        stateful.setdefault(attr, sub)
                    elif (method is init and isinstance(
                            sub.value, (ast.List, ast.Dict))
                            and not getattr(sub.value, "elts", None)
                            and not getattr(sub.value, "keys", None)):
                        accumulators.setdefault(attr, sub)

        # an empty container only matters if training-time methods grow it
        for name, method in methods.items():
            if name == "__init__" or name in self.ROUND_TRIP:
                continue
            for sub in ast.walk(method):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in self.MUTATORS):
                    attr = self._self_attr(sub.func.value)
                    if attr in accumulators:
                        stateful.setdefault(attr, accumulators[attr])

        if not stateful:
            self.generic_visit(node)
            return
        mentioned = self._mentions(methods)
        defines_round_trip = any(n in methods for n in self.ROUND_TRIP)
        for attr, assignment in sorted(stateful.items()):
            if attr in mentioned or attr.lstrip("_") in mentioned:
                continue
            if defines_round_trip:
                self.report(assignment,
                            f"{node.name}.{attr} holds array state but "
                            f"never appears in state_dict/load_state_dict")
            else:
                self.report(assignment,
                            f"{node.name}.{attr} holds array state but the "
                            f"class inherits a state_dict that cannot know "
                            f"about it")
        self.generic_visit(node)


# ----------------------------------------------------------------------
class UnsortedFsIteration(Rule):
    """RPR008 — directory listings are OS-ordered; sort before iterating."""

    id = "RPR008"
    title = "iteration over unsorted filesystem listing"
    severity = "warning"
    hint = "wrap the listing in sorted(...) before iterating"
    rationale = ("iterdir/listdir/glob yield entries in filesystem order, "
                 "which differs across machines and mutates as files land; "
                 "feeding that order into records, placement, or reports "
                 "makes runs environment-dependent.")

    FS_METHODS = frozenset({"iterdir", "glob", "rglob"})
    FS_MODULE_FUNCS = {"os": {"listdir", "scandir"},
                       "glob": {"glob", "iglob"}}

    def _is_fs_listing(self, node):
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in self.FS_METHODS:
                return True
            if (isinstance(func.value, ast.Name)
                    and func.attr in self.FS_MODULE_FUNCS.get(
                        func.value.id, ())):
                return True
        return False

    def _check(self, node, where):
        if self._is_fs_listing(node):
            self.report(node, f"{where} iterates a filesystem listing in "
                              f"OS-dependent order")

    def visit_For(self, node):
        self._check(node.iter, "for loop")
        self.generic_visit(node)

    def visit_ListComp(self, node):
        for generator in node.generators:
            self._check(generator.iter, "list comprehension")
        self.generic_visit(node)

    def visit_Call(self, node):
        if (isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple", "enumerate")
                and node.args):
            self._check(node.args[0], f"{node.func.id}()")
        self.generic_visit(node)


# ----------------------------------------------------------------------
class RawTimerInHotPath(Rule):
    """RPR009 — instrumented hot paths must time through ``repro.obs``."""

    id = "RPR009"
    title = "raw timer in an instrumented hot path"
    severity = "warning"
    hint = ("time through repro.obs — span() for traced sections, "
            "timed_span() for functional durations, stopwatch() for plain "
            "wall timing — or mark a deliberate exception with "
            "# repro: noqa RPR009")
    rationale = ("training/, sampling/, autodiff/, and experiments/ are "
                 "instrumented with repro.obs spans; an ad-hoc "
                 "time.perf_counter() or Timer there produces durations the "
                 "profiler cannot see, so `repro runs profile` under-reports "
                 "exactly the code someone bothered to time.")

    #: subsystems whose timings must flow through the span tracer
    HOT_PATHS = ("training/", "sampling/", "autodiff/", "experiments/")
    BANNED_CLOCKS = frozenset({"perf_counter", "perf_counter_ns",
                               "monotonic", "monotonic_ns"})

    def applies_to(self, context):
        path = context.scope_path().replace("\\", "/")
        return any(part in path for part in self.HOT_PATHS)

    def visit_Call(self, node):
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in self.BANNED_CLOCKS):
            self.report(node, f"time.{func.attr}() bypasses the repro.obs "
                              f"tracer in an instrumented hot path")
        elif (isinstance(func, ast.Name)
                and func.id in self.BANNED_CLOCKS):
            self.report(node, f"{func.id}() bypasses the repro.obs tracer "
                              f"in an instrumented hot path")
        elif isinstance(func, ast.Name) and func.id == "Timer":
            self.report(node, "Timer() bypasses the repro.obs tracer in an "
                              "instrumented hot path")
        self.generic_visit(node)
