"""Shared utilities: interpolation, timing, ASCII plotting."""

from .interpolate import bilinear_interpolate
from .timing import Timer, TrainingClock
from .ascii_plot import ascii_plot

__all__ = ["bilinear_interpolate", "Timer", "TrainingClock", "ascii_plot"]
