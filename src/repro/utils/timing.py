"""Wall-clock helpers with support for 'background-thread' accounting.

The paper runs graph rebuilds on background threads so their cost is hidden
from the training wall clock.  :class:`TrainingClock` measures real elapsed
time but lets the caller *credit back* seconds that a background thread would
have absorbed, so experiments can report both accounting modes.
"""

from __future__ import annotations

import time

__all__ = ["Timer", "TrainingClock"]


class Timer:
    """Context manager measuring elapsed wall seconds."""

    def __enter__(self):
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.elapsed = time.perf_counter() - self.start
        return False


class TrainingClock:
    """Monotonic training clock with credit for hidden background work.

    ``offset`` pre-ages the clock: a resumed run passes the elapsed seconds
    stored in its checkpoint so recorded wall times continue the original
    series instead of restarting at zero.
    """

    def __init__(self, offset=0.0):
        self._start = time.perf_counter() - float(offset)
        self._credit = 0.0

    def credit(self, seconds):
        """Subtract ``seconds`` from the visible elapsed time (work the
        paper's implementation performs on a background thread)."""
        if seconds < 0:
            raise ValueError("cannot credit negative time")
        self._credit += seconds

    def elapsed(self):
        """Visible elapsed seconds (never negative)."""
        return max(time.perf_counter() - self._start - self._credit, 0.0)
