"""Wall-clock helpers with support for 'background-thread' accounting.

The paper runs graph rebuilds on background threads so their cost is hidden
from the training wall clock.  :class:`TrainingClock` measures real elapsed
time but lets the caller *credit back* seconds that a background thread would
have absorbed, so experiments can report both accounting modes.
"""

from __future__ import annotations

import time
import warnings

__all__ = ["Timer", "TrainingClock"]


class Timer:
    """Context manager measuring elapsed wall seconds."""

    def __enter__(self):
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.elapsed = time.perf_counter() - self.start
        return False


class TrainingClock:
    """Monotonic training clock with credit for hidden background work.

    ``offset`` pre-ages the clock: a resumed run passes the elapsed seconds
    stored in its checkpoint so recorded wall times continue the original
    series instead of restarting at zero.

    Raw and credited time are tracked separately: :meth:`raw_elapsed` is
    the unadjusted wall clock, :attr:`credited` the total credited back,
    and :meth:`elapsed` the visible difference.  Crediting more time than
    has actually passed is an accounting bug (a rebuild cannot hide more
    wall time than exists), so the first over-credit raises a
    ``RuntimeWarning`` instead of being silently clamped away.
    """

    def __init__(self, offset=0.0):
        self._start = time.perf_counter() - float(offset)
        self._credit = 0.0
        self._overcredit_warned = False

    @property
    def credited(self):
        """Total seconds credited back so far."""
        return self._credit

    def credit(self, seconds):
        """Subtract ``seconds`` from the visible elapsed time (work the
        paper's implementation performs on a background thread)."""
        if seconds < 0:
            raise ValueError("cannot credit negative time")
        self._credit += seconds
        if not self._overcredit_warned and self._credit > self.raw_elapsed():
            self._overcredit_warned = True
            warnings.warn(
                f"TrainingClock credited {self._credit:.3f}s against only "
                f"{self.raw_elapsed():.3f}s of raw elapsed time; background "
                f"credit now exceeds the wall clock (accounting bug?)",
                RuntimeWarning, stacklevel=2)

    def raw_elapsed(self):
        """Raw elapsed seconds, with no background credit applied."""
        return time.perf_counter() - self._start

    def elapsed(self):
        """Visible elapsed seconds (never negative)."""
        return max(self.raw_elapsed() - self._credit, 0.0)
