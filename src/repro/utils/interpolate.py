"""Bilinear interpolation from regular grids to scattered points."""

from __future__ import annotations

import numpy as np

__all__ = ["bilinear_interpolate"]


def bilinear_interpolate(xs, ys, field, points, fill_value=np.nan):
    """Interpolate ``field`` (shape ``(len(ys), len(xs))``) at ``points``.

    Parameters
    ----------
    xs, ys:
        Strictly increasing grid coordinates.
    field:
        Grid values indexed ``field[iy, ix]``.
    points:
        ``(n, 2)`` query coordinates ``(x, y)``.
    fill_value:
        Value assigned to points outside the grid.

    Returns
    -------
    ``(n,)`` interpolated values.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    field = np.asarray(field, dtype=np.float64)
    points = np.atleast_2d(points)
    x, y = points[:, 0], points[:, 1]

    inside = ((x >= xs[0]) & (x <= xs[-1]) & (y >= ys[0]) & (y <= ys[-1]))
    out = np.full(len(points), float(fill_value))
    if not inside.any():
        return out
    xq, yq = x[inside], y[inside]

    ix = np.clip(np.searchsorted(xs, xq) - 1, 0, len(xs) - 2)
    iy = np.clip(np.searchsorted(ys, yq) - 1, 0, len(ys) - 2)
    x0, x1 = xs[ix], xs[ix + 1]
    y0, y1 = ys[iy], ys[iy + 1]
    tx = (xq - x0) / (x1 - x0)
    ty = (yq - y0) / (y1 - y0)
    f00 = field[iy, ix]
    f01 = field[iy, ix + 1]
    f10 = field[iy + 1, ix]
    f11 = field[iy + 1, ix + 1]
    out[inside] = ((1 - tx) * (1 - ty) * f00 + tx * (1 - ty) * f01 +
                   (1 - tx) * ty * f10 + tx * ty * f11)
    return out
