"""Tiny dependency-free ASCII line plots for benchmark 'figures'."""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_plot"]


def ascii_plot(series, width=72, height=18, logy=False, title="",
               ylabel=None):
    """Render one or more ``(xs, ys, label)`` series as an ASCII chart.

    Parameters
    ----------
    series:
        Iterable of ``(xs, ys, label)`` tuples.
    width, height:
        Canvas size in characters.
    logy:
        Plot ``log10(y)``.
    title:
        Optional header line.
    ylabel:
        Y-axis quantity name (default ``"err"``).

    Returns
    -------
    str — the rendered chart (also usable in bench stdout).
    """
    markers = "*+ox#@%&"
    prepared = []
    for xs, ys, label in series:
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        keep = np.isfinite(xs) & np.isfinite(ys)
        if logy:
            keep &= ys > 0
        xs, ys = xs[keep], ys[keep]
        if logy:
            ys = np.log10(ys)
        prepared.append((xs, ys, label))
    if not any(len(xs) for xs, _, _ in prepared):
        return f"{title}\n(no data)"

    all_x = np.concatenate([xs for xs, _, _ in prepared if len(xs)])
    all_y = np.concatenate([ys for _, ys, _ in prepared if len(ys)])
    x_lo, x_hi = all_x.min(), all_x.max()
    y_lo, y_hi = all_y.min(), all_y.max()
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for (xs, ys, _), marker in zip(prepared, markers):
        cols = ((xs - x_lo) / x_span * (width - 1)).astype(int)
        rows = ((ys - y_lo) / y_span * (height - 1)).astype(int)
        for c, r in zip(cols, rows):
            canvas[height - 1 - r][c] = marker

    ylabel = "err" if ylabel is None else ylabel
    ylab = f"log10({ylabel})" if logy else ylabel
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(f"{marker}={label}" for (_, _, label), marker
                       in zip(prepared, markers))
    lines.append(legend)
    top = y_hi if not logy else 10 ** y_hi
    bottom = y_lo if not logy else 10 ** y_lo
    lines.append(f"{ylab} range: [{bottom:.3g}, {top:.3g}]")
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    lines.append(f" x range: [{x_lo:.3g}, {x_hi:.3g}]")
    return "\n".join(lines)
