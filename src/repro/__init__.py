"""SGM-PINN reproduction (DAC 2024).

A self-contained reproduction of "SGM-PINN: Sampling Graphical Models for
Faster Training of Physics-Informed Neural Networks" including every substrate
the paper depends on: a higher-order autodiff engine, a neural-network library,
constructive 2-D geometry, PDE residuals, kNN/PGM graph construction,
effective-resistance LRD clustering, SPADE/ISR stability scoring, the SGM
importance sampler with uniform/MIS baselines, reference CFD solvers for
validation data, and the full experiment harness for the paper's tables and
figures.

The public entry point is the registry-backed :mod:`repro.api` layer::

    import repro
    result = repro.problem("ldc").sampler("sgm").train(steps=500)
"""

__version__ = "0.2.0"

from . import obs
from . import autodiff
from . import nn
from . import geometry
from . import pde
from . import graph
from . import stability
from . import sampling
from . import solvers
from . import training
from . import experiments
from . import utils
from . import api
from . import store
from .api import (
    Problem, RunResult, Session, list_problems, list_samplers, problem,
    register_problem, register_sampler,
)

__all__ = [
    "obs", "autodiff", "nn", "geometry", "pde", "graph", "stability",
    "sampling", "solvers", "training", "experiments", "utils", "api", "store",
    "Problem", "RunResult", "Session", "problem",
    "register_problem", "register_sampler", "list_problems", "list_samplers",
    "__version__",
]
