"""``repro.obs`` — span tracing, metrics, and profiling reports.

The instrumented hot paths (trainer, samplers, replay engine, suite
pool) call the module-level helpers below against one ambient tracer.
When no tracer is installed — the default — every helper is a constant-
time no-op that never reads a clock, so disabled-mode cost is
unmeasurable and goldens stay byte-identical.

Enable tracing for a region with::

    with obs.tracing(stream=path / "spans.jsonl") as tracer:
        trainer.train(...)

or through the public surfaces: ``Session.trace()``, ``run_problem(...,
trace=True)``, ``repro run --trace``.  See docs/observability.md.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from .metrics import MetricsRegistry
from .names import METRICS, metric_catalog, register_metric
from .profile import (aggregate_tree, chrome_trace, format_metrics_summary,
                      metrics_summary, phase_table, read_jsonl,
                      render_phase_table, render_tree, sampler_overhead)
from .tracer import NOOP_SPAN, Span, Tracer

__all__ = [
    "Tracer", "Span", "MetricsRegistry", "METRICS", "metric_catalog",
    "register_metric", "tracer", "enabled", "span", "current", "inc",
    "gauge", "snapshot_metrics", "tracing", "timed_span", "stopwatch",
    "read_jsonl", "aggregate_tree", "render_tree", "phase_table",
    "render_phase_table", "sampler_overhead", "chrome_trace",
    "metrics_summary", "format_metrics_summary", "NOOP_SPAN",
]

#: the ambient tracer; ``None`` means tracing is disabled
_ACTIVE = None


def tracer():
    """The installed :class:`Tracer`, or ``None`` when disabled."""
    return _ACTIVE


def enabled():
    return _ACTIVE is not None


def span(name, **attrs):
    """Open a span on the ambient tracer; shared no-op when disabled."""
    if _ACTIVE is None:
        return NOOP_SPAN
    return _ACTIVE.span(name, **attrs)


def current():
    """Current span id on this thread (pass as ``parent=`` across threads)."""
    if _ACTIVE is None:
        return None
    return _ACTIVE.current_id()


def span_under(name, parent, **attrs):
    """Open a span with an explicit parent id (cross-thread nesting)."""
    if _ACTIVE is None:
        return NOOP_SPAN
    return _ACTIVE.span(name, parent=parent, **attrs)


def inc(name, amount=1):
    if _ACTIVE is not None:
        _ACTIVE.inc(name, amount)


def gauge(name, value):
    if _ACTIVE is not None:
        _ACTIVE.set_gauge(name, value)


def snapshot_metrics(step=None, wall_time=None):
    if _ACTIVE is not None:
        _ACTIVE.snapshot_metrics(step=step, wall_time=wall_time)


@contextmanager
def tracing(stream=None, metrics_stream=None, flush_every=64):
    """Install a fresh ambient :class:`Tracer` for the ``with`` body.

    Nests: the previous tracer (if any) is restored on exit, so a traced
    suite can call into a traced run without either clobbering the other.
    Buffered JSONL streams are flushed on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    installed = Tracer(stream=stream, metrics_stream=metrics_stream,
                       flush_every=flush_every)
    _ACTIVE = installed
    try:
        yield installed
    finally:
        _ACTIVE = previous
        installed.flush()


class timed_span:
    """Measure a region always; record a span for it only when tracing.

    The sanctioned replacement for raw ``perf_counter`` pairs in hot
    paths whose timings are *functional* (e.g. ``Sampler.rebuild_seconds``
    feeds TrainingClock credit): ``.seconds`` is valid whether or not a
    tracer is installed.
    """

    __slots__ = ("_name", "_attrs", "_span_ctx", "_span", "_started",
                 "seconds")

    def __init__(self, name, **attrs):
        self._name = name
        self._attrs = attrs
        self._span_ctx = None
        self._span = None
        self._started = 0.0
        self.seconds = 0.0

    def __enter__(self):
        if _ACTIVE is not None:
            self._span_ctx = _ACTIVE.span(self._name, **self._attrs)
            self._span = self._span_ctx.__enter__()
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.seconds = time.perf_counter() - self._started
        if self._span_ctx is not None:
            self._span_ctx.__exit__(*exc)
            self._span_ctx = None
            self._span = None
        return False

    def set(self, **attrs):
        if self._span is not None:
            self._span.set(**attrs)
        return self


class stopwatch:
    """Plain wall-clock timer (no span) for non-hot-path accounting."""

    __slots__ = ("_started", "seconds")

    def __init__(self):
        self._started = 0.0
        self.seconds = 0.0

    def __enter__(self):
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.seconds = time.perf_counter() - self._started
        return False
