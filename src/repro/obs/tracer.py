"""Hierarchical span tracer with thread-aware nesting and JSONL streaming.

Design constraints (see docs/observability.md):

* **Near-zero disabled cost.**  The module-level ``repro.obs.span()``
  helper returns a shared no-op context manager when no tracer is
  installed — no allocation, no clock read, no lock.  Goldens must stay
  byte-identical either way, so spans never touch RNG or numerics.
* **Thread-aware nesting.**  Each thread keeps its own span stack in a
  ``threading.local``; a worker thread (e.g. a background graph rebuild)
  passes ``parent=obs.current()`` captured on the main thread so its
  spans nest under the step that triggered them instead of floating.
* **Cross-process adoption.**  Spans are timed on ``perf_counter``
  relative to the tracer's ``epoch``, with an ``epoch_unix``
  (``time.time``) anchor recorded once.  A process-pool worker ships its
  span dicts back with the result; the parent :meth:`Tracer.adopt`\\ s
  them — remapping ids, shifting times by the unix-epoch delta, and
  re-parenting under a synthetic ``suite.cell`` span — so one Chrome
  trace shows the whole matrix.
"""

from __future__ import annotations

import json
import threading
import time

from .metrics import MetricsRegistry

__all__ = ["Span", "Tracer", "NOOP_SPAN"]


class Span:
    """One timed region; ``end`` is ``None`` while the region is open."""

    __slots__ = ("name", "span_id", "parent_id", "thread", "start", "end",
                 "attrs")

    def __init__(self, name, span_id, parent_id, thread, start, attrs=None):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread = thread
        self.start = start
        self.end = None
        self.attrs = dict(attrs) if attrs else {}

    def seconds(self):
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attrs):
        """Attach attributes after entry (e.g. the step mode, once known)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self):
        record = {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "thread": self.thread,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class _NoopSpan:
    """Shared do-nothing span; the disabled-mode fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        return self

    def seconds(self):
        return 0.0


NOOP_SPAN = _NoopSpan()

#: sentinel distinguishing "no parent given" from "explicitly a root span"
_UNSET = object()


class _SpanContext:
    """Context manager binding a live :class:`Span` to a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self._span = span

    def __enter__(self):
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc):
        self._span.end = time.perf_counter() - self._tracer.epoch
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects spans and metrics for one run (or one suite/matrix).

    ``stream`` / ``metrics_stream`` are optional paths; when given, closed
    spans and metric snapshots are appended there as JSONL (the same
    torn-tail-tolerant format as ``history.jsonl``), buffered and flushed
    every ``flush_every`` records and on :meth:`flush`.
    """

    def __init__(self, stream=None, metrics_stream=None, flush_every=64):
        self.epoch = time.perf_counter()
        self.epoch_unix = time.time()
        self.metrics = MetricsRegistry()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 1
        self._spans = []
        self._snapshots = []
        self._stream = stream
        self._metrics_stream = metrics_stream
        self._flush_every = int(flush_every)
        self._span_buffer = []
        self._snapshot_buffer = []

    # -- span lifecycle -------------------------------------------------

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_id(self):
        """Id of the innermost open span on *this* thread, or ``None``.

        Capture this on the main thread and pass it as ``parent=`` when
        spawning work on another thread so the child spans nest correctly.
        """
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def span(self, name, parent=_UNSET, **attrs):
        """Open a span; use as ``with tracer.span("train.step") as s:``.

        Without ``parent``, nests under the current span of the calling
        thread.  ``parent=None`` forces a root span; ``parent=<id>`` (an id
        from :meth:`current_id`, possibly captured on another thread)
        forces explicit nesting.
        """
        if parent is _UNSET:
            parent_id = self.current_id()
        else:
            parent_id = parent
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(name, span_id, parent_id,
                    threading.current_thread().name,
                    time.perf_counter() - self.epoch, attrs)
        return _SpanContext(self, span)

    def _push(self, span):
        self._stack().append(span)

    def _pop(self, span):
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # defensive: mis-nested exit
            stack.remove(span)
        with self._lock:
            self._spans.append(span)
            if self._stream is not None:
                self._span_buffer.append(span.to_dict())
                if len(self._span_buffer) >= self._flush_every:
                    self._flush_spans_locked()

    # -- metrics --------------------------------------------------------

    def inc(self, name, amount=1):
        self.metrics.inc(name, amount)

    def set_gauge(self, name, value):
        self.metrics.set_gauge(name, value)

    def snapshot_metrics(self, step=None, wall_time=None):
        """Record (and optionally stream) the current metric levels."""
        snapshot = self.metrics.snapshot()
        if step is not None:
            snapshot["step"] = step
        if wall_time is not None:
            snapshot["wall_time"] = wall_time
        with self._lock:
            self._snapshots.append(snapshot)
            if self._metrics_stream is not None:
                self._snapshot_buffer.append(snapshot)
                if len(self._snapshot_buffer) >= self._flush_every:
                    self._flush_snapshots_locked()
        return snapshot

    # -- persistence ----------------------------------------------------

    def _flush_spans_locked(self):
        if not self._span_buffer:
            return
        lines = "".join(json.dumps(record, sort_keys=True) + "\n"
                        for record in self._span_buffer)
        with open(self._stream, "a", encoding="utf-8") as handle:
            handle.write(lines)
        self._span_buffer.clear()

    def _flush_snapshots_locked(self):
        if not self._snapshot_buffer:
            return
        lines = "".join(json.dumps(record, sort_keys=True) + "\n"
                        for record in self._snapshot_buffer)
        with open(self._metrics_stream, "a", encoding="utf-8") as handle:
            handle.write(lines)
        self._snapshot_buffer.clear()

    def flush(self):
        """Write any buffered spans/snapshots to their JSONL streams."""
        with self._lock:
            if self._stream is not None:
                self._flush_spans_locked()
            if self._metrics_stream is not None:
                self._flush_snapshots_locked()

    # -- export ---------------------------------------------------------

    def spans(self):
        """Closed spans as dicts, in completion order."""
        with self._lock:
            return [span.to_dict() for span in self._spans]

    def snapshots(self):
        with self._lock:
            return list(self._snapshots)

    def export(self):
        """Picklable ``{spans, counters, epoch_unix}`` for pool round-trips."""
        snapshot = self.metrics.snapshot()
        return {
            "spans": self.spans(),
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
            "epoch_unix": self.epoch_unix,
        }

    def adopt(self, obs_data, name="suite.cell", label=None, parent=None):
        """Graft spans exported by another tracer under this one.

        ``obs_data`` is an :meth:`export` dict — possibly produced in a
        process-pool worker and pickled back with its result.  Span ids
        are remapped into this tracer's id space, times are shifted by the
        ``epoch_unix`` delta so both timelines share one clock, and former
        root spans are re-parented under a synthetic ``name`` span covering
        the adopted extent.  Worker counters fold into this tracer's
        metrics.  Returns the synthetic span's id (``None`` if there was
        nothing to adopt).
        """
        spans = obs_data.get("spans") or []
        counters = obs_data.get("counters") or {}
        if counters:
            self.metrics.merge_counters(counters)
        if not spans:
            return None
        shift = obs_data.get("epoch_unix", self.epoch_unix) - self.epoch_unix
        with self._lock:
            id_map = {}
            for record in spans:
                id_map[record["id"]] = self._next_id
                self._next_id += 1
            cell_id = self._next_id
            self._next_id += 1
        starts, ends = [], []
        adopted = []
        for record in spans:
            span = Span(record["name"], id_map[record["id"]], None,
                        record.get("thread", "adopted"),
                        record["start"] + shift, record.get("attrs"))
            old_parent = record.get("parent")
            span.parent_id = (id_map[old_parent]
                              if old_parent in id_map else cell_id)
            end = record.get("end")
            span.end = None if end is None else end + shift
            starts.append(span.start)
            if span.end is not None:
                ends.append(span.end)
            adopted.append(span)
        cell = Span(name, cell_id, parent, "adopted",
                    min(starts) if starts else 0.0,
                    {"label": label} if label else None)
        cell.end = max(ends) if ends else cell.start
        with self._lock:
            self._spans.append(cell)
            self._spans.extend(adopted)
            if self._stream is not None:
                self._span_buffer.append(cell.to_dict())
                self._span_buffer.extend(s.to_dict() for s in adopted)
                if len(self._span_buffer) >= self._flush_every:
                    self._flush_spans_locked()
        return cell_id
