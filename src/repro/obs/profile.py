"""Readers and reports over persisted ``spans.jsonl`` / ``metrics.jsonl``.

Everything here consumes the plain-dict span records written by
:class:`repro.obs.tracer.Tracer` (or returned by ``Tracer.spans()``) —
no live tracer required, so ``repro runs profile`` works on any stored
run, including ones produced on another machine.
"""

from __future__ import annotations

import json

__all__ = ["read_jsonl", "aggregate_tree", "render_tree", "phase_table",
           "render_phase_table", "sampler_overhead", "chrome_trace",
           "metrics_summary", "format_metrics_summary"]

#: trainer phases reported by the per-step breakdown, in display order
PHASES = ("train.sample", "train.forward", "train.backward",
          "train.optimizer", "train.replay", "replay.compile",
          "train.validate")


def read_jsonl(path):
    """Load a JSONL file, tolerating a torn final line (crash mid-write).

    Mirrors ``history_from_jsonl``: a line that fails to parse ends the
    stream instead of raising, so a run killed mid-flush still profiles.
    """
    records = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    break
    except FileNotFoundError:
        pass
    return records


def _closed(spans):
    return [s for s in spans if s.get("end") is not None]


def _name_paths(spans):
    """Map each span to its ancestry name path, e.g. ``train.run/train.step``.

    Spans whose parent is missing from the record set (torn tails, adopted
    fragments) root at their own name.
    """
    by_id = {s["id"]: s for s in spans}
    paths = {}

    def path_of(span):
        key = span["id"]
        if key in paths:
            return paths[key]
        parent = by_id.get(span.get("parent"))
        prefix = path_of(parent) + "/" if parent is not None else ""
        paths[key] = prefix + span["name"]
        return paths[key]

    for span in spans:
        path_of(span)
    return paths


def aggregate_tree(spans):
    """Aggregate closed spans by ancestry path.

    Returns ``[(path, count, total_seconds)]`` sorted so children follow
    their parents (depth-first by path), ready for :func:`render_tree`.
    """
    spans = _closed(spans)
    paths = _name_paths(spans)
    totals = {}
    for span in spans:
        path = paths[span["id"]]
        count, total = totals.get(path, (0, 0.0))
        totals[path] = (count + 1, total + (span["end"] - span["start"]))
    return [(path, count, total)
            for path, (count, total) in sorted(totals.items())]


def render_tree(spans):
    """ASCII tree of aggregated span timings."""
    rows = aggregate_tree(spans)
    if not rows:
        return "no spans recorded"
    lines = [f"{'span':<44} {'count':>7} {'total':>10} {'avg':>10}"]
    lines.append("-" * 74)
    for path, count, total in rows:
        depth = path.count("/")
        name = "  " * depth + path.rsplit("/", 1)[-1]
        avg = total / count if count else 0.0
        lines.append(f"{name:<44} {count:>7} {total:>9.3f}s "
                     f"{avg * 1e3:>8.2f}ms")
    return "\n".join(lines)


def phase_table(spans):
    """Per-step phase breakdown against ``train.step`` wall time.

    Returns a dict with ``steps`` (count of ``train.step`` spans),
    ``step_seconds`` (their summed wall time), ``phases`` mapping each
    entry of :data:`PHASES` to ``{count, seconds, per_step, share}``, and
    ``coverage`` — the fraction of step wall time the listed phases
    account for (the acceptance bar is >= 0.9 at smoke scale).
    """
    spans = _closed(spans)
    step_spans = [s for s in spans if s["name"] == "train.step"]
    step_seconds = sum(s["end"] - s["start"] for s in step_spans)
    steps = len(step_spans)
    phases = {}
    covered = 0.0
    for phase in PHASES:
        matching = [s for s in spans if s["name"] == phase]
        seconds = sum(s["end"] - s["start"] for s in matching)
        phases[phase] = {
            "count": len(matching),
            "seconds": seconds,
            "per_step": seconds / steps if steps else 0.0,
            "share": seconds / step_seconds if step_seconds else 0.0,
        }
        covered += seconds
    return {
        "steps": steps,
        "step_seconds": step_seconds,
        "phases": phases,
        "coverage": covered / step_seconds if step_seconds else 0.0,
    }


def render_phase_table(table):
    lines = [f"{'phase':<18} {'count':>7} {'total':>10} {'per-step':>10} "
             f"{'share':>7}"]
    lines.append("-" * 56)
    for phase in PHASES:
        row = table["phases"][phase]
        if not row["count"]:
            continue
        lines.append(f"{phase:<18} {row['count']:>7} {row['seconds']:>9.3f}s "
                     f"{row['per_step'] * 1e3:>8.2f}ms "
                     f"{row['share'] * 100:>6.1f}%")
    lines.append("-" * 56)
    lines.append(f"{'train.step':<18} {table['steps']:>7} "
                 f"{table['step_seconds']:>9.3f}s "
                 f"{'':>10} {table['coverage'] * 100:>6.1f}%")
    return "\n".join(lines)


def sampler_overhead(spans, snapshots=None):
    """Sampler-overhead-vs-training accounting (the paper's Table-1 ratio).

    ``overhead`` sums ``sampler.rebuild`` + ``sampler.refresh`` span time;
    ``ratio`` divides it by summed ``train.step`` time.  ``probe_points``
    comes from the final metrics snapshot when available.
    """
    spans = _closed(spans)
    rebuild = sum(s["end"] - s["start"] for s in spans
                  if s["name"] == "sampler.rebuild")
    refresh = sum(s["end"] - s["start"] for s in spans
                  if s["name"] == "sampler.refresh")
    training = sum(s["end"] - s["start"] for s in spans
                   if s["name"] == "train.step")
    probe_points = None
    if snapshots:
        probe_points = snapshots[-1].get("gauges", {}).get(
            "sampler.probe_points")
    overhead = rebuild + refresh
    return {
        "rebuild_seconds": rebuild,
        "refresh_seconds": refresh,
        "overhead_seconds": overhead,
        "train_seconds": training,
        "ratio": overhead / training if training else 0.0,
        "probe_points": probe_points,
    }


def chrome_trace(spans, epoch_unix=None):
    """Spans as a Chrome Trace Event JSON object (open in Perfetto).

    Complete ("X") events with microsecond timestamps; thread names map
    to small integer tids via ``thread_name`` metadata events.
    """
    spans = _closed(spans)
    tids = {}
    events = []
    for span in spans:
        thread = span.get("thread", "main")
        if thread not in tids:
            tids[thread] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": 1,
                "tid": tids[thread], "args": {"name": thread},
            })
        event = {
            "name": span["name"], "ph": "X", "pid": 1,
            "tid": tids[thread],
            "ts": span["start"] * 1e6,
            "dur": (span["end"] - span["start"]) * 1e6,
        }
        if span.get("attrs"):
            event["args"] = span["attrs"]
        events.append(event)
    trace = {"traceEvents": events, "displayTimeUnit": "ms"}
    if epoch_unix is not None:
        trace["otherData"] = {"epoch_unix": epoch_unix}
    return trace


def metrics_summary(snapshots):
    """One-line-worthy numbers from the last metrics snapshot.

    Returns ``None`` when there are no snapshots; otherwise a dict with
    ``steps_per_second`` (train.steps / clock.raw_seconds),
    ``sampler_overhead_fraction`` ((rebuild+refresh seconds) / raw) and
    ``replay_fallbacks`` (refused + stale).
    """
    if not snapshots:
        return None
    last = snapshots[-1]
    counters = last.get("counters", {})
    gauges = last.get("gauges", {})
    raw = gauges.get("clock.raw_seconds") or 0.0
    steps = counters.get("train.steps", 0)
    overhead = (counters.get("sampler.rebuild_seconds", 0.0)
                + counters.get("sampler.refresh_seconds", 0.0))
    return {
        "steps": steps,
        "steps_per_second": steps / raw if raw else 0.0,
        "sampler_overhead_fraction": overhead / raw if raw else 0.0,
        "replay_fallbacks": (counters.get("replay.fallback_refused", 0)
                             + counters.get("replay.fallback_stale", 0)),
    }


def format_metrics_summary(summary):
    if summary is None:
        return None
    return (f"{summary['steps_per_second']:.1f} steps/s; "
            f"sampler overhead "
            f"{summary['sampler_overhead_fraction'] * 100:.1f}%; "
            f"replay fallbacks {summary['replay_fallbacks']}")
