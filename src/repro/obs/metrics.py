"""Counters and gauges with a closed-world name catalog.

A :class:`MetricsRegistry` is a thread-safe bag of monotonic counters and
last-value gauges.  Names must exist in :data:`repro.obs.names.METRICS`
(extensions call :func:`repro.obs.names.register_metric` first), so typos
surface as ``KeyError`` in the first test that exercises the path instead
of quietly forking a new series.
"""

from __future__ import annotations

import threading

from .names import METRICS

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Thread-safe counters + gauges keyed by catalogued metric names."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}

    @staticmethod
    def _require(name, kind):
        entry = METRICS.get(name)
        if entry is None:
            raise KeyError(
                f"metric {name!r} is not in the repro.obs.names catalog; "
                f"register_metric() it before emitting")
        if entry[0] != kind:
            raise KeyError(
                f"metric {name!r} is a {entry[0]}, not a {kind}")

    def inc(self, name, amount=1):
        """Add ``amount`` (int or float seconds) to counter ``name``."""
        self._require(name, "counter")
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name, value):
        """Record the current level of gauge ``name``."""
        self._require(name, "gauge")
        with self._lock:
            self._gauges[name] = value

    def counter(self, name, default=0):
        with self._lock:
            return self._counters.get(name, default)

    def gauge(self, name, default=None):
        with self._lock:
            return self._gauges.get(name, default)

    def merge_counters(self, counters):
        """Fold a plain ``{name: value}`` dict into this registry's counters.

        Used when a parent tracer adopts spans/metrics shipped back from a
        process-pool worker.
        """
        for name, value in counters.items():
            self._require(name, "counter")
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value

    def snapshot(self):
        """``{"counters": {...}, "gauges": {...}}`` with sorted keys."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
            }
