"""The metric-name catalog: every metric the instrumented paths may emit.

Metric names are closed-world on purpose: :meth:`MetricsRegistry.inc` and
:meth:`MetricsRegistry.set_gauge` reject names missing from this catalog, so
an instrumentation typo fails loudly in tests instead of silently forking a
new series, and ``tools/check_docs.py`` can require that every emitted name
is documented in ``docs/observability.md``.  Extensions register their own
names through :func:`register_metric` before first use.

Kinds
-----
``counter``
    Monotonic accumulator (``inc``); integers or float seconds.
``gauge``
    Last-written value (``set_gauge``); snapshots record the current level.
"""

from __future__ import annotations

__all__ = ["METRICS", "metric_catalog", "register_metric"]

#: name -> (kind, description); the single source docs/check_docs verify
METRICS = {
    # -- trainer --------------------------------------------------------
    "train.steps": (
        "counter", "optimizer steps completed"),
    "train.validations": (
        "counter", "validator sweeps executed"),
    "train.loss": (
        "gauge", "loss value at the latest history record"),
    # -- wall-clock accounting (TrainingClock) --------------------------
    "clock.raw_seconds": (
        "gauge", "raw wall seconds since training started (no credit)"),
    "clock.credited_seconds": (
        "gauge", "seconds credited back for hidden background rebuilds"),
    "clock.train_seconds": (
        "gauge", "visible training seconds (raw minus credited)"),
    # -- samplers -------------------------------------------------------
    "sampler.probe_points": (
        "gauge", "total points probed for importance refreshes (section 3.6 "
                 "overhead)"),
    "sampler.rebuild_count": (
        "counter", "kNN graph + cluster (re)builds performed"),
    "sampler.rebuild_seconds": (
        "counter", "wall seconds spent in graph/cluster (re)builds"),
    "sampler.refresh_count": (
        "counter", "importance-weight refreshes performed"),
    "sampler.refresh_seconds": (
        "counter", "wall seconds spent refreshing importance weights "
                   "(probe forward passes included)"),
    # -- replay engine --------------------------------------------------
    "replay.compile_count": (
        "counter", "tape-to-program compilations attempted and accepted"),
    "replay.compile_seconds": (
        "counter", "wall seconds spent compiling replay programs"),
    "replay.fallback_refused": (
        "counter", "permanent eager fallbacks after ReplayRefused"),
    "replay.fallback_stale": (
        "counter", "permanent eager fallbacks after ReplayStale"),
    "replay.instructions": (
        "gauge", "instructions in the compiled replay program"),
    "replay.cse_hits": (
        "gauge", "recorded tensors deduplicated by common-subexpression "
                 "elimination"),
    "replay.dead_pruned": (
        "gauge", "recorded tensors pruned as dead nodes"),
    "replay.baked_constants": (
        "gauge", "stable constants baked into the replay program"),
    # -- execution backends ---------------------------------------------
    "exec.tasks_enqueued": (
        "counter", "tasks submitted to the store-backed job queue"),
    "exec.queue_depth": (
        "gauge", "jobs not yet in a terminal status at the last poll"),
    "exec.reclaims": (
        "counter", "expired-lease takeovers (a worker crashed mid-job and "
                   "a sibling re-claimed it)"),
    "exec.lease_renewals": (
        "counter", "heartbeat renewals of live job leases"),
    # -- data-parallel training ------------------------------------------
    "dp.allreduce_rounds": (
        "counter", "allreduce rounds completed (gradient and validation)"),
    "dp.bytes_reduced": (
        "counter", "payload bytes gathered and tree-reduced across shards"),
    "dp.straggler_wait_seconds": (
        "counter", "wall seconds spent polling the rendezvous for missing "
                   "shard payloads"),
    "dp.shards": (
        "gauge", "logical shard count of the data-parallel run"),
}


def metric_catalog():
    """``[{name, kind, description}]`` for docs and ``check_docs``."""
    return [{"name": name, "kind": kind, "description": description}
            for name, (kind, description) in sorted(METRICS.items())]


def register_metric(name, kind, description):
    """Add a metric name to the catalog (extensions call this once).

    Re-registering an existing name with a different kind is rejected —
    a counter silently becoming a gauge would corrupt every consumer.
    """
    if kind not in ("counter", "gauge"):
        raise ValueError(f"metric kind must be 'counter' or 'gauge', "
                         f"got {kind!r}")
    existing = METRICS.get(name)
    if existing is not None and existing[0] != kind:
        raise ValueError(f"metric {name!r} already registered as "
                         f"{existing[0]}, cannot re-register as {kind}")
    METRICS[name] = (kind, str(description))
