"""Deterministic fixed-order pairwise tree reduction over shard pytrees.

Floating-point addition is not associative, so the *order* in which shard
gradients are summed decides the bits of the result.  :func:`tree_reduce`
fixes that order once and for all: contributions are combined pairwise in
ascending shard order — ``(0+1), (2+3), ...`` — and the partial sums are
reduced the same way recursively.  Because the schedule depends only on the
*logical shard count* (never on which worker computed a contribution, how
many workers there are, or when each payload arrived), the reduced float32
gradient is bit-identical for every placement of the same shards.

The reduction is generic over gradient *pytrees*: numpy arrays and scalars,
lists/tuples of pytrees, and string-keyed dicts of pytrees (keys must match
across contributions).
"""

from __future__ import annotations

import numpy as np

__all__ = ["payload_nbytes", "tree_add", "tree_reduce"]


def tree_add(left, right):
    """Structure-preserving ``left + right`` over one pytree level pair."""
    if isinstance(left, dict):
        if set(left) != set(right):
            raise ValueError(f"pytree dict keys differ: {sorted(left)} vs "
                             f"{sorted(right)}")
        return {key: tree_add(left[key], right[key])
                for key in sorted(left)}
    if isinstance(left, (list, tuple)):
        if len(left) != len(right):
            raise ValueError(f"pytree lengths differ: {len(left)} vs "
                             f"{len(right)}")
        combined = [tree_add(a, b) for a, b in zip(left, right)]
        return type(left)(combined) if isinstance(left, tuple) else combined
    # leaves: numpy arrays / numpy scalars / python numbers — numpy addition
    # preserves the (already matching) dtype, so float32 stays float32
    return left + right


def tree_reduce(contributions):
    """Pairwise tree sum of ``contributions`` in their given (shard) order.

    ``contributions`` must be ordered by logical shard id before calling;
    the schedule is then a pure function of ``len(contributions)``, which
    is what makes the sum independent of worker count and arrival order.
    An odd tail passes through a round unchanged and joins the next one.
    """
    items = list(contributions)
    if not items:
        raise ValueError("tree_reduce needs at least one contribution")
    while len(items) > 1:
        reduced = [tree_add(items[i], items[i + 1])
                   for i in range(0, len(items) - 1, 2)]
        if len(items) % 2:
            reduced.append(items[-1])
        items = reduced
    return items[0]


def payload_nbytes(payload):
    """Bytes of array data in one shard payload (the dp.bytes_reduced
    metric counts what the allreduce actually moved and summed)."""
    total = 0
    for value in payload.values():
        if isinstance(value, np.ndarray):
            total += value.nbytes
        elif isinstance(value, (list, tuple)):
            total += sum(np.asarray(item).nbytes for item in value)
        elif isinstance(value, dict):
            total += payload_nbytes(value)
        else:
            total += np.asarray(value).nbytes
    return total
