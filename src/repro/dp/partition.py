"""Shard partitioning: exact disjoint covers of clouds, clusters, batches.

Every partition here is a pure function of ``(n, n_shards)`` (plus cluster
labels for the SGM path) — never of the worker count — so the same logical
shards exist no matter how many workers host them.  The invariant every
helper maintains, and :func:`check_disjoint_cover` asserts, is *exact
disjoint cover*: each index lands in exactly one shard.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "assign_clusters", "check_disjoint_cover", "shard_batch_sizes",
    "stride_shards",
]


def stride_shards(n_points, n_shards):
    """Partition ``range(n_points)`` by stable index stride.

    Shard ``s`` owns indices ``s, s + S, s + 2S, ...`` — a deterministic
    interleave that keeps every shard's subset spread over the whole cloud
    (uniform and MIS sampling stay representative per shard).
    """
    n_points, n_shards = int(n_points), int(n_shards)
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    if n_points < n_shards:
        raise ValueError(f"cannot stride {n_points} points over {n_shards} "
                         f"shards without an empty shard")
    indices = np.arange(n_points)
    return [indices[shard::n_shards] for shard in range(n_shards)]


def shard_batch_sizes(batch_size, n_shards):
    """Split a global batch size into per-shard sizes (earlier shards take
    the remainder, one extra sample each)."""
    batch_size, n_shards = int(batch_size), int(n_shards)
    if batch_size < n_shards:
        raise ValueError(f"batch size {batch_size} cannot feed {n_shards} "
                         f"shards with at least one sample each")
    base, extra = divmod(batch_size, n_shards)
    return [base + (1 if shard < extra else 0) for shard in range(n_shards)]


def assign_clusters(cluster_sizes, n_shards):
    """Greedy balanced assignment of whole clusters to shards.

    Clusters are processed largest-first (ties broken by cluster id) and
    each goes to the shard currently holding the fewest points (ties to the
    lowest shard id) — the classic LPT schedule, fully deterministic.
    Returns ``shard_of_cluster``, an int array over cluster ids.
    """
    sizes = np.asarray(cluster_sizes, dtype=int)
    n_shards = int(n_shards)
    if len(sizes) < n_shards:
        raise ValueError(
            f"{len(sizes)} clusters cannot cover {n_shards} shards without "
            f"an empty shard; lower the shard count (dp_shards) or the LRD "
            f"level so the decomposition yields more clusters")
    order = sorted(range(len(sizes)), key=lambda c: (-int(sizes[c]), c))
    load = [0] * n_shards
    shard_of_cluster = np.empty(len(sizes), dtype=int)
    for cluster in order:
        shard = min(range(n_shards), key=lambda s: (load[s], s))
        shard_of_cluster[cluster] = shard
        load[shard] += int(sizes[cluster])
    return shard_of_cluster


def check_disjoint_cover(shards, n_points):
    """Raise unless ``shards`` partition ``range(n_points)`` exactly."""
    seen = np.zeros(int(n_points), dtype=int)
    for shard in shards:
        shard = np.asarray(shard, dtype=int)
        if shard.size and (shard.min() < 0 or shard.max() >= n_points):
            raise ValueError(f"shard index out of range for {n_points} "
                             f"points")
        np.add.at(seen, shard, 1)
    if (seen > 1).any():
        raise ValueError(f"{int((seen > 1).sum())} points appear in more "
                         f"than one shard")
    if (seen == 0).any():
        raise ValueError(f"{int((seen == 0).sum())} points missing from "
                         f"every shard")
