"""Shard-local samplers over disjoint pieces of one collocation cloud.

Every shard sampler draws mini-batch indices **in the global index space**
of its constraint's cloud, so the trainer's residual evaluation and probe
callbacks work unchanged.  What is local is the *state*: each shard owns
its own RNG stream, importance weights, epochs, and cursors — seeded by
``(seed, constraint, shard)`` — so shard ``s`` behaves identically no
matter which worker hosts it.

Uniform and MIS shards wrap the serial samplers over the shard's stride
subset (:class:`ShardSampler`); SGM shards own whole clusters handed out
by a rank-independent :class:`ClusterPlan`, and refresh their scores from
shard-local statistics (the local min–max keeps every shard's epoch
well-spread even when its clusters' losses cover a narrow range).
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..graph import knn_adjacency, lrd_decompose
from ..sampling import MISSampler, UniformSampler
from ..sampling.base import Sampler, _scalar
from ..sampling.sgm import _minmax
from .partition import assign_clusters, stride_shards

__all__ = [
    "ClusterPlan", "ShardSGMSampler", "ShardSampler", "make_shard_sampler",
    "shard_cover",
]


class ClusterPlan:
    """Rank-independent global clustering shared by every SGM shard.

    The kNN + LRD decomposition is a pure function of ``(features, seed,
    rebuild_index)`` — the RNG is reseeded per rebuild from a fixed
    :class:`~numpy.random.SeedSequence` spawn key instead of any sampler's
    stream — so every rank that builds rebuild ``i`` gets the same labels
    and the same whole-cluster shard assignment.  Builds are cached per
    rebuild index so the shards co-located on one rank share a single
    decomposition.
    """

    #: spawn-key constant separating plan RNG streams from sampler streams
    _STREAM = 104729

    def __init__(self, features, n_shards, *, k, level, num_vectors=16,
                 knn_backend="kdtree", seed=0):
        self.features = np.asarray(features, dtype=np.float64)
        self.n_shards = int(n_shards)
        self.k = int(k)
        self.level = int(level)
        self.num_vectors = int(num_vectors)
        self.knn_backend = knn_backend
        self.seed = int(seed)
        self._cache = {}

    def _build(self, rebuild_index):
        """``(clusters, shard_of_cluster, wall_seconds)`` for one rebuild.

        ``wall_seconds`` is non-zero only on the call that actually built
        the decomposition (cache hits are free) so the triggering sampler
        can charge the cost exactly once.
        """
        if rebuild_index in self._cache:
            clusters, shard_of_cluster = self._cache[rebuild_index]
            return clusters, shard_of_cluster, 0.0
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, self._STREAM,
                                    int(rebuild_index)]))
        with obs.timed_span("sampler.rebuild") as rebuild_timer:
            with obs.span("sampler.knn_build"):
                adjacency = knn_adjacency(self.features, self.k,
                                          backend=self.knn_backend)
            with obs.span("sampler.cluster_update"):
                result = lrd_decompose(adjacency, level=self.level,
                                       num_vectors=self.num_vectors,
                                       seed=int(rng.integers(2 ** 31)))
            labels = result.labels
            order = np.argsort(labels, kind="stable")
            boundaries = np.flatnonzero(np.diff(labels[order])) + 1
            clusters = np.split(order, boundaries)
            shard_of_cluster = assign_clusters([len(c) for c in clusters],
                                               self.n_shards)
        self._cache[rebuild_index] = (clusters, shard_of_cluster)
        obs.inc("sampler.rebuild_count")
        obs.inc("sampler.rebuild_seconds", rebuild_timer.seconds)
        return clusters, shard_of_cluster, rebuild_timer.seconds

    def shard_members(self, rebuild_index, shard):
        """``(member_arrays, wall_seconds)``: this shard's clusters, in
        ascending cluster-id order (global point indices)."""
        clusters, shard_of_cluster, seconds = self._build(rebuild_index)
        members = [clusters[c] for c in range(len(clusters))
                   if shard_of_cluster[c] == int(shard)]
        return members, seconds

    def n_clusters(self, rebuild_index=0):
        clusters, _, _ = self._build(rebuild_index)
        return len(clusters)


class ShardSampler:
    """A serial sampler confined to one shard's global index subset.

    Wraps an inner :class:`~repro.sampling.Sampler` built over the shard's
    ``len(indices)`` local points and translates local indices to global
    ones on the way out (batches) and global to local on the way in (probe
    callbacks, importance weights).
    """

    def __init__(self, inner, indices):
        indices = np.asarray(indices, dtype=int)
        if len(indices) != inner.n_points:
            raise ValueError(f"inner sampler covers {inner.n_points} points "
                             f"but the shard holds {len(indices)}")
        if np.any(np.diff(indices) <= 0):
            raise ValueError("shard indices must be strictly increasing "
                             "(searchsorted maps global back to local)")
        self.inner = inner
        self.indices = indices   # repro: noqa RPR007 — immutable partition
        self.name = inner.name

    # -- index translation ---------------------------------------------
    def _to_local(self, global_indices):
        global_indices = np.asarray(global_indices)
        local = np.searchsorted(self.indices, global_indices)
        if (np.any(local >= len(self.indices))
                or np.any(self.indices[np.minimum(
                    local, len(self.indices) - 1)] != global_indices)):
            raise IndexError("global index outside this shard")
        return local

    # -- sampler protocol ----------------------------------------------
    @property
    def n_points(self):
        return self.inner.n_points

    @property
    def probe_points(self):
        return self.inner.probe_points

    @property
    def rebuild_seconds(self):
        return self.inner.rebuild_seconds

    @property
    def refresh_count(self):
        return getattr(self.inner, "refresh_count", 0)

    @property
    def rebuild_count(self):
        return getattr(self.inner, "rebuild_count", 0)

    def bind_probes(self, probe_loss=None, probe_outputs=None,
                    probe_grad_norm=None):
        def globalise(fn):
            if fn is None:
                return None
            return lambda local: fn(self.indices[np.asarray(local)])
        self.inner.bind_probes(
            probe_loss=globalise(probe_loss),
            probe_outputs=globalise(probe_outputs),
            probe_grad_norm=globalise(probe_grad_norm))

    def start(self):
        self.inner.start()

    def batch_indices(self, step, batch_size):
        return self.indices[self.inner.batch_indices(step, batch_size)]

    def batch_weights(self, indices):
        weights = self.inner.batch_weights(self._to_local(indices))
        return weights

    def state_dict(self):
        return {f"inner.{key}": value
                for key, value in self.inner.state_dict().items()}

    def load_state_dict(self, state):
        self.inner.load_state_dict(
            {key[len("inner."):]: value for key, value in state.items()
             if key.startswith("inner.")})


class ShardSGMSampler(Sampler):
    """SGM importance sampling restricted to one shard's whole clusters.

    Probing, scoring, and epoch assembly follow
    :class:`~repro.sampling.SGMSampler` exactly, but over the clusters the
    :class:`ClusterPlan` assigned to this shard, with the min–max score
    normalisation computed shard-locally.  Rebuild cadence (``tau_G``)
    re-derives the *global* plan — identical on every rank — and re-adopts
    this shard's slice of it.
    """

    name = "sgm"

    def __init__(self, plan, shard, *, tau_e=7000, tau_G=25000,
                 probe_ratio=0.15, ratio_range=(0.05, 0.9), seed=0):
        super().__init__(len(plan.features), seed=seed)
        self.plan = plan
        self.shard = int(shard)
        self.tau_e = int(tau_e)
        self.tau_g = int(tau_G)
        self.probe_ratio = float(probe_ratio)
        if not 0.0 < self.probe_ratio <= 1.0:
            raise ValueError("probe_ratio must lie in (0, 1]")
        self.ratio_min, self.ratio_max = map(float, ratio_range)
        if not 0.0 < self.ratio_min <= self.ratio_max <= 1.0:
            raise ValueError("need 0 < p_min <= p_max <= 1")

        self.clusters = []
        self.cluster_scores = None
        self.sampling_ratios = None
        self._epoch = None
        self._cursor = 0
        self.refresh_count = 0
        self.rebuild_count = 0

    # ------------------------------------------------------------------
    def _adopt_clusters(self, rebuild_index):
        members, seconds = self.plan.shard_members(rebuild_index, self.shard)
        if not members:
            raise ValueError(
                f"shard {self.shard} received no clusters from the plan "
                f"({self.plan.n_clusters(rebuild_index)} clusters over "
                f"{self.plan.n_shards} shards); lower dp_shards or the LRD "
                f"level")
        self.clusters = members
        self.rebuild_seconds += seconds
        self.rebuild_count = int(rebuild_index) + 1

    def start(self):
        if not self.clusters:
            self._adopt_clusters(0)

    # ------------------------------------------------------------------
    def refresh_scores(self):
        """Probe this shard's cluster losses and assemble a local epoch."""
        if self.probe_loss is None:
            raise RuntimeError("SGM shard sampler needs probe callbacks "
                               "bound before training starts")
        with obs.timed_span("sampler.refresh") as refresh_timer:
            subsets = []
            for members in self.clusters:
                count = max(1, int(np.ceil(self.probe_ratio * len(members))))
                if count >= len(members):
                    subsets.append(members)
                else:
                    subsets.append(self.rng.choice(members, size=count,
                                                   replace=False))
            flat = np.concatenate(subsets)
            losses = np.asarray(self.probe_loss(flat),
                                dtype=np.float64).ravel()
            self.probe_points += len(flat)

            sizes = np.array([len(s) for s in subsets])
            offsets = np.concatenate([[0], np.cumsum(sizes)])
            cluster_loss = np.array([
                losses[offsets[i]:offsets[i + 1]].mean()
                for i in range(len(subsets))])
            score = _minmax(cluster_loss)
            self.cluster_scores = score
            self.sampling_ratios = (self.ratio_min +
                                    (self.ratio_max - self.ratio_min) *
                                    _minmax(score))
            self._build_epoch()
        self.refresh_count += 1
        obs.inc("sampler.refresh_count")
        obs.inc("sampler.refresh_seconds", refresh_timer.seconds)

    def _build_epoch(self):
        parts = []
        for ratio, members in zip(self.sampling_ratios, self.clusters):
            count = max(1, int(round(ratio * len(members))))
            if count >= len(members):
                parts.append(members)
            else:
                parts.append(self.rng.choice(members, size=count,
                                             replace=False))
        epoch = np.concatenate(parts)
        self.rng.shuffle(epoch)
        self._epoch = epoch
        self._cursor = 0

    # ------------------------------------------------------------------
    def batch_indices(self, step, batch_size):
        if not self.clusters:
            self.start()
        if step > 0 and self.tau_g > 0 and step % self.tau_g == 0:
            self._adopt_clusters(self.rebuild_count)
            self.refresh_scores()
        elif self._epoch is None or (step > 0 and step % self.tau_e == 0):
            self.refresh_scores()

        batch = np.empty(batch_size, dtype=int)
        filled = 0
        while filled < batch_size:
            take = min(batch_size - filled, len(self._epoch) - self._cursor)
            batch[filled:filled + take] = \
                self._epoch[self._cursor:self._cursor + take]
            filled += take
            self._cursor += take
            if self._cursor >= len(self._epoch):
                self.rng.shuffle(self._epoch)
                self._cursor = 0
        return batch

    def owned_points(self):
        """All global indices this shard owns (its clusters, concatenated)."""
        if not self.clusters:
            self.start()
        return np.concatenate(self.clusters)

    # ------------------------------------------------------------------
    def state_dict(self):
        state = super().state_dict()
        state["refresh_count"] = self.refresh_count
        state["rebuild_count"] = self.rebuild_count
        if self.cluster_scores is not None:
            state["cluster_scores"] = np.asarray(self.cluster_scores).copy()
            state["sampling_ratios"] = np.asarray(self.sampling_ratios).copy()
        if self._epoch is not None:
            state["epoch"] = np.asarray(self._epoch).copy()
            state["cursor"] = self._cursor
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self.refresh_count = int(_scalar(state["refresh_count"]))
        rebuild_count = int(_scalar(state["rebuild_count"]))
        if rebuild_count > 0:
            # clusters are derived state: re-adopt the plan's deterministic
            # decomposition for the last rebuild instead of persisting them
            seconds_before = self.rebuild_seconds
            self._adopt_clusters(rebuild_count - 1)
            self.rebuild_seconds = seconds_before
        if "cluster_scores" in state:
            self.cluster_scores = np.asarray(state["cluster_scores"],
                                             dtype=np.float64).copy()
            self.sampling_ratios = np.asarray(state["sampling_ratios"],
                                              dtype=np.float64).copy()
        if "epoch" in state:
            self._epoch = np.asarray(state["epoch"], dtype=int).copy()
            self._cursor = int(_scalar(state["cursor"]))


#: sampler-registry kinds the data-parallel mode supports
SUPPORTED_KINDS = ("uniform", "mis", "sgm")


def make_shard_sampler(kind, config, constraint, *, n_shards, shard,
                       seed_seq, plan=None):
    """Build the sampler for one ``(constraint, shard)`` cell.

    ``seed_seq`` is the cell's :class:`~numpy.random.SeedSequence` — a pure
    function of ``(run seed, constraint index, shard)``, never of the
    worker layout.  ``plan`` is required for ``kind="sgm"``.
    """
    if kind not in SUPPORTED_KINDS:
        raise ValueError(
            f"data-parallel training supports sampler kinds "
            f"{SUPPORTED_KINDS}, got {kind!r}")
    if kind == "sgm":
        if plan is None:
            raise ValueError("sgm shard samplers need a ClusterPlan")
        return ShardSGMSampler(
            plan, shard, tau_e=config.tau_e, tau_G=config.tau_G,
            probe_ratio=config.probe_ratio, seed=seed_seq)
    indices = stride_shards(constraint.n_points, n_shards)[shard]
    if kind == "mis":
        inner = MISSampler(len(indices), tau_e=config.tau_e,
                           measure="grad_norm", seed=seed_seq)
    else:
        inner = UniformSampler(len(indices), seed=seed_seq)
    return ShardSampler(inner, indices)


def shard_cover(samplers, n_points):
    """The per-shard global index sets of a full shard-sampler row.

    For stride shards this is the wrapped partition; for SGM shards it is
    the union of owned clusters.  Used by the disjoint-cover checks.
    """
    cover = []
    for sampler in samplers:
        if isinstance(sampler, ShardSGMSampler):
            cover.append(np.sort(sampler.owned_points()))
        else:
            cover.append(np.asarray(sampler.indices))
    return cover
