"""Shard payload codec and allreduce rendezvous.

A *payload* is the per-shard contribution to one allreduce round: the
scaled loss, the gradient list (params order), bookkeeping counters, and
partial validator sums.  Payloads cross process boundaries as flat ``.npz``
archives; the codec round-trips every array bit-exactly, so reducing
payloads that went through disk gives the same bits as reducing them
in-process (``LocalExchange`` ≡ ``StoreExchange``).

Exchanges implement one method::

    exchange(step, phase, local) -> {shard_id: payload}  # ALL shards

Every rank receives *all* shard payloads — including re-reading its own
through the same path — and runs the identical fixed-order reduction, so
ranks never need a broadcast to stay in lockstep.
"""

from __future__ import annotations

import io
import os
import time

import numpy as np

from .. import obs

__all__ = [
    "LocalExchange", "StoreExchange", "decode_payload", "encode_payload",
]

_VAL_SEP = "|"


def encode_payload(payload):
    """Flatten a payload dict into ``{flat_key: ndarray}`` for ``np.savez``."""
    flat = {}
    if "loss" in payload:
        flat["loss"] = np.asarray(payload["loss"])
    for i, grad in enumerate(payload.get("grads", ())):
        flat[f"grad{i:04d}"] = np.asarray(grad)
    if "probe_points" in payload:
        flat["probe_points"] = np.asarray(payload["probe_points"], dtype=np.int64)
    if "rebuild_seconds" in payload:
        flat["rebuild_seconds"] = np.asarray(payload["rebuild_seconds"],
                                             dtype=np.float64)
    for vi, per_var in sorted(payload.get("validators", {}).items()):
        for var, (num, den) in sorted(per_var.items()):
            if _VAL_SEP in var:
                raise ValueError(f"validator variable name {var!r} may not "
                                 f"contain {_VAL_SEP!r}")
            prefix = f"val{int(vi):04d}{_VAL_SEP}{var}{_VAL_SEP}"
            flat[prefix + "num"] = np.asarray(num, dtype=np.float64)
            flat[prefix + "den"] = np.asarray(den, dtype=np.float64)
    return flat


def decode_payload(flat):
    """Inverse of :func:`encode_payload`; tolerates absent sections."""
    payload = {}
    grads, validators = {}, {}
    for key in flat:
        value = np.asarray(flat[key])
        if key == "loss":
            payload["loss"] = value
        elif key == "probe_points":
            payload["probe_points"] = int(value)
        elif key == "rebuild_seconds":
            payload["rebuild_seconds"] = float(value)
        elif key.startswith("grad"):
            grads[int(key[4:])] = value
        elif key.startswith("val"):
            vi_str, var, part = key[3:].split(_VAL_SEP)
            slot = validators.setdefault(int(vi_str), {}).setdefault(
                var, [0.0, 0.0])
            slot[0 if part == "num" else 1] = float(value)
        else:
            raise ValueError(f"unknown payload key {key!r}")
    if grads:
        payload["grads"] = [grads[i] for i in sorted(grads)]
        if sorted(grads) != list(range(len(grads))):
            raise ValueError("gradient slots are not contiguous")
    if validators:
        payload["validators"] = {
            vi: {var: tuple(slot) for var, slot in per_var.items()}
            for vi, per_var in validators.items()}
    return payload


class LocalExchange:
    """In-process rendezvous for ``world_size == 1``: one rank owns every
    shard, so the gather is just its own contributions."""

    def __init__(self, n_shards):
        self.n_shards = int(n_shards)

    def exchange(self, step, phase, local):
        if sorted(local) != list(range(self.n_shards)):
            raise ValueError(f"local exchange needs all {self.n_shards} "
                             f"shards, got {sorted(local)}")
        return dict(local)

    def close(self):
        pass


class StoreExchange:
    """File rendezvous on a shared directory (the run store in practice).

    Each round lives in ``round-<step>-<phase>/``; ranks publish their
    shards as atomic ``shard-<s>.npz`` files, then poll until all
    ``n_shards`` are visible and read every one back from disk.  Old rounds
    are garbage-collected once every rank has dropped an ack in them.
    """

    def __init__(self, root, *, n_shards, world_size, rank,
                 timeout=120.0, poll=0.005):
        self.root = str(root)
        self.n_shards = int(n_shards)
        self.world_size = int(world_size)
        self.rank = int(rank)
        self.timeout = float(timeout)
        self.poll = float(poll)
        os.makedirs(self.root, exist_ok=True)

    def _round_dir(self, step, phase):
        return os.path.join(self.root, f"round-{int(step):08d}-{phase}")

    def _publish(self, round_dir, shard_id, payload):
        final = os.path.join(round_dir, f"shard-{int(shard_id):04d}.npz")
        tmp = final + f".tmp-{self.rank}"
        buffer = io.BytesIO()
        np.savez(buffer, **encode_payload(payload))
        with open(tmp, "wb") as handle:
            handle.write(buffer.getvalue())
        os.replace(tmp, final)

    def exchange(self, step, phase, local):
        round_dir = self._round_dir(step, phase)
        os.makedirs(round_dir, exist_ok=True)
        for shard_id, payload in local.items():
            self._publish(round_dir, shard_id, payload)

        expected = [os.path.join(round_dir, f"shard-{s:04d}.npz")
                    for s in range(self.n_shards)]
        deadline = time.monotonic() + self.timeout
        waited = 0.0
        while not all(os.path.exists(path) for path in expected):
            if time.monotonic() > deadline:
                missing = [os.path.basename(p) for p in expected
                           if not os.path.exists(p)]
                raise TimeoutError(
                    f"dp allreduce rank {self.rank} timed out after "
                    f"{self.timeout:.0f}s waiting for {missing} in "
                    f"{round_dir}")
            time.sleep(self.poll)
            waited += self.poll
        if waited:
            obs.inc("dp.straggler_wait_seconds", waited)

        gathered = {}
        for shard_id, path in enumerate(expected):
            with np.load(path) as archive:
                gathered[shard_id] = decode_payload(archive)

        self._ack(round_dir)
        self._collect_garbage(step)
        return gathered

    def _ack(self, round_dir):
        ack = os.path.join(round_dir, f".ack-{self.rank}")
        with open(ack, "w", encoding="utf-8") as handle:
            handle.write("done\n")

    def _collect_garbage(self, step):
        # Keep the last two steps' rounds: a straggler may still be reading
        # step-1 while this rank finishes step.  Everything older whose acks
        # are all present is dead.  Races with other ranks collecting the
        # same round are benign — removal tolerates missing files.
        try:
            entries = os.listdir(self.root)
        except FileNotFoundError:
            return
        for entry in entries:
            if not entry.startswith("round-"):
                continue
            try:
                round_step = int(entry.split("-")[1])
            except (IndexError, ValueError):
                continue
            if round_step > int(step) - 2:
                continue
            round_dir = os.path.join(self.root, entry)
            acks = [os.path.join(round_dir, f".ack-{r}")
                    for r in range(self.world_size)]
            if not all(os.path.exists(a) for a in acks):
                continue
            try:
                for name in sorted(os.listdir(round_dir)):
                    try:
                        os.unlink(os.path.join(round_dir, name))
                    except FileNotFoundError:
                        pass
                os.rmdir(round_dir)
            except (FileNotFoundError, OSError):
                pass

    def close(self):
        pass
