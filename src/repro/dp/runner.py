"""Data-parallel training: lockstep replicas over sharded collocation clouds.

The model is **lockstep replication over logical shards**.  A run fixes a
logical shard count ``S`` (``n_shards``, default 4) and partitions every
constraint's cloud, batch budget, and validator rows into ``S`` disjoint
shards.  ``world_size`` (``W``) chooses *placement only*: rank ``r`` hosts
shards ``{s : s % W == r}``.  Each step, every rank

1. computes the ``1/S``-scaled loss and gradient of each shard it hosts,
2. exchanges payloads so it holds **all** ``S`` shard contributions,
3. tree-reduces them in ascending shard order
   (:func:`repro.dp.reduce.tree_reduce`), and
4. applies the identical reduced gradient to its identical optimizer.

Because every rank wires the same network/optimizer/scheduler from
``(problem, config, seed)`` and folds the same reduced float32 gradient,
the replicas never drift — no broadcast is needed — and the trajectory is a
pure function of ``S``, never of ``W``, the execution backend, or payload
arrival order.  ``world_size=1`` runs all ``S`` shards in-process through
the very same reduction, which is the equivalence the parity tests pin.

The per-shard loss is scaled by ``1/S`` *inside* the recorded region, so
the allreduce is a pure fixed-order sum and ``--compile`` replays carry the
scale in the tape.  Note the dp trajectory is its own canon: it matches
``world_size=1`` bitwise, not the non-dp serial trainer (whose single
full-batch loss sums residuals in a different order).
"""

from __future__ import annotations

import shutil
import tempfile
import uuid
from pathlib import Path

import numpy as np

from .. import obs
from ..api.problems import build_problem
from ..api.registry import problem_registry
from ..api.types import RunResult
from ..exec import resolve_backend
from ..nn import Adam, ExponentialDecayLR, FullyConnected
from ..training import Trainer
from .exchange import LocalExchange, StoreExchange
from .partition import shard_batch_sizes
from .samplers import SUPPORTED_KINDS, ClusterPlan, make_shard_sampler

__all__ = ["DEFAULT_SHARDS", "DataParallelContext", "run_dp"]

#: default logical shard count; independent of world_size on purpose, so
#: the trajectory does not change when a run is spread over more workers
DEFAULT_SHARDS = 4


class DataParallelContext:
    """Everything the trainer's shard-aware step needs for one rank."""

    def __init__(self, *, n_shards, world_size, rank, shard_samplers,
                 shard_batch, exchange, validator_rows):
        self.n_shards = int(n_shards)
        self.world_size = int(world_size)
        self.rank = int(rank)
        #: logical shards this rank hosts (round-robin placement)
        self.owned = [s for s in range(self.n_shards)
                      if s % self.world_size == self.rank]
        #: ``(constraint_name, shard) -> sampler`` for owned shards
        self.shard_samplers = dict(shard_samplers)
        #: ``constraint_name -> [batch size per shard]`` (all S shards)
        self.shard_batch = dict(shard_batch)
        self.exchange = exchange
        #: per-shard loss scale making the allreduce a pure sum
        self.loss_scale = 1.0 / self.n_shards
        #: ``validator_index -> [row indices per shard]`` for validators
        #: that support partial evaluation
        self.validator_rows = dict(validator_rows)


class _ThreadBackend:
    """In-process thread placement for the dp test matrix.

    Ranks run concurrently in daemon threads of the calling process —
    cheap enough to fan a parity matrix across world sizes inside tier-1.
    Eager mode only: ``record_tape`` (compile) patches autodiff module
    globals and is not thread-safe.
    """

    inline = True

    def submit(self, fn, tasks, labels, verbose=False):
        import threading
        results = [None] * len(tasks)
        errors = [None] * len(tasks)

        def run(index, task):
            try:
                results[index] = fn(task)
            except BaseException as exc:   # noqa: BLE001 — re-raised below
                errors[index] = exc

        threads = [threading.Thread(target=run, args=(i, task), daemon=True)
                   for i, task in enumerate(tasks)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index, exc in enumerate(errors):
            if exc is not None:
                raise exc
        return results


def _wire_dp_rank(prob, config, sampler, batch_size, seed, validators_mode,
                  *, n_shards, world_size, rank, exchange):
    """Assemble one rank's lockstep trainer replica.

    Mirrors :func:`repro.api.session._wire_training` exactly for the
    network / optimizer / scheduler / validators — every rank derives the
    identical replica from ``(prob, config, seed)`` — then adds the
    shard-local samplers and partitions for the shards this rank hosts.
    """
    for constraint in prob.constraints:
        if constraint.name == "interior":
            constraint.batch_size = batch_size
        else:
            constraint.batch_size = max(16, batch_size // 4)
    dtype = np.dtype(config.network.dtype)
    for constraint in prob.constraints:
        constraint.set_dtype(dtype)

    net = FullyConnected(prob.in_features, prob.out_features,
                         width=config.network.width,
                         depth=config.network.depth,
                         activation=config.network.activation,
                         rng=np.random.default_rng(config.seed),
                         dtype=dtype)
    optimizer = Adam(net.parameters() + prob.extra_parameters, lr=config.lr)
    scheduler = ExponentialDecayLR(optimizer,
                                   decay_rate=config.lr_decay_rate,
                                   decay_steps=config.lr_decay_steps)
    validators = ([] if validators_mode == "none"
                  else prob.make_validators(np.random.default_rng(
                      config.seed)))

    owned = [s for s in range(n_shards) if s % world_size == rank]
    plan = None
    if sampler == "sgm":
        plan = ClusterPlan(prob.interior_cloud.features(), n_shards,
                           k=config.knn_k, level=config.lrd_level,
                           seed=seed)
    shard_samplers = {}
    shard_batch = {}
    for ci, constraint in enumerate(prob.constraints):
        shard_batch[constraint.name] = shard_batch_sizes(
            constraint.batch_size, n_shards)
        kind = sampler if constraint.name == "interior" else "uniform"
        for shard in owned:
            # the cell seed is a pure function of (run seed, constraint,
            # shard) — never of the rank layout — so shard s's RNG stream
            # is identical wherever it runs
            seed_seq = np.random.SeedSequence([int(seed), ci, shard])
            shard_samplers[(constraint.name, shard)] = make_shard_sampler(
                kind, config, constraint, n_shards=n_shards, shard=shard,
                seed_seq=seed_seq,
                plan=plan if constraint.name == "interior" else None)

    validator_rows = {}
    for vi, validator in enumerate(validators):
        if hasattr(validator, "evaluate_partial"):
            rows = np.arange(len(validator.features))
            validator_rows[vi] = [rows[s::n_shards] for s in range(n_shards)]

    dp = DataParallelContext(
        n_shards=n_shards, world_size=world_size, rank=rank,
        shard_samplers=shard_samplers, shard_batch=shard_batch,
        exchange=exchange, validator_rows=validator_rows)
    trainer = Trainer(net, prob.constraints, optimizer, scheduler=scheduler,
                      validators=validators,
                      extra_modules=prob.extra_modules, seed=seed, dp=dp)
    return trainer


def _train_dp_rank(spec):
    """Module-level rank worker: build, train, return a picklable summary.

    Every execution backend (thread, process, queue) runs exactly this
    function; the backend decides placement only.  Rank 0 additionally
    owns the durable run record when a store root is in the spec.
    """
    config = spec["config"]
    seed = spec["seed"]
    prob = build_problem(spec["problem"], config, spec["n_interior"],
                         np.random.default_rng(seed))

    world_size = spec["world_size"]
    n_shards = spec["n_shards"]
    rank = spec["rank"]
    if spec["exchange_root"] is None:
        exchange = LocalExchange(n_shards)
    else:
        exchange = StoreExchange(
            spec["exchange_root"], n_shards=n_shards,
            world_size=world_size, rank=rank,
            timeout=spec.get("exchange_timeout", 120.0))

    trainer = _wire_dp_rank(
        prob, config, spec["sampler"], spec["batch_size"], seed,
        spec["validators_mode"], n_shards=n_shards,
        world_size=world_size, rank=rank, exchange=exchange)

    recorder = None
    history = None
    hooks = ()
    if spec.get("store_root") is not None and rank == 0:
        from ..store import RunStore
        store = RunStore(spec["store_root"])
        recorder = store.begin_run(
            problem=prob.name, config=config, sampler=spec["sampler"],
            seed=seed, steps=spec["steps"], label=spec["label"],
            n_interior=len(prob.interior_cloud),
            batch_size=spec["batch_size"],
            validators=spec["validators_mode"],
            run_id=spec.get("run_id"))
        history = recorder.streaming_history(spec["label"])

    tracer_cm = rank_tracer = None
    try:
        if spec.get("trace") and rank == 0:
            stream = metrics_stream = None
            if recorder is not None:
                stream = recorder.path / "spans.jsonl"
                metrics_stream = recorder.path / "metrics.jsonl"
            tracer_cm = obs.tracing(stream=stream,
                                    metrics_stream=metrics_stream)
            rank_tracer = tracer_cm.__enter__()
        try:
            history = trainer.train(spec["steps"],
                                    validate_every=config.validate_every,
                                    record_every=config.record_every,
                                    label=spec["label"], history=history,
                                    step_hooks=hooks,
                                    compile=spec["compile"])
        except BaseException as exc:
            if recorder is not None:
                recorder.mark_stopped(exc)
            raise
    finally:
        if tracer_cm is not None:
            tracer_cm.__exit__(None, None, None)
        close = getattr(exchange, "close", None)
        if close is not None:
            close()

    if recorder is not None:
        recorder.finish(history, _DPSamplerStats(trainer, spec["sampler"]))

    coefficients = {name: module.value()
                    for name, module in prob.extra_modules.items()
                    if hasattr(module, "value")}
    return {
        "rank": rank,
        "history": _plain_history(history),
        "net_args": {"in_features": prob.in_features,
                     "out_features": prob.out_features,
                     "width": config.network.width,
                     "depth": config.network.depth,
                     "activation": config.network.activation,
                     "dtype": str(np.dtype(config.network.dtype))},
        "net_state": trainer.net.state_dict(),
        "coefficients": coefficients,
        "run_id": None if recorder is None else recorder.run_id,
        "obs_data": (None if rank_tracer is None
                     else rank_tracer.export()),
        "wall_seconds": (history.wall_times[-1] if history.wall_times
                         else 0.0),
    }


class _DPSamplerStats:
    """Sampler-statistics facade for the run record's ``sampler.json``.

    ``probe_points`` is the exact global total from the last allreduce;
    refresh/rebuild counts sum this rank's hosted interior shards (the
    payloads do not carry them — they are diagnostics, not trajectory
    state).
    """

    def __init__(self, trainer, sampler_name):
        self.name = f"dp:{sampler_name}"
        self.labels = None
        self.probe_points = trainer.total_probe_points()
        dp = trainer.dp
        interior = [dp.shard_samplers[key] for key in dp.shard_samplers
                    if key[0] == "interior"]
        self.refresh_count = sum(getattr(s, "refresh_count", 0)
                                 for s in interior)
        self.rebuild_count = sum(getattr(s, "rebuild_count", 0)
                                 for s in interior)


def _plain_history(history):
    """Copy a (possibly streaming) history into a plain picklable one."""
    from ..training.history import History
    plain = History(label=history.label)
    plain.steps = list(history.steps)
    plain.wall_times = list(history.wall_times)
    plain.losses = list(history.losses)
    plain.errors = {var: list(vals) for var, vals in history.errors.items()}
    plain.probe_points = list(history.probe_points)
    return plain


def run_dp(problem, config, *, sampler="sgm", batch_size=None, seed=None,
           steps=None, label=None, n_interior=None, validators=None,
           store=None, run_id=None, world_size=1, n_shards=None,
           backend="process", compile=False, trace=False,
           exchange_timeout=120.0):
    """Train ``problem`` data-parallel over ``n_shards`` logical shards.

    Parameters mirror :func:`repro.api.session.run_problem` where they
    overlap.  ``world_size`` picks how many worker ranks host the shards
    (placement only — the trajectory depends on ``n_shards`` alone);
    ``backend`` is an :mod:`repro.exec` backend name (``process`` /
    ``queue``) or ``"thread"`` for in-process ranks (eager only), and is
    ignored for ``world_size=1`` which runs inline.  ``validators``
    accepts only ``None`` (the problem's defaults) or ``[]``.

    Returns a :class:`~repro.api.RunResult` whose ``history`` is rank 0's;
    the full per-rank results are available on ``result.rank_results``.
    """
    config = (config if config is not None
              else problem_registry.get(problem).config_factory())
    seed = config.seed if seed is None else int(seed)
    batch_size = config.batch_small if batch_size is None else int(batch_size)
    steps = config.steps if steps is None else int(steps)
    label = label if label is not None else f"{problem}:{sampler}"
    if sampler not in SUPPORTED_KINDS:
        raise ValueError(f"data-parallel training supports sampler kinds "
                         f"{SUPPORTED_KINDS}, got {sampler!r}")
    if validators is not None and len(validators) > 0:
        raise ValueError("run_dp accepts validators=None (problem defaults) "
                         "or [] (skip validation); custom validator lists "
                         "cannot be shipped to worker ranks")
    validators_mode = "default" if validators is None else "none"

    n_shards = (int(n_shards) if n_shards is not None
                else int(getattr(config, "dp_shards", DEFAULT_SHARDS)))
    world_size = int(world_size)
    if n_shards < 1 or world_size < 1:
        raise ValueError("n_shards and world_size must be positive")
    if world_size > n_shards:
        raise ValueError(
            f"world_size {world_size} exceeds the {n_shards} logical "
            f"shards; pass dp_shards >= world_size (the shard count is "
            f"fixed per run so the trajectory never depends on the worker "
            f"count)")
    if compile and world_size > 1 and backend == "thread":
        raise ValueError("compile=True needs process isolation per rank "
                         "(tape recording patches autodiff module state); "
                         "use the process or queue backend")

    store_root = None
    if store is not None:
        from ..store import RunStore
        store = RunStore.coerce(store)
        store_root = str(store.root)

    def rank_spec(rank, exchange_root):
        return {
            "problem": problem, "config": config, "sampler": sampler,
            "batch_size": batch_size, "seed": seed, "steps": steps,
            "label": label, "n_interior": n_interior,
            "world_size": world_size, "n_shards": n_shards, "rank": rank,
            "exchange_root": exchange_root,
            "exchange_timeout": float(exchange_timeout),
            "validators_mode": validators_mode, "compile": bool(compile),
            "trace": bool(trace),
            "store_root": store_root if rank == 0 else None,
            "run_id": run_id if rank == 0 else None,
        }

    if world_size == 1:
        rank_results = [_train_dp_rank(rank_spec(0, None))]
    else:
        token = uuid.uuid4().hex[:12]
        if store_root is not None:
            exchange_root = Path(store_root) / "dp" / token
        else:
            exchange_root = Path(tempfile.mkdtemp(prefix=f"repro-dp-{token}-"))
        specs = [rank_spec(rank, str(exchange_root))
                 for rank in range(world_size)]
        labels = [f"{label}[rank{rank}]" for rank in range(world_size)]
        if backend == "thread":
            backend_obj = _ThreadBackend()
        else:
            # every rank must hold a live worker for the rendezvous to
            # complete, so the worker count is pinned to world_size
            backend_obj = resolve_backend(backend, max_workers=world_size,
                                          store=store)
        try:
            rank_results = backend_obj.submit(_train_dp_rank, specs, labels)
        finally:
            shutil.rmtree(exchange_root, ignore_errors=True)

    head = rank_results[0]
    net = FullyConnected(
        head["net_args"]["in_features"], head["net_args"]["out_features"],
        width=head["net_args"]["width"], depth=head["net_args"]["depth"],
        activation=head["net_args"]["activation"],
        dtype=np.dtype(head["net_args"]["dtype"]))
    net.load_state_dict(head["net_state"])
    result = RunResult(label=label, history=head["history"], net=net,
                       sampler=_ResultSamplerInfo(sampler, n_shards,
                                                  world_size),
                       config=config, run_id=head["run_id"],
                       coefficients=head["coefficients"],
                       obs=head["obs_data"])
    result.rank_results = rank_results
    return result


class _ResultSamplerInfo:
    """Lightweight sampler descriptor on a dp :class:`RunResult` (the real
    shard samplers live — and die — inside the worker ranks)."""

    def __init__(self, name, n_shards, world_size):
        self.name = f"dp:{name}"
        self.n_shards = int(n_shards)
        self.world_size = int(world_size)
        self.probe_points = 0
        self.labels = None

    def __repr__(self):
        return (f"_ResultSamplerInfo(name={self.name!r}, "
                f"n_shards={self.n_shards}, world_size={self.world_size})")
