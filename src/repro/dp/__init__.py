"""``repro.dp`` — data-parallel single-method training.

One method's collocation points, constraints, and validators are
partitioned into ``n_shards`` disjoint logical shards; each shard's
``1/S``-scaled loss and gradient are combined by a deterministic
fixed-order pairwise tree reduction (:func:`tree_reduce`), so the float32
trajectory is bit-identical for every ``world_size``, execution backend,
and payload arrival order.  See docs/execution.md ("Data-parallel
training") and :func:`run_dp`.

Only the leaf modules load eagerly; :func:`run_dp` lives in
:mod:`repro.dp.runner`, which imports :mod:`repro.training` — resolved
lazily here so ``repro.training`` itself can import the reduction
primitives without a cycle.
"""

from __future__ import annotations

from .exchange import (LocalExchange, StoreExchange, decode_payload,
                       encode_payload)
from .partition import (assign_clusters, check_disjoint_cover,
                        shard_batch_sizes, stride_shards)
from .reduce import payload_nbytes, tree_add, tree_reduce
from .samplers import (SUPPORTED_KINDS, ClusterPlan, ShardSampler,
                       ShardSGMSampler, make_shard_sampler, shard_cover)

__all__ = [
    "DEFAULT_SHARDS", "DataParallelContext", "LocalExchange",
    "StoreExchange", "ClusterPlan", "ShardSampler", "ShardSGMSampler",
    "SUPPORTED_KINDS", "assign_clusters", "check_disjoint_cover",
    "decode_payload", "encode_payload", "make_shard_sampler",
    "payload_nbytes", "run_dp", "shard_batch_sizes", "shard_cover",
    "stride_shards", "tree_add", "tree_reduce",
]

_RUNNER_EXPORTS = ("DEFAULT_SHARDS", "DataParallelContext", "run_dp")


def __getattr__(name):
    if name in _RUNNER_EXPORTS:
        from . import runner
        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
