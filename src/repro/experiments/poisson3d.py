"""3-D Poisson problem builder (the (x, y, z) path the paper's S1 mentions).

``laplace(u) = f`` in the unit cube with homogeneous Dirichlet walls,
manufactured so that ``u = sin(pi x) sin(pi y) sin(pi z)`` is exact.  The
SGM sampler clusters the 3-D interior cloud directly.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Box
from ..pde import Poisson3D
from ..training import (
    BoundaryConstraint, InteriorConstraint, PointwiseValidator,
)

__all__ = ["build_poisson3d_problem", "poisson3d_exact",
           "poisson3d_validator", "OUTPUT_NAMES", "SPATIAL_NAMES"]

OUTPUT_NAMES = ("u",)
SPATIAL_NAMES = ("x", "y", "z")


def poisson3d_exact(x, y, z):
    """Manufactured solution ``sin(pi x) sin(pi y) sin(pi z)``."""
    return (np.sin(np.pi * x) * np.sin(np.pi * y) * np.sin(np.pi * z))


def _source(x, y, z):
    return -3.0 * np.pi ** 2 * poisson3d_exact(x, y, z)


def poisson3d_validator(config, rng):
    """Pointwise validator against the manufactured solution."""
    points = rng.uniform(0.0, 1.0, (config.n_validation, 3))
    exact = poisson3d_exact(points[:, 0], points[:, 1], points[:, 2])
    return PointwiseValidator("poisson3d", points, {"u": exact},
                              OUTPUT_NAMES, spatial_names=SPATIAL_NAMES)


def build_poisson3d_problem(config, n_interior, rng):
    """Construct clouds and constraints for one 3-D Poisson run.

    Returns
    -------
    dict with keys ``interior_cloud``, ``constraints``, ``output_names``,
    ``spatial_names`` (same shape as the LDC/annular-ring builders).
    """
    cube = Box((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    interior = cube.sample_interior(n_interior, rng)
    boundary = cube.sample_boundary(config.n_boundary, rng)

    constraints = [
        InteriorConstraint("interior", interior, Poisson3D(source=_source),
                           batch_size=0, sdf_weighting=False,
                           spatial_names=SPATIAL_NAMES),
        BoundaryConstraint("walls", boundary, OUTPUT_NAMES, {"u": 0.0},
                           batch_size=0, weight=config.boundary_weight,
                           spatial_names=SPATIAL_NAMES),
    ]
    return {"interior_cloud": interior, "constraints": constraints,
            "output_names": OUTPUT_NAMES, "spatial_names": SPATIAL_NAMES}
